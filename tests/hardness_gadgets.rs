//! The NP-hardness reduction gadgets of the paper's appendix, built as
//! WLAN instances and solved exactly: the reproduction's solvers must
//! recover the answers of the source problems.
//!
//! * Appendix A — Subset Sum → MNU (Theorem 7)
//! * Appendix B — Minimum Makespan Scheduling → BLA (Theorem 8)
//! * Appendix C — Set Cover (cardinality) → MLA (Theorem 9)

use mcast_core::{InstanceBuilder, Kbps, Load};
use mcast_exact::{optimal_bla, optimal_mla, optimal_mnu, SearchLimits};

/// Appendix A: a subset-sum instance G = {g_i}, target T becomes one AP
/// with budget T/D; session s_i has stream g_i (scaled) and g_i users at
/// unit rate. The WLAN serves exactly T users iff a subset sums to T.
fn subset_sum_wlan(g: &[u32], t: u32) -> mcast_core::Instance {
    let d = 100; // scale loads below 1
    let mut b = InstanceBuilder::new();
    b.supported_rates([Kbps::from_mbps(d)]);
    let ap = b.add_ap(Load::from_ratio(u64::from(t), u64::from(d)));
    for &gi in g {
        let s = b.add_session(Kbps::from_mbps(gi));
        for _ in 0..gi {
            let u = b.add_user(s);
            b.link(ap, u, Kbps::from_mbps(d)).unwrap();
        }
    }
    b.build().unwrap()
}

#[test]
fn subset_sum_positive_instance() {
    // {3, 5, 7}, T = 12 = 5 + 7: answer yes — exactly 12 users served.
    let inst = subset_sum_wlan(&[3, 5, 7], 12);
    let out = optimal_mnu(&inst, SearchLimits::default());
    assert!(out.proved_optimal);
    assert_eq!(out.solution.satisfied, 12);
}

#[test]
fn subset_sum_negative_instance() {
    // {3, 5, 7}, T = 11: no subset sums to 11; best is 10 (3 + 7).
    let inst = subset_sum_wlan(&[3, 5, 7], 11);
    let out = optimal_mnu(&inst, SearchLimits::default());
    assert!(out.proved_optimal);
    assert_eq!(out.solution.satisfied, 10);
}

#[test]
fn subset_sum_all_selected() {
    // T equals the total: everyone is served.
    let inst = subset_sum_wlan(&[2, 4, 6], 12);
    let out = optimal_mnu(&inst, SearchLimits::default());
    assert_eq!(out.solution.satisfied, 12);
}

/// Appendix B: jobs p_i on m identical machines becomes m APs at one
/// rate, n single-user sessions with stream p_i; the BLA optimum is the
/// optimal makespan (scaled).
fn makespan_wlan(jobs: &[u32], machines: u32) -> mcast_core::Instance {
    let d = 100;
    let mut b = InstanceBuilder::new();
    b.supported_rates([Kbps::from_mbps(d)]);
    let aps: Vec<_> = (0..machines)
        .map(|_| b.add_ap(Load::from_ratio(10, 1))) // effectively unbounded
        .collect();
    for &p in jobs {
        let s = b.add_session(Kbps::from_mbps(p));
        let u = b.add_user(s);
        for &a in &aps {
            b.link(a, u, Kbps::from_mbps(d)).unwrap();
        }
    }
    b.build().unwrap()
}

#[test]
fn makespan_two_machines() {
    // Jobs {3,3,2,2,2} on 2 machines: optimum makespan 6 (6/100 as load).
    let inst = makespan_wlan(&[3, 3, 2, 2, 2], 2);
    let out = optimal_bla(&inst, SearchLimits::default()).unwrap();
    assert!(out.proved_optimal);
    assert_eq!(out.solution.max_load, Load::from_ratio(6, 100));
}

#[test]
fn makespan_three_machines() {
    // Jobs {5,4,3,3,3} on 3 machines: total 18, optimum 6 = {5+... }:
    // {5,3} > 6? 8. Partitions: {5}, {4,3}=7... optimum is 6? Check:
    // {5,3}=8, no. Best balanced: {5},{4,3},{3,3} -> makespan 7? or
    // {5,3}=8... The true optimum of {5,4,3,3,3} on 3 machines is 6:
    // {3,3}, {3,... } no — 5 alone forces >=5; {4,3}=7 or {4}+... Let's
    // verify the solver against brute force: all 3^5 assignments.
    let jobs = [5u32, 4, 3, 3, 3];
    let mut best = u32::MAX;
    for mask in 0..3u32.pow(5) {
        let mut m = mask;
        let mut loads = [0u32; 3];
        for &j in &jobs {
            loads[(m % 3) as usize] += j;
            m /= 3;
        }
        best = best.min(*loads.iter().max().unwrap());
    }
    let inst = makespan_wlan(&jobs, 3);
    let out = optimal_bla(&inst, SearchLimits::default()).unwrap();
    assert!(out.proved_optimal);
    assert_eq!(
        out.solution.max_load,
        Load::from_ratio(u64::from(best), 100)
    );
}

/// Appendix C: a cardinality set-cover instance becomes one AP per subset
/// (reaching exactly that subset's users), all users on one unit-load
/// session; the MLA optimum divided by the per-transmission cost is the
/// minimum cover size.
fn set_cover_wlan(subsets: &[&[u32]], n: u32) -> mcast_core::Instance {
    let mut b = InstanceBuilder::new();
    b.supported_rates([Kbps::from_mbps(10)]);
    let s = b.add_session(Kbps::from_mbps(1));
    let users: Vec<_> = (0..n).map(|_| b.add_user(s)).collect();
    for subset in subsets {
        let ap = b.add_ap(Load::ONE);
        for &u in *subset {
            b.link(ap, users[u as usize], Kbps::from_mbps(10)).unwrap();
        }
    }
    b.build().unwrap()
}

#[test]
fn set_cover_minimum_size_two() {
    // X = {0..4}; subsets {0,1,2}, {2,3}, {3,4}, {0,4}: optimal cover size
    // 2 ({0,1,2} + {3,4}); each transmission costs 1/10.
    let inst = set_cover_wlan(&[&[0, 1, 2], &[2, 3], &[3, 4], &[0, 4]], 5);
    let out = optimal_mla(&inst, SearchLimits::default()).unwrap();
    assert!(out.proved_optimal);
    assert_eq!(out.solution.total_load, Load::from_ratio(2, 10));
}

#[test]
fn set_cover_forced_large_cover() {
    // Disjoint singletons force a cover of size n.
    let inst = set_cover_wlan(&[&[0], &[1], &[2]], 3);
    let out = optimal_mla(&inst, SearchLimits::default()).unwrap();
    assert_eq!(out.solution.total_load, Load::from_ratio(3, 10));
}

/// The greedy respects the classic ln(n) gap: on the standard tight
/// set-cover family the greedy may pick the "diagonal" set while the
/// optimum is 2 — but never does worse than the guarantee.
#[test]
fn greedy_vs_optimal_on_tight_family() {
    let inst = set_cover_wlan(
        &[
            &[0, 1, 2, 3],       // diagonal bait (cheaper per element)
            &[0, 1, 2, 3, 4, 5], // left half
            &[4, 5],
        ],
        6,
    );
    let greedy = mcast_core::solve_mla(&inst).unwrap();
    let exact = optimal_mla(&inst, SearchLimits::default()).unwrap();
    assert!(exact.solution.total_load <= greedy.total_load);
    let n = 6f64;
    assert!(
        greedy.model_cost.unwrap().as_f64()
            <= (n.ln() + 1.0) * exact.solution.total_load.as_f64() + 1e-9
    );
}
