//! Integration tests for the event-driven controller service and its
//! append-only event log: byte-identical replay of `events.jsonl`,
//! metric equivalence with the lock-step runtime on the same seeds,
//! torn-tail recovery, and a deterministic-ordering property for
//! same-timestamp events.

use proptest::prelude::*;

use mcast_controller::{
    fold_events, lower_plan, replay_stream, serve, ControllerConfig, LadderPolicy,
};
use mcast_core::Objective;
use mcast_events::journal::JournalError;
use mcast_events::{EventKind, JsonlPublisher, MemoryPublisher, TimeQueue};
use mcast_faults::{ApOutage, ChurnModel, FaultPlan};
use mcast_topology::{Scenario, ScenarioConfig};

fn scenario(seed: u64) -> Scenario {
    ScenarioConfig {
        n_aps: 10,
        n_users: 40,
        n_sessions: 3,
        width_m: 600.0,
        height_m: 600.0,
        ..ScenarioConfig::paper_default()
    }
    .with_seed(seed)
    .generate()
}

/// A coordinated outage plus background link churn — every event kind
/// the service ingests (join, leave via churn, down, up, re-roll).
fn chaos_plan(seed: u64, epoch_us: u64) -> FaultPlan {
    FaultPlan {
        seed,
        ap_outages: (0..3)
            .map(|i| ApOutage {
                ap: mcast_core::ApId(i as u32),
                down_at_us: 3 * epoch_us,
                up_at_us: Some(8 * epoch_us),
            })
            .collect(),
        churn: ChurnModel {
            jump_prob: 0.25,
            departure_prob: 0.05,
            link_keep_prob: 0.6,
            ..ChurnModel::none()
        },
        ..FaultPlan::none()
    }
}

fn cfg(policy: LadderPolicy) -> ControllerConfig {
    ControllerConfig {
        objective: Objective::Mnu,
        policy,
        epoch_us: 100_000,
        n_epochs: 12,
        work_budget: 0,
        audit_oracle: true,
    }
}

/// Replaying the `events.jsonl` a service run wrote reconstructs the
/// byte-identical `ControllerReport` and the same final association —
/// without running a single solver.
#[test]
fn replaying_the_event_log_is_byte_identical() {
    let sc = scenario(7);
    let inst = &sc.instance;
    let plan = chaos_plan(7, 100_000);
    let config = cfg(LadderPolicy::Repair);

    let path = std::env::temp_dir().join(format!("mcast_events_it_{}.jsonl", std::process::id()));
    let mut queue = lower_plan(inst, &plan, &config).expect("plan lowers");
    let mut publisher = JsonlPublisher::create(&path).expect("log opens");
    let (live, stats) = serve(
        inst,
        &mut queue,
        &config,
        plan.link_keep_prob(),
        &mut publisher,
    )
    .expect("service runs");
    drop(publisher);

    assert_eq!(stats.joins, 40, "epoch 0 admits the whole population");
    assert_eq!(live.report.invariant_violations, 0);

    let bytes = std::fs::read(&path).expect("log readable");
    let replayed = replay_stream(inst, &bytes).expect("stream folds");
    assert!(replayed.complete, "clean run carries its trailer");
    assert_eq!(replayed.dropped_bytes, 0);
    let live_json = serde_json::to_string(&live.report).unwrap();
    let replay_json = serde_json::to_string(&replayed.outcome.report).unwrap();
    assert_eq!(live_json, replay_json, "replay must be byte-identical");
    assert_eq!(live.association, replayed.outcome.association);
    let _ = std::fs::remove_file(path);
}

/// A crash-truncated log is not an error: replay recovers the report of
/// the fully-closed epoch prefix and reports what it dropped.
#[test]
fn torn_log_replays_to_the_closed_epoch_prefix() {
    let sc = scenario(3);
    let inst = &sc.instance;
    let plan = chaos_plan(3, 100_000);
    let config = cfg(LadderPolicy::Repair);

    let path = std::env::temp_dir().join(format!("mcast_events_torn_{}.jsonl", std::process::id()));
    let mut queue = lower_plan(inst, &plan, &config).expect("plan lowers");
    let mut publisher = JsonlPublisher::create(&path).expect("log opens");
    serve(
        inst,
        &mut queue,
        &config,
        plan.link_keep_prob(),
        &mut publisher,
    )
    .expect("service runs");
    drop(publisher);
    let bytes = std::fs::read(&path).expect("log readable");
    let _ = std::fs::remove_file(&path);

    // Tear the log at every prefix length that cuts a line in half
    // somewhere in the middle: replay must never error, never report
    // more epochs than the full run, and stay monotone in cut size.
    let full = replay_stream(inst, &bytes).expect("full stream folds");
    let mut last_epochs = 0;
    for cut in [
        bytes.len() / 4,
        bytes.len() / 2,
        bytes.len() * 3 / 4,
        bytes.len() - 3,
    ] {
        let torn = replay_stream(inst, &bytes[..cut]).expect("torn tails are not errors");
        assert!(!torn.complete, "a cut stream lost its trailer");
        assert!(torn.epochs_replayed <= full.epochs_replayed);
        assert!(torn.epochs_replayed >= last_epochs, "monotone in cut size");
        last_epochs = torn.epochs_replayed;
        // The reconstructed prefix agrees epoch-by-epoch with the live
        // run's records.
        let n = torn.outcome.report.epochs.len();
        assert_eq!(
            torn.outcome.report.epochs[..n],
            full.outcome.report.epochs[..n]
        );
    }
}

/// A sink that persists fine but permanently reports degraded
/// pressure — isolates the service's overload-shedding response from
/// any actual IO failure.
struct DegradedSink(MemoryPublisher);

impl mcast_events::EventPublisher for DegradedSink {
    fn publish(&mut self, event: &mcast_events::Event) -> Result<(), JournalError> {
        self.0.publish(event)
    }

    fn sync(&mut self) -> Result<(), JournalError> {
        self.0.sync()
    }

    fn pressure(&self) -> mcast_events::SinkPressure {
        mcast_events::SinkPressure::Degraded
    }
}

/// A degraded sink back-pressures batched admission: with more events
/// due in one window than `SHED_BATCH_CAP`, the epoch ingests exactly
/// the cap, the overflow drains in deterministic queue order in later
/// epochs, every join is still admitted, and the published stream still
/// folds to the live report — shedding defers, it never loses.
#[test]
fn degraded_sink_sheds_admission_in_bounded_batches() {
    let sc = ScenarioConfig {
        n_aps: 10,
        n_users: 100,
        n_sessions: 3,
        width_m: 600.0,
        height_m: 600.0,
        ..ScenarioConfig::paper_default()
    }
    .with_seed(11)
    .generate();
    let inst = &sc.instance;
    let plan = FaultPlan::none();
    let config = cfg(LadderPolicy::Repair);

    let mut queue = lower_plan(inst, &plan, &config).expect("plan lowers");
    let mut sink = DegradedSink(MemoryPublisher::new());
    let (live, stats) =
        serve(inst, &mut queue, &config, plan.link_keep_prob(), &mut sink).expect("service runs");

    // 100 joins due at t = 0 against a cap of 64: epoch 0 sheds, epoch 1
    // admits the remaining 36 without hitting the cap again.
    assert_eq!(stats.joins, 100, "every join is eventually admitted");
    assert_eq!(
        stats.backpressure_sheds, 1,
        "exactly one epoch hits the cap"
    );
    assert_eq!(live.report.invariant_violations, 0);

    let folded = fold_events(inst, &sink.0.events).expect("stream folds");
    assert_eq!(
        serde_json::to_string(&folded.report).unwrap(),
        serde_json::to_string(&live.report).unwrap(),
        "shedding must not open a gap between stream and live run"
    );
    assert_eq!(live.association, folded.association);
}

/// Lowering a fault plan into the event queue and running the service
/// reproduces the lock-step runtime's disruption metrics at the same
/// seeds — the epoch records match field for field once the service's
/// join accounting (absent from the lock-step world) is set aside.
#[test]
fn service_matches_lockstep_runtime_across_seeds_and_policies() {
    for seed in [0, 1, 2] {
        let sc = scenario(seed);
        let inst = &sc.instance;
        let plan = chaos_plan(seed, 100_000);
        for policy in LadderPolicy::ALL {
            let config = cfg(policy);
            let mut queue = lower_plan(inst, &plan, &config).expect("plan lowers");
            let mut publisher = MemoryPublisher::new();
            let (service, _) = serve(
                inst,
                &mut queue,
                &config,
                plan.link_keep_prob(),
                &mut publisher,
            )
            .expect("service runs");
            let lockstep = mcast_controller::run(inst, &plan, &config).expect("runtime runs");

            let (s, l) = (&service.report, &lockstep.report);
            assert_eq!(s.disruption, l.disruption, "seed {seed} {policy:?}");
            assert_eq!(s.handoffs, l.handoffs, "seed {seed} {policy:?}");
            assert_eq!(
                s.coverage_loss_user_epochs, l.coverage_loss_user_epochs,
                "seed {seed} {policy:?}"
            );
            assert_eq!(s.reconvergence_epochs, l.reconvergence_epochs);
            assert_eq!(
                (s.shed, s.readmitted, s.deferred),
                (l.shed, l.readmitted, l.deferred)
            );
            assert_eq!(s.invariant_violations, 0, "seed {seed} {policy:?}");
            assert_eq!(l.invariant_violations, 0, "seed {seed} {policy:?}");
            assert_eq!(s.final_satisfied, l.final_satisfied);
            assert_eq!(s.final_max_load, l.final_max_load);
            assert_eq!(s.final_total_load, l.final_total_load);
            assert_eq!(s.work, l.work, "same batches -> same ladder work");
            assert_eq!(service.association, lockstep.association);
            assert_eq!(s.epochs.len(), l.epochs.len());
            for (se, le) in s.epochs.iter().zip(&l.epochs) {
                let mut se = se.clone();
                se.joins = le.joins; // the only designed difference
                assert_eq!(&se, le, "seed {seed} {policy:?}");
            }

            // And the in-memory stream folds back to the service's own
            // report, closing the triangle.
            let folded = fold_events(inst, &publisher.events).expect("stream folds");
            assert_eq!(
                serde_json::to_string(&folded.report).unwrap(),
                serde_json::to_string(s).unwrap()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same-timestamp events pop in push order: the queue breaks time
    /// ties by the monotone sequence number, never by payload, so event
    /// ingestion is deterministic no matter how bursty the timeline.
    #[test]
    fn same_timestamp_events_pop_in_push_order(
        stamps in proptest::collection::vec(0u64..8, 1..80)
    ) {
        let mut queue: TimeQueue<usize> = TimeQueue::new();
        for (i, &t) in stamps.iter().enumerate() {
            queue.push(t, i);
        }
        let mut popped: Vec<(u64, usize)> = Vec::new();
        while let Some(timed) = queue.pop() {
            popped.push((timed.at_us, timed.item));
        }
        prop_assert_eq!(popped.len(), stamps.len());
        // Timestamps are globally sorted...
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            // ...and inside one timestamp, push order (= payload index
            // here) is preserved exactly.
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1);
            }
        }
        // Each timestamp's slice is the subsequence of pushes at that
        // instant, in order.
        for t in 0u64..8 {
            let expect: Vec<usize> = stamps
                .iter()
                .enumerate()
                .filter(|&(_, &s)| s == t)
                .map(|(i, _)| i)
                .collect();
            let got: Vec<usize> = popped
                .iter()
                .filter(|&&(pt, _)| pt == t)
                .map(|&(_, i)| i)
                .collect();
            prop_assert_eq!(got, expect);
        }
    }

    /// Lowering is deterministic and join-first: at `t = 0` every user
    /// join precedes any fault scheduled at the same instant.
    #[test]
    fn lowering_puts_joins_before_same_instant_faults(seed in 0u64..6) {
        let sc = scenario(seed);
        let mut plan = chaos_plan(seed, 100_000);
        // Force a fault at t = 0, colliding with the join burst.
        plan.ap_outages.push(ApOutage {
            ap: mcast_core::ApId(4),
            down_at_us: 0,
            up_at_us: Some(100_000),
        });
        let config = cfg(LadderPolicy::Repair);
        let mut queue = lower_plan(&sc.instance, &plan, &config).expect("plan lowers");
        let mut seen_fault_at_0 = false;
        while let Some(timed) = queue.pop_due(0) {
            match timed.item {
                EventKind::UserJoin { .. } => {
                    prop_assert!(!seen_fault_at_0, "join after a t=0 fault");
                }
                _ => seen_fault_at_0 = true,
            }
        }
        prop_assert!(seen_fault_at_0, "the forced t=0 outage must be due");
    }
}
