//! Property-based integration tests for the extension modules: the
//! primal–dual MLA variant, revenue models, dual association, per-AP
//! power control, channel assignment, and mobility.

use proptest::prelude::*;

use mcast_channels::{assign_channels, ColoringStrategy, EffectiveLoads, InterferenceGraph};
use mcast_core::revenue::{concave_unicast, jain_fairness, pay_per_view, per_byte_unicast};
use mcast_core::{
    solve_mla, solve_mla_with, solve_ssa, DualAssociation, Load, MlaAlgorithm, Objective,
};
use mcast_exact::{optimal_mla, SearchLimits};
use mcast_topology::{instance_with_power, Scenario, ScenarioConfig};

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (2usize..12, 4usize..25, 1usize..4, 0u64..1000).prop_map(
        |(n_aps, n_users, n_sessions, seed)| {
            ScenarioConfig {
                n_aps,
                n_users,
                n_sessions,
                width_m: 500.0,
                height_m: 500.0,
                ..ScenarioConfig::paper_default()
            }
            .with_seed(seed)
            .generate()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The primal–dual cover is within f × OPT (its theoretical factor),
    /// serves everyone, and its dual bound really lower-bounds OPT.
    #[test]
    fn primal_dual_within_f_of_optimal(scenario in scenario_strategy()) {
        let inst = &scenario.instance;
        let pd = solve_mla_with(inst, MlaAlgorithm::PrimalDual).unwrap();
        prop_assert_eq!(pd.satisfied, inst.n_users());
        let exact = optimal_mla(inst, SearchLimits::default()).unwrap();
        prop_assert!(exact.proved_optimal);
        let opt = exact.solution.total_load;
        // f = max over users of |covering sets| in the reduction.
        let red = mcast_core::reduction::Reduction::build(inst);
        let f = (0..inst.n_users() as u32)
            .map(|e| red.system().covering_sets(mcast_covering::ElementId(e)).len())
            .max()
            .unwrap_or(1);
        prop_assert!(
            pd.model_cost.unwrap().as_f64() <= f as f64 * opt.as_f64() + 1e-9,
            "primal-dual {} vs f({f}) x opt {}",
            pd.model_cost.unwrap(),
            opt
        );
    }

    /// Revenue identities: per-byte revenue is exactly n_aps − total load
    /// when nothing is overloaded; Jain is in (0, 1]; pay-per-view scales
    /// linearly in the rate.
    #[test]
    fn revenue_identities(scenario in scenario_strategy()) {
        let inst = &scenario.instance;
        let sol = solve_mla(inst).unwrap();
        let assoc = &sol.association;
        if sol.max_load <= Load::ONE {
            let expect = inst.n_aps() as f64 - sol.total_load.as_f64();
            prop_assert!((per_byte_unicast(assoc, inst) - expect).abs() < 1e-9);
        }
        let j = jain_fairness(assoc, inst);
        prop_assert!(j > 0.0 && j <= 1.0 + 1e-12);
        let r1 = pay_per_view(assoc, 1.0);
        let r3 = pay_per_view(assoc, 3.0);
        prop_assert!((r3 - 3.0 * r1).abs() < 1e-12);
        // Concave revenue is bounded by the per-AP count (each term <= 1).
        prop_assert!(concave_unicast(assoc, inst) <= inst.n_aps() as f64 + 1e-12);
    }

    /// Dual association: airtime decomposes into multicast + unicast
    /// parts; headroom is monotone in the unicast demand.
    #[test]
    fn dual_association_invariants(scenario in scenario_strategy()) {
        let inst = &scenario.instance;
        let mcast = solve_mla(inst).unwrap().association;
        let dual = DualAssociation::with_ssa_unicast(inst, mcast.clone());
        // Every covered user has a unicast AP.
        for u in inst.users() {
            prop_assert_eq!(dual.unicast.ap_of(u).is_some(), inst.user_coverable(u));
        }
        // Zero demand: airtime == multicast load.
        for a in inst.aps() {
            prop_assert_eq!(dual.ap_airtime(a, inst, Load::ZERO), mcast.ap_load(a, inst));
        }
        // Headroom shrinks as demand grows.
        let h1 = dual.unicast_headroom(inst, Load::from_ratio(1, 100));
        let h2 = dual.unicast_headroom(inst, Load::from_ratio(1, 10));
        prop_assert!(h2 <= h1);
    }

    /// Power scaling: level 1.0 reproduces the base instance; any uniform
    /// level keeps instance validity and never decreases link rates when
    /// the level is >= 1.
    #[test]
    fn power_scaling_monotone(scenario in scenario_strategy(), boost in 1.0f64..2.0) {
        let n = scenario.ap_positions.len();
        let base = instance_with_power(&scenario, &vec![1.0; n]);
        let boosted = instance_with_power(&scenario, &vec![boost; n]);
        for a in base.aps() {
            for u in base.users() {
                if let Some(r) = base.link_rate(a, u) {
                    let rb = boosted.link_rate(a, u);
                    prop_assert!(rb.is_some());
                    prop_assert!(rb.unwrap() >= r);
                }
            }
        }
    }

    /// Channel/effective-load invariants: effective >= own per AP, and the
    /// overhead is zero exactly when no conflicting pair carries load.
    #[test]
    fn effective_load_invariants(scenario in scenario_strategy(), channels in 1u16..13) {
        let inst = &scenario.instance;
        let graph = InterferenceGraph::from_positions(&scenario.ap_positions, 400.0);
        let assignment = assign_channels(&graph, channels, ColoringStrategy::Dsatur);
        let assoc = solve_ssa(inst, Objective::Mla).association;
        let eff = EffectiveLoads::compute(inst, &assoc, &graph, &assignment);
        let loads = assoc.loads(inst);
        for a in inst.aps() {
            prop_assert!(eff.effective(a) >= eff.own(a));
            prop_assert_eq!(eff.own(a), loads[a.index()]);
        }
        let loaded_conflict = assignment.conflicts().iter().any(|&(a, b)| {
            !loads[a.index()].is_zero() || !loads[b.index()].is_zero()
        });
        prop_assert_eq!(!eff.interference_overhead().is_zero(), loaded_conflict);
    }

    /// Mobility chains: repeated perturbation keeps sessions, coverage,
    /// and the carried association's structural validity.
    #[test]
    fn mobility_chain_preserves_invariants(
        scenario in scenario_strategy(),
        fraction in 0.0f64..0.6,
    ) {
        let mut current = scenario;
        let assoc0 = solve_mla(&current.instance).unwrap().association;
        let mut assoc = assoc0;
        for step in 0..3u64 {
            let next = current.perturb(step, fraction, 80.0);
            for u in next.instance.users() {
                prop_assert_eq!(
                    next.instance.user_session(u),
                    current.instance.user_session(u)
                );
                prop_assert!(next.instance.user_coverable(u));
            }
            assoc = assoc.restricted_to(&next.instance);
            // Budgets can be exceeded transiently after a move; only
            // structural validity is guaranteed here.
            let structurally_ok = match assoc.validate(&next.instance) {
                Ok(()) => true,
                Err(mcast_core::AssocError::OverBudget { .. }) => true,
                Err(_) => false,
            };
            prop_assert!(structurally_ok);
            current = next;
        }
    }
}
