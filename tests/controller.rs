//! Integration tests for the online resilient controller: determinism,
//! the epoch-0 oracle against the one-shot solvers, and a property sweep
//! asserting the invariant auditor never fires across random fault
//! timelines × every ladder policy.

use proptest::prelude::*;

use mcast_controller::{ControllerConfig, LadderPolicy, SolvePath};
use mcast_core::{solve_bla, solve_mla, solve_mnu_with, MnuConfig, Objective};
use mcast_faults::{ApOutage, ChurnModel, FaultPlan, UserDeparture, UserJump};
use mcast_topology::{Scenario, ScenarioConfig};

fn scenario(seed: u64, n_aps: usize, n_users: usize, n_sessions: usize) -> Scenario {
    ScenarioConfig {
        n_aps,
        n_users,
        n_sessions,
        width_m: 600.0,
        height_m: 600.0,
        ..ScenarioConfig::paper_default()
    }
    .with_seed(seed)
    .generate()
}

fn outage_plan(seed: u64, n_aps: usize, epoch_us: u64) -> FaultPlan {
    FaultPlan {
        seed,
        ap_outages: (0..n_aps.min(2))
            .map(|i| ApOutage {
                ap: mcast_core::ApId(i as u32),
                down_at_us: 3 * epoch_us,
                up_at_us: Some(8 * epoch_us),
            })
            .collect(),
        churn: ChurnModel {
            jump_prob: 0.3,
            link_keep_prob: 0.6,
            ..ChurnModel::none()
        },
        ..FaultPlan::none()
    }
}

/// A controller run is a pure function of (instance, plan, config): two
/// identical runs must serialize to byte-identical reports.
#[test]
fn reports_are_byte_identical_across_runs() {
    let sc = scenario(11, 8, 30, 3);
    let plan = outage_plan(11, 8, 100_000);
    for policy in LadderPolicy::ALL {
        let cfg = ControllerConfig {
            policy,
            n_epochs: 12,
            ..ControllerConfig::default()
        };
        let a = mcast_controller::run(&sc.instance, &plan, &cfg).expect("run a");
        let b = mcast_controller::run(&sc.instance, &plan, &cfg).expect("run b");
        let ja = serde_json::to_string(&a.report).unwrap();
        let jb = serde_json::to_string(&b.report).unwrap();
        assert_eq!(ja, jb, "policy {} diverged", policy.name());
        assert_eq!(a.association, b.association);
    }
}

/// On an unfaulted network, epoch 0's full solve must equal the one-shot
/// centralized solver for every objective — the controller adds an
/// admission sweep on top of MNU, which is exactly `augment: true`.
#[test]
fn epoch0_full_matches_one_shot_solvers() {
    for seed in [0u64, 7, 23] {
        let sc = scenario(seed, 6, 24, 3);
        let inst = &sc.instance;
        for (objective, expected) in [
            (
                Objective::Mnu,
                solve_mnu_with(inst, &MnuConfig { augment: true }).association,
            ),
            (Objective::Bla, solve_bla(inst).expect("bla").association),
            (Objective::Mla, solve_mla(inst).expect("mla").association),
        ] {
            let cfg = ControllerConfig {
                objective,
                policy: LadderPolicy::Full,
                n_epochs: 1,
                ..ControllerConfig::default()
            };
            let out =
                mcast_controller::run(inst, &FaultPlan::none(), &cfg).expect("controller run");
            assert_eq!(out.report.epochs[0].path, SolvePath::Full);
            assert_eq!(
                out.association, expected,
                "seed {seed}, objective {objective:?}"
            );
        }
    }
}

fn plan_strategy(
    n_aps: usize,
    n_users: usize,
    epoch_us: u64,
    n_epochs: u64,
) -> impl Strategy<Value = FaultPlan> {
    let horizon = epoch_us * n_epochs;
    let outage = (
        0..n_aps as u32,
        0..horizon,
        proptest::option::of(0u64..horizon),
    )
        .prop_map(move |(ap, down, up_extra)| ApOutage {
            ap: mcast_core::ApId(ap),
            down_at_us: down,
            up_at_us: up_extra.map(|e| {
                (down + 1 + e % (horizon - down))
                    .min(horizon - 1)
                    .max(down + 1)
            }),
        });
    let departure = (0..n_users as u32, 0..horizon).prop_map(|(user, at_us)| UserDeparture {
        user: mcast_core::UserId(user),
        at_us,
    });
    let jump = (0..n_users as u32, 0..horizon).prop_map(|(user, at_us)| UserJump {
        user: mcast_core::UserId(user),
        at_us,
    });
    (
        proptest::collection::vec(outage, 0..4),
        proptest::collection::vec(departure, 0..3),
        proptest::collection::vec(jump, 0..5),
        0u64..1000,
        0.2f64..0.9,
    )
        .prop_map(|(ap_outages, departures, jumps, seed, keep)| FaultPlan {
            seed,
            ap_outages,
            churn: ChurnModel {
                departures,
                jumps,
                link_keep_prob: keep,
                ..ChurnModel::none()
            },
            ..FaultPlan::none()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever random fault timeline hits it, under every ladder policy
    /// and every objective the post-epoch auditor finds zero invariant
    /// violations (debug builds also re-check the incremental ledger
    /// against a from-scratch oracle every epoch).
    #[test]
    fn auditor_never_fires(
        seed in 0u64..500,
        plan in plan_strategy(7, 26, 50_000, 10),
        policy_idx in 0usize..3,
        obj_idx in 0usize..3,
    ) {
        let sc = scenario(seed, 7, 26, 2);
        let objective = [Objective::Mnu, Objective::Bla, Objective::Mla][obj_idx];
        let cfg = ControllerConfig {
            objective,
            policy: LadderPolicy::ALL[policy_idx],
            epoch_us: 50_000,
            n_epochs: 10,
            audit_oracle: true,
            ..ControllerConfig::default()
        };
        let out = mcast_controller::run(&sc.instance, &plan, &cfg).expect("controller run");
        prop_assert_eq!(
            out.report.invariant_violations, 0,
            "violations: {:?}", out.report.violations_sample
        );
        prop_assert_eq!(out.report.epochs.len(), 10, "every epoch is recorded");
    }
}
