//! End-to-end checks of every worked example in the paper (§3.2, §4, §5,
//! §6): the reproduction must agree with the numbers printed in the text.

use mcast_core::examples_paper::{a, figure1_instance, u};
use mcast_core::reduction::Reduction;
use mcast_core::{
    run_min_max_vector, run_min_total, solve_bla, solve_mla, solve_mnu, solve_ssa, Kbps, Load,
    Objective,
};
use mcast_exact::{optimal_bla, optimal_mla, optimal_mnu, SearchLimits};

fn mbps(m: u32) -> Kbps {
    Kbps::from_mbps(m)
}

/// §3.2 MNU example: at 3 Mbps the WLAN cannot serve all five users; an
/// optimal solution serves four (u2, u4, u5 on a1; u3 on a2) with loads
/// 3/4 and 3/5.
#[test]
fn section32_mnu_optimum() {
    let inst = figure1_instance(mbps(3));
    let exact = optimal_mnu(&inst, SearchLimits::default());
    assert!(exact.proved_optimal);
    assert_eq!(exact.solution.satisfied, 4);
}

/// §3.2 BLA example: at 1 Mbps the optimum max load is 1/2
/// (u1, u2, u3 on a1; u4, u5 on a2 with loads 1/2 and 1/3).
#[test]
fn section32_bla_optimum() {
    let inst = figure1_instance(mbps(1));
    let exact = optimal_bla(&inst, SearchLimits::default()).unwrap();
    assert!(exact.proved_optimal);
    assert_eq!(exact.solution.max_load, Load::from_ratio(1, 2));
}

/// §3.2 MLA example: at 1 Mbps the optimum total load is
/// 1/3 + 1/4 = 7/12 (everyone on a1).
#[test]
fn section32_mla_optimum() {
    let inst = figure1_instance(mbps(1));
    let exact = optimal_mla(&inst, SearchLimits::default()).unwrap();
    assert!(exact.proved_optimal);
    assert_eq!(exact.solution.total_load, Load::from_ratio(7, 12));
}

/// §4.1 "Example – Centralized MNU": greedy serves u2, u4, u5 (3 users);
/// SSA only manages 2.
#[test]
fn section41_centralized_mnu_walkthrough() {
    let inst = figure1_instance(mbps(3));
    let sol = solve_mnu(&inst);
    assert_eq!(sol.satisfied, 3);
    for paper_u in [2, 4, 5] {
        assert_eq!(sol.association.ap_of(u(paper_u)), Some(a(1)));
    }
    let ssa = solve_ssa(&inst, Objective::Mnu);
    assert_eq!(ssa.satisfied, 2);
}

/// §4.2 "Example – Distributed MNU": 4 of 5 users get service
/// (u1, u3 on a1; u4, u5 on a2; u2 blocked).
#[test]
fn section42_distributed_mnu_walkthrough() {
    let inst = figure1_instance(mbps(3));
    let out = run_min_total(&inst);
    assert!(out.converged);
    assert_eq!(out.association.satisfied_count(), 4);
    assert_eq!(out.association.ap_of(u(2)), None);
}

/// §5.1 "Example – Centralized BLA": the greedy lands at max load 7/12
/// (all users on a1) — within its (log₈⁄₇ n + 1)-approximation of the 1/2
/// optimum; our candidate-grid version may find 1/2 itself but never
/// worse than 7/12.
#[test]
fn section51_centralized_bla_walkthrough() {
    let inst = figure1_instance(mbps(1));
    let sol = solve_bla(&inst).unwrap();
    assert!(sol.max_load <= Load::from_ratio(7, 12));
    assert!(sol.max_load >= Load::from_ratio(1, 2));
    assert_eq!(sol.satisfied, 5);
}

/// §5.2 "Example – Distributed BLA": loads settle at 1/2 and 1/3 — "which
/// is also the optimal solution".
#[test]
fn section52_distributed_bla_walkthrough() {
    let inst = figure1_instance(mbps(1));
    let out = run_min_max_vector(&inst);
    assert!(out.converged);
    let loads = out.association.loads(&inst);
    assert_eq!(loads[a(1).index()], Load::from_ratio(1, 2));
    assert_eq!(loads[a(2).index()], Load::from_ratio(1, 3));
}

/// §6.1 "Example – Centralized MLA": greedy picks S4 then S2 — all users
/// on a1, total load 7/12, "which is also the optimal solution".
#[test]
fn section61_centralized_mla_walkthrough() {
    let inst = figure1_instance(mbps(1));
    let sol = solve_mla(&inst).unwrap();
    assert_eq!(sol.total_load, Load::from_ratio(7, 12));
    for paper_u in 1..=5 {
        assert_eq!(sol.association.ap_of(u(paper_u)), Some(a(1)));
    }
}

/// §6.2 "Example – Distributed MLA": all users end on a1 — the optimum.
#[test]
fn section62_distributed_mla_walkthrough() {
    let inst = figure1_instance(mbps(1));
    let out = run_min_total(&inst);
    assert!(out.converged);
    assert_eq!(out.association.total_load(&inst), Load::from_ratio(7, 12));
    for paper_u in 1..=5 {
        assert_eq!(out.association.ap_of(u(paper_u)), Some(a(1)));
    }
}

/// Figures 2/5/7: the reduction of the Figure 1 WLAN has exactly the
/// paper's seven sets, for both stream rates.
#[test]
fn figures_2_5_7_reduction_shape() {
    for rate in [1, 3] {
        let inst = figure1_instance(mbps(rate));
        let red = Reduction::build(&inst);
        assert_eq!(red.system().n_sets(), 7, "rate {rate} Mbps");
        assert_eq!(red.system().n_groups(), 2);
        assert!(red.system().all_coverable());
    }
}

/// The greedy/distributed solutions never beat the certified optimum, and
/// SSA never beats the objective-specific algorithm on the paper's own
/// example (sanity ordering across the whole stack).
#[test]
fn cross_algorithm_ordering_on_figure1() {
    let inst = figure1_instance(mbps(1));
    let limits = SearchLimits::default();
    let opt_mla = optimal_mla(&inst, limits).unwrap().solution.total_load;
    let mla = solve_mla(&inst).unwrap().total_load;
    let ssa = solve_ssa(&inst, Objective::Mla).total_load;
    assert!(opt_mla <= mla);
    assert!(mla <= ssa);

    let opt_bla = optimal_bla(&inst, limits).unwrap().solution.max_load;
    let bla = solve_bla(&inst).unwrap().max_load;
    assert!(opt_bla <= bla);
}
