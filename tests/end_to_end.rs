//! Whole-pipeline integration: scenario generation → algorithms → exact
//! optima → simulator → airtime, on paper-scale inputs.

use mcast_core::{
    run_distributed, solve_bla, solve_mla, solve_mnu, solve_ssa, Association, DistributedConfig,
    Load, Objective, Policy, RatePolicy,
};
use mcast_exact::{optimal_bla, optimal_mla, optimal_mnu, SearchLimits};
use mcast_sim::{measure_airtime, SimConfig, Simulator, Time};
use mcast_topology::ScenarioConfig;

/// A paper-default-scale scenario runs the full algorithm suite with all
/// invariants intact.
#[test]
fn paper_scale_pipeline() {
    let scenario = ScenarioConfig::paper_default().with_seed(17).generate();
    let inst = &scenario.instance;
    assert_eq!(inst.n_aps(), 200);
    assert_eq!(inst.n_users(), 400);

    let ssa = solve_ssa(inst, Objective::Mla);
    let mla = solve_mla(inst).unwrap();
    let bla = solve_bla(inst).unwrap();
    let mnu = solve_mnu(inst);

    // Full coverage objectives serve everyone; budgets loose at 0.9.
    assert_eq!(mla.satisfied, 400);
    assert_eq!(bla.satisfied, 400);
    assert!(mla.association.is_feasible(inst));
    assert!(bla.association.is_feasible(inst));
    assert!(mnu.association.is_feasible(inst));

    // The objective-specific algorithm beats SSA on its own metric at
    // this scale (holds for every seed we pin; the paper reports the
    // same dominance on averages).
    assert!(mla.total_load < ssa.total_load);
    assert!(bla.max_load <= ssa.max_load);
}

/// Figure 12 scale: greedy sandwiched between optimal and SSA.
#[test]
fn figure12_scale_sandwich() {
    for seed in 0..5 {
        let scenario = ScenarioConfig::figure12_default()
            .with_seed(seed)
            .generate();
        let inst = &scenario.instance;
        let limits = SearchLimits::default();

        let mla = solve_mla(inst).unwrap();
        let opt_mla = optimal_mla(inst, limits).unwrap();
        assert!(opt_mla.solution.total_load <= mla.total_load, "seed {seed}");

        let bla = solve_bla(inst).unwrap();
        let opt_bla = optimal_bla(inst, limits).unwrap();
        assert!(opt_bla.solution.max_load <= bla.max_load, "seed {seed}");

        let mnu = solve_mnu(inst);
        let opt_mnu = optimal_mnu(inst, limits);
        assert!(opt_mnu.solution.satisfied >= mnu.satisfied, "seed {seed}");
    }
}

/// The simulator's converged association measures an airtime exactly
/// equal to the analytic Definition-1 load — end-to-end, on a generated
/// WLAN.
#[test]
fn simulated_airtime_closes_the_loop() {
    let scenario = ScenarioConfig {
        n_aps: 20,
        n_users: 50,
        n_sessions: 3,
        ..ScenarioConfig::paper_default()
    }
    .with_seed(23)
    .generate();
    let inst = &scenario.instance;
    let report = Simulator::new(inst, SimConfig::default()).run();
    assert!(report.converged);
    let airtime = measure_airtime(
        inst,
        &report.association,
        Time::from_secs(5),
        Time::from_millis(50),
    );
    assert!(airtime.max_abs_error() < 1e-9);
}

/// Basic-rate-only mode (§3.1 ablation): the pipeline still runs and the
/// association algorithms still beat SSA, at strictly higher loads than
/// multi-rate.
#[test]
fn basic_rate_only_ablation() {
    let multi = ScenarioConfig {
        n_aps: 50,
        n_users: 100,
        ..ScenarioConfig::paper_default()
    }
    .with_seed(31);
    let basic = ScenarioConfig {
        rate_policy: RatePolicy::BasicOnly,
        ..multi.clone()
    };
    let im = multi.generate();
    let ib = basic.generate();

    let mla_m = solve_mla(&im.instance).unwrap();
    let mla_b = solve_mla(&ib.instance).unwrap();
    let ssa_b = solve_ssa(&ib.instance, Objective::Mla);

    // Pinning multicast to 6 Mbps can only cost airtime.
    assert!(mla_b.total_load >= mla_m.total_load);
    // …but association control still beats SSA (the paper's §3.1 claim).
    assert!(mla_b.total_load <= ssa_b.total_load);
}

/// Session-rate scaling: doubling every stream rate exactly doubles the
/// realized loads of a fixed association (pure rational arithmetic).
#[test]
fn load_scales_linearly_with_stream_rate() {
    let one = ScenarioConfig {
        n_aps: 15,
        n_users: 30,
        session_rate: mcast_core::Kbps::from_mbps(1),
        ..ScenarioConfig::paper_default()
    }
    .with_seed(41);
    let two = ScenarioConfig {
        session_rate: mcast_core::Kbps::from_mbps(2),
        ..one.clone()
    };
    let i1 = one.generate();
    let i2 = two.generate();
    // Same geometry and sessions (same seed); same association applies.
    let assoc = solve_ssa(&i1.instance, Objective::Mla).association;
    let l1 = assoc.total_load(&i1.instance);
    let l2 = assoc.total_load(&i2.instance);
    assert_eq!(l2, l1 + l1);
}

/// Determinism of the full stack: identical seeds give identical results
/// across independent runs, for every algorithm.
#[test]
fn full_stack_determinism() {
    let cfg = ScenarioConfig {
        n_aps: 40,
        n_users: 90,
        ..ScenarioConfig::paper_default()
    }
    .with_seed(53);
    let a = cfg.clone().generate();
    let b = cfg.generate();
    assert_eq!(
        solve_mla(&a.instance).unwrap().association,
        solve_mla(&b.instance).unwrap().association
    );
    assert_eq!(
        solve_bla(&a.instance).unwrap().association,
        solve_bla(&b.instance).unwrap().association
    );
    assert_eq!(
        solve_mnu(&a.instance).association,
        solve_mnu(&b.instance).association
    );
    let da = run_distributed(
        &a.instance,
        &DistributedConfig {
            policy: Policy::MinMaxVector,
            ..DistributedConfig::default()
        },
        Association::empty(a.instance.n_users()),
    );
    let db = run_distributed(
        &b.instance,
        &DistributedConfig {
            policy: Policy::MinMaxVector,
            ..DistributedConfig::default()
        },
        Association::empty(b.instance.n_users()),
    );
    assert_eq!(da.association, db.association);
}

/// A long-running property at moderate scale: across seeds, the realized
/// loads reported by the solution structs always re-derive from scratch.
#[test]
fn reported_metrics_rederive() {
    for seed in 0..6 {
        let scenario = ScenarioConfig {
            n_aps: 25,
            n_users: 60,
            ..ScenarioConfig::paper_default()
        }
        .with_seed(seed)
        .generate();
        let inst = &scenario.instance;
        for sol in [
            solve_mla(inst).unwrap(),
            solve_bla(inst).unwrap(),
            solve_mnu(inst),
            solve_ssa(inst, Objective::Mla),
        ] {
            assert_eq!(sol.total_load, sol.association.total_load(inst));
            assert_eq!(sol.max_load, sol.association.max_load(inst));
            assert_eq!(sol.satisfied, sol.association.satisfied_count());
            assert!(sol.max_load <= sol.total_load || sol.total_load == Load::ZERO);
        }
    }
}
