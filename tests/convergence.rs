//! Convergence behaviour across the whole stack: Lemmas 1–2 (serial
//! convergence), the Figure 4 oscillation, and the §8 lock-based fix, at
//! both the round level (`mcast-core`) and the message level
//! (`mcast-sim`).

use mcast_core::examples_paper::{figure4_instance, figure4_start};
use mcast_core::{run_distributed, Association, DistributedConfig, ExecutionMode, Load, Policy};
use mcast_sim::{SimConfig, Simulator, WakeSchedule};
use mcast_topology::{Placement, ScenarioConfig};

/// Lemma 1 / Lemma 2 at scale: serial rounds converge on generated
/// topologies for both policies, from both empty and adversarial starts.
#[test]
fn serial_rounds_converge_on_generated_wlans() {
    for seed in 0..8 {
        let scenario = ScenarioConfig {
            n_aps: 30,
            n_users: 80,
            n_sessions: 4,
            ..ScenarioConfig::paper_default()
        }
        .with_seed(seed)
        .generate();
        let inst = &scenario.instance;
        for policy in [Policy::MinTotalLoad, Policy::MinMaxVector] {
            let out = run_distributed(
                inst,
                &DistributedConfig {
                    policy,
                    ..DistributedConfig::default()
                },
                Association::empty(inst.n_users()),
            );
            assert!(out.converged, "seed {seed} {policy:?}");
            assert!(out.association.is_feasible(inst));

            // Adversarial start: everyone on their strongest AP.
            let ssa = mcast_core::solve_ssa(inst, mcast_core::Objective::Mla).association;
            let out2 = run_distributed(
                inst,
                &DistributedConfig {
                    policy,
                    ..DistributedConfig::default()
                },
                ssa,
            );
            assert!(out2.converged, "seed {seed} {policy:?} from SSA start");
        }
    }
}

/// The total load is monotone non-increasing over serial MinTotalLoad
/// rounds once everyone has joined — the heart of the Lemma 1 proof.
#[test]
fn total_load_monotone_after_join_wave() {
    let scenario = ScenarioConfig {
        n_aps: 15,
        n_users: 40,
        n_sessions: 3,
        ..ScenarioConfig::paper_default()
    }
    .with_seed(3)
    .generate();
    let inst = &scenario.instance;
    // Join everyone via SSA, then watch the improvement rounds.
    let start = mcast_core::solve_ssa(inst, mcast_core::Objective::Mla).association;
    let mut previous = start.total_load(inst);
    let mut current = start;
    for _round in 0..10 {
        let out = run_distributed(
            inst,
            &DistributedConfig {
                max_rounds: 1,
                ..DistributedConfig::default()
            },
            current.clone(),
        );
        let now = out.association.total_load(inst);
        assert!(now <= previous, "round increased total load");
        if out.association == current {
            break;
        }
        previous = now;
        current = out.association;
    }
}

/// Figure 4 at round level: simultaneous decisions cycle; the round engine
/// detects the repeated global state.
#[test]
fn figure4_round_level_cycle_detection() {
    let inst = figure4_instance();
    let out = run_distributed(
        &inst,
        &DistributedConfig {
            mode: ExecutionMode::Simultaneous,
            max_rounds: 50,
            ..DistributedConfig::default()
        },
        figure4_start(),
    );
    assert!(!out.converged);
    assert!(out.cycle_detected);
    // The oscillation never changes the total load (both states cost 1/2).
    assert_eq!(out.association.total_load(&inst), Load::from_ratio(1, 2));
}

/// Figure 4 at message level, plus the lock fix: synchronized wake-ups
/// oscillate; adding the §8 lock protocol restores convergence to the
/// 9/20 local optimum that serial execution reaches.
#[test]
fn figure4_message_level_with_and_without_locks() {
    let inst = figure4_instance();
    let sync = Simulator::with_initial(
        &inst,
        SimConfig {
            schedule: WakeSchedule::Synchronized,
            max_cycles: 30,
            ..SimConfig::default()
        },
        figure4_start(),
    )
    .run();
    assert!(!sync.converged);
    assert!(sync.oscillating);

    for schedule in [WakeSchedule::Staggered, WakeSchedule::SynchronizedLocked] {
        let fixed = Simulator::with_initial(
            &inst,
            SimConfig {
                schedule,
                max_cycles: 30,
                ..SimConfig::default()
            },
            figure4_start(),
        )
        .run();
        assert!(fixed.converged, "{schedule:?}");
        assert_eq!(
            fixed.association.total_load(&inst),
            Load::from_ratio(9, 20),
            "{schedule:?}"
        );
    }
}

/// Lock coordination converges on larger synchronized populations too —
/// a hotspot where many users share APs and wake simultaneously.
#[test]
fn locks_converge_on_contended_hotspot() {
    let scenario = ScenarioConfig {
        n_aps: 8,
        n_users: 40,
        n_sessions: 2,
        width_m: 350.0,
        height_m: 350.0,
        user_placement: Placement::Clustered {
            clusters: 2,
            sigma_m: 40.0,
        },
        ..ScenarioConfig::paper_default()
    }
    .with_seed(9)
    .generate();
    let inst = &scenario.instance;
    let report = Simulator::new(
        inst,
        SimConfig {
            schedule: WakeSchedule::SynchronizedLocked,
            max_cycles: 120,
            ..SimConfig::default()
        },
    )
    .run();
    assert!(report.converged);
    assert!(report.association.is_feasible(inst));
    // Contention existed (someone was denied at least once)…
    assert!(report.message_counts.get("lock_deny").copied().unwrap_or(0) > 0);
    // …and no lock leaked (every grant eventually released).
    let grants = report
        .message_counts
        .get("lock_grant")
        .copied()
        .unwrap_or(0);
    let releases = report
        .message_counts
        .get("lock_release")
        .copied()
        .unwrap_or(0);
    assert!(releases >= grants);
}
