//! The committed corruption corpus: one fixture per mutation class per
//! wire format, each the output of the seeded corpus mutator
//! (`mcast_events::harden::mutate`) over a pinned valid artifact.
//!
//! Every decoder in the system is held to the same contract on these
//! files — a typed, named error; or a salvaged prefix that passes the
//! format's own validation; **never** a panic, an unbounded allocation,
//! or silent garbage. The fixtures are committed (not generated at test
//! time) so a decoder regression is caught against the exact bytes that
//! once exercised it; regenerate them with
//!
//! ```text
//! cargo test -p mcast-experiments --test corpus_decode -- --ignored regen
//! ```
//!
//! after an intentional wire-format change.

use std::path::{Path, PathBuf};

use mcast_events::harden::{mutate, ALL_MUTATIONS};
use mcast_events::replay_stream_bytes;
use mcast_events::snapshot::load_payloads;
use mcast_experiments::cli::load_scenario;
use mcast_topology::{read_mcb, validate_scenario, write_mcb, ScenarioConfig};

/// The committed corpus directory.
fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

/// Every corpus fixture with the given file-name prefix. Asserts the
/// full mutation sweep is present so silently losing fixtures fails.
fn fixtures(prefix: &str) -> Vec<PathBuf> {
    let mut found: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus missing — run the ignored `regen` test and commit its output")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(prefix))
        })
        .collect();
    found.sort();
    assert_eq!(
        found.len(),
        ALL_MUTATIONS.len(),
        "{prefix}: expected one fixture per mutation class"
    );
    found
}

/// The pinned scenario the `.mcb` and JSON fixtures corrupt.
fn base_scenario() -> mcast_topology::Scenario {
    ScenarioConfig {
        n_aps: 6,
        n_users: 18,
        n_sessions: 2,
        width_m: 380.0,
        height_m: 380.0,
        ..ScenarioConfig::paper_default()
    }
    .with_seed(5)
    .generate()
}

#[test]
fn mcb_corpus_yields_named_errors_or_valid_scenarios() {
    for path in fixtures("mcb_") {
        match read_mcb(&path) {
            Ok(scenario) => assert!(
                validate_scenario(&scenario).is_ok(),
                "{}: decoded garbage passed the reader but fails validation",
                path.display()
            ),
            Err(e) => {
                let msg = e.to_string();
                assert!(
                    msg.starts_with("decode error ["),
                    "{}: untyped error: {msg}",
                    path.display()
                );
                assert!(msg.contains("byte"), "{}: no offset: {msg}", path.display());
            }
        }
    }
}

#[test]
fn scenario_json_corpus_loads_as_validation_or_decode_errors() {
    for path in fixtures("scenario_") {
        match load_scenario(&path) {
            // A mutation can land in a coordinate's digits and still
            // produce a perfectly valid (just different) scenario.
            Ok(scenario) => assert!(validate_scenario(&scenario).is_ok()),
            Err(e) => {
                assert!(
                    matches!(e.exit_code(), 3 | 4),
                    "{}: wrong class {}: {e}",
                    path.display(),
                    e.exit_code()
                );
                assert!(!e.to_string().is_empty());
            }
        }
    }
}

#[test]
fn journal_corpus_salvages_a_consistent_prefix() {
    for path in fixtures("journal_") {
        let bytes = std::fs::read(&path).expect("fixture readable");
        let replay = replay_stream_bytes(&bytes);
        assert!(
            replay.valid_len as usize <= bytes.len(),
            "{}: salvaged past EOF",
            path.display()
        );
        // The salvaged prefix is internally consistent: seq is dense
        // from 0, exactly the order the writer framed.
        for (i, event) in replay.events.iter().enumerate() {
            assert_eq!(event.seq, i as u64, "{}: gap at slot {i}", path.display());
        }
        if (replay.valid_len as usize) < bytes.len() {
            let reason = replay
                .tail_reason
                .as_deref()
                .unwrap_or_else(|| panic!("{}: dropped tail without a reason", path.display()));
            assert!(!reason.is_empty());
        }
    }
}

#[test]
fn checkpoint_corpus_salvages_whole_frames() {
    for path in fixtures("ckpt_") {
        let payloads = load_payloads(&path).expect("salvage never hard-errors on corruption");
        for payload in &payloads {
            // Frames that survive framing either parse or are rejected
            // with a named parse error downstream — both fine; what the
            // salvage layer must never do is return a torn half-frame.
            if let Err(e) = serde_json::parse_value(payload) {
                assert!(
                    !e.to_string().is_empty(),
                    "{}: unnamed error",
                    path.display()
                );
            }
        }
    }
}

#[test]
fn deeply_nested_json_hits_the_parser_depth_cap() {
    let path = corpus_dir().join("deepnest.json");
    let text = std::fs::read_to_string(&path).expect("fixture readable");
    let err = serde_json::parse_value(&text).expect_err("200-deep nesting must be rejected");
    assert!(
        err.to_string().contains("nesting"),
        "unexpected rejection: {err}"
    );
    // And through the scenario loader: a named decode error, exit 4.
    let err = load_scenario(&path).expect_err("loader rejects it too");
    assert_eq!(err.exit_code(), 4);
}

/// Regenerates every fixture from pinned seeds. Ignored in normal runs —
/// execute manually after an intentional wire change and commit the
/// result.
#[test]
#[ignore = "regenerates committed fixtures; run manually"]
fn regen() {
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).expect("create corpus dir");

    // Bases: a pinned scenario in both wire formats, plus the event log
    // and checkpoint file of a quick serve run.
    let scenario = base_scenario();
    let tmp = std::env::temp_dir().join(format!("mcast_corpus_regen_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).expect("create scratch dir");

    let mcb_path = tmp.join("base.mcb");
    write_mcb(&scenario, &mcb_path).expect("write base mcb");
    let mcb = std::fs::read(&mcb_path).expect("read base mcb");
    let json = serde_json::to_string(&scenario).expect("serialize scenario");

    let opts = mcast_experiments::Options {
        quick: true,
        out_dir: tmp.join("serve"),
        ..mcast_experiments::Options::default()
    };
    mcast_experiments::serve::run_serve(&opts).expect("quick serve for journal base");
    let journal = std::fs::read(opts.out_dir.join("events.jsonl")).expect("read journal");
    let ckpt = std::fs::read(opts.out_dir.join("serve.ckpt")).expect("read checkpoint");

    let formats: [(&str, &str, &[u8]); 4] = [
        ("mcb", "mcb", &mcb),
        ("scenario", "json", json.as_bytes()),
        ("journal", "jsonl", &journal),
        ("ckpt", "ckpt", &ckpt),
    ];
    for (fi, (prefix, ext, base)) in formats.iter().enumerate() {
        for (mi, m) in ALL_MUTATIONS.iter().enumerate() {
            let seed = 0xC0_FFEE + (fi as u64) * 100 + mi as u64;
            let corrupted = mutate(base, *m, seed);
            let out = dir.join(format!("{prefix}_{}.{ext}", m.name()));
            std::fs::write(&out, corrupted).expect("write fixture");
        }
    }

    // 200 levels of `[` — comfortably past MAX_PARSE_DEPTH (128).
    let deep = format!("{}{}", "[".repeat(200), "]".repeat(200));
    std::fs::write(dir.join("deepnest.json"), deep).expect("write deepnest");

    let _ = std::fs::remove_dir_all(&tmp);
}
