//! Campus TV: a university quad WLAN streaming a handful of live channels
//! — the paper's motivating scenario for MLA/BLA (§1: "streaming TV
//! channels, radio channels, and visitor's information").
//!
//! Generates a 60-AP campus with 300 users watching 6 channels, then
//! compares total and maximum AP load across SSA, MLA, and BLA — showing
//! how much airtime association control returns to unicast traffic.
//!
//! ```text
//! cargo run -p mcast-experiments --release --example campus_tv
//! ```

use mcast_core::{solve_bla, solve_mla, solve_ssa, Kbps, Load, Objective, Solution};
use mcast_topology::{Placement, ScenarioConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ScenarioConfig {
        n_aps: 60,
        n_users: 300,
        n_sessions: 6,
        session_rate: Kbps::from_mbps(1),
        budget: Load::permille(900),
        width_m: 700.0,
        height_m: 500.0,
        // Planned deployment: grid APs; users cluster around lecture halls.
        ap_placement: Placement::Grid { jitter_m: 15.0 },
        user_placement: Placement::Clustered {
            clusters: 8,
            sigma_m: 45.0,
        },
        ..ScenarioConfig::paper_default()
    };

    println!("== Campus TV: 60 grid APs, 300 clustered users, 6 channels ==\n");
    let mut rows: Vec<(u64, Solution, Solution, Solution)> = Vec::new();
    for seed in 0..5 {
        let scenario = config.clone().with_seed(seed).generate();
        let inst = &scenario.instance;
        let ssa = solve_ssa(inst, Objective::Mla);
        let mla = solve_mla(inst)?;
        let bla = solve_bla(inst)?;
        rows.push((seed, ssa, mla, bla));
    }

    println!(
        "{:>4} | {:^21} | {:^21} | {:^21}",
        "seed", "SSA total / max", "MLA total / max", "BLA total / max"
    );
    println!("{}", "-".repeat(78));
    for (seed, ssa, mla, bla) in &rows {
        println!(
            "{:>4} | {:>10.3} / {:>8.3} | {:>10.3} / {:>8.3} | {:>10.3} / {:>8.3}",
            seed,
            ssa.total_load.as_f64(),
            ssa.max_load.as_f64(),
            mla.total_load.as_f64(),
            mla.max_load.as_f64(),
            bla.total_load.as_f64(),
            bla.max_load.as_f64(),
        );
    }

    let n = rows.len() as f64;
    let ssa_total: f64 = rows.iter().map(|r| r.1.total_load.as_f64()).sum::<f64>() / n;
    let mla_total: f64 = rows.iter().map(|r| r.2.total_load.as_f64()).sum::<f64>() / n;
    let ssa_max: f64 = rows.iter().map(|r| r.1.max_load.as_f64()).sum::<f64>() / n;
    let bla_max: f64 = rows.iter().map(|r| r.3.max_load.as_f64()).sum::<f64>() / n;

    println!(
        "\nMLA frees {:.1}% of the total multicast airtime vs SSA;",
        100.0 * (ssa_total - mla_total) / ssa_total
    );
    println!(
        "BLA cuts the worst AP's multicast airtime by {:.1}% vs SSA —",
        100.0 * (ssa_max - bla_max) / ssa_max
    );
    println!("both directly enlarge the airtime left for unicast users.");
    Ok(())
}
