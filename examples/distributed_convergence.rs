//! Distributed convergence at message level: Lemmas 1–2, the Figure 4
//! oscillation, and the §8 lock-based fix, replayed in the discrete-event
//! simulator.
//!
//! ```text
//! cargo run -p mcast-experiments --release --example distributed_convergence
//! ```

use mcast_core::examples_paper::{figure4_instance, figure4_start};
use mcast_core::Policy;
use mcast_sim::{SimConfig, Simulator, WakeSchedule};
use mcast_topology::ScenarioConfig;

fn main() {
    println!("== Part 1: the paper's Figure 4 gadget ==\n");
    let inst = figure4_instance();
    for (name, schedule) in [
        (
            "staggered wake-ups (serial decisions)",
            WakeSchedule::Staggered,
        ),
        (
            "synchronized wake-ups (racing decisions)",
            WakeSchedule::Synchronized,
        ),
        (
            "synchronized + AP locks (§8 extension)",
            WakeSchedule::SynchronizedLocked,
        ),
    ] {
        let report = Simulator::with_initial(
            &inst,
            SimConfig {
                schedule,
                max_cycles: 25,
                ..SimConfig::default()
            },
            figure4_start(),
        )
        .run();
        println!("{name}:");
        println!(
            "  converged={} oscillating={} cycles={} association-changes={} frames={}",
            report.converged,
            report.oscillating,
            report.cycles,
            report.changes.len(),
            report.total_messages()
        );
        if let Some(first) = report.changes.first() {
            println!(
                "  first move: {} {:?} -> {:?} at {}",
                first.user, first.from, first.to, first.at
            );
        }
        println!();
    }

    println!("== Part 2: a 150-user generated WLAN ==\n");
    let scenario = ScenarioConfig {
        n_aps: 40,
        n_users: 150,
        n_sessions: 5,
        ..ScenarioConfig::paper_default()
    }
    .with_seed(11)
    .generate();
    let inst = &scenario.instance;
    for policy in [Policy::MinTotalLoad, Policy::MinMaxVector] {
        let report = Simulator::new(
            inst,
            SimConfig {
                policy,
                ..SimConfig::default()
            },
        )
        .run();
        let max = report.association.max_load(inst);
        let total = report.association.total_load(inst);
        println!(
            "{policy:?}: converged={} in {} cycles; {} moves, {} control frames;",
            report.converged,
            report.cycles,
            report.changes.len(),
            report.total_messages()
        );
        println!(
            "  final total load {:.3}, max AP load {:.3}, satisfied {}/{}",
            total.as_f64(),
            max.as_f64(),
            report.association.satisfied_count(),
            inst.n_users()
        );
        let per_kind: Vec<String> = report
            .message_counts
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        println!("  frames by type: {}\n", per_kind.join(" "));
    }
}
