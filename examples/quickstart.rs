//! Quickstart: the paper's Figure 1 WLAN, all three objectives, against
//! the strongest-signal baseline.
//!
//! ```text
//! cargo run -p mcast-experiments --release --example quickstart
//! ```

use mcast_core::examples_paper::figure1_instance;
use mcast_core::{
    run_min_max_vector, run_min_total, solve_bla, solve_mla, solve_mnu, solve_ssa, Kbps, Objective,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== The paper's Figure 1 WLAN: 2 APs, 5 users, 2 sessions ==\n");

    // --- MNU: 3 Mbps streams are too heavy to serve everyone (§3.2). ---
    let heavy = figure1_instance(Kbps::from_mbps(3));
    let mnu = solve_mnu(&heavy);
    let mnu_d = run_min_total(&heavy);
    let ssa = solve_ssa(&heavy, Objective::Mnu);
    println!("MNU (3 Mbps streams, budget 1.0 per AP):");
    println!("  centralized : {} of 5 users served", mnu.satisfied);
    println!(
        "  distributed : {} of 5 users served (converged: {})",
        mnu_d.association.satisfied_count(),
        mnu_d.converged
    );
    println!("  SSA         : {} of 5 users served\n", ssa.satisfied);

    // --- MLA / BLA: 1 Mbps streams, everyone can be served (§3.2). ---
    let light = figure1_instance(Kbps::from_mbps(1));
    let mla = solve_mla(&light)?;
    let bla = solve_bla(&light)?;
    let bla_d = run_min_max_vector(&light);
    let ssa_l = solve_ssa(&light, Objective::Mla);

    println!("MLA (1 Mbps streams) — minimize total load:");
    println!(
        "  centralized : total load {} = {:.4}",
        mla.total_load,
        mla.total_load.as_f64()
    );
    println!(
        "  SSA         : total load {} = {:.4}\n",
        ssa_l.total_load,
        ssa_l.total_load.as_f64()
    );

    println!("BLA (1 Mbps streams) — minimize the maximum AP load:");
    println!(
        "  centralized : max load {} = {:.4}",
        bla.max_load,
        bla.max_load.as_f64()
    );
    let bla_d_max = bla_d.association.max_load(&light);
    println!(
        "  distributed : max load {} = {:.4} (the optimum, as in §5.2)",
        bla_d_max,
        bla_d_max.as_f64()
    );
    println!(
        "  SSA         : max load {} = {:.4}",
        ssa_l.max_load,
        ssa_l.max_load.as_f64()
    );

    println!("\nPer-user association under MLA:");
    for u in light.users() {
        match mla.association.ap_of(u) {
            Some(a) => println!("  {u} -> {a}"),
            None => println!("  {u} -> unsatisfied"),
        }
    }
    Ok(())
}
