//! Stadium replay channels: an overloaded hotspot where not every
//! multicast request can be met — the MNU regime.
//!
//! A stadium bowl with 40 APs serves 600 spectators requesting one of 12
//! replay streams, under a tight multicast budget (most airtime is
//! reserved for unicast). The example sweeps the budget and compares how
//! many spectators get their stream under SSA, centralized MNU, greedy
//! MNU plus the slack-augmentation extension, and distributed MNU.
//!
//! ```text
//! cargo run -p mcast-experiments --release --example stadium_mnu
//! ```

use mcast_core::{
    run_min_total, solve_mnu, solve_mnu_with, solve_ssa, Kbps, Load, MnuConfig, Objective,
};
use mcast_topology::{Placement, ScenarioConfig};

fn main() {
    let base = ScenarioConfig {
        n_aps: 40,
        n_users: 600,
        n_sessions: 12,
        session_rate: Kbps::from_mbps(1),
        width_m: 400.0,
        height_m: 300.0,
        ap_placement: Placement::Grid { jitter_m: 5.0 },
        user_placement: Placement::Clustered {
            clusters: 4,
            sigma_m: 60.0,
        },
        ..ScenarioConfig::paper_default()
    };

    println!("== Stadium: 40 APs, 600 spectators, 12 replay channels ==\n");
    println!(
        "{:>7} | {:>6} | {:>6} | {:>10} | {:>6}",
        "budget", "SSA", "MNU-C", "MNU-C+aug", "MNU-D"
    );
    println!("{}", "-".repeat(50));

    for budget_permille in [20u32, 40, 60, 80, 120] {
        let mut totals = [0usize; 4];
        let seeds = 5;
        for seed in 0..seeds {
            let scenario = ScenarioConfig {
                budget: Load::permille(budget_permille),
                ..base.clone()
            }
            .with_seed(seed)
            .generate();
            let inst = &scenario.instance;
            totals[0] += solve_ssa(inst, Objective::Mnu).satisfied;
            totals[1] += solve_mnu(inst).satisfied;
            totals[2] += solve_mnu_with(inst, &MnuConfig { augment: true }).satisfied;
            totals[3] += run_min_total(inst).association.satisfied_count();
        }
        let avg = |t: usize| t as f64 / seeds as f64;
        println!(
            "{:>7.3} | {:>6.1} | {:>6.1} | {:>10.1} | {:>6.1}",
            f64::from(budget_permille) / 1000.0,
            avg(totals[0]),
            avg(totals[1]),
            avg(totals[2]),
            avg(totals[3]),
        );
    }

    println!(
        "\nUnder tight budgets, association control serves substantially more\n\
         spectators than strongest-signal association; the augmentation pass\n\
         (an extension beyond the paper) squeezes out the realized-load slack\n\
         the covering model leaves behind."
    );
}
