//! City-scale deployment planning: the Taipei-style scenario from the
//! paper's introduction (2300 APs covering half a city), scaled to a
//! district — combining every extension in the workspace:
//!
//! 1. association control (MLA / BLA) vs SSA for a district WLAN;
//! 2. explicit interference modeling (§8): channel assignment under
//!    802.11b/g's 3 channels vs 802.11a's 12, and the *effective* load
//!    including co-channel interferers;
//! 3. per-AP adaptive power control (§8): coordinate descent over
//!    discrete power levels on top of MLA.
//!
//! ```text
//! cargo run -p mcast-experiments --release --example city_mesh
//! ```

use mcast_channels::{assign_channels, ColoringStrategy, EffectiveLoads, InterferenceGraph};
use mcast_core::{solve_bla, solve_mla, solve_ssa, Instance, InstanceStats, Objective};
use mcast_topology::{optimize_power, Placement, ScenarioConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 1.5 km × 1 km district: 120 grid APs, 350 users in street
    // clusters, 8 municipal streams (news, transit, tourism…).
    let config = ScenarioConfig {
        n_aps: 120,
        n_users: 350,
        n_sessions: 8,
        width_m: 1500.0,
        height_m: 1000.0,
        ap_placement: Placement::Grid { jitter_m: 30.0 },
        user_placement: Placement::Clustered {
            clusters: 12,
            sigma_m: 80.0,
        },
        ..ScenarioConfig::paper_default()
    };
    let scenario = config.with_seed(2026).generate();
    let inst = &scenario.instance;

    println!("== District WLAN: 120 APs, 350 users, 8 municipal streams ==\n");

    let stats = InstanceStats::of(inst);
    println!(
        "deployment: {} links, mean user degree {:.1}, peak channel demand {} users\n",
        stats.n_links,
        stats.mean_user_degree,
        stats.peak_session_demand()
    );

    let ssa = solve_ssa(inst, Objective::Mla);
    let mla = solve_mla(inst)?;
    let bla = solve_bla(inst)?;
    println!("association control (nominal loads):");
    println!(
        "  SSA : total {:.3}  max {:.3}",
        ssa.total_load.as_f64(),
        ssa.max_load.as_f64()
    );
    println!(
        "  MLA : total {:.3}  max {:.3}",
        mla.total_load.as_f64(),
        mla.max_load.as_f64()
    );
    println!(
        "  BLA : total {:.3}  max {:.3}\n",
        bla.total_load.as_f64(),
        bla.max_load.as_f64()
    );

    // Interference: carrier sense reaches ~2x the communication range.
    let graph = InterferenceGraph::from_positions(
        &scenario.ap_positions,
        2.0 * scenario.config.rate_table.range_m(),
    );
    println!(
        "interference graph: {} APs, {} edges, max degree {}\n",
        graph.n_aps(),
        graph.n_edges(),
        graph.max_degree()
    );

    println!("effective max load (own + co-channel interferers):");
    for &(band, channels) in &[("802.11b/g", 3u16), ("802.11a", 12u16)] {
        let assignment = assign_channels(&graph, channels, ColoringStrategy::Dsatur);
        for (name, assoc) in [
            ("SSA", &ssa.association),
            ("MLA", &mla.association),
            ("BLA", &bla.association),
        ] {
            let eff = EffectiveLoads::compute(inst, assoc, &graph, &assignment);
            println!(
                "  {band} ({channels:>2} ch, {:>3} conflicts) {name}: max {:.3}, saturated APs {}",
                assignment.conflicts().len(),
                eff.max_effective().as_f64(),
                eff.saturated_aps().len()
            );
        }
    }

    // Per-AP power control on top of MLA.
    let objective = |i: &Instance| solve_mla(i).map_or(f64::INFINITY, |s| s.total_load.as_f64());
    let tuned = optimize_power(&scenario, &[0.75, 1.0, 1.25, 1.5], 1, objective);
    let n_boosted = tuned.levels.iter().filter(|&&l| l > 1.0).count();
    let n_reduced = tuned.levels.iter().filter(|&&l| l < 1.0).count();
    println!(
        "\nper-AP power control (coordinate descent, {} evaluations):",
        tuned.evaluations
    );
    println!(
        "  MLA total load {:.3} -> {:.3} ({} APs boosted, {} reduced)",
        mla.total_load.as_f64(),
        tuned.objective,
        n_boosted,
        n_reduced
    );
    Ok(())
}
