//! # mcast-faults
//!
//! Deterministic fault-injection and network-dynamics plans for the
//! distributed association protocols.
//!
//! The paper's analysis assumes a static, fault-free WLAN: APs never
//! crash, control frames always arrive, and users hold still while the
//! algorithms converge. This crate models everything that breaks those
//! assumptions in a deployment, as *data*:
//!
//! - **AP dynamics** — scheduled or random failure/recovery windows
//!   ([`ApOutage`], [`RandomApFailures`]). A crashed AP forgets its lock
//!   state and forcibly disassociates every served user.
//! - **Control-plane faults** — per-[`MessageClass`] drop, duplication,
//!   and extra-delay distributions ([`MessageFaults`], [`DelayJitter`]).
//! - **User churn & mobility** — departures and position jumps that
//!   change neighbor sets mid-run ([`ChurnModel`]).
//!
//! A [`FaultPlan`] is seedable and serializable; [`FaultPlan::compile`]
//! resolves all randomness up front into a [`FaultTimeline`] the
//! simulator replays, so a `(plan, seed)` pair always produces the same
//! faults. `FaultPlan::none()` is the identity: the simulator must
//! behave event-for-event as if the fault layer did not exist.

mod metrics;
mod plan;
mod timeline;

pub use metrics::RecoverySummary;
pub use plan::{
    ApOutage, ChurnModel, DelayJitter, FaultPlan, MessageClass, MessageFaults, RandomApFailures,
    UserDeparture, UserJump,
};
pub use timeline::{FaultEvent, FaultEventKind, FaultTimeline};
