//! Recovery metrics shared by the runtimes that consume fault timelines.
//!
//! Both the packet-level simulator (`mcast-sim`) and the epoch-driven
//! online controller (`mcast-controller`) measure how long the system
//! takes to settle after each disruption. This module holds the common
//! summary type so the two reports are directly comparable: the
//! simulator feeds it reconvergence times in microseconds, the
//! controller in epochs — same statistics, different unit.

use serde::{Deserialize, Serialize};

/// Percentile summary of per-disruption recovery times.
///
/// Built from one sample per disruption window. Windows that never
/// settled before the run (or the next disruption) ended are counted in
/// [`RecoverySummary::unsettled`] and excluded from the percentiles —
/// an unsettled window has no finite recovery time to rank.
///
/// Percentiles use the nearest-rank method on the sorted settled
/// samples, so every reported value is an actual observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoverySummary {
    /// Number of settled samples the percentiles are computed over.
    pub n: usize,
    /// Disruption windows that never reconverged.
    pub unsettled: usize,
    /// Median recovery time (0 when there are no settled samples).
    pub p50: f64,
    /// 95th-percentile recovery time.
    pub p95: f64,
    /// 99th-percentile recovery time.
    pub p99: f64,
    /// Worst settled recovery time.
    pub max: f64,
}

impl RecoverySummary {
    /// An empty summary: no disruptions observed.
    pub fn empty() -> RecoverySummary {
        RecoverySummary {
            n: 0,
            unsettled: 0,
            p50: 0.0,
            p95: 0.0,
            p99: 0.0,
            max: 0.0,
        }
    }

    /// Summarizes settled recovery samples plus a count of windows that
    /// never settled. Non-finite samples are rejected by debug assert
    /// and skipped in release.
    pub fn of(samples: &[f64], unsettled: usize) -> RecoverySummary {
        let mut sorted: Vec<f64> = samples
            .iter()
            .copied()
            .filter(|s| {
                debug_assert!(s.is_finite(), "non-finite recovery sample {s}");
                s.is_finite()
            })
            .collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples are ordered"));
        if sorted.is_empty() {
            return RecoverySummary {
                unsettled,
                ..RecoverySummary::empty()
            };
        }
        let pick = |q: f64| -> f64 {
            // Nearest rank: ceil(q * n), 1-based.
            let rank = (q * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        RecoverySummary {
            n: sorted.len(),
            unsettled,
            p50: pick(0.50),
            p95: pick(0.95),
            p99: pick(0.99),
            max: *sorted.last().expect("non-empty"),
        }
    }

    /// Summarizes per-window recovery times where `None` marks a window
    /// that never settled.
    pub fn from_options(samples: &[Option<f64>]) -> RecoverySummary {
        let settled: Vec<f64> = samples.iter().filter_map(|s| *s).collect();
        let unsettled = samples.len() - settled.len();
        RecoverySummary::of(&settled, unsettled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroed() {
        let s = RecoverySummary::of(&[], 0);
        assert_eq!(s, RecoverySummary::empty());
        let s = RecoverySummary::of(&[], 3);
        assert_eq!(s.n, 0);
        assert_eq!(s.unsettled, 3);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let s = RecoverySummary::of(&[42.0], 0);
        assert_eq!(
            (s.n, s.p50, s.p95, s.p99, s.max),
            (1, 42.0, 42.0, 42.0, 42.0)
        );
    }

    #[test]
    fn nearest_rank_percentiles() {
        // 1..=100: p50 = 50, p95 = 95, p99 = 99, max = 100 under
        // nearest-rank (rank = ceil(q·n), 1-based).
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = RecoverySummary::of(&samples, 0);
        assert_eq!((s.p50, s.p95, s.p99, s.max), (50.0, 95.0, 99.0, 100.0));

        // n = 200: ceil(0.99 · 200) = 198 → the 198th observation.
        let samples: Vec<f64> = (1..=200).map(|i| i as f64).collect();
        let s = RecoverySummary::of(&samples, 0);
        assert_eq!((s.p50, s.p95, s.p99, s.max), (100.0, 190.0, 198.0, 200.0));

        // Unsorted input is sorted internally; small n rounds every high
        // percentile up to the max observation.
        let s = RecoverySummary::of(&[9.0, 1.0, 5.0, 3.0, 7.0], 0);
        assert_eq!((s.n, s.p50, s.p95, s.p99, s.max), (5, 5.0, 9.0, 9.0, 9.0));
    }

    #[test]
    fn from_options_counts_unsettled() {
        let s = RecoverySummary::from_options(&[Some(4.0), None, Some(2.0), None]);
        assert_eq!(s.n, 2);
        assert_eq!(s.unsettled, 2);
        assert_eq!(s.p50, 2.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn serde_round_trip() {
        let s = RecoverySummary::of(&[1.5, 2.5, 10.0], 1);
        let json = serde_json::to_string(&s).unwrap();
        let back: RecoverySummary = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
