//! Declarative fault plans.
//!
//! A [`FaultPlan`] describes *what can go wrong* in a run: AP outage
//! windows, per-message-class control-plane faults, and user churn. Plans
//! are pure data — serializable, comparable, and independent of any
//! simulator — and are turned into a concrete, deterministic schedule by
//! [`FaultPlan::compile`].
//!
//! All times are **microseconds from simulation start** (`u64`), matching
//! the simulator's clock resolution without depending on its `Time` type
//! (the sim crate depends on this one, not the other way around).

use serde::{Deserialize, Serialize};

use mcast_core::{ApId, UserId};

use crate::timeline::{FaultEvent, FaultEventKind, FaultTimeline};

/// Classes of control frames, the granularity at which control-plane
/// faults apply.
///
/// Each class groups a request with its response: faulting either
/// direction of an exchange exercises the same recovery path (the
/// initiator times out and retries on its next wake).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MessageClass {
    /// ProbeRequest / ProbeResponse (neighbor discovery).
    Probe,
    /// LoadQuery / LoadResponse (the paper's load-information exchange).
    Query,
    /// LockRequest / LockGrant / LockDeny / LockRelease (serialization).
    Lock,
    /// AssocRequest / AssocResponse / Disassoc (ledger mutations).
    Association,
}

impl MessageClass {
    /// All classes, in a fixed order (used for deterministic iteration).
    pub const ALL: [MessageClass; 4] = [
        MessageClass::Probe,
        MessageClass::Query,
        MessageClass::Lock,
        MessageClass::Association,
    ];

    /// A stable lowercase name (used as a JSON/report key).
    pub fn name(self) -> &'static str {
        match self {
            MessageClass::Probe => "probe",
            MessageClass::Query => "query",
            MessageClass::Lock => "lock",
            MessageClass::Association => "association",
        }
    }
}

/// A uniform extra-delay distribution in microseconds.
///
/// `min_us..=max_us` is sampled per affected frame. The default (`0..=0`)
/// adds no delay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DelayJitter {
    /// Smallest extra delay added to an affected frame.
    #[serde(default)]
    pub min_us: u64,
    /// Largest extra delay added to an affected frame.
    #[serde(default)]
    pub max_us: u64,
}

impl DelayJitter {
    /// No extra delay.
    pub fn none() -> DelayJitter {
        DelayJitter::default()
    }

    /// True if this jitter never delays anything.
    pub fn is_none(&self) -> bool {
        self.max_us == 0
    }
}

/// Fault distribution for one [`MessageClass`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MessageFaults {
    /// Probability that a frame of this class is silently dropped.
    #[serde(default)]
    pub drop_prob: f64,
    /// Probability that a delivered frame is delivered a second time
    /// (duplication, e.g. a retransmit whose ACK was lost).
    #[serde(default)]
    pub dup_prob: f64,
    /// Extra in-flight delay added to every frame of this class.
    #[serde(default)]
    pub jitter: DelayJitter,
}

impl MessageFaults {
    /// No faults for this class.
    pub fn none() -> MessageFaults {
        MessageFaults::default()
    }

    /// True if this class is fault-free.
    pub fn is_none(&self) -> bool {
        self.drop_prob == 0.0 && self.dup_prob == 0.0 && self.jitter.is_none()
    }
}

/// A scheduled AP outage window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApOutage {
    /// The AP that goes down.
    pub ap: ApId,
    /// When it goes down (µs from simulation start).
    pub down_at_us: u64,
    /// When it comes back, if ever (µs from simulation start).
    #[serde(default)]
    pub up_at_us: Option<u64>,
}

/// Random (unscheduled) AP failures, compiled into concrete outage
/// windows by [`FaultPlan::compile`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomApFailures {
    /// Probability that each AP fails once during the horizon.
    pub failure_prob: f64,
    /// Mean downtime; actual downtime is uniform in `[0.5, 1.5] × mean`.
    pub mean_downtime_us: u64,
}

/// A scheduled user departure (the user powers off and never returns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserDeparture {
    /// The departing user.
    pub user: UserId,
    /// When they leave (µs from simulation start).
    pub at_us: u64,
}

/// A scheduled position jump: the user's neighbor set is re-rolled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserJump {
    /// The moving user.
    pub user: UserId,
    /// When they move (µs from simulation start).
    pub at_us: u64,
}

/// User churn and mobility.
///
/// Explicit departures/jumps fire exactly as listed; the probabilistic
/// knobs add one departure/jump per selected user at a seed-determined
/// time inside the middle 80% of the horizon.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ChurnModel {
    /// Scheduled departures.
    #[serde(default)]
    pub departures: Vec<UserDeparture>,
    /// Scheduled position jumps.
    #[serde(default)]
    pub jumps: Vec<UserJump>,
    /// Probability that each user departs once during the horizon.
    #[serde(default)]
    pub departure_prob: f64,
    /// Probability that each user jumps once during the horizon.
    #[serde(default)]
    pub jump_prob: f64,
    /// When a user jumps, each candidate link survives with this
    /// probability (re-rolled per jump). `0` is treated as the default
    /// of `0.5` by the simulator's mobility model.
    #[serde(default)]
    pub link_keep_prob: f64,
}

impl ChurnModel {
    /// No churn.
    pub fn none() -> ChurnModel {
        ChurnModel::default()
    }

    /// True if no user ever departs or moves.
    pub fn is_none(&self) -> bool {
        self.departures.is_empty()
            && self.jumps.is_empty()
            && self.departure_prob == 0.0
            && self.jump_prob == 0.0
    }
}

/// A complete, seedable description of everything that goes wrong in a
/// run.
///
/// `FaultPlan::none()` is the identity plan: a simulator given it must
/// behave *event-for-event* identically to one with no fault layer at
/// all (a property the sim crate tests).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for every random draw the plan implies (compilation and the
    /// simulator's per-frame fault rolls). Independent of the scenario
    /// and protocol seeds so fault patterns can be varied in isolation.
    #[serde(default)]
    pub seed: u64,
    /// Scheduled AP outage windows.
    #[serde(default)]
    pub ap_outages: Vec<ApOutage>,
    /// Random AP failures, if any.
    #[serde(default)]
    pub random_ap_failures: Option<RandomApFailures>,
    /// Faults on neighbor-discovery frames.
    #[serde(default)]
    pub probe: MessageFaults,
    /// Faults on load-query/response frames.
    #[serde(default)]
    pub query: MessageFaults,
    /// Faults on lock-protocol frames.
    #[serde(default)]
    pub lock: MessageFaults,
    /// Faults on association frames.
    #[serde(default)]
    pub association: MessageFaults,
    /// User churn and mobility.
    #[serde(default)]
    pub churn: ChurnModel,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The identity plan: nothing goes wrong.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            ap_outages: Vec::new(),
            random_ap_failures: None,
            probe: MessageFaults::none(),
            query: MessageFaults::none(),
            lock: MessageFaults::none(),
            association: MessageFaults::none(),
            churn: ChurnModel::none(),
        }
    }

    /// True if this plan injects no faults at all.
    pub fn is_none(&self) -> bool {
        self.ap_outages.is_empty()
            && self.random_ap_failures.is_none()
            && !self.has_message_faults()
            && self.churn.is_none()
    }

    /// True if any message class has a non-trivial fault distribution.
    pub fn has_message_faults(&self) -> bool {
        MessageClass::ALL
            .iter()
            .any(|&c| !self.faults_for(c).is_none())
    }

    /// The fault distribution for a message class.
    pub fn faults_for(&self, class: MessageClass) -> &MessageFaults {
        match class {
            MessageClass::Probe => &self.probe,
            MessageClass::Query => &self.query,
            MessageClass::Lock => &self.lock,
            MessageClass::Association => &self.association,
        }
    }

    /// The effective link-survival probability for mobility jumps.
    pub fn link_keep_prob(&self) -> f64 {
        if self.churn.link_keep_prob > 0.0 {
            self.churn.link_keep_prob
        } else {
            0.5
        }
    }

    /// Structural validation against an instance with `n_aps` APs and
    /// `n_users` users over a `horizon_us`-microsecond run.
    ///
    /// [`FaultPlan::compile`] is forgiving — it silently skips events it
    /// cannot schedule so hand-built plans stay usable in tests. Load
    /// paths (CLI `--plan` files, controller construction) call this
    /// first so that a typo'd AP id or an impossible probability is a
    /// named error instead of a silently weaker fault plan. Checks:
    ///
    /// - outage windows reference known APs, start inside the horizon,
    ///   and are not inverted or empty (`up_at_us > down_at_us`);
    /// - every probability (failure, drop, dup, churn, link-keep) lies
    ///   in `[0, 1]` and is finite;
    /// - jitter windows are not inverted (`min_us ≤ max_us`);
    /// - scheduled departures/jumps reference known users and fire
    ///   inside the horizon.
    pub fn validate(&self, n_aps: usize, n_users: usize, horizon_us: u64) -> Result<(), String> {
        let prob = |what: &str, p: f64| -> Result<(), String> {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                Err(format!("{what} is {p}, outside [0, 1]"))
            } else {
                Ok(())
            }
        };

        for (i, o) in self.ap_outages.iter().enumerate() {
            if o.ap.index() >= n_aps {
                return Err(format!(
                    "ap_outages[{i}] references unknown AP {} (instance has {n_aps} APs)",
                    o.ap.index()
                ));
            }
            if o.down_at_us >= horizon_us {
                return Err(format!(
                    "ap_outages[{i}]: AP {} goes down at {}µs, at or past the {horizon_us}µs horizon",
                    o.ap.index(),
                    o.down_at_us
                ));
            }
            if let Some(up) = o.up_at_us {
                if up <= o.down_at_us {
                    return Err(format!(
                        "ap_outages[{i}]: AP {} has an inverted outage window (up {up}µs ≤ down {}µs)",
                        o.ap.index(),
                        o.down_at_us
                    ));
                }
                if up > horizon_us {
                    return Err(format!(
                        "ap_outages[{i}]: AP {} recovers at {up}µs, past the {horizon_us}µs horizon",
                        o.ap.index()
                    ));
                }
            }
        }

        if let Some(rf) = self.random_ap_failures {
            prob("random_ap_failures.failure_prob", rf.failure_prob)?;
            if rf.failure_prob > 0.0 && rf.mean_downtime_us == 0 {
                return Err(
                    "random_ap_failures.mean_downtime_us is 0 (failures would be instantaneous)"
                        .to_string(),
                );
            }
        }

        for class in MessageClass::ALL {
            let f = self.faults_for(class);
            prob(&format!("{}.drop_prob", class.name()), f.drop_prob)?;
            prob(&format!("{}.dup_prob", class.name()), f.dup_prob)?;
            if f.jitter.min_us > f.jitter.max_us {
                return Err(format!(
                    "{}.jitter has an inverted window (min {}µs > max {}µs)",
                    class.name(),
                    f.jitter.min_us,
                    f.jitter.max_us
                ));
            }
        }

        for (i, d) in self.churn.departures.iter().enumerate() {
            if d.user.index() >= n_users {
                return Err(format!(
                    "churn.departures[{i}] references unknown user {} (instance has {n_users} users)",
                    d.user.index()
                ));
            }
            if d.at_us >= horizon_us {
                return Err(format!(
                    "churn.departures[{i}]: user {} departs at {}µs, at or past the {horizon_us}µs horizon",
                    d.user.index(),
                    d.at_us
                ));
            }
        }
        for (i, j) in self.churn.jumps.iter().enumerate() {
            if j.user.index() >= n_users {
                return Err(format!(
                    "churn.jumps[{i}] references unknown user {} (instance has {n_users} users)",
                    j.user.index()
                ));
            }
            if j.at_us >= horizon_us {
                return Err(format!(
                    "churn.jumps[{i}]: user {} jumps at {}µs, at or past the {horizon_us}µs horizon",
                    j.user.index(),
                    j.at_us
                ));
            }
        }
        prob("churn.departure_prob", self.churn.departure_prob)?;
        prob("churn.jump_prob", self.churn.jump_prob)?;
        prob("churn.link_keep_prob", self.churn.link_keep_prob)?;

        Ok(())
    }

    /// Compiles the plan into a concrete timeline for an instance with
    /// `n_aps` APs and `n_users` users over `horizon_us` microseconds.
    ///
    /// Compilation is a pure function of `(plan, n_aps, n_users,
    /// horizon_us)`: the same inputs always yield the same timeline.
    /// Random failures and probabilistic churn are resolved here with a
    /// [`rand_chacha::ChaCha8Rng`] seeded from [`FaultPlan::seed`], in a
    /// fixed draw order (APs by index, then users by index).
    pub fn compile(&self, n_aps: usize, n_users: usize, horizon_us: u64) -> FaultTimeline {
        use rand::{Rng, SeedableRng};

        let mut events: Vec<FaultEvent> = Vec::new();

        for o in &self.ap_outages {
            if o.ap.index() >= n_aps {
                continue;
            }
            events.push(FaultEvent {
                at_us: o.down_at_us,
                kind: FaultEventKind::ApDown(o.ap),
            });
            if let Some(up) = o.up_at_us {
                if up > o.down_at_us {
                    events.push(FaultEvent {
                        at_us: up,
                        kind: FaultEventKind::ApUp(o.ap),
                    });
                }
            }
        }

        // Probabilistic windows land in the middle 80% of the horizon so
        // the run has a clean start and some tail to reconverge in.
        let lo = horizon_us / 10;
        let hi = horizon_us.saturating_sub(horizon_us / 10).max(lo + 1);

        if let Some(rf) = self.random_ap_failures {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(self.seed ^ 0xA9_F4_17);
            for a in 0..n_aps {
                if rng.gen::<f64>() < rf.failure_prob {
                    let down = rng.gen_range(lo..hi);
                    let span = rf.mean_downtime_us.max(1);
                    let dur = rng.gen_range(span / 2..=span + span / 2).max(1);
                    events.push(FaultEvent {
                        at_us: down,
                        kind: FaultEventKind::ApDown(ApId(a as u32)),
                    });
                    events.push(FaultEvent {
                        at_us: down.saturating_add(dur),
                        kind: FaultEventKind::ApUp(ApId(a as u32)),
                    });
                }
            }
        }

        for d in &self.churn.departures {
            if d.user.index() < n_users {
                events.push(FaultEvent {
                    at_us: d.at_us,
                    kind: FaultEventKind::UserDepart(d.user),
                });
            }
        }
        for j in &self.churn.jumps {
            if j.user.index() < n_users {
                events.push(FaultEvent {
                    at_us: j.at_us,
                    kind: FaultEventKind::UserJump {
                        user: j.user,
                        // Derived, not drawn: explicit jumps must not
                        // perturb the probabilistic draw sequence.
                        seed: self.seed ^ mix(j.user.0 as u64, j.at_us),
                    },
                });
            }
        }

        if self.churn.departure_prob > 0.0 || self.churn.jump_prob > 0.0 {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(self.seed ^ 0xC0_51_2E);
            for u in 0..n_users {
                if self.churn.departure_prob > 0.0 && rng.gen::<f64>() < self.churn.departure_prob {
                    events.push(FaultEvent {
                        at_us: rng.gen_range(lo..hi),
                        kind: FaultEventKind::UserDepart(UserId(u as u32)),
                    });
                }
                if self.churn.jump_prob > 0.0 && rng.gen::<f64>() < self.churn.jump_prob {
                    events.push(FaultEvent {
                        at_us: rng.gen_range(lo..hi),
                        kind: FaultEventKind::UserJump {
                            user: UserId(u as u32),
                            seed: rng.gen(),
                        },
                    });
                }
            }
        }

        FaultTimeline::new(events)
    }
}

/// A small deterministic mixer (SplitMix64 finalizer) for deriving
/// per-jump seeds without consuming RNG state.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_none() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        assert!(!p.has_message_faults());
        assert!(p.compile(10, 20, 1_000_000).is_empty());
    }

    #[test]
    fn default_is_none() {
        assert_eq!(FaultPlan::default(), FaultPlan::none());
    }

    #[test]
    fn message_faults_make_plan_faulty() {
        let mut p = FaultPlan::none();
        p.query.drop_prob = 0.1;
        assert!(!p.is_none());
        assert!(p.has_message_faults());
        assert!(!p.faults_for(MessageClass::Query).is_none());
        assert!(p.faults_for(MessageClass::Probe).is_none());
    }

    #[test]
    fn scheduled_outage_compiles_to_window() {
        let mut p = FaultPlan::none();
        p.ap_outages.push(ApOutage {
            ap: ApId(2),
            down_at_us: 500,
            up_at_us: Some(1500),
        });
        let t = p.compile(5, 10, 10_000);
        let evs: Vec<_> = t.events().to_vec();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].at_us, 500);
        assert_eq!(evs[0].kind, FaultEventKind::ApDown(ApId(2)));
        assert_eq!(evs[1].at_us, 1500);
        assert_eq!(evs[1].kind, FaultEventKind::ApUp(ApId(2)));
    }

    #[test]
    fn out_of_range_ids_are_ignored() {
        let mut p = FaultPlan::none();
        p.ap_outages.push(ApOutage {
            ap: ApId(99),
            down_at_us: 0,
            up_at_us: None,
        });
        p.churn.departures.push(UserDeparture {
            user: UserId(99),
            at_us: 0,
        });
        assert!(p.compile(5, 10, 10_000).is_empty());
    }

    #[test]
    fn compile_is_deterministic() {
        let mut p = FaultPlan::none();
        p.seed = 7;
        p.random_ap_failures = Some(RandomApFailures {
            failure_prob: 0.5,
            mean_downtime_us: 40_000,
        });
        p.churn.departure_prob = 0.3;
        p.churn.jump_prob = 0.3;
        let a = p.compile(20, 50, 1_000_000);
        let b = p.compile(20, 50, 1_000_000);
        assert_eq!(a.events(), b.events());
        assert!(!a.is_empty());

        p.seed = 8;
        let c = p.compile(20, 50, 1_000_000);
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn timeline_is_sorted() {
        let mut p = FaultPlan::none();
        p.seed = 3;
        p.random_ap_failures = Some(RandomApFailures {
            failure_prob: 1.0,
            mean_downtime_us: 10_000,
        });
        p.churn.departure_prob = 1.0;
        let t = p.compile(10, 10, 1_000_000);
        let times: Vec<u64> = t.events().iter().map(|e| e.at_us).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
    }

    #[test]
    fn serde_round_trip() {
        let mut p = FaultPlan::none();
        p.seed = 11;
        p.query = MessageFaults {
            drop_prob: 0.2,
            dup_prob: 0.05,
            jitter: DelayJitter {
                min_us: 10,
                max_us: 200,
            },
        };
        p.ap_outages.push(ApOutage {
            ap: ApId(1),
            down_at_us: 100,
            up_at_us: None,
        });
        p.churn.jumps.push(UserJump {
            user: UserId(4),
            at_us: 5_000,
        });
        let json = serde_json::to_string(&p).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn validate_accepts_reasonable_plans() {
        assert_eq!(FaultPlan::none().validate(5, 10, 1_000_000), Ok(()));
        let mut p = FaultPlan::none();
        p.ap_outages.push(ApOutage {
            ap: ApId(2),
            down_at_us: 500,
            up_at_us: Some(1_500),
        });
        p.query.drop_prob = 0.25;
        p.churn.jumps.push(UserJump {
            user: UserId(4),
            at_us: 9_000,
        });
        p.churn.jump_prob = 0.5;
        assert_eq!(p.validate(5, 10, 10_000), Ok(()));
    }

    #[test]
    fn validate_names_unknown_ap() {
        let mut p = FaultPlan::none();
        p.ap_outages.push(ApOutage {
            ap: ApId(99),
            down_at_us: 0,
            up_at_us: None,
        });
        let err = p.validate(5, 10, 10_000).unwrap_err();
        assert!(err.contains("unknown AP 99"), "{err}");
        assert!(err.contains("5 APs"), "{err}");
    }

    #[test]
    fn validate_rejects_inverted_outage_window() {
        let mut p = FaultPlan::none();
        p.ap_outages.push(ApOutage {
            ap: ApId(1),
            down_at_us: 1_500,
            up_at_us: Some(500),
        });
        let err = p.validate(5, 10, 10_000).unwrap_err();
        assert!(err.contains("inverted outage window"), "{err}");
        assert!(err.contains("AP 1"), "{err}");
    }

    #[test]
    fn validate_rejects_events_past_horizon() {
        let mut p = FaultPlan::none();
        p.ap_outages.push(ApOutage {
            ap: ApId(0),
            down_at_us: 10_000,
            up_at_us: None,
        });
        let err = p.validate(5, 10, 10_000).unwrap_err();
        assert!(err.contains("horizon"), "{err}");

        let mut p = FaultPlan::none();
        p.churn.departures.push(UserDeparture {
            user: UserId(3),
            at_us: 99_999,
        });
        let err = p.validate(5, 10, 10_000).unwrap_err();
        assert!(err.contains("user 3"), "{err}");
        assert!(err.contains("horizon"), "{err}");
    }

    #[test]
    fn validate_rejects_bad_probabilities() {
        let mut p = FaultPlan::none();
        p.query.drop_prob = 1.5;
        let err = p.validate(5, 10, 10_000).unwrap_err();
        assert!(err.contains("query.drop_prob"), "{err}");
        assert!(err.contains("outside [0, 1]"), "{err}");

        let mut p = FaultPlan::none();
        p.lock.dup_prob = -0.1;
        assert!(p
            .validate(5, 10, 10_000)
            .unwrap_err()
            .contains("lock.dup_prob"));

        let mut p = FaultPlan::none();
        p.churn.link_keep_prob = f64::NAN;
        assert!(p
            .validate(5, 10, 10_000)
            .unwrap_err()
            .contains("churn.link_keep_prob"));
    }

    #[test]
    fn validate_rejects_inverted_jitter_and_unknown_user_jump() {
        let mut p = FaultPlan::none();
        p.probe.jitter = DelayJitter {
            min_us: 200,
            max_us: 10,
        };
        let err = p.validate(5, 10, 10_000).unwrap_err();
        assert!(err.contains("probe.jitter"), "{err}");

        let mut p = FaultPlan::none();
        p.churn.jumps.push(UserJump {
            user: UserId(10),
            at_us: 100,
        });
        let err = p.validate(5, 10, 10_000).unwrap_err();
        assert!(err.contains("unknown user 10"), "{err}");
        assert!(err.contains("10 users"), "{err}");
    }

    #[test]
    fn link_keep_prob_defaults_to_half() {
        let mut p = FaultPlan::none();
        assert_eq!(p.link_keep_prob(), 0.5);
        p.churn.link_keep_prob = 0.8;
        assert_eq!(p.link_keep_prob(), 0.8);
    }
}
