//! Compiled fault timelines.
//!
//! A [`FaultTimeline`] is the concrete, fully resolved schedule produced
//! by [`crate::FaultPlan::compile`]: a time-sorted list of discrete fault
//! events the simulator applies as its clock passes them. All randomness
//! has already been resolved at compile time, so two simulators walking
//! the same timeline see the same faults at the same instants.

use serde::{Deserialize, Serialize};

use mcast_core::{ApId, UserId};

/// One concrete fault occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When it happens (µs from simulation start).
    pub at_us: u64,
    /// What happens.
    pub kind: FaultEventKind,
}

/// The kinds of discrete fault events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultEventKind {
    /// The AP crashes: it stops receiving frames, its lock state is
    /// lost, and every served user is forcibly disassociated.
    ApDown(ApId),
    /// The AP recovers with empty state and starts answering again.
    ApUp(ApId),
    /// The user powers off for good; if associated, their load leaves
    /// the ledger.
    UserDepart(UserId),
    /// The user jumps to a new position: their neighbor set is re-rolled
    /// from `seed`, and an association to an AP no longer in range is
    /// dropped.
    UserJump {
        /// The moving user.
        user: UserId,
        /// Seed for the neighbor re-roll (resolved at compile time).
        seed: u64,
    },
}

impl FaultEventKind {
    /// A deterministic tie-break rank so simultaneous events apply in a
    /// fixed order: recoveries before failures before churn.
    fn rank(&self) -> (u8, u32, u64) {
        match *self {
            FaultEventKind::ApUp(a) => (0, a.0, 0),
            FaultEventKind::ApDown(a) => (1, a.0, 0),
            FaultEventKind::UserDepart(u) => (2, u.0, 0),
            FaultEventKind::UserJump { user, seed } => (3, user.0, seed),
        }
    }
}

/// A time-sorted schedule of fault events with a consumption cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultTimeline {
    events: Vec<FaultEvent>,
    /// Index of the next event not yet handed out by [`Self::pop_due`].
    #[serde(default)]
    next: usize,
}

impl FaultTimeline {
    /// Builds a timeline, sorting events by time (ties broken by a fixed
    /// kind/id order so compilation stays deterministic).
    pub fn new(mut events: Vec<FaultEvent>) -> FaultTimeline {
        events.sort_by_key(|e| (e.at_us, e.kind.rank()));
        FaultTimeline { events, next: 0 }
    }

    /// An empty timeline.
    pub fn empty() -> FaultTimeline {
        FaultTimeline::default()
    }

    /// The full event list (including already-consumed events).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True if the timeline holds no events at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events not yet consumed.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.next
    }

    /// Time of the next unconsumed event, if any.
    pub fn peek_at_us(&self) -> Option<u64> {
        self.events.get(self.next).map(|e| e.at_us)
    }

    /// Consumes and returns the next event if it is due at or before
    /// `now_us`.
    pub fn pop_due(&mut self, now_us: u64) -> Option<FaultEvent> {
        let ev = *self.events.get(self.next)?;
        if ev.at_us <= now_us {
            self.next += 1;
            Some(ev)
        } else {
            None
        }
    }

    /// Consumes and returns the next event unconditionally (used to
    /// flush the tail of the schedule at end of run).
    pub fn pop_any(&mut self) -> Option<FaultEvent> {
        let ev = *self.events.get(self.next)?;
        self.next += 1;
        Some(ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_us: u64, kind: FaultEventKind) -> FaultEvent {
        FaultEvent { at_us, kind }
    }

    #[test]
    fn sorts_by_time_then_kind() {
        let t = FaultTimeline::new(vec![
            ev(50, FaultEventKind::UserDepart(UserId(1))),
            ev(10, FaultEventKind::ApDown(ApId(3))),
            ev(10, FaultEventKind::ApUp(ApId(0))),
            ev(10, FaultEventKind::ApDown(ApId(1))),
        ]);
        let kinds: Vec<_> = t.events().iter().map(|e| (e.at_us, e.kind)).collect();
        assert_eq!(
            kinds,
            vec![
                (10, FaultEventKind::ApUp(ApId(0))),
                (10, FaultEventKind::ApDown(ApId(1))),
                (10, FaultEventKind::ApDown(ApId(3))),
                (50, FaultEventKind::UserDepart(UserId(1))),
            ]
        );
    }

    #[test]
    fn pop_due_respects_clock() {
        let mut t = FaultTimeline::new(vec![
            ev(10, FaultEventKind::ApDown(ApId(0))),
            ev(20, FaultEventKind::ApUp(ApId(0))),
        ]);
        assert_eq!(t.remaining(), 2);
        assert_eq!(t.peek_at_us(), Some(10));
        assert!(t.pop_due(5).is_none());
        assert_eq!(t.pop_due(10).unwrap().at_us, 10);
        assert!(t.pop_due(15).is_none());
        assert_eq!(t.pop_due(25).unwrap().at_us, 20);
        assert!(t.pop_due(u64::MAX).is_none());
        assert_eq!(t.remaining(), 0);
    }

    #[test]
    fn pop_any_flushes() {
        let mut t = FaultTimeline::new(vec![ev(1_000_000, FaultEventKind::ApDown(ApId(0)))]);
        assert!(t.pop_due(0).is_none());
        assert!(t.pop_any().is_some());
        assert!(t.pop_any().is_none());
    }

    #[test]
    fn serde_round_trip() {
        let t = FaultTimeline::new(vec![
            ev(
                10,
                FaultEventKind::UserJump {
                    user: UserId(2),
                    seed: 99,
                },
            ),
            ev(5, FaultEventKind::UserDepart(UserId(0))),
        ]);
        let json = serde_json::to_string(&t).unwrap();
        let back: FaultTimeline = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
