//! `repro serve` / `repro replay` — the event-driven controller service
//! on a pinned chaos scenario, with its append-only event log.
//!
//! `serve` runs the same coordinated-outage chaos as the `controller`
//! experiment, but through the event-driven service
//! ([`mcast_controller::serve`]): the fault plan is lowered into a
//! deterministic [`TimeQueue`](mcast_events::TimeQueue), drained epoch
//! by epoch with batched admission, and everything ingested or decided
//! is streamed to `<out>/events.jsonl` (crc32-framed JSONL, the PR-3
//! journal format). Before returning, the run **proves its own log**:
//! it replays the file it just wrote and asserts the reconstructed
//! [`ControllerReport`] is byte-identical to the live one, and that the
//! live run matches the lock-step runtime's disruption metrics on the
//! same instance and plan.
//!
//! `replay` is the recovery path: it rebuilds the instance from
//! `<out>/serve_setup.json` (written atomically before any event
//! streams, so it always exists when a log does) and folds
//! `<out>/events.jsonl` — possibly crash-truncated — back into the
//! report of its fully-closed epoch prefix, without running a single
//! solver.
//!
//! [`ControllerReport`]: mcast_controller::ControllerReport

use std::sync::Arc;

use mcast_controller::{
    fold_events, lower_plan, replay_stream, replay_stream_from, serve_checkpointed,
    ControllerConfig, ControllerOutcome, LadderPolicy, ReplayOutcome, ServiceCheckpoint,
    ServiceStats,
};
use mcast_core::Objective;
use mcast_events::snapshot::load_payloads;
use mcast_events::{
    replay_stream_bytes, replay_stream_bytes_from, DegradeRung, EventKind, EventPublisher,
    IoFaultPlan, JsonlPublisher, ResilientPublisher, RetryPolicy, SnapshotFile,
};
use mcast_faults::{FaultPlan, RecoverySummary};
use mcast_topology::{Scenario, ScenarioConfig};
use serde::{Deserialize, Serialize};

use crate::cli::CliError;
use crate::figures::controller::build_plan;
use crate::journal::atomic_write;
use crate::Options;

/// Shorthand: classify a plain-string failure as an IO/decode error.
fn io_err(m: String) -> CliError {
    CliError::IoDecode(m)
}

/// Shorthand: classify a failed determinism proof.
fn diverged(m: String) -> CliError {
    CliError::Divergence(m)
}

/// Schema tag of `serve_setup.json`.
pub const SETUP_SCHEMA: &str = "mcast-serve-setup/v1";

/// Default service-checkpoint cadence in epochs when `--checkpoint-every`
/// is not given.
const DEFAULT_SERVE_CHECKPOINT_EVERY: usize = 4;

/// Everything needed to regenerate the pinned scenario and fault plan —
/// written to `<out>/serve_setup.json` *before* the event stream opens,
/// so `repro replay` can always rebuild the instance a surviving log
/// belongs to.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeSetup {
    /// Schema tag ([`SETUP_SCHEMA`]).
    pub schema: String,
    /// Scenario seed (drives geometry, churn, and outage targeting).
    pub seed: u64,
    /// AP count.
    pub n_aps: usize,
    /// User count.
    pub n_users: usize,
    /// Multicast session count.
    pub n_sessions: usize,
    /// How many most-loaded APs the coordinated outage takes down.
    pub aps_down: usize,
    /// Epoch at which the outage begins.
    pub down_epoch: u64,
    /// Epoch at which the downed APs recover.
    pub up_epoch: u64,
    /// Service horizon in epochs.
    pub n_epochs: u64,
    /// Epoch length, µs.
    pub epoch_us: u64,
    /// Per-epoch link-jump probability of the background churn.
    pub jump_prob: f64,
    /// Per-link survival probability on a jump re-roll.
    pub link_keep_prob: f64,
    /// Solver objective (always MNU here; echoed for self-description).
    pub objective: String,
    /// Ladder policy the service runs under.
    pub policy: String,
    /// Whether the quick (smoke-scale) shape was used.
    pub quick: bool,
}

/// The pinned chaos shape: quick mode shrinks the scenario but keeps
/// the identical structure (coordinated outage + recovery + churn) as
/// the `controller` experiment, so the two stay comparable.
pub fn pinned_setup(quick: bool) -> ServeSetup {
    let (n_aps, n_users, n_sessions, aps_down, jump_prob) = if quick {
        (12, 48, 3, 3, 0.25)
    } else {
        (2000, 6000, 8, 100, 0.02)
    };
    let (n_epochs, down_epoch, up_epoch) = if quick { (16, 3, 9) } else { (30, 6, 18) };
    ServeSetup {
        schema: SETUP_SCHEMA.to_string(),
        seed: 0,
        n_aps,
        n_users,
        n_sessions,
        aps_down,
        down_epoch,
        up_epoch,
        n_epochs,
        epoch_us: 100_000,
        jump_prob,
        link_keep_prob: 0.6,
        objective: format!("{:?}", Objective::Mnu),
        policy: LadderPolicy::Repair.name().to_string(),
        quick,
    }
}

/// Regenerates the scenario and fault plan a setup describes.
pub(crate) fn materialize(setup: &ServeSetup) -> (Scenario, FaultPlan) {
    let scenario = ScenarioConfig {
        n_aps: setup.n_aps,
        n_users: setup.n_users,
        n_sessions: setup.n_sessions,
        ..ScenarioConfig::paper_default()
    }
    .with_seed(setup.seed)
    .generate();
    let plan = build_plan(
        &scenario,
        setup.seed,
        setup.aps_down,
        setup.down_epoch,
        setup.up_epoch,
        setup.epoch_us,
        setup.jump_prob,
        setup.link_keep_prob,
    );
    (scenario, plan)
}

fn config_of(setup: &ServeSetup) -> ControllerConfig {
    ControllerConfig {
        objective: Objective::Mnu,
        policy: LadderPolicy::Repair,
        epoch_us: setup.epoch_us,
        n_epochs: setup.n_epochs,
        work_budget: 0,
        audit_oracle: setup.quick,
    }
}

/// Wall-clock instrumentation of one service run, as serialized into
/// `serve.json` (kept out of the deterministic report on purpose).
#[derive(Debug, Serialize)]
struct StatsJson {
    joins: u64,
    fault_events: u64,
    events_published: u64,
    decision_latency_us: RecoverySummary,
    admission_wall_s: f64,
    joins_per_sec: f64,
    backpressure_sheds: u64,
}

impl StatsJson {
    fn of(stats: &ServiceStats) -> StatsJson {
        StatsJson {
            joins: stats.joins,
            fault_events: stats.fault_events,
            events_published: stats.events_published,
            decision_latency_us: stats.decision_latency_us,
            admission_wall_s: stats.admission_wall_s,
            joins_per_sec: stats.joins_per_sec,
            backpressure_sheds: stats.backpressure_sheds,
        }
    }
}

/// The deterministic degraded report of an `--io-chaos` run: what the
/// retry → spill → drop ladder did under the seeded fault plan. A pure
/// function of (scenario seed, fault seed) — two runs at the same seeds
/// produce this struct byte for byte.
#[derive(Debug, Serialize)]
struct IoChaosJson {
    /// Seed of the injected IO-fault plan.
    seed: u64,
    /// Final ladder rung (`primary` / `spill` / `drop`).
    rung: String,
    /// Retried primary appends.
    retries: u64,
    /// Tail repairs between attempts.
    repairs: u64,
    /// Events diverted to `events.spill.jsonl`.
    spilled: u64,
    /// Events dropped outright (must be 0 with a healthy spill sink).
    dropped: u64,
    /// Durability (fsync) failures swallowed.
    sync_failures: u64,
    /// Sequence number of the first spilled event, if any.
    first_spilled_seq: Option<u64>,
    /// Decisions lost end to end: published minus recovered. The run
    /// fails unless this is 0.
    decisions_lost: u64,
}

/// The in-process proof that the log is trustworthy.
#[derive(Debug, Serialize)]
struct Verification {
    /// Replaying `events.jsonl` reproduced the live report byte for
    /// byte (and the same final association).
    replay_identical: bool,
    /// The stream carried its `StreamClosed` trailer.
    replay_complete: bool,
    /// The lock-step runtime on the same instance/plan/config agrees on
    /// every disruption metric.
    matches_runtime: bool,
    /// Restoring the latest `serve.ckpt` snapshot and folding only the
    /// event-log *suffix* past its byte position reproduced the live
    /// report byte for byte (the fast recovery path). `None` when
    /// checkpointing was off (`--io-chaos` runs, where a faulted sink
    /// cannot back byte-positioned checkpoints).
    snapshot_recovery_identical: Option<bool>,
    /// Service checkpoints durably written to `serve.ckpt`.
    checkpoints_written: usize,
    /// Size of the event log on disk, bytes.
    stream_bytes: u64,
}

#[derive(Debug, Serialize)]
struct ServeJson {
    schema: String,
    setup: ServeSetup,
    stats: StatsJson,
    verification: Verification,
    /// Degraded-ladder accounting of an `--io-chaos` run; `null` on
    /// clean runs.
    io_chaos: Option<IoChaosJson>,
    report: mcast_controller::ControllerReport,
}

/// Runs `repro serve`: the pinned chaos scenario through the
/// event-driven service, streaming `<out>/events.jsonl` and writing
/// `<out>/serve_setup.json` + `<out>/serve.json`.
///
/// # Errors
///
/// Scenario/plan validation failures ([`CliError::Validation`]), I/O
/// failures ([`CliError::IoDecode`]), or a failed self-verification
/// ([`CliError::Divergence`] — replay not byte-identical, a decision
/// lost under `--io-chaos`, or the lock-step runtime disagreeing on
/// disruption metrics; all correctness bugs).
pub fn run_serve(opts: &Options) -> Result<String, CliError> {
    match opts.io_chaos {
        Some(seed) => run_serve_io_chaos(opts, seed),
        None => run_serve_clean(opts),
    }
}

/// Writes `serve_setup.json` (atomically, before the first event — a
/// crash-truncated run must still be replayable, which needs the
/// instance recipe) and regenerates the pinned run it describes.
fn prepare_serve(opts: &Options) -> Result<(ServeSetup, Scenario, FaultPlan), CliError> {
    let setup = pinned_setup(opts.quick);
    std::fs::create_dir_all(&opts.out_dir)
        .map_err(|e| io_err(format!("cannot create {}: {e}", opts.out_dir.display())))?;
    let setup_path = opts.out_dir.join("serve_setup.json");
    let setup_json = serde_json::to_string_pretty(&setup)
        .map_err(|e| io_err(format!("serialize setup: {e}")))?;
    atomic_write(&setup_path, setup_json.as_bytes())
        .map_err(|e| io_err(format!("write {}: {e}", setup_path.display())))?;
    let (scenario, plan) = materialize(&setup);
    Ok((setup, scenario, plan))
}

fn run_serve_clean(opts: &Options) -> Result<String, CliError> {
    let (setup, scenario, plan) = prepare_serve(opts)?;
    let inst = &scenario.instance;
    let cfg = config_of(&setup);

    let mut queue = lower_plan(inst, &plan, &cfg).map_err(CliError::Validation)?;
    let events_path = opts.out_dir.join("events.jsonl");
    let mut publisher = JsonlPublisher::create(&events_path)
        .map_err(|e| io_err(format!("cannot open {}: {e}", events_path.display())))?;
    // The service checkpoints its fold state every K committed epochs
    // into `serve.ckpt` (same crc32 framing as the event log), so
    // recovery is snapshot + log-suffix replay instead of a full fold.
    let checkpoint_every = opts
        .checkpoint_every
        .unwrap_or(DEFAULT_SERVE_CHECKPOINT_EVERY) as u64;
    let ckpt_path = opts.out_dir.join("serve.ckpt");
    let snapshot = SnapshotFile::create(&ckpt_path)
        .map_err(|e| io_err(format!("cannot open {}: {e}", ckpt_path.display())))?;
    let mut checkpoints_written = 0usize;
    let mut save = |cp: &ServiceCheckpoint| -> Result<(), String> {
        let payload = serde_json::to_string(cp).map_err(|e| e.to_string())?;
        snapshot
            .append_payload(&payload)
            .map_err(|e| e.to_string())?;
        checkpoints_written += 1;
        Ok(())
    };
    let (live, stats) = serve_checkpointed(
        inst,
        &mut queue,
        &cfg,
        plan.link_keep_prob(),
        &mut publisher,
        checkpoint_every,
        &mut save,
    )
    .map_err(io_err)?;
    drop(publisher);

    // ---- proof 1: the log replays to the byte-identical report ------
    let bytes = std::fs::read(&events_path)
        .map_err(|e| io_err(format!("cannot read back {}: {e}", events_path.display())))?;
    let replayed = replay_stream(inst, &bytes).map_err(io_err)?;
    let replay_identical = reports_identical(&live, &replayed.outcome).map_err(io_err)?;
    if !replay_identical {
        return Err(diverged(format!(
            "replay of {} diverged from the live report — event log is lossy",
            events_path.display()
        )));
    }
    if !replayed.complete {
        return Err(diverged(
            "fresh event stream is missing its StreamClosed trailer".to_string(),
        ));
    }

    // ---- proof 2: the lock-step runtime agrees ----------------------
    let lockstep = mcast_controller::run(inst, &plan, &cfg).map_err(CliError::Validation)?;
    if let Err(diff) = runtime_metrics_match(&live, &lockstep) {
        return Err(diverged(format!(
            "service disagrees with the lock-step runtime: {diff}"
        )));
    }

    // ---- proof 3: snapshot + log-suffix recovery is exact -----------
    let latest = load_payloads(&ckpt_path)
        .map_err(|e| io_err(format!("cannot read back {}: {e}", ckpt_path.display())))?
        .pop()
        .ok_or_else(|| {
            io_err(format!(
                "serve wrote no checkpoint frame to {} (cadence {checkpoint_every} over {} epochs)",
                ckpt_path.display(),
                cfg.n_epochs
            ))
        })?;
    let cp: ServiceCheckpoint = serde_json::from_str(&latest).map_err(|e| {
        io_err(format!(
            "bad checkpoint frame in {}: {e}",
            ckpt_path.display()
        ))
    })?;
    let recovered = replay_stream_from(inst, &cp, &bytes).map_err(io_err)?;
    let snapshot_recovery_identical =
        reports_identical(&live, &recovered.outcome).map_err(io_err)?;
    if !snapshot_recovery_identical {
        return Err(diverged(format!(
            "snapshot + suffix recovery from the epoch-{} checkpoint diverged from the live report",
            cp.epoch
        )));
    }

    let doc = ServeJson {
        schema: "mcast-serve/v1".to_string(),
        setup,
        stats: StatsJson::of(&stats),
        verification: Verification {
            replay_identical,
            replay_complete: replayed.complete,
            matches_runtime: true,
            snapshot_recovery_identical: Some(snapshot_recovery_identical),
            checkpoints_written,
            stream_bytes: bytes.len() as u64,
        },
        io_chaos: None,
        report: live.report.clone(),
    };
    let json =
        serde_json::to_string_pretty(&doc).map_err(|e| io_err(format!("serialize serve: {e}")))?;
    let serve_path = opts.out_dir.join("serve.json");
    atomic_write(&serve_path, json.as_bytes())
        .map_err(|e| io_err(format!("write {}: {e}", serve_path.display())))?;

    let r = &live.report;
    Ok(format!(
        "serve: {} epochs, {} joins + {} fault events -> {} events published \
         ({} bytes, crc32-framed)\n\
         admission: {:.0} joins/s sustained; decision latency p50 {:.1} µs, \
         p95 {:.1} µs, p99 {:.1} µs\n\
         disruption: {} (handoffs {}, coverage loss {} user-epochs), \
         final satisfied {}/{}, violations {}\n\
         verified: replay byte-identical; snapshot+suffix recovery byte-identical \
         ({} checkpoints); lock-step runtime metrics match\n\
         wrote {} and {}\n",
        r.n_epochs,
        stats.joins,
        stats.fault_events,
        stats.events_published,
        bytes.len(),
        stats.joins_per_sec,
        stats.decision_latency_us.p50,
        stats.decision_latency_us.p95,
        stats.decision_latency_us.p99,
        r.disruption,
        r.handoffs,
        r.coverage_loss_user_epochs,
        r.final_satisfied,
        doc.setup.n_users,
        r.invariant_violations,
        checkpoints_written,
        events_path.display(),
        serve_path.display(),
    ))
}

/// `repro serve --io-chaos SEED`: the same pinned run, but the primary
/// event log is written through a seeded [`IoFaultPlan`] and the
/// retry → spill → drop ladder ([`ResilientPublisher`]). Checkpointing
/// is off (a faulted sink cannot promise the byte positions checkpoints
/// record — `validate_io_chaos` rejects the combination up front), and
/// the self-verification changes shape: the primary log's committed
/// prefix concatenated with `events.spill.jsonl` must replay as one
/// gapless, byte-identical stream — **zero decisions lost**, no matter
/// what the fault plan did.
fn run_serve_io_chaos(opts: &Options, seed: u64) -> Result<String, CliError> {
    let (setup, scenario, plan) = prepare_serve(opts)?;
    let inst = &scenario.instance;
    let cfg = config_of(&setup);

    let mut queue = lower_plan(inst, &plan, &cfg).map_err(CliError::Validation)?;
    let events_path = opts.out_dir.join("events.jsonl");
    let spill_path = opts.out_dir.join("events.spill.jsonl");
    let _ = std::fs::remove_file(&spill_path); // stale spill from a previous run
    let fault_plan = Arc::new(IoFaultPlan::seeded(seed));
    let primary = JsonlPublisher::create_with_faults(&events_path, Some(fault_plan.clone()))
        .map_err(|e| io_err(format!("cannot open {}: {e}", events_path.display())))?;
    let spill_target = spill_path.clone();
    let mut publisher = ResilientPublisher::new(
        Box::new(primary),
        move || Ok(Box::new(JsonlPublisher::create(&spill_target)?) as Box<dyn EventPublisher>),
        RetryPolicy::default(),
    );
    let (live, stats) = serve_checkpointed(
        inst,
        &mut queue,
        &cfg,
        plan.link_keep_prob(),
        &mut publisher,
        0,
        &mut |_| Ok(()),
    )
    .map_err(io_err)?;
    let rung = publisher.rung();
    let degrade = publisher.report();
    drop(publisher);

    // ---- proof 1: primary prefix + spill is one gapless stream ------
    let primary_bytes = std::fs::read(&events_path)
        .map_err(|e| io_err(format!("cannot read back {}: {e}", events_path.display())))?;
    let head = replay_stream_bytes(&primary_bytes);
    let mut events = head.events;
    let mut spill_bytes_len = 0u64;
    if spill_path.exists() {
        let spill_bytes = std::fs::read(&spill_path)
            .map_err(|e| io_err(format!("cannot read back {}: {e}", spill_path.display())))?;
        spill_bytes_len = spill_bytes.len() as u64;
        let tail = replay_stream_bytes_from(&spill_bytes, events.len() as u64);
        events.extend(tail.events);
    }
    for (i, event) in events.iter().enumerate() {
        if event.seq != i as u64 {
            return Err(diverged(format!(
                "sequence gap under io-chaos: slot {i} carries seq {} — the degrade ladder \
                 let a decision slip between primary and spill",
                event.seq
            )));
        }
    }
    let decisions_lost = stats.events_published.saturating_sub(events.len() as u64);
    if decisions_lost > 0 || degrade.dropped > 0 {
        return Err(diverged(format!(
            "io-chaos run lost {decisions_lost} of {} decisions ({} counted drops) — \
             the stream has a gap",
            stats.events_published, degrade.dropped
        )));
    }
    let replay_complete = matches!(
        events.last().map(|e| &e.kind),
        Some(EventKind::StreamClosed { .. })
    );
    if !replay_complete {
        return Err(diverged(
            "io-chaos stream is missing its StreamClosed trailer".to_string(),
        ));
    }
    let folded = fold_events(inst, &events).map_err(diverged)?;
    let replay_identical = reports_identical(&live, &folded).map_err(io_err)?;
    if !replay_identical {
        return Err(diverged(
            "concatenated primary+spill replay diverged from the live report".to_string(),
        ));
    }

    // ---- proof 2: the fault plan never changed a decision -----------
    // Only provable when no epoch shed admission: a degraded sink
    // back-pressures batched admission (SHED_BATCH_CAP), so a shedding
    // run legitimately defers joins the lock-step runtime admits on
    // time. Shedding is itself deterministic in the seed, so that run
    // ends in a deterministic degraded report instead — never a silent
    // divergence.
    let matches_runtime = stats.backpressure_sheds == 0;
    if matches_runtime {
        let lockstep = mcast_controller::run(inst, &plan, &cfg).map_err(CliError::Validation)?;
        if let Err(diff) = runtime_metrics_match(&live, &lockstep) {
            return Err(diverged(format!(
                "io-chaos service disagrees with the lock-step runtime: {diff}"
            )));
        }
    }

    let doc = ServeJson {
        schema: "mcast-serve/v1".to_string(),
        setup,
        stats: StatsJson::of(&stats),
        verification: Verification {
            replay_identical,
            replay_complete,
            matches_runtime,
            snapshot_recovery_identical: None,
            checkpoints_written: 0,
            stream_bytes: primary_bytes.len() as u64 + spill_bytes_len,
        },
        io_chaos: Some(IoChaosJson {
            seed,
            rung: rung.label().to_string(),
            retries: degrade.retries,
            repairs: degrade.repairs,
            spilled: degrade.spilled,
            dropped: degrade.dropped,
            sync_failures: degrade.sync_failures,
            first_spilled_seq: degrade.first_spilled_seq,
            decisions_lost,
        }),
        report: live.report.clone(),
    };
    let json =
        serde_json::to_string_pretty(&doc).map_err(|e| io_err(format!("serialize serve: {e}")))?;
    let serve_path = opts.out_dir.join("serve.json");
    atomic_write(&serve_path, json.as_bytes())
        .map_err(|e| io_err(format!("write {}: {e}", serve_path.display())))?;

    let r = &live.report;
    Ok(format!(
        "serve --io-chaos {seed}: {} epochs, {} events published under injected IO faults\n\
         degrade ladder: rung {}, {} retries, {} repairs, {} spilled, {} dropped, \
         {} sync failures{}\n\
         0 decisions lost: primary prefix + spill replay gapless and byte-identical; {}\n\
         disruption: {} (handoffs {}), final satisfied {}/{}, violations {}\n\
         wrote {}{} and {}\n",
        r.n_epochs,
        stats.events_published,
        rung.label(),
        degrade.retries,
        degrade.repairs,
        degrade.spilled,
        degrade.dropped,
        degrade.sync_failures,
        match degrade.first_spilled_seq {
            Some(s) => format!(" (first spilled seq {s})"),
            None => String::new(),
        },
        if matches_runtime {
            "lock-step runtime metrics match".to_string()
        } else {
            format!(
                "deterministic degraded report ({} epochs shed admission under sink \
                 backpressure; lock-step comparison not applicable)",
                stats.backpressure_sheds
            )
        },
        r.disruption,
        r.handoffs,
        r.final_satisfied,
        doc.setup.n_users,
        r.invariant_violations,
        events_path.display(),
        if rung == DegradeRung::Primary {
            String::new()
        } else {
            format!(" + {}", spill_path.display())
        },
        serve_path.display(),
    ))
}

/// Byte-level identity of two outcomes: serialized report and final
/// association.
fn reports_identical(a: &ControllerOutcome, b: &ControllerOutcome) -> Result<bool, String> {
    let ja = serde_json::to_string(&a.report).map_err(|e| format!("serialize report: {e}"))?;
    let jb = serde_json::to_string(&b.report).map_err(|e| format!("serialize report: {e}"))?;
    Ok(ja == jb && a.association == b.association)
}

/// Checks the service outcome against the lock-step runtime's on every
/// disruption metric. The two are *not* byte-identical by design — the
/// service admits the population as epoch-0 join events, so its `joins`
/// counters are nonzero — but every metric the controller experiment
/// reports must agree exactly.
pub(crate) fn runtime_metrics_match(
    service: &ControllerOutcome,
    lockstep: &ControllerOutcome,
) -> Result<(), String> {
    let (s, l) = (&service.report, &lockstep.report);
    let checks: [(&str, u64, u64); 8] = [
        ("disruption", s.disruption, l.disruption),
        ("handoffs", s.handoffs, l.handoffs),
        (
            "coverage_loss_user_epochs",
            s.coverage_loss_user_epochs,
            l.coverage_loss_user_epochs,
        ),
        ("shed", s.shed, l.shed),
        ("readmitted", s.readmitted, l.readmitted),
        ("deferred", s.deferred, l.deferred),
        (
            "invariant_violations",
            s.invariant_violations,
            l.invariant_violations,
        ),
        ("work", s.work, l.work),
    ];
    for (name, sv, lv) in checks {
        if sv != lv {
            return Err(format!("{name}: service {sv} vs runtime {lv}"));
        }
    }
    if s.final_satisfied != l.final_satisfied {
        return Err(format!(
            "final_satisfied: service {} vs runtime {}",
            s.final_satisfied, l.final_satisfied
        ));
    }
    if s.reconvergence_epochs != l.reconvergence_epochs {
        return Err("reconvergence_epochs summaries differ".to_string());
    }
    if (s.final_max_load - l.final_max_load).abs() > 0.0
        || (s.final_total_load - l.final_total_load).abs() > 0.0
    {
        return Err("final loads differ".to_string());
    }
    if service.association != lockstep.association {
        return Err("final associations differ".to_string());
    }
    Ok(())
}

#[derive(Debug, Serialize)]
struct ReplayJson {
    schema: String,
    complete: bool,
    epochs_replayed: u64,
    /// The epoch of the `serve.ckpt` snapshot recovery started from;
    /// `None` when no usable snapshot existed and the whole log was
    /// folded.
    recovered_from_epoch: Option<u64>,
    dropped_bytes: u64,
    tail_reason: Option<String>,
    final_satisfied: usize,
    report: mcast_controller::ControllerReport,
}

/// The newest whole `serve.ckpt` frame whose byte position is still
/// covered by the surviving log, if any. A missing or empty snapshot
/// file, or one whose frames all point past a crash-truncated log,
/// simply means recovery folds the whole log.
fn usable_snapshot(
    ckpt_path: &std::path::Path,
    log_len: usize,
) -> Result<Option<ServiceCheckpoint>, String> {
    let payloads = load_payloads(ckpt_path)
        .map_err(|e| format!("cannot read {}: {e}", ckpt_path.display()))?;
    for payload in payloads.iter().rev() {
        let cp: ServiceCheckpoint = serde_json::from_str(payload)
            .map_err(|e| format!("bad checkpoint frame in {}: {e}", ckpt_path.display()))?;
        if cp.log_bytes as usize <= log_len {
            return Ok(Some(cp));
        }
    }
    Ok(None)
}

/// Runs `repro replay`: folds `<out>/events.jsonl` back into a report
/// using only `<out>/serve_setup.json` to rebuild the instance, and
/// writes `<out>/replay.json`. Torn tails (a killed `serve`) are not
/// errors — the reconstruction covers the fully-closed epoch prefix.
///
/// # Errors
///
/// Missing/corrupt setup file, missing log, or a structurally invalid
/// stream (wrong schema, instance mismatch) — all [`CliError::IoDecode`].
pub fn run_replay(opts: &Options) -> Result<String, CliError> {
    let setup_path = opts.out_dir.join("serve_setup.json");
    let setup_json = std::fs::read_to_string(&setup_path)
        .map_err(|e| io_err(format!("cannot read {}: {e}", setup_path.display())))?;
    let setup: ServeSetup = serde_json::from_str(&setup_json)
        .map_err(|e| io_err(format!("bad setup file {}: {e}", setup_path.display())))?;
    if setup.schema != SETUP_SCHEMA {
        return Err(io_err(format!(
            "setup schema {:?} is not {SETUP_SCHEMA:?}",
            setup.schema
        )));
    }

    let events_path = opts.out_dir.join("events.jsonl");
    let bytes = std::fs::read(&events_path)
        .map_err(|e| io_err(format!("cannot read {}: {e}", events_path.display())))?;
    let (scenario, _plan) = materialize(&setup);
    // Prefer snapshot + log-suffix recovery: restore the newest usable
    // `serve.ckpt` frame and fold only the bytes past its position. The
    // result is identical to folding the whole log (proven by `serve`'s
    // self-verification); only the recovery cost differs.
    let snapshot =
        usable_snapshot(&opts.out_dir.join("serve.ckpt"), bytes.len()).map_err(io_err)?;
    let recovered_from_epoch = snapshot.as_ref().map(|cp| cp.epoch);
    let ReplayOutcome {
        outcome,
        epochs_replayed,
        complete,
        dropped_bytes,
        tail_reason,
    } = match &snapshot {
        Some(cp) => replay_stream_from(&scenario.instance, cp, &bytes).map_err(io_err)?,
        None => replay_stream(&scenario.instance, &bytes).map_err(io_err)?,
    };

    let doc = ReplayJson {
        schema: "mcast-replay/v1".to_string(),
        complete,
        epochs_replayed,
        recovered_from_epoch,
        dropped_bytes,
        tail_reason,
        final_satisfied: outcome.report.final_satisfied,
        report: outcome.report,
    };
    let json =
        serde_json::to_string_pretty(&doc).map_err(|e| io_err(format!("serialize replay: {e}")))?;
    let replay_path = opts.out_dir.join("replay.json");
    atomic_write(&replay_path, json.as_bytes())
        .map_err(|e| io_err(format!("write {}: {e}", replay_path.display())))?;

    Ok(format!(
        "replay: {} of {} epochs reconstructed from {}{} ({})\n\
         final satisfied {}/{}, disruption {}, violations {}\n\
         wrote {}\n",
        doc.epochs_replayed,
        setup.n_epochs,
        events_path.display(),
        match doc.recovered_from_epoch {
            Some(e) => format!(" via the epoch-{e} snapshot + log suffix"),
            None => String::new(),
        },
        if doc.complete {
            "complete stream".to_string()
        } else {
            format!(
                "torn tail: {} bytes dropped{}",
                doc.dropped_bytes,
                doc.tail_reason
                    .as_deref()
                    .map(|r| format!(" — {r}"))
                    .unwrap_or_default()
            )
        },
        doc.final_satisfied,
        setup.n_users,
        doc.report.disruption,
        doc.report.invariant_violations,
        replay_path.display(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn out_dir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("mcast_serve_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn quick_serve_streams_verifies_and_replays() {
        let opts = Options {
            quick: true,
            out_dir: out_dir("quick"),
            ..Options::default()
        };
        let summary = run_serve(&opts).expect("serve succeeds");
        assert!(summary.contains("replay byte-identical"), "{summary}");
        assert!(
            summary.contains("snapshot+suffix recovery byte-identical"),
            "{summary}"
        );
        for f in [
            "serve_setup.json",
            "events.jsonl",
            "serve.ckpt",
            "serve.json",
        ] {
            assert!(opts.out_dir.join(f).exists(), "missing {f}");
        }

        // The standalone replay path rebuilds the instance from the
        // setup file alone, recovers from the snapshot + log suffix, and
        // agrees with the complete stream.
        let summary = run_replay(&opts).expect("replay succeeds");
        assert!(summary.contains("complete stream"), "{summary}");
        assert!(summary.contains("snapshot + log suffix"), "{summary}");
        assert!(opts.out_dir.join("replay.json").exists());
        let replay_json =
            std::fs::read_to_string(opts.out_dir.join("replay.json")).expect("readable");
        let v: serde_json::Value = serde_json::parse_value(&replay_json).expect("valid JSON");
        assert!(matches!(
            v.get("complete"),
            Some(serde_json::Value::Bool(true))
        ));
        let _ = std::fs::remove_dir_all(&opts.out_dir);
    }

    #[test]
    fn truncated_log_replays_to_a_closed_prefix() {
        let opts = Options {
            quick: true,
            out_dir: out_dir("torn"),
            ..Options::default()
        };
        run_serve(&opts).expect("serve succeeds");
        let events_path = opts.out_dir.join("events.jsonl");
        let bytes = std::fs::read(&events_path).unwrap();
        // Chop mid-stream: drop the last 40% of the file, tearing
        // whatever epoch was in flight.
        let cut = bytes.len() * 6 / 10;
        std::fs::write(&events_path, &bytes[..cut]).unwrap();

        let summary = run_replay(&opts).expect("torn tails are not errors");
        assert!(summary.contains("torn tail"), "{summary}");
        let replay_json =
            std::fs::read_to_string(opts.out_dir.join("replay.json")).expect("readable");
        let v: serde_json::Value = serde_json::parse_value(&replay_json).expect("valid JSON");
        assert!(matches!(
            v.get("complete"),
            Some(serde_json::Value::Bool(false))
        ));
        let setup = pinned_setup(true);
        let epochs = match v.get("epochs_replayed") {
            Some(serde_json::Value::Int(n)) => *n as u64,
            other => panic!("epochs_replayed missing: {other:?}"),
        };
        assert!(epochs < setup.n_epochs, "a 40% cut must lose epochs");
        let _ = std::fs::remove_dir_all(&opts.out_dir);
    }

    #[test]
    fn io_chaos_serve_loses_nothing_and_is_reproducible() {
        let opts = Options {
            quick: true,
            out_dir: out_dir("iochaos"),
            io_chaos: Some(7),
            ..Options::default()
        };
        let summary = run_serve(&opts).expect("io-chaos serve succeeds");
        assert!(summary.contains("0 decisions lost"), "{summary}");
        assert!(summary.contains("degrade ladder"), "{summary}");
        let serve_json =
            std::fs::read_to_string(opts.out_dir.join("serve.json")).expect("readable");
        let v: serde_json::Value = serde_json::parse_value(&serve_json).expect("valid JSON");
        let Some(serde_json::Value::Object(chaos)) = v.get("io_chaos") else {
            panic!("serve.json has no io_chaos section");
        };
        let field = |k: &str| chaos.iter().find(|(n, _)| n == k).map(|(_, val)| val);
        assert!(
            matches!(field("decisions_lost"), Some(serde_json::Value::Int(0))),
            "decisions_lost must be zero"
        );
        assert!(
            matches!(field("seed"), Some(serde_json::Value::Int(7))),
            "seed must round-trip"
        );

        // Identical seeds script identical faults at identical
        // operations, so the whole run — summary included — repeats.
        let rerun = run_serve(&opts).expect("io-chaos serve repeats");
        assert_eq!(summary, rerun, "seeded io-chaos runs must be deterministic");
        let _ = std::fs::remove_dir_all(&opts.out_dir);
    }

    #[test]
    fn setup_roundtrips_through_json() {
        let setup = pinned_setup(false);
        let json = serde_json::to_string(&setup).unwrap();
        let back: ServeSetup = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema, SETUP_SCHEMA);
        assert_eq!(back.n_aps, setup.n_aps);
        assert_eq!(back.n_epochs, setup.n_epochs);
        assert_eq!(back.policy, "repair");
    }
}
