//! The algorithm zoo the paper evaluates, behind one uniform interface.

use mcast_core::{
    run_distributed, solve_bla, solve_mla, solve_mnu, Association, DistributedConfig, Instance,
    Objective, Policy, Solution,
};
use mcast_exact::{optimal_bla, optimal_mla, optimal_mnu, SearchLimits};
use serde::{Deserialize, Serialize};

use crate::runner::TrialError;

/// An algorithm under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algo {
    /// Centralized MLA (greedy set cover).
    MlaC,
    /// Distributed MLA (min total-load rule, serial).
    MlaD,
    /// Centralized BLA (SCG via iterated MCG).
    BlaC,
    /// Distributed BLA (min sorted-load-vector rule, serial).
    BlaD,
    /// Centralized MNU (MCG greedy + partition).
    MnuC,
    /// Distributed MNU (min total-load rule with budgets, serial).
    MnuD,
    /// Strongest-signal association (the paper's baseline).
    Ssa,
    /// Certified-optimal MLA (branch-and-bound; Figure 12).
    OptMla,
    /// Certified-optimal BLA.
    OptBla,
    /// Certified-optimal MNU.
    OptMnu,
}

impl Algo {
    /// The label used in tables/CSV (matches the paper's legends).
    pub fn label(self) -> &'static str {
        match self {
            Algo::MlaC => "MLA-C",
            Algo::MlaD => "MLA-D",
            Algo::BlaC => "BLA-C",
            Algo::BlaD => "BLA-D",
            Algo::MnuC => "MNU-C",
            Algo::MnuD => "MNU-D",
            Algo::Ssa => "SSA",
            Algo::OptMla => "OPT",
            Algo::OptBla => "OPT",
            Algo::OptMnu => "OPT",
        }
    }
}

/// What one algorithm run produced. Serializable so completed trials can
/// be journaled and replayed on `--resume`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Measured {
    /// Users served.
    pub satisfied: usize,
    /// Users left without service.
    pub unsatisfied: usize,
    /// Realized total multicast load.
    pub total_load: f64,
    /// Realized maximum AP load.
    pub max_load: f64,
    /// For exact solvers: whether optimality was certified.
    pub proved_optimal: Option<bool>,
}

impl Measured {
    fn of(sol: &Solution, inst: &Instance, proved: Option<bool>) -> Measured {
        Measured {
            satisfied: sol.satisfied,
            unsatisfied: inst.n_users() - sol.satisfied,
            total_load: sol.total_load.as_f64(),
            max_load: sol.max_load.as_f64(),
            proved_optimal: proved,
        }
    }

    /// Extracts one metric as an f64.
    pub fn metric(&self, metric: Metric) -> f64 {
        match metric {
            Metric::TotalLoad => self.total_load,
            Metric::MaxLoad => self.max_load,
            Metric::Satisfied => self.satisfied as f64,
            Metric::Unsatisfied => self.unsatisfied as f64,
        }
    }
}

/// The y-axis quantity of a figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Sum of AP multicast loads (Figure 9, 12a).
    TotalLoad,
    /// Maximum AP multicast load (Figure 10, 12b).
    MaxLoad,
    /// Satisfied users (Figure 11).
    Satisfied,
    /// Unsatisfied users (Figure 12c).
    Unsatisfied,
}

impl Metric {
    /// Axis label.
    pub fn label(self) -> &'static str {
        match self {
            Metric::TotalLoad => "total AP load",
            Metric::MaxLoad => "max AP load",
            Metric::Satisfied => "satisfied users",
            Metric::Unsatisfied => "unsatisfied users",
        }
    }
}

/// Runs `algo` on `inst`, returning a typed error instead of panicking
/// when a full-coverage solver meets an uncoverable instance. The
/// generators guarantee coverage, so an error here means a genuinely bad
/// trial — the run orchestrator reports it and the sweep continues.
///
/// # Errors
///
/// [`TrialError::Failed`] when a solver rejects the instance.
pub fn try_run(algo: Algo, inst: &Instance, limits: SearchLimits) -> Result<Measured, TrialError> {
    let fail = |stage: &str, e: &dyn std::fmt::Display| {
        TrialError::failed(format!("{stage} ({}): {e}", algo.label()))
    };
    Ok(match algo {
        Algo::MlaC => {
            let sol = solve_mla(inst).map_err(|e| fail("solve_mla", &e))?;
            Measured::of(&sol, inst, None)
        }
        Algo::BlaC => {
            let sol = solve_bla(inst).map_err(|e| fail("solve_bla", &e))?;
            Measured::of(&sol, inst, None)
        }
        Algo::MnuC => {
            let sol = solve_mnu(inst);
            Measured::of(&sol, inst, None)
        }
        Algo::MlaD | Algo::MnuD => {
            let out = run_distributed(
                inst,
                &DistributedConfig::default(),
                Association::empty(inst.n_users()),
            );
            let sol = Solution::evaluate(
                if algo == Algo::MlaD {
                    Objective::Mla
                } else {
                    Objective::Mnu
                },
                out.association,
                inst,
                None,
            );
            Measured::of(&sol, inst, None)
        }
        Algo::BlaD => {
            let out = run_distributed(
                inst,
                &DistributedConfig {
                    policy: Policy::MinMaxVector,
                    ..DistributedConfig::default()
                },
                Association::empty(inst.n_users()),
            );
            let sol = Solution::evaluate(Objective::Bla, out.association, inst, None);
            Measured::of(&sol, inst, None)
        }
        Algo::Ssa => {
            let sol = mcast_core::solve_ssa(inst, Objective::Mla);
            Measured::of(&sol, inst, None)
        }
        Algo::OptMla => {
            let out = optimal_mla(inst, limits).map_err(|e| fail("optimal_mla", &e))?;
            Measured::of(&out.solution, inst, Some(out.proved_optimal))
        }
        Algo::OptBla => {
            let out = optimal_bla(inst, limits).map_err(|e| fail("optimal_bla", &e))?;
            Measured::of(&out.solution, inst, Some(out.proved_optimal))
        }
        Algo::OptMnu => {
            let out = optimal_mnu(inst, limits);
            Measured::of(&out.solution, inst, Some(out.proved_optimal))
        }
    })
}

/// Infallible wrapper over [`try_run`] for contexts that still treat an
/// uncoverable instance as a scenario-generation bug.
///
/// # Panics
///
/// Panics when [`try_run`] fails.
pub fn run(algo: Algo, inst: &Instance, limits: SearchLimits) -> Measured {
    match try_run(algo, inst, limits) {
        Ok(m) => m,
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_core::examples_paper::figure1_instance;
    use mcast_core::Kbps;

    #[test]
    fn all_algorithms_run_on_figure1() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        for algo in [
            Algo::MlaC,
            Algo::MlaD,
            Algo::BlaC,
            Algo::BlaD,
            Algo::MnuC,
            Algo::MnuD,
            Algo::Ssa,
            Algo::OptMla,
            Algo::OptBla,
            Algo::OptMnu,
        ] {
            let m = run(algo, &inst, SearchLimits::default());
            assert!(m.satisfied + m.unsatisfied == 5);
            assert!(m.total_load >= m.max_load);
            assert!(m.max_load >= 0.0);
        }
    }

    #[test]
    fn optimal_never_worse_than_greedy_on_figure1() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let limits = SearchLimits::default();
        assert!(
            run(Algo::OptMla, &inst, limits).total_load
                <= run(Algo::MlaC, &inst, limits).total_load + 1e-12
        );
        assert!(
            run(Algo::OptBla, &inst, limits).max_load
                <= run(Algo::BlaC, &inst, limits).max_load + 1e-12
        );
        let inst3 = figure1_instance(Kbps::from_mbps(3));
        assert!(
            run(Algo::OptMnu, &inst3, limits).satisfied
                >= run(Algo::MnuC, &inst3, limits).satisfied
        );
    }

    #[test]
    fn metric_extraction() {
        let m = Measured {
            satisfied: 3,
            unsatisfied: 2,
            total_load: 0.5,
            max_load: 0.3,
            proved_optimal: None,
        };
        assert_eq!(m.metric(Metric::TotalLoad), 0.5);
        assert_eq!(m.metric(Metric::MaxLoad), 0.3);
        assert_eq!(m.metric(Metric::Satisfied), 3.0);
        assert_eq!(m.metric(Metric::Unsatisfied), 2.0);
    }
}
