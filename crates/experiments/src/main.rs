//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <command> [--seeds N] [--out DIR] [--max-nodes N] [--quick] [--threads N]
//!
//! commands:
//!   table1      Table 1 (rate vs distance threshold) + staircase check
//!   fig9        Figure 9 a/b/c — total load (MLA-C, MLA-D, SSA)
//!   fig10       Figure 10 a/b/c — max load (BLA-C, BLA-D, SSA)
//!   fig11       Figure 11 — satisfied users vs budget (MNU-C, MNU-D, SSA)
//!   fig12       Figure 12 a/b/c — greedy vs certified optimum
//!   ablations   rate-policy / power / MNU-augment / model-vs-realized
//!   channels    §8 interference modeling: channel budget sweep
//!   mobility    quasi-static user movement: churn & repaired-load drift
//!   faults      fault injection: recovery after a coordinated AP outage
//!   controller  online controller: repair ladder vs full re-solve under faults
//!   serve       event-driven controller service; streams <out>/events.jsonl
//!               (--io-chaos SEED: seeded IO faults against the sink; the
//!               run must still lose zero decisions)
//!   replay      fold <out>/events.jsonl back into a report (no solvers)
//!   chaos       fault-injected partitioned run; proves recovery is exact
//!   revenue     the §3.2 revenue models across algorithms
//!   bench       time fast paths vs reference, write BENCH_*.json
//!               (--suite scale: million-user end-to-end pass -> BENCH_scale.json)
//!   gen/solve   write a scenario JSON / run one algorithm on it
//!   compare     diff two results/ CSV directories (regression check)
//!   validate    simulator vs analytic cross-checks
//!   all         everything above
//! ```

use std::process::ExitCode;
use std::time::Duration;

use mcast_experiments::cli::CliError;
use mcast_experiments::figures::{
    ablations, channels, controller, faults, fig10, fig11, fig12, fig9, mobility, revenue, table1,
    validate,
};
use mcast_experiments::report::{render_table, write_csv};
use mcast_experiments::runner::{RetryPolicy, Runner};
use mcast_experiments::stats::Figure;
use mcast_experiments::Options;

/// Prints a classified error and maps it to its distinct exit code
/// (usage 2, validation 3, IO/decode 4, divergence 5) so scripts can
/// branch on *why* the run failed. Exit 1 stays reserved for
/// `compare`'s flagged-regressions outcome.
fn fail(e: CliError) -> ExitCode {
    eprintln!("{e}");
    ExitCode::from(e.exit_code() as u8)
}

/// Boundary shim for subsystems still reporting plain-string errors:
/// everything they surface is an IO/runtime failure, never bad usage.
fn fail_io(e: String) -> ExitCode {
    fail(CliError::IoDecode(e))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else {
        eprintln!("usage: repro <table1|fig9|fig10|fig11|fig12|ablations|channels|mobility|faults|controller|serve|replay|chaos|revenue|bench|validate|all|gen|solve|compare> [--seeds N] [--out DIR] [--max-nodes N] [--quick] [--plot] [--resume] [--retries N] [--deadline SECS] [--threads N] [--chaos SEED] [--checkpoint-every K] [--suite NAME] [--io-chaos SEED]");
        return ExitCode::from(2);
    };
    let mut opts = Options::default();
    let mut plot = false;
    let mut threads: Option<usize> = None;
    let mut i = 1;
    // `gen` and `solve` own their argument grammar (positional paths).
    let generic_flags = !matches!(command.as_str(), "gen" | "solve" | "compare");
    while generic_flags && i < args.len() {
        match args[i].as_str() {
            "--seeds" => {
                i += 1;
                opts.seeds = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| bad_flag("--seeds"));
            }
            "--out" => {
                i += 1;
                opts.out_dir = args
                    .get(i)
                    .map(std::path::PathBuf::from)
                    .unwrap_or_else(|| bad_flag("--out"));
            }
            "--max-nodes" => {
                i += 1;
                opts.max_nodes = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| bad_flag("--max-nodes"));
            }
            "--quick" => opts.quick = true,
            "--plot" => plot = true,
            "--resume" => opts.resume = true,
            "--retries" => {
                i += 1;
                opts.retries = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| bad_flag("--retries"));
            }
            "--deadline" => {
                i += 1;
                opts.deadline_s = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| bad_flag("--deadline"));
            }
            "--threads" => {
                i += 1;
                threads = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| bad_flag("--threads")),
                );
            }
            "--chaos" => {
                i += 1;
                opts.chaos_seed = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| bad_flag("--chaos")),
                );
            }
            "--checkpoint-every" => {
                i += 1;
                opts.checkpoint_every = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| bad_flag("--checkpoint-every")),
                );
            }
            "--suite" => {
                i += 1;
                opts.bench_suite =
                    Some(args.get(i).cloned().unwrap_or_else(|| bad_flag("--suite")));
            }
            "--io-chaos" => {
                i += 1;
                opts.io_chaos = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| bad_flag("--io-chaos")),
                );
            }
            other => {
                eprintln!("unknown flag: {other}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    // Apply the quick cap only after every flag is parsed, so the cap wins
    // regardless of flag order (`--quick --seeds 100` used to get 100).
    if opts.quick {
        opts.seeds = opts.seeds.min(5);
    }
    // A flag the command would silently ignore is a typo, not a no-op.
    if generic_flags {
        if let Err(e) = mcast_experiments::cli::validate_flags(&command, plot, opts.resume) {
            return fail(e.into());
        }
        if let Err(e) = mcast_experiments::cli::validate_threads(&command, threads) {
            return fail(e.into());
        }
        if let Err(e) = mcast_experiments::cli::validate_recovery_flags(
            &command,
            opts.chaos_seed.is_some(),
            opts.checkpoint_every,
        ) {
            return fail(e.into());
        }
        if let Err(e) =
            mcast_experiments::cli::validate_suite(&command, opts.bench_suite.as_deref())
        {
            return fail(e.into());
        }
        if let Err(e) = mcast_experiments::cli::validate_io_chaos(
            &command,
            opts.io_chaos,
            opts.checkpoint_every,
        ) {
            return fail(e.into());
        }
        if let Some(n) = threads {
            opts.threads = n;
            mcast_experiments::par::set_workers(n);
        }
    }

    // Sweep commands run under an orchestrator with a journal in
    // `<out>/.runstate/`; one-shot commands don't need one.
    let sweeping = matches!(
        command.as_str(),
        "fig9"
            | "fig10"
            | "fig11"
            | "fig12"
            | "ablations"
            | "channels"
            | "mobility"
            | "faults"
            | "controller"
            | "revenue"
            | "all"
    );
    let runner = if sweeping {
        let journal_path = opts.out_dir.join(".runstate").join("journal.jsonl");
        let policy = RetryPolicy {
            max_attempts: opts.retries.max(1),
            ..RetryPolicy::default()
        };
        let deadline = Duration::from_secs(opts.deadline_s);
        match Runner::with_journal(&journal_path, opts.resume, policy, deadline) {
            Ok(r) => r,
            Err(e) => {
                // An unusable journal degrades durability, not the run:
                // compute everything, just without checkpoint/resume.
                eprintln!(
                    "warning: no journal at {} ({e}); running without checkpoints",
                    journal_path.display()
                );
                Runner::ephemeral()
            }
        }
    } else {
        Runner::ephemeral()
    };

    let run_figs = |figs: Vec<Figure>, opts: &Options| {
        for fig in figs {
            print!("{}", render_table(&fig));
            if plot {
                println!("{}", mcast_experiments::plot::render_ascii(&fig, 64, 16));
            }
            if let Err(e) = write_csv(&fig, &opts.out_dir) {
                eprintln!("warning: failed to write CSV for {}: {e}", fig.id);
            }
        }
    };

    match command.as_str() {
        "table1" => print!("{}", table1::run()),
        "fig9" => run_figs(fig9::run(&opts, &runner), &opts),
        "fig10" => run_figs(fig10::run(&opts, &runner), &opts),
        "fig11" => run_figs(fig11::run(&opts, &runner), &opts),
        "fig12" => run_figs(fig12::run(&opts, &runner), &opts),
        "ablations" => run_figs(ablations::run(&opts, &runner), &opts),
        "channels" => run_figs(channels::run(&opts, &runner), &opts),
        "mobility" => run_figs(mobility::run(&opts, &runner), &opts),
        "faults" => {
            let json = faults::run(&opts, &runner);
            write_faults_json(&json, &opts);
            println!("{json}");
        }
        "controller" => {
            let json = controller::run(&opts, &runner);
            write_json_result("controller.json", &json, &opts);
            println!("{json}");
        }
        "serve" => match mcast_experiments::serve::run_serve(&opts) {
            Ok(summary) => print!("{summary}"),
            Err(e) => return fail(e),
        },
        "replay" => match mcast_experiments::serve::run_replay(&opts) {
            Ok(summary) => print!("{summary}"),
            Err(e) => return fail(e),
        },
        "chaos" => match mcast_experiments::chaos::run_chaos(&opts) {
            Ok(summary) => print!("{summary}"),
            Err(e) => return fail(e),
        },
        "revenue" => run_figs(revenue::run(&opts, &runner), &opts),
        "bench" => match mcast_experiments::bench::run(&opts) {
            Ok(summary) => print!("{summary}"),
            Err(e) => return fail_io(e),
        },
        "gen" => {
            // repro gen <out.json|out.mcb> [--seed N] [--aps N] [--users N]
            //                              [--sessions N] [--budget PERMILLE]
            //                              [--legacy-dense]
            let mut gen_opts = mcast_experiments::cli::GenOptions::default();
            let mut out = None;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--seed" => {
                        i += 1;
                        gen_opts.seed = parse_num(&args, i);
                    }
                    "--aps" => {
                        i += 1;
                        gen_opts.aps = parse_num(&args, i) as usize;
                    }
                    "--users" => {
                        i += 1;
                        gen_opts.users = parse_num(&args, i) as usize;
                    }
                    "--sessions" => {
                        i += 1;
                        gen_opts.sessions = parse_num(&args, i) as usize;
                    }
                    "--budget" => {
                        i += 1;
                        gen_opts.budget_permille = parse_num(&args, i) as u32;
                    }
                    "--legacy-dense" => gen_opts.legacy_dense = true,
                    other if out.is_none() => out = Some(std::path::PathBuf::from(other)),
                    other => {
                        eprintln!("unknown flag: {other}");
                        return ExitCode::from(2);
                    }
                }
                i += 1;
            }
            let Some(out) = out else {
                eprintln!("usage: repro gen <out.json|out.mcb> [--seed N] [--aps N] [--users N] [--sessions N] [--budget PERMILLE] [--legacy-dense]");
                return ExitCode::from(2);
            };
            if let Err(e) = mcast_experiments::cli::generate_to_file(&gen_opts, &out) {
                return fail(e);
            }
            return ExitCode::SUCCESS;
        }
        "compare" => {
            // repro compare <dirA> <dirB> [--tol FRACTION]
            let mut dirs: Vec<std::path::PathBuf> = Vec::new();
            let mut tol = 0.05f64;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--tol" => {
                        i += 1;
                        tol = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(0.05);
                    }
                    other => dirs.push(std::path::PathBuf::from(other)),
                }
                i += 1;
            }
            if dirs.len() != 2 {
                eprintln!("usage: repro compare <dirA> <dirB> [--tol FRACTION]");
                return ExitCode::from(2);
            }
            match mcast_experiments::cli::compare_results(&dirs[0], &dirs[1], tol) {
                // Exit 1 means "compared fine, regressions flagged" —
                // deliberately distinct from every CliError code.
                Ok(0) => return ExitCode::SUCCESS,
                Ok(_) => return ExitCode::FAILURE,
                Err(e) => return fail_io(e),
            }
        }
        "solve" => {
            // repro solve <scenario.json> --algo NAME [--assoc-out FILE]
            let mut file = None;
            let mut algo = None;
            let mut assoc_out = None;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--algo" => {
                        i += 1;
                        algo = args.get(i).cloned();
                    }
                    "--assoc-out" => {
                        i += 1;
                        assoc_out = args.get(i).map(std::path::PathBuf::from);
                    }
                    other if file.is_none() => file = Some(std::path::PathBuf::from(other)),
                    other => {
                        eprintln!("unknown flag: {other}");
                        return ExitCode::from(2);
                    }
                }
                i += 1;
            }
            let (Some(file), Some(algo)) = (file, algo) else {
                eprintln!("usage: repro solve <scenario.json> --algo <ssa|mla|mla-pd|mla-d|bla|bla-d|mnu|mnu-d|opt-mla|opt-bla|opt-mnu> [--assoc-out FILE]");
                return ExitCode::from(2);
            };
            if let Err(e) = mcast_experiments::cli::solve_file(&file, &algo, assoc_out.as_deref()) {
                return fail(e);
            }
            return ExitCode::SUCCESS;
        }
        "validate" => print!("{}", validate::run(&opts)),
        "all" => {
            print!("{}", table1::run());
            run_figs(fig9::run(&opts, &runner), &opts);
            run_figs(fig10::run(&opts, &runner), &opts);
            run_figs(fig11::run(&opts, &runner), &opts);
            run_figs(fig12::run(&opts, &runner), &opts);
            run_figs(ablations::run(&opts, &runner), &opts);
            run_figs(channels::run(&opts, &runner), &opts);
            run_figs(mobility::run(&opts, &runner), &opts);
            {
                let json = faults::run(&opts, &runner);
                write_faults_json(&json, &opts);
                println!("{json}");
            }
            {
                let json = controller::run(&opts, &runner);
                write_json_result("controller.json", &json, &opts);
                println!("{json}");
            }
            run_figs(revenue::run(&opts, &runner), &opts);
            print!("{}", validate::run(&opts));
        }
        other => {
            eprintln!("unknown command: {other}");
            return ExitCode::from(2);
        }
    }
    if sweeping {
        write_run_report(&runner, &opts);
    }
    ExitCode::SUCCESS
}

/// Prints the run accounting to stderr and persists it under
/// `.runstate/` (runtime state — never part of the results diff).
fn write_run_report(runner: &Runner, opts: &Options) {
    let report = runner.report();
    let rendered = report.render();
    if !rendered.is_empty() {
        eprint!("{rendered}");
    }
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            let path = opts.out_dir.join(".runstate").join("report.json");
            if let Err(e) = mcast_experiments::journal::atomic_write(&path, json.as_bytes()) {
                eprintln!("warning: failed to write {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("warning: failed to serialize run report: {e}"),
    }
}

fn write_faults_json(json: &str, opts: &Options) {
    write_json_result("faults.json", json, opts);
}

fn write_json_result(name: &str, json: &str, opts: &Options) {
    let path = opts.out_dir.join(name);
    if let Err(e) = mcast_experiments::journal::atomic_write(&path, json.as_bytes()) {
        eprintln!("warning: failed to write {}: {e}", path.display());
    }
}

fn parse_num(args: &[String], i: usize) -> u64 {
    args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("expected a number after {}", args[i.saturating_sub(1)]);
        std::process::exit(2)
    })
}

fn bad_flag(flag: &str) -> ! {
    eprintln!("{flag} requires a value");
    std::process::exit(2)
}
