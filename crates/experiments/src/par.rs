//! Deterministic data parallelism on scoped threads.
//!
//! The sweep harness runs many independent (seed, algorithm) trials; rayon
//! is not vendored, but `std::thread::scope` needs no dependencies. The one
//! rule: results must come back **in input order**, so that every
//! downstream float accumulation (`Summary::of`, averages, CSV rows)
//! happens in exactly the serial order and the emitted bytes stay
//! identical to a single-threaded run.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Process-wide worker-count override set by `--threads N`; 0 means
/// "auto" (available parallelism, capped).
static WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Upper bound on the auto-detected pool size: sweep trials are
/// memory-bound past a handful of cores, and an unbounded pool on a
/// many-core box mostly thrashes the allocator.
const AUTO_CAP: usize = 8;

/// Sets the process-wide worker count used by [`parallel_map`] /
/// [`try_parallel_map`] and the partitioned bench drivers. `0` restores
/// the default (available parallelism, capped at 8). Plumbed from the
/// `--threads N` CLI flag.
pub fn set_workers(n: usize) {
    WORKERS.store(n, Ordering::Relaxed);
}

/// The effective worker count: the [`set_workers`] override if set,
/// otherwise available parallelism capped at 8 (never 0).
pub fn workers() -> usize {
    match WORKERS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(AUTO_CAP),
        n => n,
    }
}

/// Applies `f` to every item on a pool of scoped worker threads and
/// returns the results **in input order**, with every call isolated by
/// [`catch_unwind`]: element `i` is `Ok(f(&items[i]))`, or `Err(panic
/// message)` when that call panicked. A poisoned item never tears down
/// the pool — the remaining items still complete.
///
/// Work is distributed by an atomic cursor (dynamic load balancing, so a
/// slow seed does not stall a whole stripe). Falls back to a plain serial
/// map when there is one item or one core.
pub fn try_parallel_map<T, U, F>(items: &[T], f: F) -> Vec<Result<U, String>>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let guarded = |item: &T| {
        catch_unwind(AssertUnwindSafe(|| f(item))).map_err(|payload| {
            if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            }
        })
    };

    let n = items.len();
    let workers = workers().min(n);
    if workers <= 1 {
        return items.iter().map(guarded).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Result<U, String>)>();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let guarded = &guarded;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                if tx.send((i, guarded(&items[i]))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<Result<U, String>>> = (0..n).map(|_| None).collect();
        for (i, u) in rx {
            debug_assert!(slots[i].is_none());
            slots[i] = Some(u);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index is computed exactly once"))
            .collect()
    })
}

/// [`try_parallel_map`] for infallible maps: results in input order, a
/// panic in any call re-raised on the caller thread *after* the pool has
/// drained (so sibling items are never lost to someone else's bug).
///
/// # Panics
///
/// Propagates the first panic from `f` (by input order).
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    try_parallel_map(items, f)
        .into_iter()
        .map(|r| r.unwrap_or_else(|msg| panic!("parallel_map worker panicked: {msg}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn matches_serial_float_accumulation() {
        let items: Vec<f64> = (0..257).map(|i| (i as f64).sin()).collect();
        let par: Vec<f64> = parallel_map(&items, |&x| x.exp());
        let ser: Vec<f64> = items.iter().map(|&x| x.exp()).collect();
        // Bitwise equality, not approximate: ordering is the whole point.
        assert!(par
            .iter()
            .zip(&ser)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(parallel_map::<u8, u8, _>(&[], |&x| x), Vec::<u8>::new());
        assert_eq!(parallel_map(&[7u8], |&x| x + 1), vec![8u8]);
    }

    #[test]
    fn uneven_work_still_ordered() {
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, |&x| {
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn poisoned_item_does_not_tear_down_the_pool() {
        let items: Vec<u64> = (0..64).collect();
        let out = try_parallel_map(&items, |&x| {
            assert!(x != 13, "poisoned seed {x}");
            x * 2
        });
        for (i, r) in out.iter().enumerate() {
            if i == 13 {
                assert!(r.as_ref().is_err_and(|m| m.contains("poisoned seed 13")));
            } else {
                assert_eq!(*r.as_ref().unwrap(), (i as u64) * 2);
            }
        }
    }

    #[test]
    fn workers_override_round_trips() {
        // Note: tests in this binary run concurrently; use values that
        // keep results correct either way (order is guaranteed by design).
        set_workers(3);
        assert_eq!(workers(), 3);
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x + 1);
        assert_eq!(out, items.iter().map(|&x| x + 1).collect::<Vec<_>>());
        set_workers(0);
        let w = workers();
        assert!((1..=8).contains(&w), "auto workers out of range: {w}");
    }

    #[test]
    #[should_panic(expected = "parallel_map worker panicked")]
    fn parallel_map_reraises_worker_panics() {
        let items: Vec<u64> = (0..8).collect();
        let _ = parallel_map(&items, |&x| {
            assert!(x != 3, "bad item");
            x
        });
    }
}
