//! Deterministic data parallelism on scoped threads.
//!
//! The sweep harness runs many independent (seed, algorithm) trials; rayon
//! is not vendored, but `std::thread::scope` needs no dependencies. The one
//! rule: results must come back **in input order**, so that every
//! downstream float accumulation (`Summary::of`, averages, CSV rows)
//! happens in exactly the serial order and the emitted bytes stay
//! identical to a single-threaded run.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Applies `f` to every item on a pool of scoped worker threads and
/// returns the results **in input order** — element `i` of the output is
/// `f(&items[i])` regardless of which worker computed it or when.
///
/// Work is distributed by an atomic cursor (dynamic load balancing, so a
/// slow seed does not stall a whole stripe). Falls back to a plain serial
/// map when there is one item or one core.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, U)>();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                if tx.send((i, f(&items[i]))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<U>> = (0..n).map(|_| None).collect();
        for (i, u) in rx {
            debug_assert!(slots[i].is_none());
            slots[i] = Some(u);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index is computed exactly once"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn matches_serial_float_accumulation() {
        let items: Vec<f64> = (0..257).map(|i| (i as f64).sin()).collect();
        let par: Vec<f64> = parallel_map(&items, |&x| x.exp());
        let ser: Vec<f64> = items.iter().map(|&x| x.exp()).collect();
        // Bitwise equality, not approximate: ordering is the whole point.
        assert!(par
            .iter()
            .zip(&ser)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(parallel_map::<u8, u8, _>(&[], |&x| x), Vec::<u8>::new());
        assert_eq!(parallel_map(&[7u8], |&x| x + 1), vec![8u8]);
    }

    #[test]
    fn uneven_work_still_ordered() {
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, |&x| {
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x
        });
        assert_eq!(out, items);
    }
}
