//! `repro chaos` — fault-injected partitioned runs proving exact
//! recovery.
//!
//! The command runs the supervised partitioned engine
//! ([`mcast_core::run_distributed_supervised`]) on a pinned scenario
//! under a seeded [`ChaosPlan`] — worker panics, dropped/duplicated/
//! delayed halo replies, torn checkpoint writes — while writing recovery
//! snapshots to `<out>/chaos_<mode>.ckpt` (crc32-framed, the journal
//! format). It then proves the robustness contract end to end: the
//! recovered outcome **and the full decision trace** must be
//! byte-identical to the fault-free single-threaded oracle
//! ([`mcast_core::run_distributed_traced`]); any divergence is a hard
//! error.
//!
//! `--resume` is the crash-recovery path: it loads the latest whole
//! checkpoint frame (torn tails truncated), resumes the run from it
//! ([`mcast_core::resume_distributed_supervised`]), and holds the
//! resumed run to the *same* identity bar. `<out>/chaos.json` contains
//! only deterministic fields, so a killed-and-resumed run diffs clean
//! against an uninterrupted one.

use std::collections::BTreeMap;
use std::time::Duration;

use mcast_core::{
    resume_distributed_supervised, run_distributed_supervised, run_distributed_traced, Association,
    ChaosPlan, DistributedConfig, ExecutionMode, Policy, SuperviseOptions,
};
use mcast_events::{load_latest_checkpoint, PartitionCheckpointSink};
use mcast_topology::{tile_partition, ScenarioConfig};
use serde::Serialize;

use crate::cli::CliError;
use crate::journal::atomic_write;
use crate::Options;

/// Schema tag of `chaos.json`.
pub const CHAOS_SCHEMA: &str = "mcast-chaos/v1";

/// Default checkpoint cadence (rounds) when `--checkpoint-every` is not
/// given: every round, so a kill at any point loses at most one round.
const DEFAULT_CHECKPOINT_EVERY: usize = 1;

/// One supervised case of the chaos run, as serialized into
/// `chaos.json`. Every field is a pure function of the scenario, the
/// config, and the chaos seed — never of wall-clock, kill timing, or
/// whether the run was resumed — so the file is diffable across
/// interrupted and uninterrupted runs.
#[derive(Debug, Serialize)]
struct CaseJson {
    /// Execution mode of the case.
    mode: String,
    /// Rounds the engine ran.
    rounds: usize,
    /// Total accepted moves.
    moves: usize,
    /// Whether the run converged inside the round cap.
    converged: bool,
    /// Whether a decision cycle was detected.
    cycle_detected: bool,
    /// Users satisfied by the final association.
    satisfied: usize,
    /// Length of the decision trace.
    trace_moves: usize,
    /// The recovered run matched the fault-free oracle byte for byte
    /// (association, counters, and full decision trace).
    outputs_identical: bool,
}

#[derive(Debug, Serialize)]
struct ChaosJson {
    schema: String,
    quick: bool,
    chaos_seed: u64,
    n_aps: usize,
    n_users: usize,
    n_sessions: usize,
    workers: usize,
    max_rounds: usize,
    checkpoint_every: usize,
    cases: BTreeMap<String, CaseJson>,
}

/// The pinned chaos workload. Quick mode is smoke-scale and exercises
/// both execution modes; the full shape is sized so the supervised run
/// takes long enough for CI's kill -9 to land mid-run, and sticks to
/// Simultaneous (the mode with per-tile quarantine recovery).
struct ChaosShape {
    n_aps: usize,
    n_users: usize,
    n_sessions: usize,
    side_m: f64,
    workers: usize,
    max_rounds: usize,
    modes: &'static [(&'static str, ExecutionMode)],
}

fn pinned_shape(quick: bool) -> ChaosShape {
    if quick {
        ChaosShape {
            n_aps: 24,
            n_users: 96,
            n_sessions: 3,
            side_m: 380.0,
            workers: 4,
            max_rounds: 30,
            modes: &[
                ("serial", ExecutionMode::Serial),
                ("simultaneous", ExecutionMode::Simultaneous),
            ],
        }
    } else {
        // Paper AP density (~6000 m² per AP), like the bench workloads.
        ChaosShape {
            n_aps: 600,
            n_users: 24_000,
            n_sessions: 5,
            side_m: 1_897.0,
            workers: 8,
            max_rounds: 10,
            modes: &[("simultaneous", ExecutionMode::Simultaneous)],
        }
    }
}

/// Runs `repro chaos`: the fault-injected supervised engine on the
/// pinned scenario, checkpointing to `<out>/chaos_<mode>.ckpt` and
/// writing the deterministic `<out>/chaos.json`. With `--resume`, the
/// run restarts from the latest whole checkpoint frame instead of from
/// scratch.
///
/// # Errors
///
/// I/O failures and checkpoint corruption the framing cannot recover
/// from surface as [`CliError::IoDecode`]; a recovered run that is
/// **not** byte-identical to the fault-free oracle — the point of the
/// command — is [`CliError::Divergence`].
pub fn run_chaos(opts: &Options) -> Result<String, CliError> {
    let io_err = |m: String| CliError::IoDecode(m);
    let shape = pinned_shape(opts.quick);
    let seed = opts.chaos_seed.unwrap_or(0);
    let checkpoint_every = opts.checkpoint_every.unwrap_or(DEFAULT_CHECKPOINT_EVERY);
    std::fs::create_dir_all(&opts.out_dir)
        .map_err(|e| io_err(format!("cannot create {}: {e}", opts.out_dir.display())))?;

    let scenario = ScenarioConfig {
        n_aps: shape.n_aps,
        n_users: shape.n_users,
        n_sessions: shape.n_sessions,
        width_m: shape.side_m,
        height_m: shape.side_m,
        ..ScenarioConfig::paper_default()
    }
    .with_seed(0)
    .generate();
    let inst = &scenario.instance;
    let part = tile_partition(&scenario, shape.workers);

    let mut cases = BTreeMap::new();
    let mut summary = String::new();
    for &(key, mode) in shape.modes {
        let config = DistributedConfig {
            policy: Policy::MinMaxVector,
            mode,
            max_rounds: shape.max_rounds,
            ..DistributedConfig::default()
        };
        let initial = Association::empty(inst.n_users());

        // The fault-free oracle: the single-threaded engine's outcome
        // and decision trace ARE the specification of the recovered run.
        let (oracle, oracle_trace) = run_distributed_traced(inst, &config, initial.clone());

        // Faults land only in rounds the run executes, so every seed
        // injects something.
        let plan = ChaosPlan::seeded(seed, shape.workers, oracle.rounds.max(1) as u32);

        let ckpt_path = opts.out_dir.join(format!("chaos_{key}.ckpt"));
        let (sink, restored) = if opts.resume {
            let restored = load_latest_checkpoint(&ckpt_path).map_err(|e| io_err(e.to_string()))?;
            let sink = PartitionCheckpointSink::open_append(&ckpt_path)
                .map_err(|e| io_err(e.to_string()))?;
            (sink, restored)
        } else {
            let sink =
                PartitionCheckpointSink::create(&ckpt_path).map_err(|e| io_err(e.to_string()))?;
            (sink, None)
        };
        let sup_opts = SuperviseOptions {
            deadline: Some(Duration::from_millis(500)),
            checkpoint_every: Some(checkpoint_every),
            trace: true,
            audit: opts.quick,
            chaos: Some(&plan),
            sink: Some(&sink),
            ..SuperviseOptions::default()
        };
        let resumed_from = restored.as_ref().map(|cp| cp.round);
        let out = match &restored {
            Some(cp) => resume_distributed_supervised(inst, &config, &part, cp, &sup_opts),
            None => run_distributed_supervised(inst, &config, initial, &part, &sup_opts),
        }
        .map_err(|e| io_err(format!("supervised run ({key}): {e}")))?;

        let identical = out.outcome.association == oracle.association
            && out.outcome.rounds == oracle.rounds
            && out.outcome.moves == oracle.moves
            && out.outcome.converged == oracle.converged
            && out.outcome.cycle_detected == oracle.cycle_detected
            && out.trace == oracle_trace;
        if !identical {
            return Err(CliError::Divergence(format!(
                "chaos run ({key}) diverged from the fault-free oracle: \
                 rounds {}/{}, moves {}/{}, trace {}/{} — recovery is not exact",
                out.outcome.rounds,
                oracle.rounds,
                out.outcome.moves,
                oracle.moves,
                out.trace.len(),
                oracle_trace.len(),
            )));
        }

        let r = &out.recovery;
        summary.push_str(&format!(
            "chaos [{key}]: {} rounds, {} moves, {} injected ops -> \
             {} failures, {} retries, quarantined {:?}, degraded at {:?}\n\
             checkpoints: {} written to {} ({} errors){}\n\
             verified: outcome and decision trace byte-identical to the fault-free run\n",
            out.outcome.rounds,
            out.outcome.moves,
            plan.ops().len(),
            r.failures.len(),
            r.retries,
            r.quarantined,
            r.degraded_at_round,
            r.checkpoints_written,
            ckpt_path.display(),
            r.checkpoint_errors,
            match resumed_from {
                Some(round) => format!("; resumed from the round-{round} checkpoint"),
                None => String::new(),
            },
        ));
        cases.insert(
            key.to_string(),
            CaseJson {
                mode: format!("{mode:?}"),
                rounds: out.outcome.rounds,
                moves: out.outcome.moves,
                converged: out.outcome.converged,
                cycle_detected: out.outcome.cycle_detected,
                satisfied: out.outcome.association.satisfied_count(),
                trace_moves: out.trace.len(),
                outputs_identical: identical,
            },
        );
    }

    let doc = ChaosJson {
        schema: CHAOS_SCHEMA.to_string(),
        quick: opts.quick,
        chaos_seed: seed,
        n_aps: shape.n_aps,
        n_users: shape.n_users,
        n_sessions: shape.n_sessions,
        workers: shape.workers,
        max_rounds: shape.max_rounds,
        checkpoint_every,
        cases,
    };
    let json =
        serde_json::to_string_pretty(&doc).map_err(|e| io_err(format!("serialize chaos: {e}")))?;
    let json_path = opts.out_dir.join("chaos.json");
    atomic_write(&json_path, json.as_bytes())
        .map_err(|e| io_err(format!("write {}: {e}", json_path.display())))?;
    summary.push_str(&format!("wrote {}\n", json_path.display()));
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn out_dir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("mcast_chaos_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn quick_chaos_recovers_identically_and_resumes() {
        let opts = Options {
            quick: true,
            out_dir: out_dir("quick"),
            chaos_seed: Some(7),
            ..Options::default()
        };
        let summary = run_chaos(&opts).expect("chaos run succeeds");
        assert!(summary.contains("byte-identical"), "{summary}");
        let fresh = std::fs::read_to_string(opts.out_dir.join("chaos.json")).unwrap();
        let v: serde_json::Value = serde_json::parse_value(&fresh).unwrap();
        let Some(serde_json::Value::Object(cases)) = v.get("cases") else {
            panic!("chaos.json has no cases object");
        };
        assert_eq!(cases.len(), 2, "quick mode runs both execution modes");
        for (key, case) in cases {
            assert!(
                matches!(
                    case.get("outputs_identical"),
                    Some(serde_json::Value::Bool(true))
                ),
                "case {key} not identical"
            );
        }

        // The recovery path: resume from the latest on-disk checkpoint.
        // The re-derived chaos.json must be byte-identical to the
        // uninterrupted run's.
        let resumed_opts = Options {
            resume: true,
            ..opts.clone()
        };
        let summary = run_chaos(&resumed_opts).expect("resumed chaos run succeeds");
        assert!(summary.contains("resumed from the round-"), "{summary}");
        let resumed = std::fs::read_to_string(opts.out_dir.join("chaos.json")).unwrap();
        assert_eq!(fresh, resumed, "resume must be outcome-neutral");
        let _ = std::fs::remove_dir_all(&opts.out_dir);
    }

    #[test]
    fn truncated_checkpoint_file_still_resumes_identically() {
        let opts = Options {
            quick: true,
            out_dir: out_dir("torn"),
            chaos_seed: Some(3),
            ..Options::default()
        };
        run_chaos(&opts).expect("chaos run succeeds");
        let fresh = std::fs::read_to_string(opts.out_dir.join("chaos.json")).unwrap();
        // Tear both checkpoint files mid-byte, as a kill -9 would.
        for key in ["serial", "simultaneous"] {
            let p = opts.out_dir.join(format!("chaos_{key}.ckpt"));
            let bytes = std::fs::read(&p).unwrap();
            std::fs::write(&p, &bytes[..bytes.len() * 2 / 3]).unwrap();
        }
        let resumed_opts = Options {
            resume: true,
            ..opts.clone()
        };
        run_chaos(&resumed_opts).expect("resume over a torn file succeeds");
        let resumed = std::fs::read_to_string(opts.out_dir.join("chaos.json")).unwrap();
        assert_eq!(fresh, resumed, "torn-tail resume must be outcome-neutral");
        let _ = std::fs::remove_dir_all(&opts.out_dir);
    }
}
