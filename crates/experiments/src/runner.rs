//! Resilient run orchestration: trial isolation, bounded retries, a
//! soft-deadline watchdog, and journal-backed resume.
//!
//! The sweep harness runs thousands of independent (figure, point, seed,
//! algorithm) trials. Before this module, one panicking trial tore down
//! the whole process and a killed run restarted from zero. [`Runner`]
//! fixes both:
//!
//! * **Isolation** — every trial executes under
//!   [`std::panic::catch_unwind`]; a panic (or a solver `Err`) becomes a
//!   typed [`TrialError`] for that trial alone. The sweep keeps going and
//!   the failure is accounted for in the [`RunReport`].
//! * **Retry** — failed trials are retried a bounded number of times with
//!   capped exponential backoff ([`RetryPolicy`]), so transient failures
//!   do not cost a whole sweep.
//! * **Watchdog** — a trial that runs past the soft deadline is reported
//!   (it is never killed: trials are pure compute and forcibly stopping a
//!   thread is unsound; the deadline surfaces stuck work, it does not
//!   reclaim it).
//! * **Durability & resume** — every completed trial result is appended
//!   to the checksummed journal ([`crate::journal`]); a resumed run
//!   replays finished trials from the journal and re-executes only the
//!   missing ones. Because trials are deterministic and results replay
//!   exactly (the JSON float encoding is shortest-roundtrip), a resumed
//!   run's outputs are byte-identical to an uninterrupted run's.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize, Value};

use crate::journal::{Journal, JournalError};

/// Identifies one trial: the figure/experiment context, the sweep point,
/// the scenario seed, and the algorithm (or row) label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialKey {
    /// Experiment context, e.g. `"fig9a"`.
    pub ctx: String,
    /// Sweep-point x value.
    pub x: f64,
    /// Scenario seed.
    pub seed: u64,
    /// Algorithm or row label, e.g. `"MLA-C"`.
    pub algo: String,
}

impl TrialKey {
    /// Builds a key without allocation ceremony at call sites.
    pub fn new(ctx: &str, x: f64, seed: u64, algo: &str) -> TrialKey {
        TrialKey {
            ctx: ctx.to_string(),
            x,
            seed,
            algo: algo.to_string(),
        }
    }

    /// The canonical id used for journal lookup, failure reports, and
    /// fault-injection matching, e.g. `"fig9a|x=50|seed=3|algo=MLA-C"`.
    /// (`f64` `Display` is shortest-roundtrip, so distinct x values get
    /// distinct ids.)
    pub fn id(&self) -> String {
        format!(
            "{}|x={}|seed={}|algo={}",
            self.ctx, self.x, self.seed, self.algo
        )
    }
}

/// Why a single trial failed (the sweep itself keeps running).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrialError {
    /// The trial panicked; the payload message was captured.
    Panicked {
        /// The panic payload, rendered.
        message: String,
    },
    /// The trial returned a typed error (solver failure, bad instance).
    Failed {
        /// The error, rendered.
        message: String,
    },
}

impl TrialError {
    /// Convenience constructor for solver/application failures.
    pub fn failed(message: impl Into<String>) -> TrialError {
        TrialError::Failed {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TrialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrialError::Panicked { message } => write!(f, "trial panicked: {message}"),
            TrialError::Failed { message } => write!(f, "trial failed: {message}"),
        }
    }
}

impl std::error::Error for TrialError {}

/// Why the orchestration layer itself (not a trial) failed.
#[derive(Debug)]
pub enum RunError {
    /// The journal could not be created or replayed.
    Journal(JournalError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Journal(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<JournalError> for RunError {
    fn from(e: JournalError) -> RunError {
        RunError::Journal(e)
    }
}

/// Bounded-retry policy with capped exponential backoff.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per trial (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before retry `k` is `base * 2^(k-1)`, capped at `max`.
    pub base_backoff: Duration,
    /// Backoff cap.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(200),
        }
    }
}

impl RetryPolicy {
    fn backoff(&self, retry_index: u32) -> Duration {
        let factor = 1u32 << retry_index.min(16);
        (self.base_backoff * factor).min(self.max_backoff)
    }
}

/// An injected fault for crash-safety testing: any trial whose
/// [`TrialKey::id`] contains `pattern` panics on its first
/// `fail_attempts` attempts. Parsed from `REPRO_FAIL_TRIALS`
/// (`pattern[:attempts]`, `;`-separated, `attempts` defaulting to 1 and
/// `*` meaning every attempt).
#[derive(Debug, Clone, PartialEq)]
pub struct Injection {
    /// Substring matched against the trial id.
    pub pattern: String,
    /// How many leading attempts fail (`u32::MAX` = all).
    pub fail_attempts: u32,
}

impl Injection {
    /// Parses the `REPRO_FAIL_TRIALS` syntax.
    pub fn parse_list(spec: &str) -> Vec<Injection> {
        spec.split(';')
            .filter(|s| !s.trim().is_empty())
            .map(|s| {
                let (pattern, attempts) = match s.rsplit_once(':') {
                    Some((p, n)) => {
                        let attempts = if n.trim() == "*" {
                            u32::MAX
                        } else {
                            n.trim().parse().unwrap_or(1)
                        };
                        (p, attempts)
                    }
                    None => (s, 1),
                };
                Injection {
                    pattern: pattern.trim().to_string(),
                    fail_attempts: attempts,
                }
            })
            .collect()
    }
}

/// One permanently failed trial, for the run report.
#[derive(Debug, Clone, Serialize)]
pub struct FailedTrial {
    /// The trial id ([`TrialKey::id`]).
    pub key: String,
    /// The final error, rendered.
    pub error: String,
    /// Attempts consumed (including the first).
    pub attempts: u32,
}

/// Aggregate accounting for one `repro` run. Lives in
/// `<out>/.runstate/report.json` (runtime state, not a result artifact),
/// so resumed and fresh runs still produce byte-identical results.
#[derive(Debug, Default, Clone, Serialize)]
pub struct RunReport {
    /// Trials executed in this process.
    pub executed: u64,
    /// Trials replayed from the journal (resume).
    pub replayed: u64,
    /// Retry attempts performed (beyond each trial's first attempt).
    pub retries: u64,
    /// Panics caught and converted to [`TrialError::Panicked`].
    pub panics_caught: u64,
    /// Trials that exceeded the soft deadline (reported, never killed).
    pub deadline_exceeded: u64,
    /// Journal append failures survived (durability degraded).
    pub journal_errors: u64,
    /// Journal records whose value no longer deserializes (schema drift);
    /// the trial was re-executed.
    pub replay_rejected: u64,
    /// Bytes of crash-damaged journal tail dropped on resume.
    pub journal_tail_dropped: u64,
    /// Trials that failed permanently (after all retries).
    pub failed: Vec<FailedTrial>,
    /// Sweep points left without any successful trial, as
    /// `"ctx|x=..|algo=.."` — rendered as holes, not aborts.
    pub holes: Vec<String>,
}

impl RunReport {
    /// Renders the report for the terminal. Empty string when the run was
    /// clean and fresh (nothing worth saying).
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.replayed > 0 || self.journal_tail_dropped > 0 {
            out.push_str(&format!(
                "resume: {} trial(s) replayed from journal, {} executed",
                self.replayed, self.executed
            ));
            if self.journal_tail_dropped > 0 {
                out.push_str(&format!(
                    " ({} byte(s) of crash-damaged journal tail dropped)",
                    self.journal_tail_dropped
                ));
            }
            out.push('\n');
        }
        if self.retries > 0 {
            out.push_str(&format!("retries: {} retry attempt(s)\n", self.retries));
        }
        if self.deadline_exceeded > 0 {
            out.push_str(&format!(
                "watchdog: {} trial(s) exceeded the soft deadline\n",
                self.deadline_exceeded
            ));
        }
        if self.journal_errors > 0 {
            out.push_str(&format!(
                "journal: {} append failure(s) — durability degraded\n",
                self.journal_errors
            ));
        }
        if !self.failed.is_empty() {
            out.push_str(&format!(
                "FAILED trials: {} (sweep completed degraded)\n",
                self.failed.len()
            ));
            for f in self.failed.iter().take(20) {
                out.push_str(&format!(
                    "  {} [{} attempt(s)]: {}\n",
                    f.key, f.attempts, f.error
                ));
            }
            if self.failed.len() > 20 {
                out.push_str(&format!("  ... and {} more\n", self.failed.len() - 20));
            }
        }
        if !self.holes.is_empty() {
            out.push_str(&format!(
                "holes: {} point(s) have no successful trial and render as (no data):\n",
                self.holes.len()
            ));
            for h in self.holes.iter().take(20) {
                out.push_str(&format!("  {h}\n"));
            }
        }
        out
    }
}

struct WatchdogEntry {
    id: String,
    started: Instant,
    warned: bool,
}

struct Watchdog {
    active: Arc<Mutex<HashMap<u64, WatchdogEntry>>>,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    fn spawn(deadline: Duration) -> Watchdog {
        let active: Arc<Mutex<HashMap<u64, WatchdogEntry>>> = Arc::new(Mutex::new(HashMap::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let (a, s) = (Arc::clone(&active), Arc::clone(&stop));
        let handle = std::thread::Builder::new()
            .name("trial-watchdog".to_string())
            .spawn(move || {
                while !s.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(200));
                    let mut map = a.lock().unwrap_or_else(|e| e.into_inner());
                    for entry in map.values_mut() {
                        if !entry.warned && entry.started.elapsed() > deadline {
                            entry.warned = true;
                            eprintln!(
                                "watchdog: trial {} running for {:.0}s (soft deadline {:.0}s)",
                                entry.id,
                                entry.started.elapsed().as_secs_f64(),
                                deadline.as_secs_f64()
                            );
                        }
                    }
                }
            })
            .ok();
        Watchdog {
            active,
            stop,
            handle,
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[derive(Default)]
struct Stats {
    report: RunReport,
    journal_error_reported: bool,
}

/// The run orchestrator. Shared by reference across worker threads; all
/// interior state is synchronized.
pub struct Runner {
    journal: Option<Journal>,
    cache: HashMap<String, Value>,
    policy: RetryPolicy,
    soft_deadline: Duration,
    injections: Vec<Injection>,
    stats: Mutex<Stats>,
    watchdog: Option<Watchdog>,
    next_trial_token: std::sync::atomic::AtomicU64,
}

impl std::fmt::Debug for Runner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runner")
            .field("journaled", &self.journal.is_some())
            .field("cached", &self.cache.len())
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl Default for Runner {
    fn default() -> Self {
        Runner::ephemeral()
    }
}

impl Runner {
    /// A runner with no journal: trials are isolated and retried but
    /// nothing is persisted. Used by tests and one-shot commands.
    pub fn ephemeral() -> Runner {
        Runner::build(
            None,
            HashMap::new(),
            RetryPolicy::default(),
            Duration::ZERO,
            Vec::new(),
            0,
        )
    }

    /// A journaled runner. `resume = false` truncates any existing
    /// journal (fresh run); `resume = true` replays it, seeds the trial
    /// cache, and truncates a crash-damaged tail.
    ///
    /// Injections are read from the `REPRO_FAIL_TRIALS` environment
    /// variable (see [`Injection`]).
    ///
    /// # Errors
    ///
    /// [`RunError::Journal`] when the journal cannot be created/replayed.
    pub fn with_journal(
        path: &Path,
        resume: bool,
        policy: RetryPolicy,
        soft_deadline: Duration,
    ) -> Result<Runner, RunError> {
        let injections = std::env::var("REPRO_FAIL_TRIALS")
            .map(|s| Injection::parse_list(&s))
            .unwrap_or_default();
        let (journal, cache, tail_dropped) = if resume {
            let (journal, replay) = Journal::resume(path)?;
            let mut cache = HashMap::with_capacity(replay.records.len());
            for (key, value) in replay.records {
                if let Ok(key) = TrialKey::deserialize_value(&key) {
                    // Later records win: a re-executed trial supersedes.
                    cache.insert(key.id(), value);
                }
            }
            if let Some(reason) = &replay.tail_reason {
                eprintln!(
                    "resume: dropped {} byte(s) of journal tail ({reason})",
                    replay.dropped_bytes
                );
            }
            (Some(journal), cache, replay.dropped_bytes)
        } else {
            (Some(Journal::create(path)?), HashMap::new(), 0)
        };
        Ok(Runner::build(
            journal,
            cache,
            policy,
            soft_deadline,
            injections,
            tail_dropped,
        ))
    }

    /// An ephemeral runner with explicit retry policy and injections —
    /// the constructor crash-safety tests drive directly.
    pub fn with_config(policy: RetryPolicy, injections: Vec<Injection>) -> Runner {
        Runner::build(None, HashMap::new(), policy, Duration::ZERO, injections, 0)
    }

    fn build(
        journal: Option<Journal>,
        cache: HashMap<String, Value>,
        policy: RetryPolicy,
        soft_deadline: Duration,
        injections: Vec<Injection>,
        tail_dropped: u64,
    ) -> Runner {
        let watchdog = (soft_deadline > Duration::ZERO).then(|| Watchdog::spawn(soft_deadline));
        let mut stats = Stats::default();
        stats.report.journal_tail_dropped = tail_dropped;
        Runner {
            journal,
            cache,
            policy,
            soft_deadline,
            injections,
            stats: Mutex::new(stats),
            watchdog,
            next_trial_token: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Whether `key` has a journaled result that would replay.
    pub fn is_cached(&self, key: &TrialKey) -> bool {
        self.cache.contains_key(&key.id())
    }

    /// Whether every key has a journaled result (lets sweeps skip
    /// generating scenarios for fully-replayed points).
    pub fn all_cached<'a>(&self, keys: impl IntoIterator<Item = &'a TrialKey>) -> bool {
        keys.into_iter().all(|k| self.is_cached(k))
    }

    /// Runs one trial: replays it from the journal if finished, otherwise
    /// executes `f` under `catch_unwind` with bounded retries, journaling
    /// the result on success.
    ///
    /// # Errors
    ///
    /// The final [`TrialError`] after all attempts are exhausted. The
    /// failure is also recorded in the run report.
    pub fn trial<T, F>(&self, key: &TrialKey, f: F) -> Result<T, TrialError>
    where
        T: Serialize + Deserialize,
        F: Fn() -> Result<T, TrialError>,
    {
        let id = key.id();
        if let Some(value) = self.cache.get(&id) {
            match T::deserialize_value(value) {
                Ok(t) => {
                    self.stat(|r| r.replayed += 1);
                    return Ok(t);
                }
                Err(e) => {
                    eprintln!(
                        "resume: journaled result for {id} no longer parses ({e}); re-running"
                    );
                    self.stat(|r| r.replay_rejected += 1);
                }
            }
        }

        let mut attempt = 0u32;
        loop {
            let inject = self
                .injections
                .iter()
                .any(|i| attempt < i.fail_attempts && id.contains(&i.pattern));
            let token = self.watch_start(&id);
            let started = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                assert!(!inject, "injected fault (REPRO_FAIL_TRIALS) for trial {id}");
                f()
            }));
            let elapsed = started.elapsed();
            self.watch_end(token);
            if self.soft_deadline > Duration::ZERO && elapsed > self.soft_deadline {
                self.stat(|r| r.deadline_exceeded += 1);
            }
            let error = match outcome {
                Ok(Ok(value)) => {
                    self.journal_result(key, &value);
                    self.stat(|r| r.executed += 1);
                    return Ok(value);
                }
                Ok(Err(e)) => e,
                Err(payload) => {
                    self.stat(|r| r.panics_caught += 1);
                    TrialError::Panicked {
                        message: panic_message(payload),
                    }
                }
            };
            attempt += 1;
            if attempt >= self.policy.max_attempts {
                self.stat(|r| {
                    r.failed.push(FailedTrial {
                        key: id.clone(),
                        error: error.to_string(),
                        attempts: attempt,
                    });
                });
                return Err(error);
            }
            self.stat(|r| r.retries += 1);
            std::thread::sleep(self.policy.backoff(attempt - 1));
        }
    }

    /// Records that a sweep point ended with zero successful trials and
    /// will render as a hole.
    pub fn note_hole(&self, ctx: &str, x: f64, algo: &str) {
        self.stat(|r| r.holes.push(format!("{ctx}|x={x}|algo={algo}")));
    }

    /// A snapshot of the run accounting.
    pub fn report(&self) -> RunReport {
        self.stats
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .report
            .clone()
    }

    fn journal_result<T: Serialize>(&self, key: &TrialKey, value: &T) {
        let Some(journal) = &self.journal else {
            return;
        };
        if let Err(e) = journal.append(&key.serialize_value(), &value.serialize_value()) {
            let mut stats = self.stats.lock().unwrap_or_else(|p| p.into_inner());
            stats.report.journal_errors += 1;
            if !stats.journal_error_reported {
                stats.journal_error_reported = true;
                eprintln!("warning: journal append failed ({e}); continuing without durability");
            }
        }
    }

    fn stat(&self, f: impl FnOnce(&mut RunReport)) {
        f(&mut self.stats.lock().unwrap_or_else(|e| e.into_inner()).report);
    }

    fn watch_start(&self, id: &str) -> Option<u64> {
        let watchdog = self.watchdog.as_ref()?;
        let token = self.next_trial_token.fetch_add(1, Ordering::Relaxed);
        watchdog
            .active
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(
                token,
                WatchdogEntry {
                    id: id.to_string(),
                    started: Instant::now(),
                    warned: false,
                },
            );
        Some(token)
    }

    fn watch_end(&self, token: Option<u64>) {
        if let (Some(watchdog), Some(token)) = (self.watchdog.as_ref(), token) {
            watchdog
                .active
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(&token);
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mcast_runner_{name}_{}", std::process::id()))
    }

    fn key(seed: u64) -> TrialKey {
        TrialKey::new("test", 1.0, seed, "A")
    }

    #[test]
    fn panicking_trial_becomes_typed_error() {
        let runner = Runner::ephemeral();
        let out: Result<f64, _> = runner.trial(&key(0), || panic!("boom {}", 42));
        match out {
            Err(TrialError::Panicked { message }) => assert!(message.contains("boom 42")),
            other => panic!("expected Panicked, got {other:?}"),
        }
        let report = runner.report();
        assert_eq!(report.failed.len(), 1);
        assert_eq!(
            report.panics_caught as usize,
            report.failed[0].attempts as usize
        );
        // Default policy: 2 attempts => 1 retry.
        assert_eq!(report.retries, 1);
    }

    #[test]
    fn transient_failure_recovers_on_retry() {
        let runner = Runner::with_config(
            RetryPolicy {
                max_attempts: 3,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
            },
            Vec::new(),
        );
        let calls = AtomicU32::new(0);
        let out: Result<u64, _> = runner.trial(&key(1), || {
            if calls.fetch_add(1, Ordering::Relaxed) == 0 {
                Err(TrialError::failed("transient"))
            } else {
                Ok(7)
            }
        });
        assert_eq!(out.unwrap(), 7);
        let report = runner.report();
        assert_eq!(report.retries, 1);
        assert_eq!(report.executed, 1);
        assert!(report.failed.is_empty());
    }

    #[test]
    fn injection_fails_first_attempts_then_recovers() {
        let runner = Runner::with_config(
            RetryPolicy {
                max_attempts: 3,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(1),
            },
            Injection::parse_list("seed=5:2"),
        );
        let out: Result<u64, _> = runner.trial(&key(5), || Ok(9));
        assert_eq!(out.unwrap(), 9);
        let report = runner.report();
        assert_eq!(report.retries, 2);
        assert_eq!(report.panics_caught, 2);
        // A non-matching trial is untouched.
        let out: Result<u64, _> = runner.trial(&key(6), || Ok(1));
        assert_eq!(out.unwrap(), 1);
        assert_eq!(runner.report().panics_caught, 2);
    }

    #[test]
    fn injection_parsing() {
        let list = Injection::parse_list("fig9a;seed=3:*;algo=MLA-C:4");
        assert_eq!(list.len(), 3);
        assert_eq!(
            list[0],
            Injection {
                pattern: "fig9a".into(),
                fail_attempts: 1
            }
        );
        assert_eq!(list[1].fail_attempts, u32::MAX);
        assert_eq!(
            list[2],
            Injection {
                pattern: "algo=MLA-C".into(),
                fail_attempts: 4
            }
        );
        assert!(Injection::parse_list("").is_empty());
    }

    #[test]
    fn journaled_trials_replay_on_resume() {
        let path = tmp("replay.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let runner =
                Runner::with_journal(&path, false, RetryPolicy::default(), Duration::ZERO).unwrap();
            for seed in 0..4u64 {
                let v: Result<f64, _> = runner.trial(&key(seed), || Ok(seed as f64 * 0.1 + 0.05));
                v.unwrap();
            }
            assert_eq!(runner.report().executed, 4);
        }
        {
            let runner =
                Runner::with_journal(&path, true, RetryPolicy::default(), Duration::ZERO).unwrap();
            for seed in 0..4u64 {
                let v: f64 = runner
                    .trial(&key(seed), || -> Result<f64, TrialError> {
                        panic!("must not re-execute")
                    })
                    .unwrap();
                let expected = seed as f64 * 0.1 + 0.05;
                assert_eq!(v.to_bits(), expected.to_bits(), "bit-exact replay");
            }
            let report = runner.report();
            assert_eq!(report.replayed, 4);
            assert_eq!(report.executed, 0);
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn fresh_run_truncates_previous_journal() {
        let path = tmp("fresh.jsonl");
        {
            let runner =
                Runner::with_journal(&path, false, RetryPolicy::default(), Duration::ZERO).unwrap();
            let _ = runner.trial(&key(0), || Ok(1u64));
        }
        {
            let runner =
                Runner::with_journal(&path, false, RetryPolicy::default(), Duration::ZERO).unwrap();
            assert!(!runner.is_cached(&key(0)));
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn key_ids_are_unique_per_component() {
        let a = TrialKey::new("fig9a", 50.0, 3, "MLA-C");
        assert_eq!(a.id(), "fig9a|x=50|seed=3|algo=MLA-C");
        assert_ne!(a.id(), TrialKey::new("fig9a", 50.5, 3, "MLA-C").id());
        assert_ne!(a.id(), TrialKey::new("fig9b", 50.0, 3, "MLA-C").id());
    }
}
