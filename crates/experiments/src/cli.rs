//! `repro gen` / `repro solve`: scenario files for reproducible one-off
//! runs (generate once, solve many ways, diff outputs) — plus the
//! command-line flag validation shared with `main`.

use std::path::Path;

/// A flag that does nothing for the command it was passed with,
/// rejected by name instead of silently ignored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlagError {
    /// The command the flag was passed to.
    pub command: String,
    /// The offending flag, as typed (`--plot`, `--resume`).
    pub flag: String,
    /// Why the combination is meaningless.
    pub reason: &'static str,
}

impl std::fmt::Display for FlagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid flags: {} does not support {} ({})",
            self.command, self.flag, self.reason
        )
    }
}

impl std::error::Error for FlagError {}

/// The repro CLI's error taxonomy, mapped one-to-one onto distinct
/// process exit codes so scripts and CI can tell *why* a run failed
/// without parsing messages:
///
/// | variant        | exit | meaning                                    |
/// |----------------|------|--------------------------------------------|
/// | `Usage`        | 2    | bad flags, commands, or algorithm names    |
/// | `Validation`   | 3    | a scenario/plan failed semantic validation |
/// | `IoDecode`     | 4    | an IO failure or a wire-decode failure     |
/// | `Divergence`   | 5    | a replay/oracle determinism proof failed   |
///
/// Exit 1 stays reserved for `compare`'s "regressions flagged" outcome,
/// and 0 for success, so every code is distinct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// Bad usage: unknown command, flag, or algorithm name (exit 2).
    Usage(String),
    /// A scenario or plan failed semantic validation (exit 3).
    Validation(String),
    /// An IO failure or an untrusted-input decode failure (exit 4).
    IoDecode(String),
    /// A determinism proof failed: replay or oracle divergence (exit 5).
    Divergence(String),
}

impl CliError {
    /// The process exit code this error class maps to.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Validation(_) => 3,
            CliError::IoDecode(_) => 4,
            CliError::Divergence(_) => 5,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m)
            | CliError::Validation(m)
            | CliError::IoDecode(m)
            | CliError::Divergence(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for CliError {}

impl From<FlagError> for CliError {
    fn from(e: FlagError) -> CliError {
        CliError::Usage(e.to_string())
    }
}

impl From<mcast_events::DecodeError> for CliError {
    fn from(e: mcast_events::DecodeError) -> CliError {
        CliError::IoDecode(e.to_string())
    }
}

/// Commands that render figure series, where `--plot` adds ASCII plots.
const PLOTTING: &[&str] = &[
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "ablations",
    "channels",
    "mobility",
    "revenue",
    "all",
];

/// Commands that sweep under the journaled orchestrator, where
/// `--resume` replays finished trials from `.runstate/`.
const RESUMABLE: &[&str] = &[
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "ablations",
    "channels",
    "mobility",
    "faults",
    "controller",
    "chaos",
    "revenue",
    "all",
];

/// Commands that inject scripted faults, where `--chaos SEED` picks the
/// fault plan.
const CHAOTIC: &[&str] = &["chaos"];

/// Commands that write recovery snapshots, where `--checkpoint-every K`
/// sets the cadence.
const CHECKPOINTED: &[&str] = &["chaos", "serve"];

/// Commands that stream an event log through the resilient sink, where
/// `--io-chaos SEED` injects a scripted IO-fault plan.
const IO_CHAOS: &[&str] = &["serve"];

/// Commands that run work on the scoped-thread pool (sweeps via
/// `parallel_map`, plus `bench`'s partitioned scaling curve), where
/// `--threads N` sets the worker count.
const THREADED: &[&str] = &[
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "ablations",
    "channels",
    "mobility",
    "faults",
    "controller",
    "revenue",
    "bench",
    "all",
];

/// Rejects a meaningless `--threads` value or placement: zero workers
/// (the pool cannot run anything), or a command with no parallel work.
///
/// # Errors
///
/// A [`FlagError`] naming the command, the flag, and the reason.
pub fn validate_threads(command: &str, threads: Option<usize>) -> Result<(), FlagError> {
    let Some(n) = threads else { return Ok(()) };
    if n == 0 {
        return Err(FlagError {
            command: command.to_string(),
            flag: "--threads".to_string(),
            reason: "worker count must be at least 1",
        });
    }
    if !THREADED.contains(&command) {
        return Err(FlagError {
            command: command.to_string(),
            flag: "--threads".to_string(),
            reason: "it runs no parallel work",
        });
    }
    Ok(())
}

/// Rejects flag combinations that would silently do nothing — `--plot`
/// with a command that renders no figure series (e.g. `serve`), or
/// `--resume` with a command that keeps no journal.
///
/// # Errors
///
/// A [`FlagError`] naming the command, the flag, and the reason.
pub fn validate_flags(command: &str, plot: bool, resume: bool) -> Result<(), FlagError> {
    if plot && !PLOTTING.contains(&command) {
        return Err(FlagError {
            command: command.to_string(),
            flag: "--plot".to_string(),
            reason: "it renders no figure series to plot",
        });
    }
    if resume && !RESUMABLE.contains(&command) {
        return Err(FlagError {
            command: command.to_string(),
            flag: "--resume".to_string(),
            reason: "it keeps no trial journal to resume from",
        });
    }
    Ok(())
}

/// Rejects `--suite NAME` on commands other than `bench` (the only
/// command with named suites) and unknown suite names.
///
/// # Errors
///
/// A [`FlagError`] naming the command, the flag, and the reason.
pub fn validate_suite(command: &str, suite: Option<&str>) -> Result<(), FlagError> {
    match suite {
        None => Ok(()),
        Some(_) if command != "bench" => Err(FlagError {
            command: command.to_string(),
            flag: "--suite".to_string(),
            reason: "only `bench` has named suites",
        }),
        Some("default") | Some("scale") => Ok(()),
        Some(_) => Err(FlagError {
            command: command.to_string(),
            flag: "--suite".to_string(),
            reason: "expected `default` or `scale`",
        }),
    }
}

/// Rejects the fault-tolerance flags on commands that cannot honor
/// them: `--chaos SEED` needs a supervised run to inject into, and
/// `--checkpoint-every K` needs a run that writes recovery snapshots.
///
/// # Errors
///
/// A [`FlagError`] naming the command, the flag, and the reason.
pub fn validate_recovery_flags(
    command: &str,
    chaos: bool,
    checkpoint_every: Option<usize>,
) -> Result<(), FlagError> {
    if chaos && !CHAOTIC.contains(&command) {
        return Err(FlagError {
            command: command.to_string(),
            flag: "--chaos".to_string(),
            reason: "it runs no supervised engine to inject faults into",
        });
    }
    if let Some(k) = checkpoint_every {
        if k == 0 {
            return Err(FlagError {
                command: command.to_string(),
                flag: "--checkpoint-every".to_string(),
                reason: "the snapshot cadence must be at least 1 round",
            });
        }
        if !CHECKPOINTED.contains(&command) {
            return Err(FlagError {
                command: command.to_string(),
                flag: "--checkpoint-every".to_string(),
                reason: "it writes no recovery snapshots",
            });
        }
    }
    Ok(())
}

/// Rejects `--io-chaos SEED` on commands without a resilient event sink
/// to inject into, and the `--io-chaos` + `--checkpoint-every`
/// combination: a faulted sink cannot promise the exact byte positions
/// checkpoints record, so the pairing would silently weaken both.
///
/// # Errors
///
/// A [`FlagError`] naming the command, the flag, and the reason.
pub fn validate_io_chaos(
    command: &str,
    io_chaos: Option<u64>,
    checkpoint_every: Option<usize>,
) -> Result<(), FlagError> {
    if io_chaos.is_none() {
        return Ok(());
    }
    if !IO_CHAOS.contains(&command) {
        return Err(FlagError {
            command: command.to_string(),
            flag: "--io-chaos".to_string(),
            reason: "it streams no event log to inject IO faults into",
        });
    }
    if checkpoint_every.is_some() {
        return Err(FlagError {
            command: command.to_string(),
            flag: "--io-chaos".to_string(),
            reason:
                "a faulted sink cannot back byte-positioned checkpoints; drop --checkpoint-every",
        });
    }
    Ok(())
}

use mcast_core::{
    run_distributed, solve_bla, solve_mla, solve_mla_with, solve_mnu, solve_ssa, Association,
    DistributedConfig, Load, MlaAlgorithm, Objective, Policy, Solution,
};
use mcast_exact::{optimal_bla, optimal_mla, optimal_mnu, SearchLimits};
use mcast_topology::{Scenario, ScenarioConfig};

/// Options for `repro gen`.
#[derive(Debug, Clone)]
pub struct GenOptions {
    /// RNG seed.
    pub seed: u64,
    /// AP count.
    pub aps: usize,
    /// User count.
    pub users: usize,
    /// Session count.
    pub sessions: usize,
    /// Budget in permille (e.g. 900 = 0.9).
    pub budget_permille: u32,
    /// Emit the pre-v1 dense JSON wire (APs × users matrices) instead of
    /// the sparse default — downgrade interchange only; O(APs × users).
    pub legacy_dense: bool,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            seed: 0,
            aps: 200,
            users: 400,
            sessions: 5,
            budget_permille: 900,
            legacy_dense: false,
        }
    }
}

/// Generates a scenario and writes it out. The extension picks the
/// format: `.mcb` gets the compact binary wire (streamed, never a JSON
/// value tree), anything else the sparse JSON wire — or the pre-v1 dense
/// JSON wire under `--legacy-dense`.
///
/// # Errors
///
/// I/O or serialization failures ([`CliError::IoDecode`]), a config the
/// generator rejects ([`CliError::Validation`]), or `--legacy-dense`
/// combined with a `.mcb` destination ([`CliError::Usage`] — the binary
/// wire has no dense variant).
pub fn generate_to_file(opts: &GenOptions, path: &Path) -> Result<(), CliError> {
    let is_mcb = path.extension().is_some_and(|e| e == "mcb");
    if opts.legacy_dense && is_mcb {
        return Err(CliError::Usage(
            "--legacy-dense writes the old dense JSON wire; it cannot target .mcb".into(),
        ));
    }
    let scenario = ScenarioConfig {
        n_aps: opts.aps,
        n_users: opts.users,
        n_sessions: opts.sessions,
        budget: Load::permille(opts.budget_permille),
        ..ScenarioConfig::paper_default()
    }
    .with_seed(opts.seed)
    .try_generate_streaming()
    .map_err(|e| CliError::Validation(format!("generation failed: {e}")))?;
    if is_mcb {
        mcast_topology::write_mcb(&scenario, path).map_err(CliError::IoDecode)?;
    } else {
        let json = if opts.legacy_dense {
            serde_json::to_string(&scenario.to_legacy_dense_value())
                .map_err(|e| CliError::IoDecode(e.to_string()))?
        } else {
            serde_json::to_string(&scenario).map_err(|e| CliError::IoDecode(e.to_string()))?
        };
        crate::journal::atomic_write(path, json.as_bytes())
            .map_err(|e| CliError::IoDecode(e.to_string()))?;
    }
    let stats = mcast_core::InstanceStats::of(&scenario.instance);
    println!(
        "wrote scenario: {} APs, {} users, {} sessions, budget {} (seed {}) -> {}",
        opts.aps,
        opts.users,
        opts.sessions,
        Load::permille(opts.budget_permille),
        opts.seed,
        path.display()
    );
    println!(
        "  {} links, mean user degree {:.2}, ~{:.1} MiB resident",
        stats.n_links,
        stats.mean_user_degree,
        stats.resident_bytes_est as f64 / (1024.0 * 1024.0)
    );
    Ok(())
}

/// Loads a scenario file and validates it (see [`validate_scenario`]) so
/// solvers never see corrupt geometry. `.mcb` files take the binary read
/// path; everything else parses as JSON (sparse or legacy dense wire).
///
/// # Errors
///
/// I/O or deserialization failures ([`CliError::IoDecode`], with byte
/// offsets on the binary path) or validation failures
/// ([`CliError::Validation`], naming the offending field).
pub fn load_scenario(path: &Path) -> Result<Scenario, CliError> {
    let scenario = if path.extension().is_some_and(|e| e == "mcb") {
        mcast_topology::read_mcb(path)?
    } else {
        let json = std::fs::read_to_string(path)
            .map_err(|e| CliError::IoDecode(format!("cannot read {}: {e}", path.display())))?;
        serde_json::from_str(&json)
            .map_err(|e| CliError::IoDecode(format!("bad scenario file: {e}")))?
    };
    validate_scenario(&scenario)
        .map_err(|e| CliError::Validation(format!("invalid scenario {}: {e}", path.display())))?;
    Ok(scenario)
}

// Structural validation of a deserialized `Scenario` lives next to the
// wire formats now (`mcast_topology::validate_scenario`) so the binary
// and JSON read paths funnel through the same helper; re-exported here
// because this is where every CLI call site and test historically found
// it.
pub use mcast_topology::validate_scenario;

/// Runs `algo` on a loaded scenario and prints a summary; optionally
/// writes the association JSON.
///
/// # Errors
///
/// Unknown algorithm names ([`CliError::Usage`]), solver failures
/// ([`CliError::Validation`]), or I/O failures ([`CliError::IoDecode`]).
pub fn solve_file(path: &Path, algo: &str, assoc_out: Option<&Path>) -> Result<(), CliError> {
    let scenario = load_scenario(path)?;
    let inst = &scenario.instance;
    let limits = SearchLimits::default();
    let solver = |e: &dyn std::fmt::Display| CliError::Validation(e.to_string());
    let (solution, note): (Solution, Option<String>) = match algo {
        "ssa" => (solve_ssa(inst, Objective::Mla), None),
        "mla" => (solve_mla(inst).map_err(|e| solver(&e))?, None),
        "mla-pd" => (
            solve_mla_with(inst, MlaAlgorithm::PrimalDual).map_err(|e| solver(&e))?,
            None,
        ),
        "bla" => (solve_bla(inst).map_err(|e| solver(&e))?, None),
        "mnu" => (solve_mnu(inst), None),
        "mla-d" | "mnu-d" => {
            let out = run_distributed(
                inst,
                &DistributedConfig::default(),
                Association::empty(inst.n_users()),
            );
            let objective = if algo == "mla-d" { Objective::Mla } else { Objective::Mnu };
            (
                Solution::evaluate(objective, out.association, inst, None),
                Some(format!("converged: {} in {} rounds", out.converged, out.rounds)),
            )
        }
        "bla-d" => {
            let out = run_distributed(
                inst,
                &DistributedConfig {
                    policy: Policy::MinMaxVector,
                    ..DistributedConfig::default()
                },
                Association::empty(inst.n_users()),
            );
            (
                Solution::evaluate(Objective::Bla, out.association, inst, None),
                Some(format!("converged: {} in {} rounds", out.converged, out.rounds)),
            )
        }
        "opt-mla" => {
            let out = optimal_mla(inst, limits).map_err(|e| solver(&e))?;
            (out.solution, Some(format!("certified optimal: {}", out.proved_optimal)))
        }
        "opt-bla" => {
            let out = optimal_bla(inst, limits).map_err(|e| solver(&e))?;
            (out.solution, Some(format!("certified optimal: {}", out.proved_optimal)))
        }
        "opt-mnu" => {
            let out = optimal_mnu(inst, limits);
            (out.solution, Some(format!("certified optimal: {}", out.proved_optimal)))
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown algorithm '{other}' (want ssa|mla|mla-pd|mla-d|bla|bla-d|mnu|mnu-d|opt-mla|opt-bla|opt-mnu)"
            )))
        }
    };

    println!("scenario   : {}", path.display());
    println!("algorithm  : {algo}");
    println!("satisfied  : {}/{}", solution.satisfied, inst.n_users());
    println!(
        "total load : {} = {:.4}",
        solution.total_load,
        solution.total_load.as_f64()
    );
    println!(
        "max load   : {} = {:.4}",
        solution.max_load,
        solution.max_load.as_f64()
    );
    if let Some(note) = note {
        println!("note       : {note}");
    }
    if let Some(out) = assoc_out {
        let json = serde_json::to_string(&solution.association)
            .map_err(|e| CliError::IoDecode(e.to_string()))?;
        crate::journal::atomic_write(out, json.as_bytes())
            .map_err(|e| CliError::IoDecode(e.to_string()))?;
        println!("association written to {}", out.display());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mcast_cli_{name}_{}", std::process::id()))
    }

    #[test]
    fn gen_and_solve_roundtrip() {
        let path = tmp("scenario.json");
        let opts = GenOptions {
            seed: 3,
            aps: 10,
            users: 25,
            sessions: 3,
            budget_permille: 900,
            legacy_dense: false,
        };
        generate_to_file(&opts, &path).unwrap();
        let scenario = load_scenario(&path).unwrap();
        assert_eq!(scenario.instance.n_aps(), 10);
        assert_eq!(scenario.instance.n_users(), 25);

        for algo in ["ssa", "mla", "mla-pd", "bla", "mnu", "mla-d", "bla-d"] {
            solve_file(&path, algo, None).unwrap();
        }
        let out = tmp("assoc.json");
        solve_file(&path, "mla", Some(&out)).unwrap();
        let assoc: Association =
            serde_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
        assert_eq!(assoc.satisfied_count(), 25);
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(out);
    }

    #[test]
    fn gen_mcb_and_json_agree() {
        let opts = GenOptions {
            seed: 6,
            aps: 8,
            users: 20,
            sessions: 2,
            ..GenOptions::default()
        };
        let json_path = tmp("agree.json");
        let mcb_path = tmp("agree").with_extension("mcb");
        generate_to_file(&opts, &json_path).unwrap();
        generate_to_file(&opts, &mcb_path).unwrap();
        let from_json = load_scenario(&json_path).unwrap();
        let from_mcb = load_scenario(&mcb_path).unwrap();
        assert_eq!(
            serde_json::to_string(&from_json).unwrap(),
            serde_json::to_string(&from_mcb).unwrap()
        );
        // The binary wire is denser than the JSON wire.
        let json_len = std::fs::metadata(&json_path).unwrap().len();
        let mcb_len = std::fs::metadata(&mcb_path).unwrap().len();
        assert!(mcb_len < json_len, "mcb {mcb_len} vs json {json_len}");
        // Solvers run on the binary file too.
        solve_file(&mcb_path, "mla", None).unwrap();
        let _ = std::fs::remove_file(json_path);
        let _ = std::fs::remove_file(mcb_path);
    }

    #[test]
    fn legacy_dense_flag_writes_the_old_wire() {
        let opts = GenOptions {
            seed: 2,
            aps: 6,
            users: 12,
            sessions: 2,
            ..GenOptions::default()
        };
        let dense_path = tmp("dense.json");
        generate_to_file(
            &GenOptions {
                legacy_dense: true,
                ..opts.clone()
            },
            &dense_path,
        )
        .unwrap();
        let bytes = std::fs::read_to_string(&dense_path).unwrap();
        assert!(bytes.contains("\"link\":"), "dense wire carries matrices");
        assert!(
            !bytes.contains("mcast-instance/v1"),
            "dense wire has no format tag"
        );
        // The dense file loads through the fallback path and describes
        // the same scenario as the sparse default.
        let dense = load_scenario(&dense_path).unwrap();
        let sparse_path = tmp("sparse.json");
        generate_to_file(&opts, &sparse_path).unwrap();
        let sparse = load_scenario(&sparse_path).unwrap();
        assert_eq!(
            serde_json::to_string(&dense).unwrap(),
            serde_json::to_string(&sparse).unwrap()
        );
        let _ = std::fs::remove_file(dense_path);
        let _ = std::fs::remove_file(sparse_path);
    }

    #[test]
    fn legacy_dense_cannot_target_mcb() {
        let err = generate_to_file(
            &GenOptions {
                legacy_dense: true,
                ..GenOptions::default()
            },
            &tmp("bad").with_extension("mcb"),
        )
        .unwrap_err();
        assert!(err.to_string().contains("--legacy-dense"), "{err}");
        assert_eq!(err.exit_code(), 2, "flag misuse is a usage error");
    }

    #[test]
    fn unknown_algorithm_is_a_usage_error() {
        let path = tmp("scenario2.json");
        generate_to_file(
            &GenOptions {
                aps: 3,
                users: 5,
                sessions: 1,
                ..GenOptions::default()
            },
            &path,
        )
        .unwrap();
        let err = solve_file(&path, "nonsense", None).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = load_scenario(Path::new("/nonexistent/file.json")).unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");
    }

    #[test]
    fn exit_codes_are_distinct_per_error_class() {
        let errors = [
            CliError::Usage("u".into()),
            CliError::Validation("v".into()),
            CliError::IoDecode("i".into()),
            CliError::Divergence("d".into()),
        ];
        let codes: Vec<i32> = errors.iter().map(CliError::exit_code).collect();
        assert_eq!(codes, vec![2, 3, 4, 5]);
        // 0 (success) and 1 (compare's flagged-regressions) stay free.
        assert!(!codes.contains(&0) && !codes.contains(&1));
    }

    #[test]
    fn error_classes_convert_from_their_sources() {
        let flag: CliError = FlagError {
            command: "serve".into(),
            flag: "--plot".into(),
            reason: "nope",
        }
        .into();
        assert_eq!(flag.exit_code(), 2);
        assert!(flag.to_string().contains("--plot"), "{flag}");

        let decode: CliError = mcast_events::DecodeError::new(
            mcast_events::DecodeErrorKind::Truncated,
            12,
            "section SESSIONS payload",
        )
        .into();
        assert_eq!(decode.exit_code(), 4);
        assert!(decode.to_string().contains("byte 12"), "{decode}");
    }

    #[test]
    fn io_chaos_is_rejected_by_command_and_combination() {
        for cmd in ["bench", "fig9", "chaos", "replay", "all"] {
            let err = validate_io_chaos(cmd, Some(7), None).unwrap_err();
            assert_eq!(err.flag, "--io-chaos");
            assert_eq!(err.command, cmd);
        }
        assert_eq!(validate_io_chaos("serve", Some(7), None), Ok(()));
        // Without the flag, anything goes.
        assert_eq!(validate_io_chaos("bench", None, Some(4)), Ok(()));
        // With it, checkpointing is an explicit conflict.
        let err = validate_io_chaos("serve", Some(7), Some(4)).unwrap_err();
        assert!(
            err.to_string().contains("--checkpoint-every"),
            "unexpected message: {err}"
        );
    }

    #[test]
    fn corrupt_mcb_loads_as_a_named_io_decode_error() {
        let path = tmp("corrupt").with_extension("mcb");
        generate_to_file(
            &GenOptions {
                aps: 4,
                users: 9,
                sessions: 2,
                ..GenOptions::default()
            },
            &path,
        )
        .unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let err = load_scenario(&path).unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");
        assert!(err.to_string().contains("byte"), "offset provenance: {err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn plot_is_rejected_for_commands_without_figures() {
        for cmd in [
            "serve",
            "replay",
            "faults",
            "controller",
            "bench",
            "validate",
            "table1",
        ] {
            let err = validate_flags(cmd, true, false).unwrap_err();
            assert_eq!(err.command, cmd);
            assert_eq!(err.flag, "--plot");
            assert!(err.to_string().contains("invalid flags"), "{err}");
        }
        for cmd in ["fig9", "fig12", "mobility", "revenue", "all"] {
            assert_eq!(validate_flags(cmd, true, false), Ok(()), "{cmd}");
        }
    }

    #[test]
    fn resume_is_rejected_for_journalless_commands() {
        for cmd in ["serve", "replay", "bench", "validate", "table1"] {
            let err = validate_flags(cmd, false, true).unwrap_err();
            assert_eq!(err.flag, "--resume");
        }
        // Sweeping commands journal their trials, so --resume is valid —
        // and chaos resumes from its recovery checkpoint.
        for cmd in ["faults", "controller", "fig10", "chaos", "all"] {
            assert_eq!(validate_flags(cmd, false, true), Ok(()), "{cmd}");
        }
    }

    #[test]
    fn chaos_flag_is_rejected_outside_the_chaos_command() {
        for cmd in ["serve", "bench", "fig9", "controller", "all"] {
            let err = validate_recovery_flags(cmd, true, None).unwrap_err();
            assert_eq!(err.flag, "--chaos");
            assert_eq!(err.command, cmd);
        }
        assert_eq!(validate_recovery_flags("chaos", true, None), Ok(()));
    }

    #[test]
    fn checkpoint_cadence_is_validated_by_command_and_value() {
        for cmd in ["bench", "fig9", "controller", "all"] {
            let err = validate_recovery_flags(cmd, false, Some(10)).unwrap_err();
            assert_eq!(err.flag, "--checkpoint-every");
            assert_eq!(err.command, cmd);
        }
        for cmd in ["chaos", "serve"] {
            assert_eq!(
                validate_recovery_flags(cmd, false, Some(10)),
                Ok(()),
                "{cmd}"
            );
        }
        let err = validate_recovery_flags("chaos", false, Some(0)).unwrap_err();
        assert!(err.to_string().contains("at least 1"), "{err}");
        assert_eq!(validate_recovery_flags("bench", false, None), Ok(()));
    }

    #[test]
    fn no_flags_is_always_valid() {
        for cmd in ["serve", "replay", "bench", "fig9", "table1", "unknown"] {
            assert_eq!(validate_flags(cmd, false, false), Ok(()), "{cmd}");
            assert_eq!(validate_threads(cmd, None), Ok(()), "{cmd}");
        }
    }

    #[test]
    fn zero_threads_is_rejected_by_name() {
        let err = validate_threads("bench", Some(0)).unwrap_err();
        assert_eq!(err.flag, "--threads");
        assert_eq!(err.command, "bench");
        assert!(
            err.to_string().contains("at least 1"),
            "unexpected message: {err}"
        );
    }

    #[test]
    fn threads_is_rejected_for_serial_commands() {
        for cmd in ["serve", "replay", "table1", "validate", "gen"] {
            let err = validate_threads(cmd, Some(4)).unwrap_err();
            assert_eq!(err.flag, "--threads");
            assert_eq!(err.command, cmd);
        }
        for cmd in ["bench", "fig9", "mobility", "all"] {
            assert_eq!(validate_threads(cmd, Some(4)), Ok(()), "{cmd}");
        }
    }

    fn small_scenario() -> mcast_topology::Scenario {
        ScenarioConfig {
            n_aps: 4,
            n_users: 8,
            n_sessions: 2,
            ..ScenarioConfig::paper_default()
        }
        .with_seed(1)
        .generate()
    }

    #[test]
    fn valid_scenario_passes_validation() {
        assert_eq!(validate_scenario(&small_scenario()), Ok(()));
    }

    #[test]
    fn nan_coordinate_is_rejected_with_a_named_entity() {
        let mut sc = small_scenario();
        sc.user_positions[3].x = f64::NAN;
        let err = validate_scenario(&sc).unwrap_err();
        assert!(err.contains("user 3"), "unexpected message: {err}");
        assert!(err.contains("non-finite"), "unexpected message: {err}");

        // And the same through the file path: JSON cannot carry NaN/inf
        // directly, but a hand-edited file can say `1e999`, which parses
        // to +inf. Patch the first AP's x coordinate to exactly that.
        sc.user_positions[3].x = 0.0;
        let json = serde_json::to_string(&sc).unwrap();
        let x0 = format!("{}", sc.ap_positions[0].x);
        assert!(json.contains(&x0), "wire format changed; update test");
        let patched = json.replacen(&x0, "1e999", 1);
        let path = tmp("nan.json");
        std::fs::write(&path, patched).unwrap();
        let err = load_scenario(&path).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("non-finite") || msg.contains("bad scenario file"),
            "unexpected message: {msg}"
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn mismatched_position_list_is_rejected() {
        let mut sc = small_scenario();
        sc.user_positions.pop();
        let err = validate_scenario(&sc).unwrap_err();
        assert!(err.contains("user_positions"), "unexpected message: {err}");

        let mut sc = small_scenario();
        sc.ap_positions.push(sc.ap_positions[0]);
        let err = validate_scenario(&sc).unwrap_err();
        assert!(err.contains("ap_positions"), "unexpected message: {err}");
    }

    #[test]
    fn out_of_range_session_reference_is_rejected() {
        let sc = small_scenario();
        let json = serde_json::to_string(&sc).unwrap();
        // The sparse wire stores users as a bare array of session indices;
        // point the first user at a session index that does not exist.
        let needle = "\"users\":[";
        let pos = json.find(needle).expect("wire format changed; update test");
        let start = pos + needle.len();
        let len = json[start..]
            .find([',', ']'])
            .expect("wire format changed; update test");
        let patched = format!("{}99{}", &json[..start], &json[start + len..]);
        let path = tmp("bad_session.json");
        std::fs::write(&path, patched).unwrap();
        let err = load_scenario(&path).unwrap_err();
        // The dangling reference is caught while *resolving* the sparse
        // wire (inside deserialization), so it classifies as a decode
        // error — `validate_scenario` findings on a structurally sound
        // scenario are the ones that classify as validation (exit 3).
        assert_eq!(err.exit_code(), 4, "dangling wire reference is decode");
        assert!(
            err.to_string().contains("session s99"),
            "unexpected message: {err}"
        );
        let _ = std::fs::remove_file(path);
    }
}

/// One parsed CSV row: `(figure, series, x) → (mean, min, max)`.
type ResultKey = (String, String, String);
type ResultRow = (f64, f64, f64);

/// Reads every `*.csv` written by the harness in `dir` into a map.
///
/// # Errors
///
/// I/O failures; malformed rows are skipped with a warning on stderr.
pub fn read_results_dir(
    dir: &Path,
) -> Result<std::collections::BTreeMap<ResultKey, ResultRow>, String> {
    let mut map = std::collections::BTreeMap::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        if path.extension().and_then(|e| e.to_str()) != Some("csv") {
            continue;
        }
        let content = std::fs::read_to_string(&path).map_err(|e| e.to_string())?;
        for line in content.lines().skip(1) {
            let parts: Vec<&str> = line.split(',').collect();
            if parts.len() != 7 {
                eprintln!(
                    "warning: skipping malformed row in {}: {line}",
                    path.display()
                );
                continue;
            }
            let key = (
                parts[0].to_string(),
                parts[1].to_string(),
                parts[2].to_string(),
            );
            let parse = |s: &str| s.parse::<f64>().map_err(|e| e.to_string());
            map.insert(key, (parse(parts[3])?, parse(parts[4])?, parse(parts[5])?));
        }
    }
    Ok(map)
}

/// Compares two harness result directories and prints per-point relative
/// mean deltas, flagging those beyond `tolerance` (fraction, e.g. 0.05).
/// Returns the number of flagged regressions.
///
/// # Errors
///
/// I/O or parse failures.
pub fn compare_results(dir_a: &Path, dir_b: &Path, tolerance: f64) -> Result<usize, String> {
    let a = read_results_dir(dir_a)?;
    let b = read_results_dir(dir_b)?;
    let mut flagged = 0usize;
    let mut compared = 0usize;
    println!(
        "{:<26} {:<22} {:>8} | {:>10} {:>10} {:>8}",
        "figure", "series", "x", "A mean", "B mean", "delta"
    );
    for (key, (mean_a, _, _)) in &a {
        let Some((mean_b, _, _)) = b.get(key) else {
            println!("{:<26} {:<22} {:>8} | only in A", key.0, key.1, key.2);
            continue;
        };
        compared += 1;
        let denom = mean_a.abs().max(1e-12);
        let delta = (mean_b - mean_a) / denom;
        let marker = if delta.abs() > tolerance {
            flagged += 1;
            "  <-- exceeds tolerance"
        } else {
            ""
        };
        println!(
            "{:<26} {:<22} {:>8} | {:>10.4} {:>10.4} {:>+7.2}%{marker}",
            key.0,
            key.1,
            key.2,
            mean_a,
            mean_b,
            delta * 100.0
        );
    }
    for key in b.keys() {
        if !a.contains_key(key) {
            println!("{:<26} {:<22} {:>8} | only in B", key.0, key.1, key.2);
        }
    }
    println!(
        "\ncompared {compared} points; {flagged} beyond ±{:.1}%",
        tolerance * 100.0
    );
    Ok(flagged)
}

#[cfg(test)]
mod compare_tests {
    use super::*;
    use crate::report::write_csv;
    use crate::stats::{Figure, Series, Summary};

    fn dir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("mcast_cmp_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn fig(mean: f64) -> Figure {
        Figure {
            id: "figX".into(),
            title: "t".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![Series {
                label: "S".into(),
                points: vec![(1.0, Summary::of(&[mean]))],
            }],
        }
    }

    #[test]
    fn identical_dirs_flag_nothing() {
        let (a, b) = (dir("a1"), dir("b1"));
        write_csv(&fig(2.0), &a).unwrap();
        write_csv(&fig(2.0), &b).unwrap();
        assert_eq!(compare_results(&a, &b, 0.05).unwrap(), 0);
    }

    #[test]
    fn large_delta_is_flagged() {
        let (a, b) = (dir("a2"), dir("b2"));
        write_csv(&fig(2.0), &a).unwrap();
        write_csv(&fig(3.0), &b).unwrap();
        assert_eq!(compare_results(&a, &b, 0.05).unwrap(), 1);
        // A generous tolerance accepts it.
        assert_eq!(compare_results(&a, &b, 0.60).unwrap(), 0);
    }

    #[test]
    fn missing_dir_is_an_error() {
        assert!(read_results_dir(Path::new("/nonexistent")).is_err());
    }
}
