//! Table and CSV output.

use std::fmt::Write as _;
use std::path::Path;

use crate::journal::atomic_write;
use crate::stats::Figure;

/// Renders a figure as an aligned text table (x column, then one
/// `mean (min–max)` column per series).
pub fn render_table(fig: &Figure) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {} — {}\n", fig.id, fig.title));
    out.push_str(&format!("   y = {}\n\n", fig.y_label));

    let x_width = fig.x_label.len().max(10);
    let col_width = 24;
    out.push_str(&format!("{:>x_width$}", fig.x_label));
    for s in &fig.series {
        out.push_str(&format!(" | {:^col_width$}", s.label));
    }
    out.push('\n');
    out.push_str(&"-".repeat(x_width + fig.series.len() * (col_width + 3)));
    out.push('\n');

    let n_points = fig.series.first().map_or(0, |s| s.points.len());
    for i in 0..n_points {
        let x = fig.series[0].points[i].0;
        out.push_str(&format!("{:>x_width$}", trim_float(x)));
        for s in &fig.series {
            let (_, sum) = s.points[i];
            // n == 0 marks a point whose every trial failed (see
            // `Summary::hole`): render the hole, not fake zeros.
            let cell = if sum.n == 0 {
                "(no data)".to_string()
            } else {
                format!(
                    "{} ({}–{})",
                    trim_float(sum.mean),
                    trim_float(sum.min),
                    trim_float(sum.max)
                )
            };
            out.push_str(&format!(" | {cell:^col_width$}"));
        }
        out.push('\n');
    }
    out.push('\n');
    out
}

fn trim_float(v: f64) -> String {
    if (v - v.round()).abs() < 1e-9 && v.abs() < 1e9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.4}")
    }
}

/// Writes a figure as `<dir>/<id>.csv` with one row per (series, x),
/// atomically: the full file is built in memory, then written via
/// tmp-file + fsync + rename, so a crash never leaves a partial CSV.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_csv(fig: &Figure, dir: &Path) -> std::io::Result<()> {
    let mut out = String::from("figure,series,x,mean,min,max,n\n");
    for s in &fig.series {
        for (x, sum) in &s.points {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{}",
                fig.id, s.label, x, sum.mean, sum.min, sum.max, sum.n
            );
        }
    }
    atomic_write(&dir.join(format!("{}.csv", fig.id)), out.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{Series, Summary};

    fn sample_figure() -> Figure {
        Figure {
            id: "figX".into(),
            title: "sample".into(),
            x_label: "users".into(),
            y_label: "load".into(),
            series: vec![Series {
                label: "SSA".into(),
                points: vec![(50.0, Summary::of(&[1.0, 2.0]))],
            }],
        }
    }

    #[test]
    fn table_contains_series_and_values() {
        let t = render_table(&sample_figure());
        assert!(t.contains("figX"));
        assert!(t.contains("SSA"));
        assert!(t.contains("1.5000 (1–2)"));
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("mcast_report_test");
        write_csv(&sample_figure(), &dir).unwrap();
        let content = std::fs::read_to_string(dir.join("figX.csv")).unwrap();
        assert!(content.starts_with("figure,series,x,mean,min,max,n"));
        assert!(content.contains("figX,SSA,50,1.5,1,2,2"));
    }
}
