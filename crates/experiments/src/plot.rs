//! Terminal plotting: renders a [`Figure`] as an ASCII chart so the
//! paper's figure *shapes* are visible directly in the harness output
//! (series means as scatter lines over an auto-scaled grid).

use crate::stats::Figure;

/// Marker glyphs assigned to series in order.
const MARKERS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

/// Renders the figure as an ASCII chart of the given size (plot area,
/// excluding margins). Series are drawn in order, later series win
/// collisions; the legend maps glyphs to labels.
pub fn render_ascii(fig: &Figure, width: usize, height: usize) -> String {
    let width = width.max(16);
    let height = height.max(6);

    // Gather points (x, mean) per series, skipping holes (n == 0 marks a
    // point whose every trial failed — its 0.0 mean is not a measurement).
    let series: Vec<(&str, Vec<(f64, f64)>)> = fig
        .series
        .iter()
        .map(|s| {
            (
                s.label.as_str(),
                s.points
                    .iter()
                    .filter(|&&(_, sum)| sum.n > 0)
                    .map(|&(x, sum)| (x, sum.mean))
                    .collect(),
            )
        })
        .collect();
    let all: Vec<(f64, f64)> = series.iter().flat_map(|(_, p)| p.iter().copied()).collect();
    if all.is_empty() {
        return format!("{} — (no data)\n", fig.id);
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    // Ground the y axis at zero when everything is non-negative and near
    // it (loads, counts) so shapes aren't exaggerated.
    if y_min > 0.0 && y_min < 0.5 * y_max {
        y_min = 0.0;
    }
    if (x_max - x_min).abs() < f64::EPSILON {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < f64::EPSILON {
        y_max = y_min + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    let to_col = |x: f64| -> usize {
        (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize
    };
    let to_row = |y: f64| -> usize {
        let r = ((y - y_min) / (y_max - y_min)) * (height - 1) as f64;
        height - 1 - r.round() as usize
    };
    for (si, (_, points)) in series.iter().enumerate() {
        let marker = MARKERS[si % MARKERS.len()];
        // Connect consecutive points with linear interpolation dots.
        for w in points.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            let steps = (to_col(x1).abs_diff(to_col(x0))).max(1);
            for k in 0..=steps {
                let t = k as f64 / steps as f64;
                let col = to_col(x0 + t * (x1 - x0));
                let row = to_row(y0 + t * (y1 - y0));
                if grid[row][col] == ' ' {
                    grid[row][col] = '.';
                }
            }
        }
        for &(x, y) in points {
            grid[to_row(y)][to_col(x)] = marker;
        }
    }

    let mut out = String::new();
    out.push_str(&format!("{} — {}\n", fig.id, fig.title));
    let y_label_width = 9;
    for (r, row) in grid.iter().enumerate() {
        let y_tick = if r == 0 {
            format!("{:>y_label_width$.3}", y_max)
        } else if r == height - 1 {
            format!("{:>y_label_width$.3}", y_min)
        } else {
            " ".repeat(y_label_width)
        };
        out.push_str(&y_tick);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(y_label_width));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "{}{:<w$.3}{:>w2$.3}  ({})\n",
        " ".repeat(y_label_width + 1),
        x_min,
        x_max,
        fig.x_label,
        w = width / 2,
        w2 = width - width / 2 - 2,
    ));
    out.push_str(&" ".repeat(y_label_width + 1));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(si, (label, _))| format!("{} {}", MARKERS[si % MARKERS.len()], label))
        .collect();
    out.push_str(&legend.join("   "));
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{Series, Summary};

    fn fig() -> Figure {
        Figure {
            id: "t".into(),
            title: "test figure".into(),
            x_label: "users".into(),
            y_label: "load".into(),
            series: vec![
                Series {
                    label: "A".into(),
                    points: vec![
                        (0.0, Summary::of(&[0.0])),
                        (50.0, Summary::of(&[2.0])),
                        (100.0, Summary::of(&[4.0])),
                    ],
                },
                Series {
                    label: "B".into(),
                    points: vec![(0.0, Summary::of(&[4.0])), (100.0, Summary::of(&[0.0]))],
                },
            ],
        }
    }

    #[test]
    fn renders_markers_axes_and_legend() {
        let s = render_ascii(&fig(), 40, 10);
        assert!(s.contains("test figure"));
        assert!(s.contains('*') && s.contains('o'));
        assert!(s.contains("* A") && s.contains("o B"));
        assert!(s.contains("users"));
        // Axis ticks: min 0 and max 4 appear.
        assert!(s.contains("4.000"));
        assert!(s.contains("0.000"));
    }

    #[test]
    fn rising_series_rises() {
        let s = render_ascii(&fig(), 40, 10);
        let rows: Vec<&str> = s.lines().collect();
        // Series A's first point (0,0) is near the bottom-left; its last
        // point (100,4) near the top-right.
        let top_rows = &rows[1..4].join("");
        let bottom_rows = &rows[8..11].join("");
        assert!(top_rows.contains('*'));
        assert!(bottom_rows.contains('*'));
    }

    #[test]
    fn empty_figure_degrades_gracefully() {
        let empty = Figure {
            id: "e".into(),
            title: "".into(),
            x_label: "".into(),
            y_label: "".into(),
            series: vec![],
        };
        assert!(render_ascii(&empty, 40, 10).contains("no data"));
    }

    #[test]
    fn single_point_series() {
        let one = Figure {
            id: "s".into(),
            title: "one".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![Series {
                label: "only".into(),
                points: vec![(5.0, Summary::of(&[3.0]))],
            }],
        };
        let s = render_ascii(&one, 30, 8);
        assert!(s.contains('*'));
    }
}
