//! Cross-validation of the discrete-event simulator against the analytic
//! model: the message-level protocol must land exactly where the
//! round-based engine lands, and measured airtime must equal the
//! Definition-1 load.

use mcast_core::{run_distributed, Association, DistributedConfig, Policy};
use mcast_sim::{measure_airtime, SimConfig, Simulator, Time, WakeSchedule};
use mcast_topology::ScenarioConfig;

use crate::Options;

/// Runs the validation and returns a human-readable report.
///
/// # Panics
///
/// Panics if the simulator diverges from the round-based engine or the
/// measured airtime disagrees with the analytic load — either would be a
/// reproduction-invalidating bug.
pub fn run(opts: &Options) -> String {
    let mut out = String::new();
    out.push_str("## validate — simulator vs analytic model\n\n");
    let seeds = if opts.quick { 3 } else { opts.seeds.min(10) };
    let cfg = ScenarioConfig {
        n_aps: 25,
        n_users: 60,
        n_sessions: 4,
        ..ScenarioConfig::paper_default()
    };
    let mut max_err = 0.0f64;
    let mut total_msgs = 0u64;
    let mut lock_cycles = Vec::new();
    let mut join_latencies_ms = Vec::new();
    for seed in 0..seeds {
        let sc = cfg.clone().with_seed(seed).generate();
        let inst = &sc.instance;
        for policy in [Policy::MinTotalLoad, Policy::MinMaxVector] {
            let sim = Simulator::new(
                inst,
                SimConfig {
                    policy,
                    ..SimConfig::default()
                },
            )
            .run();
            assert!(sim.converged, "seed {seed} {policy:?}: no convergence");
            let round = run_distributed(
                inst,
                &DistributedConfig {
                    policy,
                    ..DistributedConfig::default()
                },
                Association::empty(inst.n_users()),
            );
            assert_eq!(
                sim.association, round.association,
                "seed {seed} {policy:?}: simulator diverged from round-based engine"
            );
            let airtime = measure_airtime(
                inst,
                &sim.association,
                Time::from_secs(10),
                Time::from_millis(100),
            );
            max_err = max_err.max(airtime.max_abs_error());
            total_msgs += sim.total_messages();
            if let Some(m) = sim.median_join_latency() {
                join_latencies_ms.push(m.as_secs_f64() * 1000.0);
            }
        }
        // Lock-coordination mode must converge even under synchronized
        // wake-ups.
        let locked = Simulator::new(
            inst,
            SimConfig {
                schedule: WakeSchedule::SynchronizedLocked,
                max_cycles: 100,
                ..SimConfig::default()
            },
        )
        .run();
        assert!(locked.converged, "seed {seed}: lock mode did not converge");
        lock_cycles.push(locked.cycles as f64);
    }
    out.push_str(&format!(
        "seeds checked            : {seeds}\n\
         sim == round-based       : yes (both policies, every seed)\n\
         airtime max |error|      : {max_err:.2e} (must be < 1e-9)\n\
         control frames (total)   : {total_msgs}\n\
         lock-mode convergence    : yes; cycles avg {:.1}\n\
         median join latency      : {:.1} ms (avg over runs)\n\n",
        lock_cycles.iter().sum::<f64>() / lock_cycles.len() as f64,
        join_latencies_ms.iter().sum::<f64>() / join_latencies_ms.len().max(1) as f64
    ));
    assert!(max_err < 1e-9);
    out
}
