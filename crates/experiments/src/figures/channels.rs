//! **channels** — explicit interference modeling (paper §8 future work).
//!
//! Builds the AP interference graph (carrier-sense range = 2× the
//! communication range), colors it under a channel budget, and evaluates
//! the *effective* per-AP busy fraction — own multicast load plus
//! co-channel interferers — for SSA, MLA, and BLA associations.
//!
//! Two things to observe: (1) with 802.11a's 12 channels the effective
//! max load is near the nominal one, validating the paper's §3.1
//! non-interference assumption; (2) with few channels (802.11b/g's 3),
//! BLA/MLA reduce contention vs SSA even though they never see the
//! channel map — the paper's remark that they "implicitly optimize
//! interference".

use mcast_channels::{
    assign_channels, run_interference_aware, ColoringStrategy, EffectiveLoads, InterferenceGraph,
};
use mcast_core::{solve_bla, solve_mla, solve_ssa, Objective};
use mcast_topology::ScenarioConfig;

use crate::par::parallel_map;
use crate::runner::{Runner, TrialError, TrialKey};
use crate::stats::{Figure, Series, Summary};
use crate::Options;

/// Runs the channel-budget sweep.
pub fn run(opts: &Options, runner: &Runner) -> Vec<Figure> {
    let budgets: &[u16] = if opts.quick {
        &[1, 3, 12]
    } else {
        &[1, 2, 3, 6, 12, 24]
    };
    let cfg = ScenarioConfig {
        n_aps: 100,
        n_users: 200,
        ..ScenarioConfig::paper_default()
    };

    let algos: [&str; 4] = ["SSA", "MLA-C", "BLA-C", "Aware-D"];

    let mut max_eff: Vec<Series> = algos
        .iter()
        .map(|name| Series {
            label: (*name).to_string(),
            points: Vec::new(),
        })
        .collect();
    let mut overhead: Vec<Series> = max_eff.clone();

    let seeds: Vec<u64> = (0..opts.seeds).collect();
    for &budget in budgets {
        // Each seed's trial is independent; results come back in seed
        // order so the Summary accumulation matches the serial run. The
        // journaled row is `[max0..max3, ovh0..ovh3]`.
        let per_seed: Vec<Result<Vec<f64>, TrialError>> = parallel_map(&seeds, |&seed| {
            let key = TrialKey::new("channels", f64::from(budget), seed, "all");
            runner.trial(&key, || {
                let scenario = cfg.clone().with_seed(seed).generate();
                let inst = &scenario.instance;
                let graph = InterferenceGraph::from_positions(
                    &scenario.ap_positions,
                    2.0 * scenario.config.rate_table.range_m(),
                );
                let assignment = assign_channels(&graph, budget, ColoringStrategy::Dsatur);
                let fail = |stage: &str, e: &dyn std::fmt::Display| {
                    TrialError::failed(format!("{stage}: {e}"))
                };
                let associations = [
                    solve_ssa(inst, Objective::Mla).association,
                    solve_mla(inst)
                        .map_err(|e| fail("solve_mla", &e))?
                        .association,
                    solve_bla(inst)
                        .map_err(|e| fail("solve_bla", &e))?
                        .association,
                    // The §8 interference-aware distributed rule — the only
                    // one that actually sees the channel map.
                    run_interference_aware(inst, &graph, &assignment, 100).association,
                ];
                let mut row = vec![0.0f64; 2 * associations.len()];
                for (ai, assoc) in associations.iter().enumerate() {
                    let eff = EffectiveLoads::compute(inst, assoc, &graph, &assignment);
                    row[ai] = eff.max_effective().as_f64();
                    row[associations.len() + ai] = eff.interference_overhead().as_f64();
                }
                Ok(row)
            })
        });
        let mut values_max = vec![Vec::new(); algos.len()];
        let mut values_ovh = vec![Vec::new(); algos.len()];
        for row in per_seed.iter().filter_map(|r| r.as_ref().ok()) {
            for ai in 0..algos.len() {
                values_max[ai].push(row[ai]);
                values_ovh[ai].push(row[algos.len() + ai]);
            }
        }
        if values_max[0].is_empty() {
            runner.note_hole("channels", f64::from(budget), "all");
        }
        for ai in 0..algos.len() {
            max_eff[ai]
                .points
                .push((f64::from(budget), Summary::of_surviving(&values_max[ai])));
            overhead[ai]
                .points
                .push((f64::from(budget), Summary::of_surviving(&values_ovh[ai])));
        }
    }

    vec![
        Figure {
            id: "channels_max_effective".into(),
            title: "Max effective AP busy fraction vs channel budget (100 APs, 200 users)".into(),
            x_label: "channels".into(),
            y_label: "max effective load".into(),
            series: max_eff,
        },
        Figure {
            id: "channels_overhead".into(),
            title: "Total co-channel interference overhead vs channel budget".into(),
            x_label: "channels".into(),
            y_label: "interference overhead".into(),
            series: overhead,
        },
    ]
}
