//! **mobility** — the quasi-static assumption under test (paper §3.1).
//!
//! The paper assumes users "stay at one place for a relatively long time
//! period before changing their location". This experiment runs epochs:
//! each epoch a fraction of the users takes a Gaussian step, stale
//! associations out of coverage are dropped, and the serial distributed
//! algorithm repairs the association from where it stands. Reported per
//! mobility fraction: re-association churn per epoch (moves / users) and
//! how far the repaired total load drifts from a from-scratch solve.

use mcast_core::{run_distributed, DistributedConfig, Instance, Load};
use mcast_topology::ScenarioConfig;

use crate::par::parallel_map;
use crate::runner::{Runner, TrialError, TrialKey};
use crate::stats::{Figure, Series, Summary};
use crate::Options;

/// Runs the mobility-fraction sweep.
pub fn run(opts: &Options, runner: &Runner) -> Vec<Figure> {
    let fractions: &[f64] = if opts.quick {
        &[0.05, 0.50]
    } else {
        &[0.02, 0.05, 0.10, 0.25, 0.50]
    };
    let epochs = 6usize;
    let step_sigma = 120.0;
    let cfg = ScenarioConfig {
        n_aps: 60,
        n_users: 150,
        n_sessions: 4,
        ..ScenarioConfig::paper_default()
    };

    // Two policies: the paper's rule, and the same rule with a small
    // hysteresis (1/50 ≈ 0.02 load units) that suppresses marginal moves.
    let variants: [(&str, Load); 2] = [
        ("paper rule", Load::ZERO),
        ("hysteresis 1/50", Load::from_ratio(1, 50)),
    ];

    let mut churn_series: Vec<Series> = variants
        .iter()
        .map(|(name, _)| Series {
            label: format!("moves/user ({name})"),
            points: Vec::new(),
        })
        .collect();
    let mut drift_series: Vec<Series> = variants
        .iter()
        .map(|(name, _)| Series {
            label: format!("repaired/scratch ({name})"),
            points: Vec::new(),
        })
        .collect();

    for &fraction in fractions {
        for (vi, &(variant, hysteresis)) in variants.iter().enumerate() {
            let config = DistributedConfig {
                hysteresis,
                ..DistributedConfig::default()
            };
            // Each seed's epoch chain is serial internally but independent
            // of other seeds; fan out seeds, then append in seed order.
            // The journaled row is `[churn_0..churn_e, drift_0..drift_e]`.
            let seeds: Vec<u64> = (0..opts.seeds.min(10)).collect();
            let per_seed: Vec<Result<Vec<f64>, TrialError>> = parallel_map(&seeds, |&seed| {
                let key = TrialKey::new("mobility", fraction, seed, variant);
                runner.trial(&key, || {
                    let mut churn = Vec::with_capacity(epochs);
                    let mut drift = Vec::with_capacity(epochs);
                    let mut scenario = cfg.clone().with_seed(seed).generate();
                    // Initial association from scratch.
                    let mut assoc = solve_serial(&scenario.instance, None);
                    for epoch in 0..epochs {
                        scenario =
                            scenario.perturb(seed * 1000 + epoch as u64, fraction, step_sigma);
                        let inst = &scenario.instance;
                        let carried = assoc.restricted_to(inst);
                        let out = run_distributed(inst, &config, carried.clone());
                        // Churn: users whose AP differs from what they carried.
                        let moves = carried
                            .iter()
                            .zip(out.association.iter())
                            .filter(|(a, b)| a != b)
                            .count();
                        churn.push(moves as f64 / inst.n_users() as f64);
                        let repaired = out.association.total_load(inst).as_f64();
                        let scratch = solve_serial(inst, None).total_load(inst).as_f64();
                        drift.push(if scratch > 0.0 {
                            repaired / scratch
                        } else {
                            1.0
                        });
                        assoc = out.association;
                    }
                    churn.extend(drift);
                    Ok(churn)
                })
            });
            let mut churn_vals = Vec::new();
            let mut drift_vals = Vec::new();
            for row in per_seed.iter().filter_map(|r| r.as_ref().ok()) {
                churn_vals.extend_from_slice(&row[..epochs]);
                drift_vals.extend_from_slice(&row[epochs..]);
            }
            if churn_vals.is_empty() {
                runner.note_hole("mobility", fraction, variant);
            }
            churn_series[vi]
                .points
                .push((fraction, Summary::of_surviving(&churn_vals)));
            drift_series[vi]
                .points
                .push((fraction, Summary::of_surviving(&drift_vals)));
        }
    }

    vec![
        Figure {
            id: "mobility_churn".into(),
            title: "Re-association churn per epoch vs mobility fraction (60 APs, 150 users)".into(),
            x_label: "fraction".into(),
            y_label: "moves per user".into(),
            series: churn_series,
        },
        Figure {
            id: "mobility_drift".into(),
            title: "Incrementally repaired vs from-scratch total load".into(),
            x_label: "fraction".into(),
            y_label: "load ratio".into(),
            series: drift_series,
        },
    ]
}

fn solve_serial(
    inst: &Instance,
    initial: Option<mcast_core::Association>,
) -> mcast_core::Association {
    let start = initial.unwrap_or_else(|| mcast_core::Association::empty(inst.n_users()));
    run_distributed(inst, &DistributedConfig::default(), start).association
}
