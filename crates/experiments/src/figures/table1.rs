//! **Table 1** — transmission rate vs distance threshold (the 802.11a
//! model the whole evaluation runs on).
//!
//! This experiment prints the table verbatim from the implementation and
//! cross-validates the staircase lookup on a dense distance grid, so the
//! constants driving every other figure are pinned by an executable check.

use mcast_core::RateTable;

/// Renders Table 1 and runs the staircase validation.
///
/// Returns the rendered table; panics if the staircase lookup disagrees
/// with the thresholds (cannot happen unless the constants are edited).
pub fn run() -> String {
    let table = RateTable::ieee80211a();
    let mut out = String::new();
    out.push_str("## table1 — Transmission Rate vs. Distance Threshold (802.11a)\n\n");
    out.push_str("Rate (Mbps)            |");
    for s in table.steps() {
        out.push_str(&format!(" {:>4}", s.rate.0 / 1000));
    }
    out.push_str("\nDistance threshold (m) |");
    for s in table.steps() {
        out.push_str(&format!(" {:>4}", s.max_distance_m));
    }
    out.push('\n');

    // Validation: on a 1 m grid, the lookup returns exactly the highest
    // rate whose threshold is >= the distance.
    for d10 in 0..=2005u32 {
        let d = f64::from(d10) / 10.0;
        let expect = table
            .steps()
            .iter()
            .filter(|s| s.max_distance_m >= d)
            .map(|s| s.rate)
            .max();
        assert_eq!(table.rate_at(d), expect, "staircase mismatch at {d} m");
    }
    out.push_str("\nstaircase lookup validated on a 0.1 m grid over [0, 200.5] m\n\n");
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn table1_renders_and_validates() {
        let out = super::run();
        assert!(out.contains("54"));
        assert!(out.contains("200"));
        assert!(out.contains("validated"));
    }
}
