//! **revenue** — the §3.2 revenue models, empirically.
//!
//! The paper motivates each objective with a revenue model; this
//! experiment evaluates the models in the regime each is stated for:
//!
//! * **Pay-per-view** (MNU's model) under a *tight* budget (0.04), where
//!   not everyone can be served: revenue ∝ satisfied users, compared
//!   across the budget-respecting algorithms (SSA, MNU-C, MNU-D).
//! * **Concave unicast** and **per-byte unicast** (BLA's and MLA's
//!   models) under the paper's loose 0.9 budget, where every algorithm
//!   serves everyone — so the comparison isolates *where* the multicast
//!   load lands, not how many users are served. Jain's fairness index of
//!   leftover airtime is reported alongside.
//!
//! Expected diagonal: MNU wins pay-per-view; BLA wins the concave model
//! and fairness; MLA wins the per-byte model.

use mcast_core::revenue::{concave_unicast, jain_fairness, pay_per_view, per_byte_unicast};
use mcast_core::{
    run_distributed, run_min_max_vector, solve_bla, solve_mla, solve_mnu, solve_ssa, Association,
    DistributedConfig, Instance, Load, Objective,
};
use mcast_topology::ScenarioConfig;

use crate::par::parallel_map;
use crate::runner::{Runner, TrialError, TrialKey};
use crate::stats::{Figure, Series, Summary};
use crate::Options;

type Solver = (&'static str, fn(&Instance) -> Association);

/// Runs both regimes.
pub fn run(opts: &Options, runner: &Runner) -> Vec<Figure> {
    let mut figures = tight_budget_regime(opts, runner);
    figures.extend(loose_budget_regime(opts, runner));
    figures
}

/// Per-series values from the surviving per-seed rows.
fn columns(rows: &[Result<Vec<f64>, TrialError>], n_cols: usize) -> Vec<Vec<f64>> {
    let mut values = vec![Vec::new(); n_cols];
    for row in rows.iter().filter_map(|r| r.as_ref().ok()) {
        for (ai, v) in row.iter().take(n_cols).enumerate() {
            values[ai].push(*v);
        }
    }
    values
}

fn tight_budget_regime(opts: &Options, runner: &Runner) -> Vec<Figure> {
    let cfg = ScenarioConfig {
        n_aps: 100,
        n_users: 400,
        n_sessions: 18,
        budget: Load::permille(40),
        ..ScenarioConfig::paper_default()
    };
    let algos: [Solver; 3] = [
        ("SSA", |i| solve_ssa(i, Objective::Mnu).association),
        ("MNU-C", |i| solve_mnu(i).association),
        ("MNU-D", |i| {
            run_distributed(
                i,
                &DistributedConfig::default(),
                Association::empty(i.n_users()),
            )
            .association
        }),
    ];
    let seeds: Vec<u64> = (0..opts.seeds).collect();
    let per_seed: Vec<Result<Vec<f64>, TrialError>> = parallel_map(&seeds, |&seed| {
        let key = TrialKey::new("revenue_pay_per_view", 1.0, seed, "all");
        runner.trial(&key, || {
            let scenario = cfg.clone().with_seed(seed).generate();
            Ok(algos
                .iter()
                .map(|(_, solve)| pay_per_view(&solve(&scenario.instance), 1.0))
                .collect())
        })
    });
    let values = columns(&per_seed, algos.len());
    if values[0].is_empty() {
        runner.note_hole("revenue_pay_per_view", 1.0, "all");
    }
    vec![Figure {
        id: "revenue_pay_per_view".into(),
        title: "Pay-per-view revenue under a 0.04 budget — MNU's model (§3.2)".into(),
        x_label: "-".into(),
        y_label: "revenue".into(),
        series: algos
            .iter()
            .enumerate()
            .map(|(ai, (name, _))| Series {
                label: (*name).to_string(),
                points: vec![(1.0, Summary::of_surviving(&values[ai]))],
            })
            .collect(),
    }]
}

fn loose_budget_regime(opts: &Options, runner: &Runner) -> Vec<Figure> {
    // Few APs, many sessions: per-AP loads get close to 1, where the
    // concavity of the unicast return actually bites (at light loads
    // √(1−l) is nearly linear and the model degenerates to per-byte).
    let cfg = ScenarioConfig {
        n_aps: 25,
        n_users: 200,
        n_sessions: 8,
        // Truly uncapped: per-AP loads approach 1 in this dense regime,
        // and the comparison needs every algorithm to serve everyone.
        budget: Load::from(10u32),
        ..ScenarioConfig::paper_default()
    };
    let algos: [Solver; 4] = [
        ("SSA", |i| solve_ssa(i, Objective::Mla).association),
        ("BLA-C", |i| solve_bla(i).expect("coverage").association),
        ("BLA-D", |i| run_min_max_vector(i).association),
        ("MLA-C", |i| solve_mla(i).expect("coverage").association),
    ];
    type RevenueMetric = fn(&Association, &Instance) -> f64;
    let models: [(&str, &str, RevenueMetric); 3] = [
        (
            "revenue_concave_unicast",
            "Concave unicast revenue Σ√(1−load), loose budget — BLA's model (§3.2)",
            concave_unicast,
        ),
        (
            "revenue_per_byte_unicast",
            "Per-byte unicast revenue Σ(1−load), loose budget — MLA's model (§3.2)",
            per_byte_unicast,
        ),
        (
            "revenue_jain_fairness",
            "Jain fairness of leftover airtime, loose budget",
            jain_fairness,
        ),
    ];

    let seeds: Vec<u64> = (0..opts.seeds).collect();
    // One trial computes all (model, algo) cells for a seed; the row is
    // journaled flat as model-major `[m0a0, m0a1, .., m2a3]`.
    let per_seed: Vec<Result<Vec<f64>, TrialError>> = parallel_map(&seeds, |&seed| {
        let key = TrialKey::new("revenue_loose_budget", 1.0, seed, "all");
        runner.trial(&key, || {
            let scenario = cfg.clone().with_seed(seed).generate();
            let inst = &scenario.instance;
            let mut rows = vec![0.0f64; models.len() * algos.len()];
            for (ai, (_, solve)) in algos.iter().enumerate() {
                let assoc = solve(inst);
                debug_assert_eq!(assoc.satisfied_count(), inst.n_users());
                for (mi, (_, _, metric)) in models.iter().enumerate() {
                    rows[mi * algos.len() + ai] = metric(&assoc, inst);
                }
            }
            Ok(rows)
        })
    });
    let flat = columns(&per_seed, models.len() * algos.len());
    if flat[0].is_empty() {
        runner.note_hole("revenue_loose_budget", 1.0, "all");
    }

    models
        .iter()
        .enumerate()
        .map(|(mi, (id, title, _))| Figure {
            id: (*id).to_string(),
            title: (*title).to_string(),
            x_label: "-".into(),
            y_label: "revenue".into(),
            series: algos
                .iter()
                .enumerate()
                .map(|(ai, (name, _))| Series {
                    label: (*name).to_string(),
                    points: vec![(1.0, Summary::of_surviving(&flat[mi * algos.len() + ai]))],
                })
                .collect(),
        })
        .collect()
}
