//! **faults** — recovery behaviour under the fault-injection subsystem.
//!
//! The paper's evaluation assumes a static, failure-free WLAN. This
//! experiment measures what its distributed protocols do when that
//! assumption breaks: a *coordinated outage* takes down the most-loaded
//! APs mid-run (down for a fixed window, then back), and each policy ×
//! wake-schedule combination must re-home the displaced users and settle
//! again.
//!
//! Reported per run, as JSON (written to `<out>/faults.json` and echoed
//! to stdout):
//!
//! - **time-to-reconvergence** per fault epoch — how long association
//!   churn continues after the failure (and after the recovery);
//! - **transient coverage loss** — user-microseconds of lost service
//!   until the displaced users are re-homed;
//! - **wasted retries** — lock denials, denied association requests and
//!   abandoned exchanges caused by the fault;
//! - **per-AP load overshoot** — the peak max load the survivors carried,
//!   against the analytic optimum (BLA's balanced max load) for the
//!   intact network.

use mcast_core::{solve_bla, Policy};
use mcast_faults::{ApOutage, FaultPlan, RecoverySummary};
use mcast_sim::{SimConfig, Simulator, WakeSchedule};
use mcast_topology::ScenarioConfig;
use serde::{Deserialize, Serialize};

use crate::par::parallel_map;
use crate::runner::{Runner, TrialError, TrialKey};
use crate::Options;

/// Shape of the scenario and outage, echoed into the JSON so a result is
/// self-describing.
#[derive(Debug, Serialize)]
struct Setup {
    n_aps: usize,
    n_users: usize,
    n_sessions: usize,
    seeds: u64,
    aps_down: usize,
    down_cycle: u64,
    up_cycle: u64,
    max_cycles: usize,
}

/// One (seed, schedule, policy) run. Deserializable so a seed's rows can
/// replay from the journal on `--resume`.
#[derive(Debug, Serialize, Deserialize)]
struct RunRow {
    seed: u64,
    schedule: String,
    policy: String,
    converged: bool,
    cycles: usize,
    /// Instants (µs) at which fault epochs hit: the outage, the recovery.
    fault_epochs_us: Vec<u64>,
    /// Time-to-reconvergence per epoch, µs (`null` = never settled).
    reconvergence_us: Vec<Option<u64>>,
    /// p50/p95/max over those times — the same [`RecoverySummary`] the
    /// controller reports in epochs, so the two runtimes compare
    /// directly.
    reconvergence_summary: RecoverySummary,
    /// Transient coverage loss per epoch, user-microseconds.
    coverage_loss_user_us: Vec<u64>,
    wasted_retries: u64,
    abandoned_exchanges: u64,
    assoc_denied: u64,
    frames_lost: u64,
    total_messages: u64,
    final_satisfied: usize,
    /// Peak per-AP load the ledger ever held during the run.
    peak_max_load: f64,
    /// BLA's analytic balanced max load for the intact network.
    optimal_max_load: f64,
    /// `peak_max_load / optimal_max_load` — the transient overshoot the
    /// outage forced onto the surviving APs.
    overshoot_vs_optimum: f64,
}

#[derive(Debug, Serialize)]
struct FaultsReport {
    setup: Setup,
    runs: Vec<RunRow>,
}

fn schedule_name(s: WakeSchedule) -> &'static str {
    match s {
        WakeSchedule::Staggered => "Staggered",
        WakeSchedule::Synchronized => "Synchronized",
        WakeSchedule::SynchronizedLocked => "SynchronizedLocked",
    }
}

fn policy_name(p: Policy) -> &'static str {
    match p {
        Policy::MinTotalLoad => "MinTotalLoad",
        Policy::MinMaxVector => "MinMaxVector",
    }
}

/// Runs the coordinated-outage experiment and returns the JSON document.
pub fn run(opts: &Options, runner: &Runner) -> String {
    let (n_aps, n_users, n_sessions, seeds) = if opts.quick {
        (10, 40, 3, 2)
    } else {
        (20, 80, 4, opts.seeds.min(10))
    };
    let aps_down = 3usize.min(n_aps / 3).max(1);
    let (down_cycle, up_cycle) = (20u64, 45u64);
    let max_cycles = 150;

    // Seeds are independent; fan them out and flatten in seed order so the
    // JSON rows keep the serial (seed, schedule, policy) order.
    let seed_list: Vec<u64> = (0..seeds).collect();
    let per_seed: Vec<Result<Vec<RunRow>, TrialError>> = parallel_map(&seed_list, |&seed| {
        let key = TrialKey::new("faults", 1.0, seed, "outage");
        runner.trial(&key, || {
            let mut runs = Vec::new();
            let scenario = ScenarioConfig {
                n_aps,
                n_users,
                n_sessions,
                ..ScenarioConfig::paper_default()
            }
            .with_seed(seed)
            .generate();
            let inst = &scenario.instance;

            // The analytic optimum for the intact network, and — via its
            // association — the most-loaded APs, which the outage targets
            // (worst case: the users hardest to re-home all move at once).
            let opt = solve_bla(inst).map_err(|e| TrialError::failed(format!("solve_bla: {e}")))?;
            let mut by_load: Vec<_> = inst
                .aps()
                .map(|a| (opt.association.ap_load(a, inst), a))
                .collect();
            by_load.sort();
            let victims: Vec<_> = by_load
                .iter()
                .rev()
                .take(aps_down)
                .map(|&(_, a)| a)
                .collect();

            for schedule in [WakeSchedule::Staggered, WakeSchedule::SynchronizedLocked] {
                for policy in [Policy::MinTotalLoad, Policy::MinMaxVector] {
                    let cfg = SimConfig {
                        policy,
                        schedule,
                        max_cycles,
                        quiet_cycles: 6,
                        ..SimConfig::default()
                    };
                    let plan = FaultPlan {
                        ap_outages: victims
                            .iter()
                            .map(|&a| ApOutage {
                                ap: a,
                                down_at_us: down_cycle * cfg.period.0,
                                up_at_us: Some(up_cycle * cfg.period.0),
                            })
                            .collect(),
                        ..FaultPlan::none()
                    };
                    let report = Simulator::new(
                        inst,
                        SimConfig {
                            faults: plan,
                            ..cfg
                        },
                    )
                    .run();
                    let opt_max = opt.max_load.as_f64();
                    let peak = report.peak_max_load.as_f64();
                    runs.push(RunRow {
                        seed,
                        schedule: schedule_name(schedule).to_string(),
                        policy: policy_name(policy).to_string(),
                        converged: report.converged,
                        cycles: report.cycles,
                        fault_epochs_us: report.fault_epochs.iter().map(|t| t.0).collect(),
                        reconvergence_us: report
                            .reconvergence_times()
                            .iter()
                            .map(|r| r.map(|t| t.0))
                            .collect(),
                        reconvergence_summary: report.reconvergence_summary(),
                        coverage_loss_user_us: report.coverage_loss_user_us(),
                        wasted_retries: report.wasted_retries(),
                        abandoned_exchanges: report.abandoned_exchanges,
                        assoc_denied: report.assoc_denied,
                        frames_lost: report.frames_lost,
                        total_messages: report.total_messages(),
                        final_satisfied: report.association.satisfied_count(),
                        peak_max_load: peak,
                        optimal_max_load: opt_max,
                        overshoot_vs_optimum: if opt_max > 0.0 { peak / opt_max } else { 0.0 },
                    });
                }
            }
            Ok(runs)
        })
    });
    if per_seed.iter().all(|r| r.is_err()) {
        runner.note_hole("faults", 1.0, "outage");
    }
    let runs: Vec<RunRow> = per_seed
        .into_iter()
        .filter_map(Result::ok)
        .flatten()
        .collect();

    let report = FaultsReport {
        setup: Setup {
            n_aps,
            n_users,
            n_sessions,
            seeds,
            aps_down,
            down_cycle,
            up_cycle,
            max_cycles,
        },
        runs,
    };
    serde_json::to_string_pretty(&report).expect("report is finite")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_emits_wellformed_json() {
        let opts = Options {
            quick: true,
            seeds: 1,
            ..Options::default()
        };
        let json = run(&opts, &crate::runner::Runner::ephemeral());
        let v: serde_json::Value = serde_json::parse_value(&json).expect("valid JSON");
        let runs = v
            .get("runs")
            .and_then(|r| match r {
                serde_json::Value::Array(a) => Some(a),
                _ => None,
            })
            .expect("runs array");
        // 2 quick-mode seeds × 2 schedules × 2 policies.
        assert_eq!(runs.len(), 8);
        for row in runs {
            assert!(row.get("reconvergence_us").is_some());
            assert!(row.get("reconvergence_summary").is_some());
            assert!(row.get("coverage_loss_user_us").is_some());
            let sched = row.get("schedule").unwrap();
            assert!(matches!(sched, serde_json::Value::Str(s)
                if s == "Staggered" || s == "SynchronizedLocked"));
        }
    }
}
