//! **controller** — the online resilient controller under a coordinated
//! outage, swept across the graceful-degradation ladder's policies.
//!
//! The paper's centralized algorithms solve one static instance. This
//! experiment runs them *online*: a large WLAN suffers a coordinated
//! outage (the most-loaded APs go down mid-run, then come back) plus
//! background mobility churn, and the epoch-driven controller
//! (`mcast-controller`) must keep the association legal and covered.
//! Each seed runs the identical scenario × fault plan under all three
//! ladder policies:
//!
//! - **full** — re-solve from scratch every dirty epoch (the paper's
//!   algorithm, applied naively online);
//! - **repair** — full solve at epoch 0, then incremental repair of only
//!   the orphaned/arrived users against the live [`LoadLedger`] —
//!   expected to cause strictly less disruption at equal final coverage;
//! - **ssa-only** — the strongest-signal fallback, the ladder's floor.
//!
//! Reported per run, as JSON (written to `<out>/controller.json` and
//! echoed to stdout): the full per-epoch `ControllerReport` (solve path,
//! work, handoffs, shed/readmitted, auditor verdicts) plus a per-seed
//! *headline* comparing repair vs full on the disruption score
//! (handoffs + coverage-loss user·epochs) and final coverage.
//!
//! [`LoadLedger`]: mcast_core::LoadLedger

use mcast_controller::{ControllerConfig, ControllerReport, LadderPolicy};
use mcast_core::{solve_mnu, Objective};
use mcast_faults::{ApOutage, ChurnModel, FaultPlan};
use mcast_topology::{Scenario, ScenarioConfig};
use serde::{Deserialize, Serialize};

use crate::par::parallel_map;
use crate::runner::{Runner, TrialError, TrialKey};
use crate::Options;

/// Shape of the scenario, outage and epoch clock, echoed into the JSON
/// so a result is self-describing.
#[derive(Debug, Serialize)]
struct Setup {
    n_aps: usize,
    n_users: usize,
    n_sessions: usize,
    seeds: u64,
    objective: String,
    aps_down: usize,
    down_epoch: u64,
    up_epoch: u64,
    n_epochs: u64,
    epoch_us: u64,
    jump_prob: f64,
    link_keep_prob: f64,
}

/// One (seed, policy) controller run. Deserializable so a finished
/// policy's row replays from the journal on `--resume`.
#[derive(Debug, Serialize, Deserialize)]
struct PolicyRow {
    seed: u64,
    policy: String,
    report: ControllerReport,
}

/// The per-seed repair-vs-full verdict the experiment exists to measure.
#[derive(Debug, Serialize)]
struct Headline {
    seed: u64,
    disruption_full: u64,
    disruption_repair: u64,
    disruption_ssa_only: Option<u64>,
    /// True iff repair caused strictly less disruption than full
    /// re-solving while ending at the same coverage.
    repair_beats_full: bool,
    final_satisfied_full: usize,
    final_satisfied_repair: usize,
    equal_final_coverage: bool,
}

#[derive(Debug, Serialize)]
struct ControllerJson {
    setup: Setup,
    runs: Vec<PolicyRow>,
    headline: Vec<Headline>,
}

/// Runs the policy sweep and returns the JSON document.
pub fn run(opts: &Options, runner: &Runner) -> String {
    // Full mode is the headline scale: a 2000-AP campus with a
    // 100-AP coordinated outage. Quick mode shrinks everything but
    // keeps the same shape (outage + recovery + churn) and turns the
    // from-scratch ledger oracle on every epoch.
    let (n_aps, n_users, n_sessions, seeds, aps_down, jump_prob) = if opts.quick {
        (12, 48, 3, 2, 3, 0.25)
    } else {
        (2000, 6000, 8, opts.seeds.min(2), 100, 0.02)
    };
    let (n_epochs, down_epoch, up_epoch) = if opts.quick { (16, 3, 9) } else { (30, 6, 18) };
    let epoch_us = 100_000u64;
    let link_keep_prob = 0.6;
    let objective = Objective::Mnu;

    let seed_list: Vec<u64> = (0..seeds).collect();
    let per_seed: Vec<Vec<Result<PolicyRow, TrialError>>> = parallel_map(&seed_list, |&seed| {
        let keys: Vec<TrialKey> = LadderPolicy::ALL
            .iter()
            .map(|p| TrialKey::new("controller", 1.0, seed, p.name()))
            .collect();
        // Generate the (large) scenario once per seed, shared by the
        // three policy trials — skipped entirely when every policy
        // already has a journaled row.
        let generate = || {
            ScenarioConfig {
                n_aps,
                n_users,
                n_sessions,
                ..ScenarioConfig::paper_default()
            }
            .with_seed(seed)
            .generate()
        };
        let scenario = if runner.all_cached(&keys) {
            None
        } else {
            Some(generate())
        };
        // The outage targets the most-loaded APs of the intact solution
        // (worst case: the users hardest to re-home all orphan at once).
        let plan = scenario.as_ref().map(|sc| {
            build_plan(
                sc,
                seed,
                aps_down,
                down_epoch,
                up_epoch,
                epoch_us,
                jump_prob,
                link_keep_prob,
            )
        });

        keys.iter()
            .zip(LadderPolicy::ALL)
            .map(|(key, policy)| {
                runner.trial(key, || {
                    // A journaled row that was later rejected (schema
                    // drift) replays as a fresh trial: regenerate.
                    let owned;
                    let (sc, plan) = match (&scenario, &plan) {
                        (Some(sc), Some(plan)) => (sc, plan.clone()),
                        _ => {
                            owned = generate();
                            let plan = build_plan(
                                &owned,
                                seed,
                                aps_down,
                                down_epoch,
                                up_epoch,
                                epoch_us,
                                jump_prob,
                                link_keep_prob,
                            );
                            (&owned, plan)
                        }
                    };
                    let cfg = ControllerConfig {
                        objective,
                        policy,
                        epoch_us,
                        n_epochs,
                        work_budget: 0,
                        audit_oracle: opts.quick,
                    };
                    let outcome = mcast_controller::run(&sc.instance, &plan, &cfg)
                        .map_err(TrialError::failed)?;
                    Ok(PolicyRow {
                        seed,
                        policy: policy.name().to_string(),
                        report: outcome.report,
                    })
                })
            })
            .collect()
    });
    let flat: Vec<Result<PolicyRow, TrialError>> = per_seed.into_iter().flatten().collect();
    if flat.iter().all(|r| r.is_err()) {
        runner.note_hole("controller", 1.0, "all-policies");
    }
    let runs: Vec<PolicyRow> = flat.into_iter().filter_map(Result::ok).collect();

    let headline = seed_list
        .iter()
        .filter_map(|&seed| {
            let by = |name: &str| {
                runs.iter()
                    .find(|r| r.seed == seed && r.policy == name)
                    .map(|r| &r.report)
            };
            let (full, repair) = (by("full")?, by("repair")?);
            Some(Headline {
                seed,
                disruption_full: full.disruption,
                disruption_repair: repair.disruption,
                disruption_ssa_only: by("ssa-only").map(|r| r.disruption),
                repair_beats_full: repair.disruption < full.disruption
                    && repair.final_satisfied == full.final_satisfied,
                final_satisfied_full: full.final_satisfied,
                final_satisfied_repair: repair.final_satisfied,
                equal_final_coverage: repair.final_satisfied == full.final_satisfied,
            })
        })
        .collect();

    let json = ControllerJson {
        setup: Setup {
            n_aps,
            n_users,
            n_sessions,
            seeds,
            objective: format!("{objective:?}"),
            aps_down,
            down_epoch,
            up_epoch,
            n_epochs,
            epoch_us,
            jump_prob,
            link_keep_prob,
        },
        runs,
        headline,
    };
    serde_json::to_string_pretty(&json).expect("report is finite")
}

/// The shared fault plan of one seed: the `aps_down` most-loaded APs of
/// the intact MNU solution go down together at `down_epoch` and return
/// at `up_epoch`, over background mobility churn. Shared with
/// `crate::serve`, which replays the same chaos through the
/// event-driven service.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_plan(
    scenario: &Scenario,
    seed: u64,
    aps_down: usize,
    down_epoch: u64,
    up_epoch: u64,
    epoch_us: u64,
    jump_prob: f64,
    link_keep_prob: f64,
) -> FaultPlan {
    let inst = &scenario.instance;
    let sol = solve_mnu(inst);
    let mut by_load: Vec<_> = inst
        .aps()
        .map(|a| (sol.association.ap_load(a, inst), a))
        .collect();
    by_load.sort();
    FaultPlan {
        seed,
        ap_outages: by_load
            .iter()
            .rev()
            .take(aps_down)
            .map(|&(_, a)| ApOutage {
                ap: a,
                down_at_us: down_epoch * epoch_us,
                up_at_us: Some(up_epoch * epoch_us),
            })
            .collect(),
        churn: ChurnModel {
            jump_prob,
            link_keep_prob,
            ..ChurnModel::none()
        },
        ..FaultPlan::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_emits_wellformed_json_with_zero_violations() {
        let opts = Options {
            quick: true,
            seeds: 2,
            ..Options::default()
        };
        let json = run(&opts, &crate::runner::Runner::ephemeral());
        let v: serde_json::Value = serde_json::parse_value(&json).expect("valid JSON");
        let runs = v
            .get("runs")
            .and_then(|r| match r {
                serde_json::Value::Array(a) => Some(a),
                _ => None,
            })
            .expect("runs array");
        // 2 quick-mode seeds × 3 ladder policies.
        assert_eq!(runs.len(), 6);
        for row in runs {
            let report = row.get("report").expect("report");
            assert!(matches!(
                report.get("invariant_violations"),
                Some(serde_json::Value::Int(0))
            ));
            // Every epoch's solve path is recorded.
            let epochs = report
                .get("epochs")
                .and_then(|e| match e {
                    serde_json::Value::Array(a) => Some(a),
                    _ => None,
                })
                .expect("epochs array");
            assert_eq!(epochs.len(), 16);
            assert!(epochs.iter().all(|e| e.get("path").is_some()));
        }
        let headline = v
            .get("headline")
            .and_then(|h| match h {
                serde_json::Value::Array(a) => Some(a),
                _ => None,
            })
            .expect("headline array");
        assert_eq!(headline.len(), 2, "one verdict per seed");
        for h in headline {
            assert!(h.get("disruption_full").is_some());
            assert!(h.get("disruption_repair").is_some());
            assert!(h.get("repair_beats_full").is_some());
        }
    }
}
