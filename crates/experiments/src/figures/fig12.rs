//! **Figure 12** — the approximation algorithms against certified optima
//! on small networks: 30 APs and 10–50 users in a 600 m × 600 m area.
//!
//! (a) total AP load: MLA-C / MLA-D / OPT (paper: greedy ≈ 25% / 22.2%
//! above optimal at 30 users); (b) max AP load: BLA-C / BLA-D / OPT
//! (≈ 12% / 22.6% above at 40 users); (c) unsatisfied users at budget
//! 0.042: MNU-C / MNU-D / SSA / OPT.
//!
//! The paper solved ILPs here; we run the `mcast-exact` branch-and-bound
//! (see DESIGN.md). The harness reports whether every instance was
//! certified optimal within the node budget.

use mcast_core::Load;
use mcast_topology::ScenarioConfig;

use crate::algos::{Algo, Metric};
use crate::figures::{pick_points, sweep_with_proofs, ProofStats};
use crate::runner::Runner;
use crate::stats::Figure;
use crate::Options;

/// Runs all three panels. Prints a certification summary to stderr: how
/// many exact-solver runs were proved optimal within `--max-nodes`.
pub fn run(opts: &Options, runner: &Runner) -> Vec<Figure> {
    let xs = pick_points(&[10.0, 20.0, 30.0, 40.0, 50.0], opts.quick);

    let base = |users: f64| ScenarioConfig {
        n_users: users as usize,
        ..ScenarioConfig::figure12_default()
    };

    let mut proofs = ProofStats::default();
    let mut add = |p: ProofStats| {
        proofs.certified += p.certified;
        proofs.total += p.total;
    };

    let (series_a, pa) = sweep_with_proofs(
        "fig12a",
        &xs,
        base,
        &[Algo::MlaC, Algo::MlaD, Algo::Ssa, Algo::OptMla],
        Metric::TotalLoad,
        opts,
        runner,
    );
    add(pa);
    let a = Figure {
        id: "fig12a".into(),
        title: "Total AP load vs users, 30 APs, 600m x 600m — greedy vs optimal".into(),
        x_label: "users".into(),
        y_label: "total AP load".into(),
        series: series_a,
    };

    let (series_b, pb) = sweep_with_proofs(
        "fig12b",
        &xs,
        base,
        &[Algo::BlaC, Algo::BlaD, Algo::Ssa, Algo::OptBla],
        Metric::MaxLoad,
        opts,
        runner,
    );
    add(pb);
    let b = Figure {
        id: "fig12b".into(),
        title: "Max AP load vs users, 30 APs, 600m x 600m — greedy vs optimal".into(),
        x_label: "users".into(),
        y_label: "max AP load".into(),
        series: series_b,
    };

    let (series_c, pc) = sweep_with_proofs(
        "fig12c",
        &xs,
        |users| ScenarioConfig {
            budget: Load::permille(42),
            ..base(users)
        },
        &[Algo::MnuC, Algo::MnuD, Algo::Ssa, Algo::OptMnu],
        Metric::Unsatisfied,
        opts,
        runner,
    );
    add(pc);
    let c = Figure {
        id: "fig12c".into(),
        title: "Unsatisfied users vs users, 30 APs, budget 0.042".into(),
        x_label: "users".into(),
        y_label: "unsatisfied users".into(),
        series: series_c,
    };

    eprintln!(
        "fig12: {}/{} exact-solver runs certified optimal (node cap {})",
        proofs.certified, proofs.total, opts.max_nodes
    );

    vec![a, b, c]
}
