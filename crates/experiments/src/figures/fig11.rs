//! **Figure 11** — satisfied users vs per-AP multicast load budget
//! (MNU-C, MNU-D, SSA) with 400 users, 100 APs, 18 sessions.
//!
//! Paper headline: MNU-C / MNU-D serve ≈ 36.9% / 20.2% more users than
//! SSA at budget 0.04.

use mcast_core::Load;
use mcast_topology::ScenarioConfig;

use crate::algos::{Algo, Metric};
use crate::figures::{pick_points, sweep};
use crate::runner::Runner;
use crate::stats::Figure;
use crate::Options;

const ALGOS: [Algo; 3] = [Algo::MnuC, Algo::MnuD, Algo::Ssa];

/// Runs the budget sweep.
pub fn run(opts: &Options, runner: &Runner) -> Vec<Figure> {
    // Budgets in permille: 10‰ .. 100‰ (0.01 .. 0.10).
    let xs = pick_points(
        &[10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0],
        opts.quick,
    );
    let series = sweep(
        "fig11",
        &xs,
        |budget_permille| ScenarioConfig {
            n_users: 400,
            n_aps: 100,
            n_sessions: 18,
            budget: Load::permille(budget_permille as u32),
            ..ScenarioConfig::paper_default()
        },
        &ALGOS,
        Metric::Satisfied,
        opts,
        runner,
    );
    // Report x in load units, not permille.
    let series = series
        .into_iter()
        .map(|mut s| {
            for p in &mut s.points {
                p.0 /= 1000.0;
            }
            s
        })
        .collect();
    vec![Figure {
        id: "fig11".into(),
        title: "Satisfied users vs multicast load budget (400 users, 100 APs, 18 sessions)".into(),
        x_label: "budget".into(),
        y_label: "satisfied users".into(),
        series,
    }]
}
