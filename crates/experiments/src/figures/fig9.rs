//! **Figure 9** — total AP load for multicast sessions (MLA-C, MLA-D, SSA).
//!
//! Panel (a) varies users (50–400) at 200 APs; panel (b) varies APs
//! (25–200) at 100 users; panel (c) varies sessions (1–25) at 200 APs and
//! 200 users. Paper headline: MLA-C / MLA-D total load ≈ 31.1% / 30.1%
//! below SSA at 400 users; the distributed variant within ~5% of the
//! centralized one.

use mcast_topology::ScenarioConfig;

use crate::algos::{Algo, Metric};
use crate::figures::{pick_points, sweep};
use crate::runner::Runner;
use crate::stats::Figure;
use crate::Options;

const ALGOS: [Algo; 3] = [Algo::MlaC, Algo::MlaD, Algo::Ssa];

/// Runs all three panels.
pub fn run(opts: &Options, runner: &Runner) -> Vec<Figure> {
    vec![
        panel_a(opts, runner),
        panel_b(opts, runner),
        panel_c(opts, runner),
    ]
}

fn panel_a(opts: &Options, runner: &Runner) -> Figure {
    let xs = pick_points(
        &[50.0, 100.0, 150.0, 200.0, 250.0, 300.0, 350.0, 400.0],
        opts.quick,
    );
    let series = sweep(
        "fig9a",
        &xs,
        |users| ScenarioConfig {
            n_users: users as usize,
            n_aps: 200,
            ..ScenarioConfig::paper_default()
        },
        &ALGOS,
        Metric::TotalLoad,
        opts,
        runner,
    );
    Figure {
        id: "fig9a".into(),
        title: "Total AP load vs number of users (200 APs, 5 sessions)".into(),
        x_label: "users".into(),
        y_label: "total AP load".into(),
        series,
    }
}

fn panel_b(opts: &Options, runner: &Runner) -> Figure {
    let xs = pick_points(
        &[25.0, 50.0, 75.0, 100.0, 125.0, 150.0, 175.0, 200.0],
        opts.quick,
    );
    let series = sweep(
        "fig9b",
        &xs,
        |aps| ScenarioConfig {
            n_aps: aps as usize,
            n_users: 100,
            ..ScenarioConfig::paper_default()
        },
        &ALGOS,
        Metric::TotalLoad,
        opts,
        runner,
    );
    Figure {
        id: "fig9b".into(),
        title: "Total AP load vs number of APs (100 users, 5 sessions)".into(),
        x_label: "APs".into(),
        y_label: "total AP load".into(),
        series,
    }
}

fn panel_c(opts: &Options, runner: &Runner) -> Figure {
    let xs = pick_points(&[1.0, 5.0, 10.0, 15.0, 20.0, 25.0], opts.quick);
    let series = sweep(
        "fig9c",
        &xs,
        |sessions| ScenarioConfig {
            n_sessions: sessions as usize,
            n_aps: 200,
            n_users: 200,
            ..ScenarioConfig::paper_default()
        },
        &ALGOS,
        Metric::TotalLoad,
        opts,
        runner,
    );
    Figure {
        id: "fig9c".into(),
        title: "Total AP load vs number of sessions (200 APs, 200 users)".into(),
        x_label: "sessions".into(),
        y_label: "total AP load".into(),
        series,
    }
}
