//! Ablations beyond the paper's figures, exercising the design choices
//! DESIGN.md calls out:
//!
//! * **rate-policy** — multi-rate multicast vs basic-rate-only (§3.1 notes
//!   the problems stay NP-hard and the algorithms still beat SSA).
//! * **power** — uniform transmit-power scaling (§8 future work), trading
//!   coverage for rate.
//! * **mnu-augment** — the extension pass that admits leftover users onto
//!   realized-load slack after the covering-model MCG run.
//! * **model-vs-realized** — how much the realized (Definition 1) load
//!   undercuts the covering-model cost that the approximation bounds are
//!   stated against.

use mcast_core::{
    run_distributed, solve_bla, solve_mla, solve_mla_with, solve_mnu_with, solve_ssa, Association,
    DecisionOrder, DistributedConfig, DualAssociation, Instance, Load, MlaAlgorithm, MnuConfig,
    Objective, RatePolicy,
};
use mcast_topology::{optimize_power, ScenarioConfig, SessionPopularity};

use crate::algos::{Algo, Metric};
use crate::figures::sweep;
use crate::stats::{Figure, Series, Summary};
use crate::Options;

/// Runs every ablation.
pub fn run(opts: &Options) -> Vec<Figure> {
    vec![
        rate_policy(opts),
        power(opts),
        power_per_ap(opts),
        mnu_augment(opts),
        model_vs_realized(opts),
        dual_headroom(opts),
        mla_algorithms(opts),
        popularity(opts),
        order_sensitivity(opts),
    ]
}

/// How much does the serial decision order matter? Runs the distributed
/// MLA rule under the id order and several shuffled orders on the same
/// scenarios; the spread of final total loads measures order sensitivity
/// (Lemma 1 guarantees convergence for *every* order, not the same
/// optimum).
fn order_sensitivity(opts: &Options) -> Figure {
    let n_orders = 8u64;
    let cfg = ScenarioConfig {
        n_aps: 60,
        n_users: 150,
        n_sessions: 5,
        ..ScenarioConfig::paper_default()
    };
    let mut id_series = Series {
        label: "id order".into(),
        points: Vec::new(),
    };
    let mut shuffle_mean = Series {
        label: "shuffled (8 orders)".into(),
        points: Vec::new(),
    };
    let seeds = if opts.quick { 2 } else { opts.seeds.min(10) };
    let mut v_id = Vec::new();
    let mut v_shuffled = Vec::new();
    for seed in 0..seeds {
        let scenario = cfg.clone().with_seed(seed).generate();
        let inst = &scenario.instance;
        let run_with = |order: DecisionOrder| {
            run_distributed(
                inst,
                &DistributedConfig {
                    order,
                    ..DistributedConfig::default()
                },
                Association::empty(inst.n_users()),
            )
            .association
            .total_load(inst)
            .as_f64()
        };
        v_id.push(run_with(DecisionOrder::ById));
        for k in 0..n_orders {
            v_shuffled.push(run_with(DecisionOrder::Shuffled(k)));
        }
    }
    id_series.points.push((1.0, Summary::of(&v_id)));
    shuffle_mean.points.push((1.0, Summary::of(&v_shuffled)));
    Figure {
        id: "ablation_order".into(),
        title: "Distributed MLA total load vs serial decision order (60 APs, 150 users)".into(),
        x_label: "-".into(),
        y_label: "total AP load".into(),
        series: vec![id_series, shuffle_mean],
    }
}

/// Uniform vs Zipf session popularity: when a few channels carry most
/// viewers, one transmission serves many and the association-control
/// advantage over SSA changes shape.
fn popularity(opts: &Options) -> Figure {
    let exponents = if opts.quick {
        vec![0.0, 1.2]
    } else {
        vec![0.0, 0.6, 0.9, 1.2, 1.5]
    };
    let mut series = vec![
        Series {
            label: "MLA-C".into(),
            points: Vec::new(),
        },
        Series {
            label: "SSA".into(),
            points: Vec::new(),
        },
    ];
    for &exponent in &exponents {
        let cfg = ScenarioConfig {
            n_aps: 100,
            n_users: 300,
            n_sessions: 12,
            popularity: if exponent == 0.0 {
                SessionPopularity::Uniform
            } else {
                SessionPopularity::Zipf { exponent }
            },
            ..ScenarioConfig::paper_default()
        };
        let mut v_mla = Vec::new();
        let mut v_ssa = Vec::new();
        for seed in 0..opts.seeds {
            let scenario = cfg.clone().with_seed(seed).generate();
            let inst = &scenario.instance;
            v_mla.push(solve_mla(inst).expect("coverage").total_load.as_f64());
            v_ssa.push(solve_ssa(inst, Objective::Mla).total_load.as_f64());
        }
        series[0].points.push((exponent, Summary::of(&v_mla)));
        series[1].points.push((exponent, Summary::of(&v_ssa)));
    }
    Figure {
        id: "ablation_popularity".into(),
        title: "Total load vs Zipf popularity exponent (100 APs, 300 users, 12 sessions)".into(),
        x_label: "zipf s".into(),
        y_label: "total AP load".into(),
        series,
    }
}

/// Greedy (`ln n + 1`) vs primal–dual layering (`f`) MLA — the §6.1
/// remark. Over 40 seeds the two cross over: the primal–dual variant
/// (with reverse delete) edges out the greedy up to ~200 users and falls
/// ~5% behind at 400, while always carrying a certified dual lower
/// bound — worth more than the paper's "can also be used" suggests.
fn mla_algorithms(opts: &Options) -> Figure {
    let xs = if opts.quick {
        vec![100.0, 300.0]
    } else {
        vec![100.0, 200.0, 300.0, 400.0]
    };
    let mut greedy = Series {
        label: "greedy (ln n + 1)".into(),
        points: Vec::new(),
    };
    let mut pd = Series {
        label: "primal-dual (f)".into(),
        points: Vec::new(),
    };
    for &x in &xs {
        let cfg = ScenarioConfig {
            n_users: x as usize,
            ..ScenarioConfig::paper_default()
        };
        let mut v_greedy = Vec::new();
        let mut v_pd = Vec::new();
        for seed in 0..opts.seeds {
            let scenario = cfg.clone().with_seed(seed).generate();
            let inst = &scenario.instance;
            v_greedy.push(solve_mla(inst).expect("coverage").total_load.as_f64());
            v_pd.push(
                solve_mla_with(inst, MlaAlgorithm::PrimalDual)
                    .expect("coverage")
                    .total_load
                    .as_f64(),
            );
        }
        greedy.points.push((x, Summary::of(&v_greedy)));
        pd.points.push((x, Summary::of(&v_pd)));
    }
    Figure {
        id: "ablation_mla_algorithms".into(),
        title: "MLA total load: greedy vs primal-dual layering (200 APs)".into(),
        x_label: "users".into(),
        y_label: "total AP load".into(),
        series: vec![greedy, pd],
    }
}

/// Per-AP adaptive power control (§8): coordinate-descent over discrete
/// levels vs the best uniform settings, judged by MLA total load.
fn power_per_ap(opts: &Options) -> Figure {
    let seeds = if opts.quick { 2 } else { opts.seeds.min(8) };
    let cfg = ScenarioConfig {
        n_aps: 30,
        n_users: 80,
        n_sessions: 3,
        ..ScenarioConfig::paper_default()
    };
    let objective = |inst: &Instance| -> f64 {
        solve_mla(inst).map_or(f64::INFINITY, |s| s.total_load.as_f64())
    };
    let mut uniform_lo = Vec::new();
    let mut uniform_hi = Vec::new();
    let mut optimized = Vec::new();
    for seed in 0..seeds {
        let scenario = cfg.clone().with_seed(seed).generate();
        uniform_lo.push(objective(&scenario.instance));
        let hi =
            mcast_topology::instance_with_power(&scenario, &vec![1.5; scenario.ap_positions.len()]);
        uniform_hi.push(objective(&hi));
        let out = optimize_power(&scenario, &[0.75, 1.0, 1.25, 1.5], 2, objective);
        optimized.push(out.objective);
    }
    let series = vec![
        Series {
            label: "uniform 1.0".into(),
            points: vec![(1.0, Summary::of(&uniform_lo))],
        },
        Series {
            label: "uniform 1.5".into(),
            points: vec![(1.0, Summary::of(&uniform_hi))],
        },
        Series {
            label: "per-AP optimized".into(),
            points: vec![(1.0, Summary::of(&optimized))],
        },
    ];
    Figure {
        id: "ablation_power_per_ap".into(),
        title: "MLA total load: uniform power vs per-AP coordinate descent (30 APs, 80 users)"
            .into(),
        x_label: "-".into(),
        y_label: "total AP load".into(),
        series,
    }
}

/// Dual association (§3.1): unicast headroom left network-wide when the
/// multicast AP is chosen by SSA vs MLA vs BLA (unicast always strongest
/// signal; 5% airtime demand per unicast user).
fn dual_headroom(opts: &Options) -> Figure {
    let xs = if opts.quick {
        vec![100.0, 300.0]
    } else {
        vec![100.0, 200.0, 300.0, 400.0]
    };
    let demand = Load::from_ratio(1, 20);
    let cfg = |users: f64| ScenarioConfig {
        n_users: users as usize,
        n_aps: 100,
        ..ScenarioConfig::paper_default()
    };
    type McastSolver = fn(&Instance) -> mcast_core::Association;
    let solvers: [(&str, McastSolver); 3] = [
        ("SSA multicast", |i| {
            solve_ssa(i, Objective::Mla).association
        }),
        ("MLA multicast", |i| {
            solve_mla(i).expect("coverage").association
        }),
        ("BLA multicast", |i| {
            solve_bla(i).expect("coverage").association
        }),
    ];
    let mut series: Vec<Series> = solvers
        .iter()
        .map(|(name, _)| Series {
            label: (*name).to_string(),
            points: Vec::new(),
        })
        .collect();
    for &x in &xs {
        let mut values = vec![Vec::new(); solvers.len()];
        for seed in 0..opts.seeds {
            let scenario = cfg(x).with_seed(seed).generate();
            let inst = &scenario.instance;
            for (si, (_, solve)) in solvers.iter().enumerate() {
                let dual = DualAssociation::with_ssa_unicast(inst, solve(inst));
                values[si].push(dual.unicast_headroom(inst, demand).as_f64());
            }
        }
        for (si, vals) in values.iter().enumerate() {
            series[si].points.push((x, Summary::of(vals)));
        }
    }
    Figure {
        id: "ablation_dual_headroom".into(),
        title: "Network-wide unicast headroom under dual association (100 APs)".into(),
        x_label: "users".into(),
        y_label: "unicast headroom".into(),
        series,
    }
}

fn rate_policy(opts: &Options) -> Figure {
    let xs = if opts.quick {
        vec![100.0, 400.0]
    } else {
        vec![100.0, 200.0, 300.0, 400.0]
    };
    let multi = sweep(
        &xs,
        |users| ScenarioConfig {
            n_users: users as usize,
            ..ScenarioConfig::paper_default()
        },
        &[Algo::MlaC, Algo::Ssa],
        Metric::TotalLoad,
        opts,
    );
    let basic = sweep(
        &xs,
        |users| ScenarioConfig {
            n_users: users as usize,
            rate_policy: RatePolicy::BasicOnly,
            ..ScenarioConfig::paper_default()
        },
        &[Algo::MlaC, Algo::Ssa],
        Metric::TotalLoad,
        opts,
    );
    let mut series = Vec::new();
    for (mut s, suffix) in multi
        .into_iter()
        .map(|s| (s, "multi-rate"))
        .chain(basic.into_iter().map(|s| (s, "basic-only")))
    {
        s.label = format!("{} ({suffix})", s.label);
        series.push(s);
    }
    Figure {
        id: "ablation_rate_policy".into(),
        title: "Total load: multi-rate vs basic-rate-only multicast (200 APs)".into(),
        x_label: "users".into(),
        y_label: "total AP load".into(),
        series,
    }
}

fn power(opts: &Options) -> Figure {
    let scales = [0.75, 1.0, 1.25, 1.5];
    let series = sweep(
        &scales.map(f64::from),
        |scale| ScenarioConfig {
            power_scale: scale,
            ..ScenarioConfig::paper_default()
        },
        &[Algo::MlaC, Algo::BlaC, Algo::Ssa],
        Metric::TotalLoad,
        opts,
    );
    Figure {
        id: "ablation_power".into(),
        title: "Total load vs transmit-power scale (range multiplier)".into(),
        x_label: "power".into(),
        y_label: "total AP load".into(),
        series,
    }
}

fn mnu_augment(opts: &Options) -> Figure {
    let budgets = if opts.quick {
        vec![20.0, 40.0]
    } else {
        vec![10.0, 20.0, 30.0, 40.0, 60.0]
    };
    let mut plain = Series {
        label: "MNU-C".into(),
        points: Vec::new(),
    };
    let mut augmented = Series {
        label: "MNU-C+augment".into(),
        points: Vec::new(),
    };
    for &b in &budgets {
        let cfg = ScenarioConfig {
            n_users: 400,
            n_aps: 100,
            n_sessions: 18,
            budget: Load::permille(b as u32),
            ..ScenarioConfig::paper_default()
        };
        let mut v_plain = Vec::new();
        let mut v_aug = Vec::new();
        for seed in 0..opts.seeds {
            let sc = cfg.clone().with_seed(seed).generate();
            v_plain
                .push(solve_mnu_with(&sc.instance, &MnuConfig { augment: false }).satisfied as f64);
            v_aug.push(solve_mnu_with(&sc.instance, &MnuConfig { augment: true }).satisfied as f64);
        }
        plain.points.push((b / 1000.0, Summary::of(&v_plain)));
        augmented.points.push((b / 1000.0, Summary::of(&v_aug)));
    }
    Figure {
        id: "ablation_mnu_augment".into(),
        title: "MNU satisfied users with/without the slack-augmentation pass".into(),
        x_label: "budget".into(),
        y_label: "satisfied users".into(),
        series: vec![plain, augmented],
    }
}

fn model_vs_realized(opts: &Options) -> Figure {
    let xs = if opts.quick {
        vec![100.0, 400.0]
    } else {
        vec![100.0, 200.0, 300.0, 400.0]
    };
    let mut model = Series {
        label: "MLA-C model cost".into(),
        points: Vec::new(),
    };
    let mut realized = Series {
        label: "MLA-C realized load".into(),
        points: Vec::new(),
    };
    for &x in &xs {
        let cfg = ScenarioConfig {
            n_users: x as usize,
            ..ScenarioConfig::paper_default()
        };
        let mut v_model = Vec::new();
        let mut v_real = Vec::new();
        for seed in 0..opts.seeds {
            let sc = cfg.clone().with_seed(seed).generate();
            let sol = solve_mla(&sc.instance).expect("coverage");
            v_model.push(sol.model_cost.expect("mla model cost").as_f64());
            v_real.push(sol.total_load.as_f64());
        }
        model.points.push((x, Summary::of(&v_model)));
        realized.points.push((x, Summary::of(&v_real)));
    }
    Figure {
        id: "ablation_model_vs_realized".into(),
        title: "Covering-model cost vs realized Definition-1 load (MLA-C, 200 APs)".into(),
        x_label: "users".into(),
        y_label: "total AP load".into(),
        series: vec![model, realized],
    }
}
