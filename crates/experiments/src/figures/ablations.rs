//! Ablations beyond the paper's figures, exercising the design choices
//! DESIGN.md calls out:
//!
//! * **rate-policy** — multi-rate multicast vs basic-rate-only (§3.1 notes
//!   the problems stay NP-hard and the algorithms still beat SSA).
//! * **power** — uniform transmit-power scaling (§8 future work), trading
//!   coverage for rate.
//! * **mnu-augment** — the extension pass that admits leftover users onto
//!   realized-load slack after the covering-model MCG run.
//! * **model-vs-realized** — how much the realized (Definition 1) load
//!   undercuts the covering-model cost that the approximation bounds are
//!   stated against.

use mcast_core::{
    run_distributed, solve_bla, solve_mla, solve_mla_with, solve_mnu_with, solve_ssa, Association,
    DecisionOrder, DistributedConfig, DualAssociation, Instance, Load, MlaAlgorithm, MnuConfig,
    Objective, RatePolicy,
};
use mcast_topology::{optimize_power, ScenarioConfig, SessionPopularity};

use crate::algos::{Algo, Metric};
use crate::figures::sweep;
use crate::runner::{Runner, TrialError, TrialKey};
use crate::stats::{Figure, Series, Summary};
use crate::Options;

/// Runs every ablation.
pub fn run(opts: &Options, runner: &Runner) -> Vec<Figure> {
    vec![
        rate_policy(opts, runner),
        power(opts, runner),
        power_per_ap(opts, runner),
        mnu_augment(opts, runner),
        model_vs_realized(opts, runner),
        dual_headroom(opts, runner),
        mla_algorithms(opts, runner),
        popularity(opts, runner),
        order_sensitivity(opts, runner),
    ]
}

/// Wraps a solver error into a [`TrialError`] with the failing stage.
fn solver_err(stage: &str, e: impl std::fmt::Display) -> TrialError {
    TrialError::failed(format!("{stage}: {e}"))
}

/// Collects column `col` of each surviving per-seed row.
fn column(rows: &[Result<Vec<f64>, TrialError>], col: usize) -> Vec<f64> {
    rows.iter()
        .filter_map(|r| r.as_ref().ok())
        .filter_map(|row| row.get(col).copied())
        .collect()
}

/// How much does the serial decision order matter? Runs the distributed
/// MLA rule under the id order and several shuffled orders on the same
/// scenarios; the spread of final total loads measures order sensitivity
/// (Lemma 1 guarantees convergence for *every* order, not the same
/// optimum).
fn order_sensitivity(opts: &Options, runner: &Runner) -> Figure {
    let n_orders = 8u64;
    let cfg = ScenarioConfig {
        n_aps: 60,
        n_users: 150,
        n_sessions: 5,
        ..ScenarioConfig::paper_default()
    };
    let mut id_series = Series {
        label: "id order".into(),
        points: Vec::new(),
    };
    let mut shuffle_mean = Series {
        label: "shuffled (8 orders)".into(),
        points: Vec::new(),
    };
    let seeds = if opts.quick { 2 } else { opts.seeds.min(10) };
    let mut v_id = Vec::new();
    let mut v_shuffled = Vec::new();
    for seed in 0..seeds {
        let key = TrialKey::new("ablation_order", 1.0, seed, "orders");
        let row: Result<Vec<f64>, _> = runner.trial(&key, || {
            let scenario = cfg.clone().with_seed(seed).generate();
            let inst = &scenario.instance;
            let run_with = |order: DecisionOrder| {
                run_distributed(
                    inst,
                    &DistributedConfig {
                        order,
                        ..DistributedConfig::default()
                    },
                    Association::empty(inst.n_users()),
                )
                .association
                .total_load(inst)
                .as_f64()
            };
            let mut row = vec![run_with(DecisionOrder::ById)];
            for k in 0..n_orders {
                row.push(run_with(DecisionOrder::Shuffled(k)));
            }
            Ok(row)
        });
        if let Ok(row) = row {
            v_id.push(row[0]);
            v_shuffled.extend_from_slice(&row[1..]);
        }
    }
    if v_id.is_empty() {
        runner.note_hole("ablation_order", 1.0, "orders");
    }
    id_series.points.push((1.0, Summary::of_surviving(&v_id)));
    shuffle_mean
        .points
        .push((1.0, Summary::of_surviving(&v_shuffled)));
    Figure {
        id: "ablation_order".into(),
        title: "Distributed MLA total load vs serial decision order (60 APs, 150 users)".into(),
        x_label: "-".into(),
        y_label: "total AP load".into(),
        series: vec![id_series, shuffle_mean],
    }
}

/// Uniform vs Zipf session popularity: when a few channels carry most
/// viewers, one transmission serves many and the association-control
/// advantage over SSA changes shape.
fn popularity(opts: &Options, runner: &Runner) -> Figure {
    let exponents = if opts.quick {
        vec![0.0, 1.2]
    } else {
        vec![0.0, 0.6, 0.9, 1.2, 1.5]
    };
    let mut series = vec![
        Series {
            label: "MLA-C".into(),
            points: Vec::new(),
        },
        Series {
            label: "SSA".into(),
            points: Vec::new(),
        },
    ];
    for &exponent in &exponents {
        let cfg = ScenarioConfig {
            n_aps: 100,
            n_users: 300,
            n_sessions: 12,
            popularity: if exponent == 0.0 {
                SessionPopularity::Uniform
            } else {
                SessionPopularity::Zipf { exponent }
            },
            ..ScenarioConfig::paper_default()
        };
        let rows: Vec<Result<Vec<f64>, TrialError>> = (0..opts.seeds)
            .map(|seed| {
                let key = TrialKey::new("ablation_popularity", exponent, seed, "MLA-C/SSA");
                runner.trial(&key, || {
                    let scenario = cfg.clone().with_seed(seed).generate();
                    let inst = &scenario.instance;
                    let mla = solve_mla(inst)
                        .map_err(|e| solver_err("solve_mla", e))?
                        .total_load
                        .as_f64();
                    let ssa = solve_ssa(inst, Objective::Mla).total_load.as_f64();
                    Ok(vec![mla, ssa])
                })
            })
            .collect();
        let (v_mla, v_ssa) = (column(&rows, 0), column(&rows, 1));
        if v_mla.is_empty() {
            runner.note_hole("ablation_popularity", exponent, "MLA-C/SSA");
        }
        series[0]
            .points
            .push((exponent, Summary::of_surviving(&v_mla)));
        series[1]
            .points
            .push((exponent, Summary::of_surviving(&v_ssa)));
    }
    Figure {
        id: "ablation_popularity".into(),
        title: "Total load vs Zipf popularity exponent (100 APs, 300 users, 12 sessions)".into(),
        x_label: "zipf s".into(),
        y_label: "total AP load".into(),
        series,
    }
}

/// Greedy (`ln n + 1`) vs primal–dual layering (`f`) MLA — the §6.1
/// remark. Over 40 seeds the two cross over: the primal–dual variant
/// (with reverse delete) edges out the greedy up to ~200 users and falls
/// ~5% behind at 400, while always carrying a certified dual lower
/// bound — worth more than the paper's "can also be used" suggests.
fn mla_algorithms(opts: &Options, runner: &Runner) -> Figure {
    let xs = if opts.quick {
        vec![100.0, 300.0]
    } else {
        vec![100.0, 200.0, 300.0, 400.0]
    };
    let mut greedy = Series {
        label: "greedy (ln n + 1)".into(),
        points: Vec::new(),
    };
    let mut pd = Series {
        label: "primal-dual (f)".into(),
        points: Vec::new(),
    };
    for &x in &xs {
        let cfg = ScenarioConfig {
            n_users: x as usize,
            ..ScenarioConfig::paper_default()
        };
        let rows: Vec<Result<Vec<f64>, TrialError>> = (0..opts.seeds)
            .map(|seed| {
                let key = TrialKey::new("ablation_mla_algorithms", x, seed, "greedy/pd");
                runner.trial(&key, || {
                    let scenario = cfg.clone().with_seed(seed).generate();
                    let inst = &scenario.instance;
                    let greedy = solve_mla(inst)
                        .map_err(|e| solver_err("solve_mla", e))?
                        .total_load
                        .as_f64();
                    let pd = solve_mla_with(inst, MlaAlgorithm::PrimalDual)
                        .map_err(|e| solver_err("solve_mla_with(primal-dual)", e))?
                        .total_load
                        .as_f64();
                    Ok(vec![greedy, pd])
                })
            })
            .collect();
        let (v_greedy, v_pd) = (column(&rows, 0), column(&rows, 1));
        if v_greedy.is_empty() {
            runner.note_hole("ablation_mla_algorithms", x, "greedy/pd");
        }
        greedy.points.push((x, Summary::of_surviving(&v_greedy)));
        pd.points.push((x, Summary::of_surviving(&v_pd)));
    }
    Figure {
        id: "ablation_mla_algorithms".into(),
        title: "MLA total load: greedy vs primal-dual layering (200 APs)".into(),
        x_label: "users".into(),
        y_label: "total AP load".into(),
        series: vec![greedy, pd],
    }
}

/// Per-AP adaptive power control (§8): coordinate-descent over discrete
/// levels vs the best uniform settings, judged by MLA total load.
fn power_per_ap(opts: &Options, runner: &Runner) -> Figure {
    let seeds = if opts.quick { 2 } else { opts.seeds.min(8) };
    let cfg = ScenarioConfig {
        n_aps: 30,
        n_users: 80,
        n_sessions: 3,
        ..ScenarioConfig::paper_default()
    };
    let objective = |inst: &Instance| -> f64 {
        solve_mla(inst).map_or(f64::INFINITY, |s| s.total_load.as_f64())
    };
    let rows: Vec<Result<Vec<f64>, TrialError>> = (0..seeds)
        .map(|seed| {
            let key = TrialKey::new("ablation_power_per_ap", 1.0, seed, "power");
            runner.trial(&key, || {
                let scenario = cfg.clone().with_seed(seed).generate();
                let lo = objective(&scenario.instance);
                let hi = mcast_topology::instance_with_power(
                    &scenario,
                    &vec![1.5; scenario.ap_positions.len()],
                );
                let hi = objective(&hi);
                let out = optimize_power(&scenario, &[0.75, 1.0, 1.25, 1.5], 2, objective);
                Ok(vec![lo, hi, out.objective])
            })
        })
        .collect();
    let (uniform_lo, uniform_hi, optimized) =
        (column(&rows, 0), column(&rows, 1), column(&rows, 2));
    if uniform_lo.is_empty() {
        runner.note_hole("ablation_power_per_ap", 1.0, "power");
    }
    let series = vec![
        Series {
            label: "uniform 1.0".into(),
            points: vec![(1.0, Summary::of_surviving(&uniform_lo))],
        },
        Series {
            label: "uniform 1.5".into(),
            points: vec![(1.0, Summary::of_surviving(&uniform_hi))],
        },
        Series {
            label: "per-AP optimized".into(),
            points: vec![(1.0, Summary::of_surviving(&optimized))],
        },
    ];
    Figure {
        id: "ablation_power_per_ap".into(),
        title: "MLA total load: uniform power vs per-AP coordinate descent (30 APs, 80 users)"
            .into(),
        x_label: "-".into(),
        y_label: "total AP load".into(),
        series,
    }
}

/// Dual association (§3.1): unicast headroom left network-wide when the
/// multicast AP is chosen by SSA vs MLA vs BLA (unicast always strongest
/// signal; 5% airtime demand per unicast user).
fn dual_headroom(opts: &Options, runner: &Runner) -> Figure {
    let xs = if opts.quick {
        vec![100.0, 300.0]
    } else {
        vec![100.0, 200.0, 300.0, 400.0]
    };
    let demand = Load::from_ratio(1, 20);
    let cfg = |users: f64| ScenarioConfig {
        n_users: users as usize,
        n_aps: 100,
        ..ScenarioConfig::paper_default()
    };
    type McastSolver = fn(&Instance) -> mcast_core::Association;
    let solvers: [(&str, McastSolver); 3] = [
        ("SSA multicast", |i| {
            solve_ssa(i, Objective::Mla).association
        }),
        ("MLA multicast", |i| {
            solve_mla(i).expect("coverage").association
        }),
        ("BLA multicast", |i| {
            solve_bla(i).expect("coverage").association
        }),
    ];
    let mut series: Vec<Series> = solvers
        .iter()
        .map(|(name, _)| Series {
            label: (*name).to_string(),
            points: Vec::new(),
        })
        .collect();
    for &x in &xs {
        let rows: Vec<Result<Vec<f64>, TrialError>> = (0..opts.seeds)
            .map(|seed| {
                let key = TrialKey::new("ablation_dual_headroom", x, seed, "headroom");
                runner.trial(&key, || {
                    let scenario = cfg(x).with_seed(seed).generate();
                    let inst = &scenario.instance;
                    Ok(solvers
                        .iter()
                        .map(|(_, solve)| {
                            let dual = DualAssociation::with_ssa_unicast(inst, solve(inst));
                            dual.unicast_headroom(inst, demand).as_f64()
                        })
                        .collect())
                })
            })
            .collect();
        for si in 0..solvers.len() {
            let vals = column(&rows, si);
            if vals.is_empty() {
                runner.note_hole("ablation_dual_headroom", x, solvers[si].0);
            }
            series[si].points.push((x, Summary::of_surviving(&vals)));
        }
    }
    Figure {
        id: "ablation_dual_headroom".into(),
        title: "Network-wide unicast headroom under dual association (100 APs)".into(),
        x_label: "users".into(),
        y_label: "unicast headroom".into(),
        series,
    }
}

fn rate_policy(opts: &Options, runner: &Runner) -> Figure {
    let xs = if opts.quick {
        vec![100.0, 400.0]
    } else {
        vec![100.0, 200.0, 300.0, 400.0]
    };
    let multi = sweep(
        "ablation_rate_multi",
        &xs,
        |users| ScenarioConfig {
            n_users: users as usize,
            ..ScenarioConfig::paper_default()
        },
        &[Algo::MlaC, Algo::Ssa],
        Metric::TotalLoad,
        opts,
        runner,
    );
    let basic = sweep(
        "ablation_rate_basic",
        &xs,
        |users| ScenarioConfig {
            n_users: users as usize,
            rate_policy: RatePolicy::BasicOnly,
            ..ScenarioConfig::paper_default()
        },
        &[Algo::MlaC, Algo::Ssa],
        Metric::TotalLoad,
        opts,
        runner,
    );
    let mut series = Vec::new();
    for (mut s, suffix) in multi
        .into_iter()
        .map(|s| (s, "multi-rate"))
        .chain(basic.into_iter().map(|s| (s, "basic-only")))
    {
        s.label = format!("{} ({suffix})", s.label);
        series.push(s);
    }
    Figure {
        id: "ablation_rate_policy".into(),
        title: "Total load: multi-rate vs basic-rate-only multicast (200 APs)".into(),
        x_label: "users".into(),
        y_label: "total AP load".into(),
        series,
    }
}

fn power(opts: &Options, runner: &Runner) -> Figure {
    let scales = [0.75, 1.0, 1.25, 1.5];
    let series = sweep(
        "ablation_power",
        &scales.map(f64::from),
        |scale| ScenarioConfig {
            power_scale: scale,
            ..ScenarioConfig::paper_default()
        },
        &[Algo::MlaC, Algo::BlaC, Algo::Ssa],
        Metric::TotalLoad,
        opts,
        runner,
    );
    Figure {
        id: "ablation_power".into(),
        title: "Total load vs transmit-power scale (range multiplier)".into(),
        x_label: "power".into(),
        y_label: "total AP load".into(),
        series,
    }
}

fn mnu_augment(opts: &Options, runner: &Runner) -> Figure {
    let budgets = if opts.quick {
        vec![20.0, 40.0]
    } else {
        vec![10.0, 20.0, 30.0, 40.0, 60.0]
    };
    let mut plain = Series {
        label: "MNU-C".into(),
        points: Vec::new(),
    };
    let mut augmented = Series {
        label: "MNU-C+augment".into(),
        points: Vec::new(),
    };
    for &b in &budgets {
        let cfg = ScenarioConfig {
            n_users: 400,
            n_aps: 100,
            n_sessions: 18,
            budget: Load::permille(b as u32),
            ..ScenarioConfig::paper_default()
        };
        let rows: Vec<Result<Vec<f64>, TrialError>> = (0..opts.seeds)
            .map(|seed| {
                let key = TrialKey::new("ablation_mnu_augment", b, seed, "plain/augment");
                runner.trial(&key, || {
                    let sc = cfg.clone().with_seed(seed).generate();
                    let plain = solve_mnu_with(&sc.instance, &MnuConfig { augment: false })
                        .satisfied as f64;
                    let aug =
                        solve_mnu_with(&sc.instance, &MnuConfig { augment: true }).satisfied as f64;
                    Ok(vec![plain, aug])
                })
            })
            .collect();
        let (v_plain, v_aug) = (column(&rows, 0), column(&rows, 1));
        if v_plain.is_empty() {
            runner.note_hole("ablation_mnu_augment", b, "plain/augment");
        }
        plain
            .points
            .push((b / 1000.0, Summary::of_surviving(&v_plain)));
        augmented
            .points
            .push((b / 1000.0, Summary::of_surviving(&v_aug)));
    }
    Figure {
        id: "ablation_mnu_augment".into(),
        title: "MNU satisfied users with/without the slack-augmentation pass".into(),
        x_label: "budget".into(),
        y_label: "satisfied users".into(),
        series: vec![plain, augmented],
    }
}

fn model_vs_realized(opts: &Options, runner: &Runner) -> Figure {
    let xs = if opts.quick {
        vec![100.0, 400.0]
    } else {
        vec![100.0, 200.0, 300.0, 400.0]
    };
    let mut model = Series {
        label: "MLA-C model cost".into(),
        points: Vec::new(),
    };
    let mut realized = Series {
        label: "MLA-C realized load".into(),
        points: Vec::new(),
    };
    for &x in &xs {
        let cfg = ScenarioConfig {
            n_users: x as usize,
            ..ScenarioConfig::paper_default()
        };
        let rows: Vec<Result<Vec<f64>, TrialError>> = (0..opts.seeds)
            .map(|seed| {
                let key = TrialKey::new("ablation_model_vs_realized", x, seed, "model/realized");
                runner.trial(&key, || {
                    let sc = cfg.clone().with_seed(seed).generate();
                    let sol = solve_mla(&sc.instance).map_err(|e| solver_err("solve_mla", e))?;
                    let model = sol
                        .model_cost
                        .ok_or_else(|| TrialError::failed("MLA solution lacks a model cost"))?
                        .as_f64();
                    Ok(vec![model, sol.total_load.as_f64()])
                })
            })
            .collect();
        let (v_model, v_real) = (column(&rows, 0), column(&rows, 1));
        if v_model.is_empty() {
            runner.note_hole("ablation_model_vs_realized", x, "model/realized");
        }
        model.points.push((x, Summary::of_surviving(&v_model)));
        realized.points.push((x, Summary::of_surviving(&v_real)));
    }
    Figure {
        id: "ablation_model_vs_realized".into(),
        title: "Covering-model cost vs realized Definition-1 load (MLA-C, 200 APs)".into(),
        x_label: "users".into(),
        y_label: "total AP load".into(),
        series: vec![model, realized],
    }
}
