//! One module per reproduced figure/table.

pub mod ablations;
pub mod channels;
pub mod controller;
pub mod faults;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig9;
pub mod mobility;
pub mod revenue;
pub mod table1;
pub mod validate;

use mcast_exact::SearchLimits;
use mcast_topology::ScenarioConfig;

use crate::algos::{try_run, Algo, Metric};
use crate::par::parallel_map;
use crate::runner::{Runner, TrialKey};
use crate::stats::{Series, Summary};
use crate::Options;

/// Certification statistics for the exact-solver runs in a sweep.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProofStats {
    /// Exact-solver runs whose optimum was certified within the node cap.
    pub certified: usize,
    /// Total exact-solver runs.
    pub total: usize,
}

/// Sweeps `xs`, generating `opts.seeds` scenarios per point from
/// `cfg_of(x)` (seeded 0..seeds), running every algorithm on each as an
/// isolated, journaled trial under `runner`, and summarizing `metric` per
/// (algorithm, x). `ctx` names the panel in trial keys (e.g. `"fig9a"`).
pub(crate) fn sweep(
    ctx: &str,
    xs: &[f64],
    cfg_of: impl Fn(f64) -> ScenarioConfig,
    algos: &[Algo],
    metric: Metric,
    opts: &Options,
    runner: &Runner,
) -> Vec<Series> {
    sweep_with_proofs(ctx, xs, cfg_of, algos, metric, opts, runner).0
}

/// [`sweep`], additionally reporting how many exact-solver runs were
/// certified optimal (Figure 12 reports this alongside the series).
#[allow(clippy::too_many_arguments)]
pub(crate) fn sweep_with_proofs(
    ctx: &str,
    xs: &[f64],
    cfg_of: impl Fn(f64) -> ScenarioConfig,
    algos: &[Algo],
    metric: Metric,
    opts: &Options,
    runner: &Runner,
) -> (Vec<Series>, ProofStats) {
    let limits = SearchLimits {
        max_nodes: opts.max_nodes,
    };
    let mut proofs = ProofStats::default();
    let mut series: Vec<Series> = algos
        .iter()
        .map(|a| Series {
            label: a.label().to_string(),
            points: Vec::new(),
        })
        .collect();
    for &x in xs {
        let template = cfg_of(x);
        let seeds: Vec<u64> = (0..opts.seeds).collect();
        // Generate each seed's scenario once, share across algorithms —
        // unless every trial at this point already has a journaled result
        // (resume), in which case generation is skipped entirely. Seeds
        // are independent, so both generation and the per-scenario runs
        // fan out over worker threads; `parallel_map` returns results in
        // seed order, so the Summary folds see the serial order and the
        // emitted statistics are bit-identical to a single-threaded sweep.
        let keys: Vec<TrialKey> = seeds
            .iter()
            .flat_map(|&seed| {
                algos
                    .iter()
                    .map(move |a| TrialKey::new(ctx, x, seed, a.label()))
            })
            .collect();
        let scenarios = if runner.all_cached(&keys) {
            None
        } else {
            Some(parallel_map(&seeds, |&seed| {
                template.clone().with_seed(seed).generate()
            }))
        };
        for (ai, &algo) in algos.iter().enumerate() {
            let measured = parallel_map(&seeds, |&seed| {
                let key = TrialKey::new(ctx, x, seed, algo.label());
                runner.trial(&key, || match &scenarios {
                    Some(scs) => try_run(algo, &scs[seed as usize].instance, limits),
                    // Replayed point whose record was later rejected
                    // (schema drift): regenerate just this scenario.
                    None => {
                        let sc = template.clone().with_seed(seed).generate();
                        try_run(algo, &sc.instance, limits)
                    }
                })
            });
            let values: Vec<f64> = measured
                .iter()
                .filter_map(|m| m.as_ref().ok())
                .map(|m| {
                    if let Some(proved) = m.proved_optimal {
                        proofs.total += 1;
                        proofs.certified += usize::from(proved);
                    }
                    m.metric(metric)
                })
                .collect();
            if values.is_empty() {
                runner.note_hole(ctx, x, algo.label());
            }
            series[ai].points.push((x, Summary::of_surviving(&values)));
        }
    }
    (series, proofs)
}

/// Sweep points helper: full list normally, a subset in `--quick` mode.
pub(crate) fn pick_points(full: &[f64], quick: bool) -> Vec<f64> {
    if quick && full.len() > 3 {
        vec![full[0], full[full.len() / 2], full[full.len() - 1]]
    } else {
        full.to_vec()
    }
}
