//! `repro bench` — the tracked performance trajectory.
//!
//! Times each fast path against the reference implementation it replaced,
//! on pinned workloads, and writes the results as JSON so the speedups are
//! recorded across PRs instead of living in commit messages:
//!
//! * `BENCH_greedy.json` — lazy-greedy (CELF) vs full-rescan greedy for
//!   MCG, `CostSC` and SCG (the `crates/covering` fast paths);
//! * `BENCH_topology.json` — spatial-grid vs all-pairs scenario
//!   generation (the `crates/topology` fast path);
//! * `BENCH_distributed.json` — the incremental-ledger + delta-decision +
//!   dirty-worklist distributed engine vs the recomputing full-sweep
//!   reference (`crates/core/src/reference.rs`), over both policies and
//!   execution modes plus one large-scale scenario, the partitioned
//!   parallel engine's worker-scaling curve (1/2/4/8 workers) against the
//!   single-threaded engine on the same large workload, and the
//!   fault-tolerance recovery costs (checkpoint overhead at K ∈ {10, 50}
//!   and restore-from-checkpoint latency vs recompute-from-scratch);
//! * `BENCH_controller.json` — sustained admission throughput of the
//!   event-driven controller service on a staggered-join workload
//!   (joins/sec, p50/p95/p99 per-decision latency), with the run's
//!   event stream folded back through replay as the equivalence check.
//!
//! Every comparison also asserts the two implementations produce
//! identical outputs — a bench run doubles as an equivalence check on
//! real workloads. `--quick` shrinks the workloads (CI smoke) but keeps
//! the JSON keys identical, so consumers can rely on the schema.

use std::collections::BTreeMap;
use std::time::Instant;

use mcast_core::reduction::Reduction;
use mcast_core::{
    resume_distributed_supervised, run_distributed, run_distributed_partitioned,
    run_distributed_reference, run_distributed_supervised, Association, DistributedConfig,
    DistributedOutcome, ExecutionMode, Policy, SuperviseOptions,
};
use mcast_covering::{greedy_mcg, greedy_set_cover, reference, solve_scg, SetSystemBuilder};
use mcast_events::{load_checkpoints, PartitionCheckpointSink};
use mcast_topology::{tile_partition, Placement, ScenarioConfig};
use serde::Serialize;

use crate::Options;

/// One fast-vs-reference comparison.
#[derive(Debug, Serialize)]
pub struct BenchEntry {
    /// Human description of the pinned workload.
    pub workload: String,
    /// Reference (pre-optimization) wall-clock, milliseconds.
    pub reference_ms: f64,
    /// Fast-path wall-clock, milliseconds (best of 3).
    pub fast_ms: f64,
    /// `reference_ms / fast_ms`.
    pub speedup: f64,
    /// Whether the two implementations produced identical outputs.
    pub outputs_identical: bool,
    /// Process peak resident set size (bytes) observed when this entry
    /// finished — the high-water mark so far, not a per-entry delta.
    /// `None` where the platform does not expose it (non-Linux).
    pub peak_rss_bytes: Option<u64>,
}

impl BenchEntry {
    fn new(workload: String, reference_ms: f64, fast_ms: f64, outputs_identical: bool) -> Self {
        BenchEntry {
            workload,
            reference_ms,
            fast_ms,
            speedup: reference_ms / fast_ms,
            outputs_identical,
            peak_rss_bytes: peak_rss_bytes(),
        }
    }
}

/// Peak resident set size of this process in bytes, from `VmHWM` in
/// `/proc/self/status`. Returns `None` on platforms without procfs —
/// consumers (CI asserts, report diffs) must treat the field as
/// optional rather than a guaranteed measurement.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())?;
    Some(kb * 1024)
}

/// One report file: a named set of [`BenchEntry`]s.
#[derive(Debug, Serialize)]
pub struct BenchReport {
    /// Report schema tag.
    pub schema: String,
    /// True when the workloads were shrunk by `--quick`.
    pub quick: bool,
    /// Hardware threads available on the bench host. Worker-scaling
    /// entries (`partitioned_w*`) cannot speed up beyond this; on a
    /// single-core host the scaling curve honestly records the barrier
    /// and ghost-merge overhead instead of a speedup.
    pub host_threads: usize,
    /// Entries by stable key (same keys in quick and full mode).
    pub benches: BTreeMap<String, BenchEntry>,
}

/// Hardware threads on this host, for [`BenchReport::host_threads`].
fn host_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

fn time_once<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let t0 = Instant::now();
    let out = f();
    (t0.elapsed().as_secs_f64() * 1e3, out)
}

fn time_best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let (mut best_ms, mut out) = time_once(&mut f);
    for _ in 1..reps {
        let (ms, o) = time_once(&mut f);
        if ms < best_ms {
            best_ms = ms;
            out = o;
        }
    }
    (best_ms, out)
}

/// The covering-layer report: lazy-greedy vs full-rescan greedy.
pub fn greedy_report(opts: &Options) -> BenchReport {
    let (n_aps, n_users) = if opts.quick { (40, 150) } else { (200, 1000) };
    let scenario = ScenarioConfig {
        n_aps,
        n_users,
        ..ScenarioConfig::paper_default()
    }
    .with_seed(0)
    .generate();
    let red = Reduction::build(&scenario.instance);
    let system = red.system();
    let budgets = red.budgets();

    let mut benches = BTreeMap::new();

    let (ref_ms, ref_sol) = time_once(|| reference::greedy_mcg(system, budgets));
    let (fast_ms, fast_sol) = time_best_of(3, || greedy_mcg(system, budgets));
    benches.insert(
        "mcg".to_string(),
        BenchEntry::new(
            format!("MCG greedy, paper-density WLAN, {n_aps} APs / {n_users} users"),
            ref_ms,
            fast_ms,
            ref_sol.all() == fast_sol.all() && ref_sol.feasible() == fast_sol.feasible(),
        ),
    );

    let (ref_ms, ref_cover) = time_once(|| greedy_set_cover_ref(system));
    let (fast_ms, fast_cover) = time_best_of(3, || greedy_set_cover(system).expect("coverable"));
    benches.insert(
        "costsc".to_string(),
        BenchEntry::new(
            format!("CostSC greedy, paper-density WLAN, {n_aps} APs / {n_users} users"),
            ref_ms,
            fast_ms,
            ref_cover == fast_cover,
        ),
    );

    // SCG multiplies the MCG cost by (candidates × iterations × 2 rules),
    // so it runs on a synthetic mid-size system rather than the full WLAN.
    let n = if opts.quick { 120 } else { 400 };
    let system = synthetic_system(n, 20);
    let candidates: Vec<u64> = vec![10, 20, 40, 80, 160, 1000];
    let (ref_ms, ref_scg) = time_once(|| reference::solve_scg(&system, &candidates).unwrap());
    let (fast_ms, fast_scg) = time_best_of(3, || solve_scg(&system, &candidates).unwrap());
    benches.insert(
        "scg".to_string(),
        BenchEntry::new(
            format!("SCG over 6 candidate budgets, synthetic system, {n} elements"),
            ref_ms,
            fast_ms,
            ref_scg.cover() == fast_scg.cover()
                && ref_scg.max_group_cost() == fast_scg.max_group_cost(),
        ),
    );

    BenchReport {
        schema: "mcast-bench-greedy/v2".to_string(),
        quick: opts.quick,
        host_threads: host_threads(),
        benches,
    }
}

/// The topology-layer report: spatial-grid vs all-pairs generation.
pub fn topology_report(opts: &Options) -> BenchReport {
    // 500 APs in hotspot clusters over a 14 km square — a metro-scale
    // deployment where most of the area is out of coverage. Under
    // `require_coverage`, user placement is rejection-sampled, which is
    // exactly where the all-pairs reference pays O(APs) per draw and the
    // grid pays O(1): the workload exercises the quadratic-rejection fix,
    // not just the link-building loop. Quick mode shrinks to the default
    // uniform layout.
    let cfg = if opts.quick {
        ScenarioConfig {
            n_aps: 120,
            n_users: 300,
            ..ScenarioConfig::paper_default()
        }
    } else {
        ScenarioConfig {
            n_aps: 500,
            n_users: 2000,
            width_m: 14000.0,
            height_m: 14000.0,
            ap_placement: Placement::Clustered {
                clusters: 25,
                sigma_m: 80.0,
            },
            ..ScenarioConfig::paper_default()
        }
    }
    .with_seed(0);

    let mut benches = BTreeMap::new();
    let (ref_ms, ref_sc) = time_once(|| cfg.generate_reference());
    let (fast_ms, fast_sc) = time_best_of(3, || cfg.generate());
    let identical = ref_sc.user_positions == fast_sc.user_positions
        && serde_json::to_string(&ref_sc.instance).ok()
            == serde_json::to_string(&fast_sc.instance).ok();
    benches.insert(
        "scenario_gen".to_string(),
        BenchEntry::new(
            format!(
                "scenario generation, {} APs / {} users, {:.0} m square, {} AP placement",
                cfg.n_aps,
                cfg.n_users,
                cfg.width_m,
                match cfg.ap_placement {
                    Placement::Uniform => "uniform",
                    Placement::Clustered { .. } => "25-cluster hotspot",
                    Placement::Grid { .. } => "grid",
                }
            ),
            ref_ms,
            fast_ms,
            identical,
        ),
    );

    BenchReport {
        schema: "mcast-bench-topology/v2".to_string(),
        quick: opts.quick,
        host_threads: host_threads(),
        benches,
    }
}

/// The distributed-engine report: incremental ledger + delta decision +
/// dirty worklist vs the recomputing full-sweep reference.
pub fn distributed_report(opts: &Options) -> BenchReport {
    let mut benches = BTreeMap::new();

    let (n_aps, n_users) = if opts.quick { (40, 150) } else { (200, 1000) };
    let scenario = ScenarioConfig {
        n_aps,
        n_users,
        ..ScenarioConfig::paper_default()
    }
    .with_seed(0)
    .generate();
    let inst = &scenario.instance;
    let cases = [
        (
            "serial_min_total",
            Policy::MinTotalLoad,
            ExecutionMode::Serial,
        ),
        (
            "serial_min_max",
            Policy::MinMaxVector,
            ExecutionMode::Serial,
        ),
        (
            "simultaneous_min_total",
            Policy::MinTotalLoad,
            ExecutionMode::Simultaneous,
        ),
        (
            "simultaneous_min_max",
            Policy::MinMaxVector,
            ExecutionMode::Simultaneous,
        ),
    ];
    for (key, policy, mode) in cases {
        let config = DistributedConfig {
            policy,
            mode,
            max_rounds: 60,
            ..DistributedConfig::default()
        };
        let (ref_ms, ref_out) =
            time_once(|| run_distributed_reference(inst, &config, Association::empty(n_users)));
        let (fast_ms, fast_out) = time_best_of(3, || {
            run_distributed(inst, &config, Association::empty(n_users))
        });
        benches.insert(
            key.to_string(),
            BenchEntry::new(
                format!(
                    "distributed {policy:?} / {mode:?}, paper-density WLAN, {n_aps} APs / {n_users} users"
                ),
                ref_ms,
                fast_ms,
                outcomes_equal(&ref_out, &fast_out),
            ),
        );
    }

    // Large-scale workload at the same AP density as the paper layout
    // (~6000 m² per AP, so per-user neighborhoods stay realistic). The
    // round cap keeps the O(rounds · n · k² log k) reference inside bench
    // time; it applies to both sides, so the identity check still bites.
    let (n_aps, n_users, side_m) = if opts.quick {
        (120, 2_000, 848.0)
    } else {
        (2_000, 100_000, 3_463.0)
    };
    let scenario = ScenarioConfig {
        n_aps,
        n_users,
        width_m: side_m,
        height_m: side_m,
        ..ScenarioConfig::paper_default()
    }
    .with_seed(0)
    .generate();
    let inst = &scenario.instance;
    let config = DistributedConfig {
        policy: Policy::MinMaxVector,
        mode: ExecutionMode::Serial,
        max_rounds: 3,
        ..DistributedConfig::default()
    };
    let (ref_ms, ref_out) =
        time_once(|| run_distributed_reference(inst, &config, Association::empty(n_users)));
    let (fast_ms, fast_out) = time_best_of(3, || {
        run_distributed(inst, &config, Association::empty(n_users))
    });
    benches.insert(
        "large_serial_min_max".to_string(),
        BenchEntry::new(
            format!(
                "distributed MinMaxVector / Serial, {n_aps} APs / {n_users} users, {side_m:.0} m square, 3 rounds"
            ),
            ref_ms,
            fast_ms,
            outcomes_equal(&ref_out, &fast_out),
        ),
    );

    // Worker-scaling curve of the partitioned engine on the same large
    // workload, Simultaneous mode (round-parallel decisions). Here the
    // "reference" is the single-threaded fast engine, so `speedup` is the
    // parallel scaling factor at each worker count — every entry must
    // still be outputs-identical (the engine is deterministic by
    // construction, see DESIGN.md §12). On a host with fewer cores than
    // workers (`host_threads` above), factors below 1.0 are the honest
    // cost of the round barriers and halo merges, not a regression.
    let config = DistributedConfig {
        policy: Policy::MinMaxVector,
        mode: ExecutionMode::Simultaneous,
        max_rounds: 3,
        ..DistributedConfig::default()
    };
    let (single_ms, single_out) = time_best_of(3, || {
        run_distributed(inst, &config, Association::empty(n_users))
    });
    for w in [1usize, 2, 4, 8] {
        let part = tile_partition(&scenario, w);
        let (par_ms, par_out) = time_best_of(3, || {
            run_distributed_partitioned(inst, &config, Association::empty(n_users), &part)
                .expect("empty association is always in range")
        });
        benches.insert(
            format!("partitioned_w{w}"),
            BenchEntry::new(
                format!(
                    "partitioned MinMaxVector / Simultaneous, {w} workers ({} boundary of {n_aps} APs), {n_users} users, 3 rounds",
                    part.boundary_ap_count()
                ),
                single_ms,
                par_ms,
                outcomes_equal(&single_out, &par_out),
            ),
        );
    }

    // Fault-tolerance recovery costs on the same large workload, through
    // the supervised partitioned runtime. The checkpoint-overhead entries
    // invert the usual roles: `reference` is the *uncheckpointed*
    // supervised run and `fast` is the checkpointed one, so `speedup` is
    // the (slight) slowdown checkpointing costs — the acceptance bar is
    // that at K = 50 it stays within 5% of round time. `recovery_restore`
    // races restore-from-a-mid-run-checkpoint against recomputing from
    // scratch; both must land on the identical outcome.
    let config = DistributedConfig {
        policy: Policy::MinMaxVector,
        mode: ExecutionMode::Simultaneous,
        max_rounds: 12,
        ..DistributedConfig::default()
    };
    let part = tile_partition(&scenario, 4);
    let scratch = std::env::temp_dir().join(format!("mcast_bench_recovery_{}", std::process::id()));
    let _ = std::fs::create_dir_all(&scratch);
    let plain_opts = SuperviseOptions {
        audit: false,
        ..SuperviseOptions::default()
    };
    let supervised = |sup: &SuperviseOptions| {
        run_distributed_supervised(inst, &config, Association::empty(n_users), &part, sup)
            .expect("empty association is always in range")
    };
    let (plain_ms, plain_out) = time_best_of(3, || supervised(&plain_opts));
    for k in [10usize, 50] {
        let path = scratch.join(format!("k{k}.ckpt"));
        let (ck_ms, ck_out) = time_best_of(3, || {
            let sink = PartitionCheckpointSink::create(&path).expect("scratch dir is writable");
            supervised(&SuperviseOptions {
                checkpoint_every: Some(k),
                sink: Some(&sink),
                audit: false,
                ..SuperviseOptions::default()
            })
        });
        benches.insert(
            format!("recovery_ckpt_k{k}"),
            BenchEntry::new(
                format!(
                    "checkpoint overhead at K={k}: supervised partitioned MinMaxVector / \
                     Simultaneous, 4 workers, {n_aps} APs / {n_users} users, 12 rounds; \
                     reference is the uncheckpointed supervised run, so speedup < 1 is \
                     the checkpointing cost"
                ),
                plain_ms,
                ck_ms,
                outcomes_equal(&plain_out.outcome, &ck_out.outcome),
            ),
        );
    }
    // Restore latency: checkpoint every round, resume from the middle
    // snapshot, and race that against recomputing the run from scratch.
    let restore_path = scratch.join("restore.ckpt");
    {
        let sink = PartitionCheckpointSink::create(&restore_path).expect("scratch dir is writable");
        supervised(&SuperviseOptions {
            checkpoint_every: Some(1),
            sink: Some(&sink),
            audit: false,
            ..SuperviseOptions::default()
        });
    }
    let cps = load_checkpoints(&restore_path).expect("checkpoint file is readable");
    let mid = cps
        .get(cps.len() / 2)
        .expect("a multi-round run writes at least one checkpoint");
    let (restore_ms, restored) = time_best_of(3, || {
        resume_distributed_supervised(inst, &config, &part, mid, &plain_opts)
            .expect("a checkpoint written by this run restores")
    });
    benches.insert(
        "recovery_restore".to_string(),
        BenchEntry::new(
            format!(
                "restore latency: resume from the round-{} checkpoint vs recompute from \
                 scratch, supervised partitioned MinMaxVector / Simultaneous, 4 workers, \
                 {n_aps} APs / {n_users} users, 12 rounds",
                mid.round
            ),
            plain_ms,
            restore_ms,
            outcomes_equal(&plain_out.outcome, &restored.outcome),
        ),
    );
    let _ = std::fs::remove_dir_all(&scratch);

    BenchReport {
        schema: "mcast-bench-distributed/v4".to_string(),
        quick: opts.quick,
        host_threads: host_threads(),
        benches,
    }
}

/// Nearest-rank latency quantiles of the service's admission sweeps.
#[derive(Debug, Serialize)]
pub struct LatencyQuantiles {
    /// Median per-decision latency, µs.
    pub p50_us: f64,
    /// 95th-percentile per-decision latency, µs.
    pub p95_us: f64,
    /// 99th-percentile per-decision latency, µs.
    pub p99_us: f64,
    /// Worst per-decision latency, µs.
    pub max_us: f64,
}

/// The controller-service throughput report (`BENCH_controller.json`).
///
/// Unlike the fast-vs-reference reports there is no "before" to race:
/// the service is a new subsystem. The equivalence check is replay —
/// the published event stream must fold back into the byte-identical
/// report and final association.
#[derive(Debug, Serialize)]
pub struct ControllerBenchReport {
    /// Report schema tag.
    pub schema: String,
    /// True when the workload was shrunk by `--quick`.
    pub quick: bool,
    /// Human description of the pinned workload.
    pub workload: String,
    /// Join events admitted across the run.
    pub joins: u64,
    /// Epochs executed.
    pub epochs: u64,
    /// Events published to the stream (header and trailer included).
    pub events_published: u64,
    /// Wall-clock seconds spent in epochs that admitted joins.
    pub admission_wall_s: f64,
    /// Sustained admission throughput, joins per admission-wall second.
    pub joins_per_sec: f64,
    /// Per-user decision latency in the admission sweeps.
    pub decision_latency: LatencyQuantiles,
    /// Whether folding the event stream back reproduced the live report
    /// byte for byte (and the same final association).
    pub replay_identical: bool,
    /// Process peak resident set size (bytes) after the run; `None`
    /// where the platform does not expose it (non-Linux).
    pub peak_rss_bytes: Option<u64>,
}

/// The controller-service report: sustained admission throughput on the
/// 2000-AP staggered-join workload (10% of users at `t = 0`, the rest
/// spread uniformly over the remaining epochs), MNU objective under the
/// repair policy, published to an in-memory event stream and verified
/// by replay.
///
/// # Errors
///
/// A service or replay failure (both correctness bugs on this
/// fault-free workload).
pub fn controller_report(opts: &Options) -> Result<ControllerBenchReport, String> {
    use mcast_controller::{fold_events, serve, ControllerConfig, LadderPolicy};
    use mcast_core::Objective;
    use mcast_events::{EventKind, MemoryPublisher, TimeQueue};

    // Same AP density as the large distributed workload (~6000 m² per
    // AP), so per-user candidate neighborhoods stay realistic at scale.
    let (n_aps, n_users, side_m, n_epochs) = if opts.quick {
        (120, 2_000, 848.0, 10u64)
    } else {
        (2_000, 40_000, 3_463.0, 20u64)
    };
    let scenario = ScenarioConfig {
        n_aps,
        n_users,
        n_sessions: 8,
        width_m: side_m,
        height_m: side_m,
        ..ScenarioConfig::paper_default()
    }
    .with_seed(0)
    .generate();
    let inst = &scenario.instance;
    let cfg = ControllerConfig {
        objective: Objective::Mnu,
        policy: LadderPolicy::Repair,
        epoch_us: 100_000,
        n_epochs,
        work_budget: 0,
        audit_oracle: false,
    };

    // Staggered joins: a 10% cohort at t = 0, the rest round-robined
    // across epochs 1..n_epochs — every epoch is an admission batch.
    let mut queue = TimeQueue::new();
    let initial = n_users / 10;
    for u in inst.users().take(initial) {
        queue.push(0, EventKind::UserJoin { user: u });
    }
    for (i, u) in inst.users().skip(initial).enumerate() {
        let epoch = 1 + (i as u64 % (n_epochs - 1));
        queue.push(epoch * cfg.epoch_us, EventKind::UserJoin { user: u });
    }

    let mut publisher = MemoryPublisher::default();
    let (live, stats) = serve(inst, &mut queue, &cfg, 1.0, &mut publisher)?;
    let replayed = fold_events(inst, &publisher.events)?;
    let replay_identical = serde_json::to_string(&live.report).ok()
        == serde_json::to_string(&replayed.report).ok()
        && live.association == replayed.association;

    let lat = stats.decision_latency_us;
    Ok(ControllerBenchReport {
        schema: "mcast-bench-controller/v2".to_string(),
        quick: opts.quick,
        workload: format!(
            "event-driven service, staggered joins, {n_aps} APs / {n_users} users, \
             {n_epochs} epochs, MNU repair policy"
        ),
        joins: stats.joins,
        epochs: n_epochs,
        events_published: stats.events_published,
        admission_wall_s: stats.admission_wall_s,
        joins_per_sec: stats.joins_per_sec,
        decision_latency: LatencyQuantiles {
            p50_us: lat.p50,
            p95_us: lat.p95,
            p99_us: lat.p99,
            max_us: lat.max,
        },
        replay_identical,
        peak_rss_bytes: peak_rss_bytes(),
    })
}

/// The memory-lean scale report (`BENCH_scale.json`): one end-to-end
/// pass at million-user scale, timed stage by stage.
///
/// Unlike the fast-vs-reference reports there is no reference to race —
/// a dense `O(APs × users)` run would not fit in memory at this size,
/// which is the point. The report instead records absolute stage times,
/// the CSR instance footprint, and the process peak RSS, plus a CRC-32
/// digest of the produced associations so CI can assert the whole
/// pipeline is deterministic across runs.
#[derive(Debug, Serialize)]
pub struct ScaleBenchReport {
    /// Report schema tag.
    pub schema: String,
    /// True when the workload was shrunk by `--quick`.
    pub quick: bool,
    /// Hardware threads available on the bench host.
    pub host_threads: usize,
    /// Human description of the pinned workload.
    pub workload: String,
    /// APs in the generated deployment.
    pub n_aps: usize,
    /// Users in the generated deployment.
    pub n_users: usize,
    /// Multicast sessions.
    pub n_sessions: usize,
    /// (AP, user) links in the instance — the quantity the CSR layout
    /// is sized by, instead of `APs × users`.
    pub n_links: usize,
    /// [`mcast_core::Instance::resident_bytes_estimate`] of the
    /// generated instance.
    pub instance_bytes_est: u64,
    /// Streaming scenario generation wall-clock, milliseconds.
    pub generate_ms: f64,
    /// SSA baseline solve wall-clock, milliseconds.
    pub ssa_ms: f64,
    /// Users the SSA baseline satisfies.
    pub ssa_satisfied: u64,
    /// Wall-clock of one budget-enforcing MNU greedy admission pass
    /// (most-constrained-first [`mcast_core::repair_user`] over a fresh
    /// ledger), milliseconds.
    pub greedy_ms: f64,
    /// Users the MNU greedy pass admits within budget.
    pub greedy_satisfied: u64,
    /// Wall-clock of one controller epoch (SSA-only ladder, fault-free
    /// plan) over the full instance, milliseconds.
    pub controller_epoch_ms: f64,
    /// Users associated after the controller epoch.
    pub controller_satisfied: u64,
    /// CRC-32 over the greedy and controller associations (4 bytes per
    /// user each, little-endian AP index, `0xFFFF_FFFF` for none) — the
    /// determinism digest CI compares across two runs.
    pub association_crc32: u32,
    /// Process peak resident set size (bytes) after the run; `None`
    /// where the platform does not expose it (non-Linux).
    pub peak_rss_bytes: Option<u64>,
}

/// The scale report on the pinned workload: 20 000 APs / 2 000 000
/// users at the paper's AP density (~6000 m² per AP) in full mode,
/// 500 APs / 50 000 users in `--quick` mode.
pub fn scale_report(opts: &Options) -> ScaleBenchReport {
    // Side length keeps ~6000 m² per AP: sqrt(n_aps × 6000).
    let (n_aps, n_users, side_m) = if opts.quick {
        (500, 50_000, 1_732.05)
    } else {
        (20_000, 2_000_000, 10_954.45)
    };
    scale_report_sized(n_aps, n_users, side_m, opts.quick)
}

/// [`scale_report`] at an explicit size (unit tests shrink further).
fn scale_report_sized(n_aps: usize, n_users: usize, side_m: f64, quick: bool) -> ScaleBenchReport {
    use mcast_controller::{ControllerConfig, LadderPolicy};
    use mcast_core::{repair_user, solve_ssa, LoadLedger, Objective, UserId};
    use mcast_faults::FaultPlan;

    let cfg = ScenarioConfig {
        n_aps,
        n_users,
        width_m: side_m,
        height_m: side_m,
        ..ScenarioConfig::paper_default()
    }
    .with_seed(0);
    let n_sessions = cfg.n_sessions;

    // Stage 1: streaming generation — users flow straight into the CSR
    // builder; no dense per-user Vec<Vec<…>> rows ever exist.
    let (generate_ms, scenario) = time_once(|| cfg.generate_streaming());
    let inst = &scenario.instance;

    // Stage 2: the SSA baseline (strongest signal, no budgets).
    let (ssa_ms, ssa) = time_once(|| solve_ssa(inst, Objective::Mnu));

    // Stage 3: one budget-enforcing MNU greedy admission pass —
    // most-constrained users (fewest candidate APs) first, each placed
    // by `repair_user` on a fresh incremental ledger.
    let (greedy_ms, greedy_assoc) = time_once(|| {
        let mut order: Vec<UserId> = inst
            .users()
            .filter(|&u| !inst.candidate_aps(u).is_empty())
            .collect();
        order.sort_by_key(|&u| (inst.candidate_aps(u).len(), u.index()));
        let mut ledger = LoadLedger::fresh(inst);
        for &u in &order {
            repair_user(&mut ledger, u, Objective::Mnu, true, |_| true);
        }
        let assoc: Vec<Option<mcast_core::ApId>> = inst.users().map(|u| ledger.ap_of(u)).collect();
        assoc
    });
    let greedy_satisfied = greedy_assoc.iter().filter(|a| a.is_some()).count() as u64;

    // Stage 4: one controller epoch over the full instance, SSA-only
    // ladder, fault-free plan — the epoch cost a live controller pays
    // to (re)build state at this scale.
    let ctl = ControllerConfig {
        objective: Objective::Mnu,
        policy: LadderPolicy::SsaOnly,
        epoch_us: 100_000,
        n_epochs: 1,
        work_budget: 0,
        audit_oracle: false,
    };
    let (controller_epoch_ms, outcome) = time_once(|| {
        mcast_controller::run(inst, &FaultPlan::none(), &ctl).expect("fault-free epoch runs")
    });
    let controller_satisfied = outcome.association.satisfied_count() as u64;

    // Determinism digest: both associations, 4 bytes per user.
    let mut digest = Vec::with_capacity(8 * inst.n_users());
    for a in greedy_assoc
        .iter()
        .copied()
        .chain(outcome.association.iter())
    {
        let idx = a.map_or(u32::MAX, |ap| ap.index() as u32);
        digest.extend_from_slice(&idx.to_le_bytes());
    }

    ScaleBenchReport {
        schema: "mcast-bench-scale/v1".to_string(),
        quick,
        host_threads: host_threads(),
        workload: format!(
            "end-to-end scale pass, {n_aps} APs / {n_users} users / {n_sessions} sessions, \
             {side_m:.0} m square (~6000 m² per AP): streaming generation, SSA baseline, \
             one MNU greedy admission pass, one SSA-only controller epoch"
        ),
        n_aps,
        n_users,
        n_sessions,
        n_links: inst.n_links(),
        instance_bytes_est: inst.resident_bytes_estimate() as u64,
        generate_ms,
        ssa_ms,
        ssa_satisfied: ssa.satisfied as u64,
        greedy_ms,
        greedy_satisfied,
        controller_epoch_ms,
        controller_satisfied,
        association_crc32: mcast_events::journal::crc32(&digest),
        peak_rss_bytes: peak_rss_bytes(),
    }
}

/// Full outcome equality: the association and every counter/flag.
fn outcomes_equal(a: &DistributedOutcome, b: &DistributedOutcome) -> bool {
    a.association == b.association
        && a.rounds == b.rounds
        && a.moves == b.moves
        && a.converged == b.converged
        && a.cycle_detected == b.cycle_detected
}

/// Runs the selected suite. The default suite writes
/// `BENCH_greedy.json` / `BENCH_topology.json` /
/// `BENCH_distributed.json` / `BENCH_controller.json` into the current
/// directory; `--suite scale` writes `BENCH_scale.json`. Returns a
/// printable summary.
///
/// # Errors
///
/// Returns an error string when a report file cannot be written, an
/// equivalence check failed, or the suite name is unknown.
pub fn run(opts: &Options) -> Result<String, String> {
    match opts.bench_suite.as_deref() {
        None | Some("default") => run_default(opts),
        Some("scale") => run_scale(opts),
        Some(other) => Err(format!(
            "unknown bench suite '{other}' (expected 'default' or 'scale')"
        )),
    }
}

/// The scale suite: writes `BENCH_scale.json`.
fn run_scale(opts: &Options) -> Result<String, String> {
    let path = "BENCH_scale.json";
    let report = scale_report(opts);
    let json =
        serde_json::to_string_pretty(&report).map_err(|e| format!("serialize {path}: {e}"))?;
    crate::journal::atomic_write(std::path::Path::new(path), json.as_bytes())
        .map_err(|e| format!("write {path}: {e}"))?;
    let rss = report.peak_rss_bytes.map_or("n/a".to_string(), |b| {
        format!("{:.0} MiB", b as f64 / (1 << 20) as f64)
    });
    Ok(format!(
        "{path}:\n  {} APs / {} users / {} links (~{:.1} MiB instance)\n  \
         generate {:>9.1} ms\n  ssa      {:>9.1} ms  ({} satisfied)\n  \
         greedy   {:>9.1} ms  ({} satisfied)\n  epoch    {:>9.1} ms  ({} satisfied)\n  \
         peak RSS {rss}, association crc32 {:08x}\n",
        report.n_aps,
        report.n_users,
        report.n_links,
        report.instance_bytes_est as f64 / (1 << 20) as f64,
        report.generate_ms,
        report.ssa_ms,
        report.ssa_satisfied,
        report.greedy_ms,
        report.greedy_satisfied,
        report.controller_epoch_ms,
        report.controller_satisfied,
        report.association_crc32,
    ))
}

/// The default suite: the four fast-vs-reference reports.
fn run_default(opts: &Options) -> Result<String, String> {
    let mut out = String::new();
    let mut all_identical = true;
    for (path, report) in [
        ("BENCH_greedy.json", greedy_report(opts)),
        ("BENCH_topology.json", topology_report(opts)),
        ("BENCH_distributed.json", distributed_report(opts)),
    ] {
        let json =
            serde_json::to_string_pretty(&report).map_err(|e| format!("serialize {path}: {e}"))?;
        crate::journal::atomic_write(std::path::Path::new(path), json.as_bytes())
            .map_err(|e| format!("write {path}: {e}"))?;
        out.push_str(&format!("{path}:\n"));
        for (key, b) in &report.benches {
            all_identical &= b.outputs_identical;
            out.push_str(&format!(
                "  {key:<14} {:>9.1} ms -> {:>8.1} ms  ({:>5.1}x, outputs {})\n",
                b.reference_ms,
                b.fast_ms,
                b.speedup,
                if b.outputs_identical {
                    "identical"
                } else {
                    "DIFFER"
                }
            ));
        }
    }
    {
        let path = "BENCH_controller.json";
        let report = controller_report(opts)?;
        let json =
            serde_json::to_string_pretty(&report).map_err(|e| format!("serialize {path}: {e}"))?;
        crate::journal::atomic_write(std::path::Path::new(path), json.as_bytes())
            .map_err(|e| format!("write {path}: {e}"))?;
        all_identical &= report.replay_identical;
        out.push_str(&format!(
            "{path}:\n  {:<14} {:>9.0} joins/s  (p50 {:.1} µs, p95 {:.1} µs, \
             p99 {:.1} µs, replay {})\n",
            "serve",
            report.joins_per_sec,
            report.decision_latency.p50_us,
            report.decision_latency.p95_us,
            report.decision_latency.p99_us,
            if report.replay_identical {
                "identical"
            } else {
                "DIFFERS"
            }
        ));
    }
    if all_identical {
        Ok(out)
    } else {
        Err(format!(
            "fast path diverged from reference:\n{out}\nThis is a correctness bug — see crates/covering/src/reference.rs"
        ))
    }
}

fn greedy_set_cover_ref(
    system: &mcast_covering::SetSystem<mcast_core::Load>,
) -> mcast_covering::Cover<mcast_core::Load> {
    reference::greedy_set_cover(system).expect("coverable")
}

/// Deterministic synthetic system, mirroring `benches/covering.rs`.
fn synthetic_system(n: usize, g: u32) -> mcast_covering::SetSystem<u64> {
    let mut b = SetSystemBuilder::<u64>::new(n);
    for e in 0..n {
        b.push_set([e as u32], 3 + (e as u64 % 5), (e as u32) % g)
            .unwrap();
    }
    for i in 0..n {
        let members: Vec<u32> = (0..n as u32)
            .filter(|&e| (e as usize * 7 + i * 13).is_multiple_of(5))
            .collect();
        if !members.is_empty() {
            b.push_set(members, 2 + (i as u64 % 7), (i as u32) % g)
                .unwrap();
        }
    }
    b.build().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_reports_have_stable_keys() {
        let opts = Options {
            quick: true,
            ..Options::default()
        };
        let g = greedy_report(&opts);
        assert!(["mcg", "costsc", "scg"]
            .iter()
            .all(|k| g.benches.contains_key(*k)));
        assert!(g.benches.values().all(|b| b.outputs_identical));
        let t = topology_report(&opts);
        assert!(t.benches.contains_key("scenario_gen"));
        assert!(t.benches.values().all(|b| b.outputs_identical));
        let d = distributed_report(&opts);
        assert_eq!(d.schema, "mcast-bench-distributed/v4");
        assert!(d.host_threads >= 1);
        assert!([
            "serial_min_total",
            "serial_min_max",
            "simultaneous_min_total",
            "simultaneous_min_max",
            "large_serial_min_max",
            "partitioned_w1",
            "partitioned_w2",
            "partitioned_w4",
            "partitioned_w8",
            "recovery_ckpt_k10",
            "recovery_ckpt_k50",
            "recovery_restore",
        ]
        .iter()
        .all(|k| d.benches.contains_key(*k)));
        assert!(d.benches.values().all(|b| b.outputs_identical));
    }

    #[test]
    fn peak_rss_is_reported_on_linux() {
        let rss = peak_rss_bytes();
        if cfg!(target_os = "linux") {
            assert!(rss.expect("procfs present") > 0);
        }
    }

    #[test]
    fn scale_report_is_deterministic_and_well_formed() {
        // Unit-test size: the real quick/full sizes run via `repro bench
        // --suite scale` (debug-build tests would crawl at 50k users).
        let a = scale_report_sized(60, 600, 600.0, true);
        let b = scale_report_sized(60, 600, 600.0, true);
        assert_eq!(a.schema, "mcast-bench-scale/v1");
        assert_eq!(a.n_links, b.n_links);
        assert_eq!(a.ssa_satisfied, b.ssa_satisfied);
        assert_eq!(a.greedy_satisfied, b.greedy_satisfied);
        assert_eq!(a.controller_satisfied, b.controller_satisfied);
        assert_eq!(
            a.association_crc32, b.association_crc32,
            "the scale pipeline must be deterministic"
        );
        assert!(a.n_links > 0);
        assert!(a.instance_bytes_est > 0);
        assert!(a.greedy_satisfied > 0, "greedy admits someone");
        assert!(
            a.controller_satisfied > 0,
            "controller epoch associates someone"
        );
        assert!(a.greedy_satisfied <= a.n_users as u64 && a.ssa_satisfied <= a.n_users as u64);
    }

    #[test]
    fn quick_controller_bench_admits_everyone_and_replays() {
        let opts = Options {
            quick: true,
            ..Options::default()
        };
        let c = controller_report(&opts).expect("service runs");
        assert_eq!(c.schema, "mcast-bench-controller/v2");
        assert_eq!(c.joins, 2_000, "every staggered join is admitted");
        assert!(c.replay_identical, "event stream must fold back exactly");
        assert!(c.joins_per_sec > 0.0);
        assert!(c.decision_latency.p50_us <= c.decision_latency.p99_us);
        assert!(c.decision_latency.p99_us <= c.decision_latency.max_us);
    }
}
