//! Evaluation harness regenerating every table and figure of the paper's
//! §7 (Performance Evaluation).
//!
//! Each `figures::*` module reproduces one figure: it sweeps the paper's
//! parameter, runs the algorithms over `--seeds` random scenarios per
//! point (the paper uses 40), and reports avg/min/max series exactly like
//! the paper's plots. The `repro` binary drives them:
//!
//! ```text
//! cargo run -p mcast-experiments --release -- all --seeds 40
//! cargo run -p mcast-experiments --release -- fig9 --quick
//! ```
//!
//! Results print as aligned tables and are also written as CSV under
//! `results/`. `EXPERIMENTS.md` records paper-vs-measured per figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algos;
pub mod bench;
pub mod chaos;
pub mod cli;
pub mod figures;
pub mod journal;
pub mod par;
pub mod plot;
pub mod report;
pub mod runner;
pub mod serve;
pub mod stats;

/// Harness-wide options parsed from the command line.
#[derive(Debug, Clone)]
pub struct Options {
    /// Random scenarios per sweep point (paper: 40).
    pub seeds: u64,
    /// Output directory for CSV files.
    pub out_dir: std::path::PathBuf,
    /// Node budget for the exact (Figure 12) solvers.
    pub max_nodes: u64,
    /// Quick mode: fewer seeds and sweep points (for smoke tests).
    pub quick: bool,
    /// Resume from the journal of a previous (interrupted) run.
    pub resume: bool,
    /// Total attempts per trial (1 = no retries).
    pub retries: u32,
    /// Soft per-trial deadline in seconds (0 disables the watchdog).
    pub deadline_s: u64,
    /// Worker threads for parallel sweeps and the partitioned bench
    /// drivers (`--threads N`); 0 means auto (available parallelism,
    /// capped — see [`par::workers`]).
    pub threads: usize,
    /// Seed of the injected-fault plan for `repro chaos`
    /// (`--chaos SEED`); `None` runs the command's default seed.
    pub chaos_seed: Option<u64>,
    /// Snapshot cadence in completed rounds/epochs for checkpointed
    /// commands (`--checkpoint-every K`); `None` uses the command's
    /// default.
    pub checkpoint_every: Option<usize>,
    /// Bench suite for `repro bench` (`--suite NAME`): `None`/`default`
    /// runs the four fast-vs-reference reports, `scale` runs the
    /// million-user end-to-end pass ([`bench::scale_report`]).
    pub bench_suite: Option<String>,
    /// Seed of the injected IO-fault plan for `repro serve`
    /// (`--io-chaos SEED`); `None` runs with a clean sink.
    pub io_chaos: Option<u64>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            seeds: 40,
            out_dir: std::path::PathBuf::from("results"),
            max_nodes: 2_000_000,
            quick: false,
            resume: false,
            retries: 2,
            deadline_s: 300,
            threads: 0,
            chaos_seed: None,
            checkpoint_every: None,
            bench_suite: None,
            io_chaos: None,
        }
    }
}
