//! Seed-aggregation statistics: the paper depicts "the average, min and
//! max values for 40 random scenarios".

use serde::Serialize;

/// Mean / min / max over a set of per-seed measurements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
    /// Number of observations.
    pub n: usize,
}

impl Summary {
    /// Summarizes a non-empty sample.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn of(values: &[f64]) -> Summary {
        assert!(!values.is_empty(), "cannot summarize an empty sample");
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary { mean, min, max, n }
    }

    /// The degraded-completion marker for a sweep point whose every trial
    /// failed: `n == 0` distinguishes "no data" from a real measurement,
    /// and tables/plots render it as a hole instead of aborting the run.
    pub fn hole() -> Summary {
        Summary {
            mean: 0.0,
            min: 0.0,
            max: 0.0,
            n: 0,
        }
    }

    /// [`Summary::of`], degrading to [`Summary::hole`] on an empty sample
    /// (every trial at this point failed).
    pub fn of_surviving(values: &[f64]) -> Summary {
        if values.is_empty() {
            Summary::hole()
        } else {
            Summary::of(values)
        }
    }
}

/// One plotted series: a labeled sequence of (x, summary) points.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// Legend label, e.g. "MLA-C".
    pub label: String,
    /// Sweep points.
    pub points: Vec<(f64, Summary)>,
}

/// One figure (or panel): everything needed to print/plot it.
#[derive(Debug, Clone, Serialize)]
pub struct Figure {
    /// Identifier, e.g. "fig9a".
    pub id: String,
    /// Human title.
    pub title: String,
    /// X axis meaning.
    pub x_label: String,
    /// Y axis meaning.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 6.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 6.0);
        assert_eq!(s.n, 3);
    }

    #[test]
    fn summary_single_value() {
        let s = Summary::of(&[4.5]);
        assert_eq!(s.mean, 4.5);
        assert_eq!(s.min, 4.5);
        assert_eq!(s.max, 4.5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn summary_empty_panics() {
        Summary::of(&[]);
    }
}
