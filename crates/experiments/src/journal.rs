//! Crash-safe result persistence — now shared infrastructure.
//!
//! The checksummed append-only journal and the atomic-write discipline
//! were born here (PR 3) for sweep checkpoints; the event-log subsystem
//! needed the same framing, so the implementation moved to
//! [`mcast_events::journal`]. This module re-exports it unchanged:
//! every existing `crate::journal::{Journal, replay_bytes,
//! atomic_write, ...}` caller keeps compiling against the same API and
//! the same on-disk format.

pub use mcast_events::journal::{
    atomic_write, crc32, replay_bytes, replay_raw_bytes, Journal, JournalError, RawReplay, Replay,
};
