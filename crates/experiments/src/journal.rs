//! Crash-safe result persistence: a checksummed append-only journal
//! (write-ahead log) of completed trial results, plus the atomic-write
//! discipline every final artifact goes through.
//!
//! ## Journal format
//!
//! One record per line:
//!
//! ```text
//! <crc32-hex8> <payload-json>\n
//! ```
//!
//! where the payload is `{"key": <TrialKey>, "value": <trial result>}`
//! and the checksum is CRC-32 (IEEE) over the payload bytes. Records are
//! flushed and fsynced as they are appended, so a crash loses at most the
//! record being written. On replay, the first line that is incomplete
//! (no trailing newline), fails its checksum, or does not parse marks the
//! end of the valid prefix: everything before it is recovered, everything
//! from it on is discarded and the file is truncated back to the valid
//! prefix so new appends never interleave with garbage.
//!
//! ## Atomic writes
//!
//! [`atomic_write`] writes into a same-directory temp file, fsyncs it,
//! and renames it over the destination, so readers (and crashed runs)
//! only ever observe either the old complete file or the new complete
//! file — never a partial one.

use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use serde::Value;

/// CRC-32 (IEEE 802.3, reflected) of `bytes`. Bitwise implementation —
/// the journal appends at solver-trial granularity, so table-free
/// simplicity beats throughput here.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Why a journal (or atomic write) operation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalError {
    /// An I/O failure on the journal file or its directory.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error, rendered.
        message: String,
    },
    /// A record could not be serialized (e.g. a non-finite float).
    Serialize(String),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io { path, message } => {
                write!(f, "journal I/O error on {}: {message}", path.display())
            }
            JournalError::Serialize(m) => write!(f, "journal serialize error: {m}"),
        }
    }
}

impl std::error::Error for JournalError {}

fn io_err(path: &Path, e: &std::io::Error) -> JournalError {
    JournalError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    }
}

/// What a journal replay recovered.
#[derive(Debug, Default)]
pub struct Replay {
    /// Valid records, in append order: `(key payload, value payload)`.
    pub records: Vec<(Value, Value)>,
    /// Bytes of valid prefix (the file is truncated to this length).
    pub valid_len: u64,
    /// Bytes dropped past the valid prefix (crash-truncated or corrupt
    /// tail). Zero on a clean journal.
    pub dropped_bytes: u64,
    /// Why the tail was dropped, when it was.
    pub tail_reason: Option<String>,
}

/// The append-only journal. Appends are serialized through an internal
/// mutex; each append is flushed and fsynced before it returns.
#[derive(Debug)]
pub struct Journal {
    file: Mutex<File>,
    path: PathBuf,
}

impl Journal {
    /// Creates (or truncates) the journal at `path` for a fresh run.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the file or its parents cannot be made.
    pub fn create(path: &Path) -> Result<Journal, JournalError> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir).map_err(|e| io_err(dir, &e))?;
        }
        let file = File::create(path).map_err(|e| io_err(path, &e))?;
        Ok(Journal {
            file: Mutex::new(file),
            path: path.to_path_buf(),
        })
    }

    /// Opens the journal at `path` for a resumed run: replays the valid
    /// record prefix, truncates any crash-damaged tail, and positions the
    /// journal for appending. A missing file resumes to an empty journal.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the file cannot be read or reopened.
    pub fn resume(path: &Path) -> Result<(Journal, Replay), JournalError> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir).map_err(|e| io_err(dir, &e))?;
        }
        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_err(path, &e)),
        };
        let replay = replay_bytes(&bytes);
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(path)
            .map_err(|e| io_err(path, &e))?;
        file.set_len(replay.valid_len)
            .map_err(|e| io_err(path, &e))?;
        file.seek(SeekFrom::End(0)).map_err(|e| io_err(path, &e))?;
        Ok((
            Journal {
                file: Mutex::new(file),
                path: path.to_path_buf(),
            },
            replay,
        ))
    }

    /// Appends one `(key, value)` record, durably: the record is written
    /// as a single checksummed line, flushed, and fsynced.
    ///
    /// # Errors
    ///
    /// [`JournalError`] on serialization or I/O failure. The caller may
    /// keep running without durability (degraded completion).
    pub fn append(&self, key: &Value, value: &Value) -> Result<(), JournalError> {
        let payload = serde_json::to_string(&Value::Object(vec![
            ("key".to_string(), key.clone()),
            ("value".to_string(), value.clone()),
        ]))
        .map_err(|e| JournalError::Serialize(e.to_string()))?;
        let line = format!("{:08x} {payload}\n", crc32(payload.as_bytes()));
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        file.write_all(line.as_bytes())
            .and_then(|()| file.flush())
            .and_then(|()| file.sync_data())
            .map_err(|e| io_err(&self.path, &e))
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Parses journal bytes into the valid record prefix. Stops at the first
/// incomplete, corrupt, or unparseable line — a crash can only damage the
/// tail, so everything past the first bad line is untrusted.
pub fn replay_bytes(bytes: &[u8]) -> Replay {
    let mut replay = Replay::default();
    let mut offset = 0usize;
    while offset < bytes.len() {
        let rest = &bytes[offset..];
        let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
            replay.tail_reason = Some("incomplete final record (no newline)".to_string());
            break;
        };
        let line = &rest[..nl];
        match parse_record(line) {
            Ok((key, value)) => {
                replay.records.push((key, value));
                offset += nl + 1;
            }
            Err(reason) => {
                replay.tail_reason = Some(reason);
                break;
            }
        }
    }
    replay.valid_len = offset as u64;
    replay.dropped_bytes = (bytes.len() - offset) as u64;
    replay
}

fn parse_record(line: &[u8]) -> Result<(Value, Value), String> {
    if line.len() < 10 || line[8] != b' ' {
        return Err("malformed record framing".to_string());
    }
    let crc_hex = std::str::from_utf8(&line[..8]).map_err(|_| "non-UTF-8 checksum".to_string())?;
    let expected = u32::from_str_radix(crc_hex, 16).map_err(|_| "bad checksum hex".to_string())?;
    let payload = &line[9..];
    let actual = crc32(payload);
    if actual != expected {
        return Err(format!(
            "checksum mismatch ({actual:08x} != {expected:08x})"
        ));
    }
    let payload = std::str::from_utf8(payload).map_err(|_| "non-UTF-8 payload".to_string())?;
    let doc = serde_json::parse_value(payload).map_err(|e| format!("bad payload JSON: {e}"))?;
    let key = doc.get("key").ok_or("record missing `key`")?.clone();
    let value = doc.get("value").ok_or("record missing `value`")?.clone();
    Ok((key, value))
}

/// Writes `contents` to `path` atomically: same-directory temp file,
/// fsync, rename over the destination, best-effort directory fsync. A
/// crash mid-write leaves the previous file intact.
///
/// # Errors
///
/// Propagates I/O errors (the temp file is cleaned up on failure).
pub fn atomic_write(path: &Path, contents: &[u8]) -> std::io::Result<()> {
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => PathBuf::from("."),
    };
    fs::create_dir_all(&dir)?;
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("artifact");
    let tmp = dir.join(format!(".{name}.tmp.{}", std::process::id()));
    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(contents)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    } else if let Ok(d) = File::open(&dir) {
        // Make the rename itself durable where the platform allows it.
        let _ = d.sync_all();
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mcast_journal_{name}_{}", std::process::id()))
    }

    fn k(s: &str) -> Value {
        Value::Str(s.to_string())
    }

    #[test]
    fn crc32_known_vectors() {
        // IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_then_replay_roundtrips() {
        let path = tmp("roundtrip.jsonl");
        let j = Journal::create(&path).unwrap();
        j.append(&k("a"), &Value::Int(1)).unwrap();
        j.append(&k("b"), &Value::Float(2.5)).unwrap();
        drop(j);
        let (_, replay) = Journal::resume(&path).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.dropped_bytes, 0);
        assert_eq!(replay.records[0], (k("a"), Value::Int(1)));
        assert_eq!(replay.records[1], (k("b"), Value::Float(2.5)));
        let _ = fs::remove_file(path);
    }

    #[test]
    fn truncated_tail_is_dropped_and_file_repaired() {
        let path = tmp("truncate.jsonl");
        let j = Journal::create(&path).unwrap();
        j.append(&k("a"), &Value::Int(1)).unwrap();
        j.append(&k("b"), &Value::Int(2)).unwrap();
        drop(j);
        let full = fs::read(&path).unwrap();
        // Cut the second record mid-line.
        fs::write(&path, &full[..full.len() - 3]).unwrap();
        let (j2, replay) = Journal::resume(&path).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert!(replay.dropped_bytes > 0);
        assert!(replay.tail_reason.is_some());
        // The file was truncated back to the valid prefix; a new append
        // lands cleanly after record one.
        j2.append(&k("c"), &Value::Int(3)).unwrap();
        drop(j2);
        let (_, replay2) = Journal::resume(&path).unwrap();
        assert_eq!(replay2.records.len(), 2);
        assert_eq!(replay2.records[1].0, k("c"));
        let _ = fs::remove_file(path);
    }

    #[test]
    fn corrupt_byte_fails_checksum() {
        let path = tmp("corrupt.jsonl");
        let j = Journal::create(&path).unwrap();
        j.append(&k("a"), &Value::Int(7)).unwrap();
        drop(j);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        let replay = replay_bytes(&bytes);
        assert_eq!(replay.records.len(), 0);
        assert!(replay.tail_reason.unwrap().contains("checksum"));
        let _ = fs::remove_file(path);
    }

    #[test]
    fn resume_missing_file_is_empty() {
        let path = tmp("missing.jsonl");
        let _ = fs::remove_file(&path);
        let (_, replay) = Journal::resume(&path).unwrap();
        assert!(replay.records.is_empty());
        let _ = fs::remove_file(path);
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp() {
        let dir = tmp("atomic_dir");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("out.json");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind");
        let _ = fs::remove_dir_all(dir);
    }
}
