//! Crash-recovery end-to-end tests: a journaled sweep interrupted at an
//! arbitrary byte offset must, after `--resume`, produce output
//! byte-identical to an uninterrupted run — and injected trial panics
//! must degrade to typed, retry-accounted errors, never a torn run.

use std::path::{Path, PathBuf};
use std::time::Duration;

use mcast_experiments::report::write_csv;
use mcast_experiments::runner::{Injection, RetryPolicy, Runner, TrialKey};
use mcast_experiments::stats::{Figure, Series, Summary};

const XS: [f64; 3] = [10.0, 20.0, 40.0];
const SEEDS: u64 = 4;
const ALGOS: [&str; 2] = ["A", "B"];

fn tmp_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mcast_resume_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// A deterministic stand-in for one measured trial: an "awkward" float
/// per (x, seed, algo) so byte-identity actually exercises the shortest
/// round-trip float formatting, plus a second component to mimic the
/// multi-value rows real figures journal.
fn measure(x: f64, seed: u64, algo: &str) -> Vec<f64> {
    let ai = ALGOS.iter().position(|a| *a == algo).unwrap() as f64;
    let v = (x * 31.7 + seed as f64 * 0.613 + ai * 1.37).sin() * 10.3;
    vec![v, v * v / 3.0]
}

/// Runs the full sweep through `runner` and returns the figure. Every
/// trial goes through `Runner::trial`, exactly like the real harness.
fn run_sweep(runner: &Runner) -> Figure {
    let mut series: Vec<Series> = ALGOS
        .iter()
        .map(|a| Series {
            label: (*a).to_string(),
            points: Vec::new(),
        })
        .collect();
    for &x in &XS {
        for (ai, algo) in ALGOS.iter().enumerate() {
            let mut values = Vec::new();
            for seed in 0..SEEDS {
                let key = TrialKey::new("resume_it", x, seed, algo);
                if let Ok(row) = runner.trial(&key, || Ok(measure(x, seed, algo))) {
                    values.push(row[0]);
                }
            }
            if values.is_empty() {
                runner.note_hole("resume_it", x, algo);
            }
            series[ai].points.push((x, Summary::of_surviving(&values)));
        }
    }
    Figure {
        id: "resume_it".into(),
        title: "crash-recovery integration sweep".into(),
        x_label: "x".into(),
        y_label: "v".into(),
        series,
    }
}

fn journal_path(dir: &Path) -> PathBuf {
    dir.join(".runstate").join("journal.jsonl")
}

/// One full run into `dir` (fresh or resumed); returns the CSV bytes.
fn run_to_csv(dir: &Path, resume: bool) -> Vec<u8> {
    let runner = Runner::with_journal(
        &journal_path(dir),
        resume,
        RetryPolicy::default(),
        Duration::ZERO,
    )
    .unwrap();
    let fig = run_sweep(&runner);
    write_csv(&fig, dir).unwrap();
    std::fs::read(dir.join("resume_it.csv")).unwrap()
}

#[test]
fn resume_after_truncation_at_any_offset_is_byte_identical() {
    let clean_dir = tmp_dir("clean");
    let clean_csv = run_to_csv(&clean_dir, false);
    let full_journal = std::fs::read(journal_path(&clean_dir)).unwrap();
    assert!(
        full_journal.len() > 200,
        "journal unexpectedly small: {} bytes",
        full_journal.len()
    );

    // Truncation points: both newline boundaries (clean crash between
    // appends) and offsets inside a record (torn write mid-crash).
    let mut offsets: Vec<usize> = vec![0, 1, full_journal.len() - 1, full_journal.len()];
    offsets.extend((0..full_journal.len()).step_by(97));
    let newlines: Vec<usize> = full_journal
        .iter()
        .enumerate()
        .filter(|&(_, &b)| b == b'\n')
        .map(|(i, _)| i)
        .collect();
    for &nl in newlines.iter().step_by(3) {
        offsets.push(nl); // torn write: record missing its newline
        offsets.push(nl + 1); // clean crash between appends
    }
    offsets.sort_unstable();
    offsets.dedup();

    let total_trials = (XS.len() * ALGOS.len() * SEEDS as usize) as u64;
    for &cut in &offsets {
        let dir = tmp_dir("resumed");
        std::fs::create_dir_all(dir.join(".runstate")).unwrap();
        std::fs::write(journal_path(&dir), &full_journal[..cut]).unwrap();

        let runner = Runner::with_journal(
            &journal_path(&dir),
            true,
            RetryPolicy::default(),
            Duration::ZERO,
        )
        .unwrap();
        let fig = run_sweep(&runner);
        write_csv(&fig, &dir).unwrap();
        let resumed_csv = std::fs::read(dir.join("resume_it.csv")).unwrap();
        assert_eq!(
            resumed_csv, clean_csv,
            "resume after truncating the journal to {cut} bytes diverged"
        );

        let report = runner.report();
        assert_eq!(
            report.replayed + report.executed,
            total_trials,
            "trial accounting wrong at cut {cut}: {report:?}"
        );
        assert!(
            report.failed.is_empty() && report.holes.is_empty(),
            "unexpected failures at cut {cut}: {report:?}"
        );

        // The healed journal must now replay completely: a second resume
        // sees every trial cached and executes nothing.
        let again = Runner::with_journal(
            &journal_path(&dir),
            true,
            RetryPolicy::default(),
            Duration::ZERO,
        )
        .unwrap();
        let fig = run_sweep(&again);
        write_csv(&fig, &dir).unwrap();
        assert_eq!(std::fs::read(dir.join("resume_it.csv")).unwrap(), clean_csv);
        let r2 = again.report();
        assert_eq!((r2.replayed, r2.executed), (total_trials, 0));

        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&clean_dir);
}

#[test]
fn injected_panic_becomes_typed_error_with_retry_accounting() {
    // One trial panics on every attempt: it must come back as a typed
    // TrialError::Panicked, with every attempt accounted, while the rest
    // of the sweep completes and the point renders as a hole.
    let runner = Runner::with_config(
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
        },
        Injection::parse_list("x=20|seed=1|algo=B:*"),
    );
    let fig = run_sweep(&runner);

    let report = runner.report();
    assert_eq!(report.failed.len(), 1, "report: {report:?}");
    let failed = &report.failed[0];
    assert!(failed.key.contains("x=20") && failed.key.contains("algo=B"));
    assert_eq!(failed.attempts, 3);
    assert!(failed.error.contains("panicked"), "error: {}", failed.error);
    assert_eq!(report.panics_caught, 3);
    assert_eq!(report.retries, 2);

    // The sibling seeds survived: the (x=20, B) point still has data.
    let b = fig.series.iter().find(|s| s.label == "B").unwrap();
    let (_, sum) = b.points.iter().find(|(x, _)| *x == 20.0).unwrap();
    assert_eq!(sum.n as u64, SEEDS - 1);
    assert!(report.holes.is_empty());
}

#[test]
fn transient_injected_failure_recovers_and_whole_point_fails_to_a_hole() {
    // (a) A trial that panics only on its first attempt recovers.
    let runner = Runner::with_config(
        RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
        },
        Injection::parse_list("x=10|seed=2|algo=A:1"),
    );
    let fig = run_sweep(&runner);
    let report = runner.report();
    assert!(report.failed.is_empty(), "report: {report:?}");
    assert_eq!(report.retries, 1);
    let a = fig.series.iter().find(|s| s.label == "A").unwrap();
    let (_, sum) = a.points.iter().find(|(x, _)| *x == 10.0).unwrap();
    assert_eq!(sum.n as u64, SEEDS, "recovered trial must contribute");

    // (b) Every seed of a point failing leaves a hole, not an abort.
    // The pattern matches every x=40 trial (all seeds, both algos).
    let runner = Runner::with_config(
        RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
        },
        Injection::parse_list("x=40|seed:*"),
    );
    let fig = run_sweep(&runner);
    let report = runner.report();
    assert_eq!(report.failed.len(), ALGOS.len() * SEEDS as usize);
    assert_eq!(
        report.holes,
        vec![
            "resume_it|x=40|algo=A".to_string(),
            "resume_it|x=40|algo=B".to_string(),
        ]
    );
    let a = fig.series.iter().find(|s| s.label == "A").unwrap();
    let (_, sum) = a.points.iter().find(|(x, _)| *x == 40.0).unwrap();
    assert_eq!(sum.n, 0, "all-failed point must be a hole");
    // And the renderer shows the hole instead of fake zeros.
    let table = mcast_experiments::report::render_table(&fig);
    assert!(table.contains("(no data)"), "table: {table}");
}
