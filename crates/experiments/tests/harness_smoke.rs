//! Smoke tests of the evaluation harness itself: every figure module
//! produces well-formed series with tiny options, tables render, CSV
//! writes, and the ASCII plotter accepts every figure.

use mcast_experiments::figures::{
    ablations, channels, fig10, fig11, fig12, fig9, mobility, revenue, table1,
};
use mcast_experiments::plot::render_ascii;
use mcast_experiments::report::{render_table, write_csv};
use mcast_experiments::runner::Runner;
use mcast_experiments::stats::Figure;
use mcast_experiments::Options;

fn tiny() -> Options {
    Options {
        seeds: 1,
        quick: true,
        max_nodes: 200_000,
        out_dir: std::env::temp_dir().join(format!("mcast_smoke_{}", std::process::id())),
        ..Options::default()
    }
}

fn well_formed(figs: &[Figure]) {
    assert!(!figs.is_empty());
    for fig in figs {
        assert!(!fig.id.is_empty());
        assert!(!fig.series.is_empty(), "{} has no series", fig.id);
        let n_points = fig.series[0].points.len();
        assert!(n_points > 0, "{} series empty", fig.id);
        for s in &fig.series {
            assert_eq!(s.points.len(), n_points, "{} ragged series", fig.id);
            for (x, sum) in &s.points {
                assert!(x.is_finite());
                assert!(sum.mean.is_finite());
                assert!(sum.min <= sum.mean + 1e-12 && sum.mean <= sum.max + 1e-12);
                // Some modules aggregate over epochs or fixed seed floors,
                // so the sample count is at least the seed count.
                assert!(sum.n >= 1, "{} empty sample", fig.id);
            }
        }
        // Table, CSV and plot must all accept the figure.
        let table = render_table(fig);
        assert!(table.contains(&fig.id));
        write_csv(fig, &tiny().out_dir).expect("csv writes");
        let plot = render_ascii(fig, 48, 12);
        assert!(plot.contains(&fig.id));
    }
}

#[test]
fn fig9_smoke() {
    well_formed(&fig9::run(&tiny(), &Runner::ephemeral()));
}

#[test]
fn fig10_smoke() {
    well_formed(&fig10::run(&tiny(), &Runner::ephemeral()));
}

#[test]
fn fig11_smoke() {
    well_formed(&fig11::run(&tiny(), &Runner::ephemeral()));
}

#[test]
fn fig12_smoke() {
    well_formed(&fig12::run(&tiny(), &Runner::ephemeral()));
}

#[test]
fn ablations_smoke() {
    well_formed(&ablations::run(&tiny(), &Runner::ephemeral()));
}

#[test]
fn channels_smoke() {
    well_formed(&channels::run(&tiny(), &Runner::ephemeral()));
}

#[test]
fn mobility_smoke() {
    well_formed(&mobility::run(&tiny(), &Runner::ephemeral()));
}

#[test]
fn revenue_smoke() {
    well_formed(&revenue::run(&tiny(), &Runner::ephemeral()));
}

#[test]
fn table1_smoke() {
    let out = table1::run();
    assert!(out.contains("54"));
    assert!(out.contains("validated"));
}

#[test]
fn fig9_quick_points_are_subset_of_full() {
    let quick = fig9::run(&tiny(), &Runner::ephemeral());
    let quick_xs: Vec<f64> = quick[0].series[0].points.iter().map(|p| p.0).collect();
    assert_eq!(quick_xs, vec![50.0, 250.0, 400.0]);
}
