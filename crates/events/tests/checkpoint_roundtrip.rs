//! Checkpoint/restore roundtrip property for the supervised runtime and
//! the crc32-framed snapshot sink: a checkpointed run truncated at an
//! *arbitrary byte offset* (a torn tail from a mid-write crash) must
//! still restore from the latest whole frame and replay to the
//! byte-identical outcome and decision trace of an uninterrupted run —
//! for every worker count `W ∈ {1, 2, 4}`, both execution modes, both
//! policies, and several checkpoint cadences.
//!
//! The case count honors `PROPTEST_CASES` and defaults to 16 — each
//! case runs 2 policies × 2 modes × 3 worker counts = 12 roundtrips.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::collection::vec;
use proptest::prelude::*;

use mcast_core::{
    resume_distributed_supervised, run_distributed_supervised, Association, DistributedConfig,
    ExecutionMode, Instance, InstanceBuilder, Kbps, Load, Partition, Policy, SuperviseOptions,
};
use mcast_events::{load_latest_checkpoint, PartitionCheckpointSink};

const RATES: [u32; 4] = [6, 12, 24, 54];

/// A random instance where AP 0 reaches every user (coverable by
/// construction); other links appear at random. Same shape as the
/// mcast-core `partition_equivalence.rs` strategy.
fn coverable_instance() -> impl Strategy<Value = Instance> {
    (1usize..5, 1usize..12, 1usize..4).prop_flat_map(|(n_aps, n_users, n_sessions)| {
        let user_sessions = vec(0u32..(n_sessions as u32), n_users);
        let links = vec(proptest::option::of(0usize..RATES.len()), n_aps * n_users);
        let base_rates = vec(0usize..RATES.len(), n_users);
        (
            Just(n_aps),
            Just(n_sessions),
            user_sessions,
            links,
            base_rates,
        )
            .prop_map(|(n_aps, n_sessions, sessions, links, base_rates)| {
                let mut b = InstanceBuilder::new();
                b.supported_rates(RATES.iter().map(|&m| Kbps::from_mbps(m)));
                let session_ids: Vec<_> = (0..n_sessions)
                    .map(|_| b.add_session(Kbps::from_mbps(1)))
                    .collect();
                let ap_ids: Vec<_> = (0..n_aps).map(|_| b.add_ap(Load::permille(900))).collect();
                let user_ids: Vec<_> = sessions
                    .iter()
                    .map(|&s| b.add_user(session_ids[s as usize]))
                    .collect();
                for (u, &ridx) in base_rates.iter().enumerate() {
                    b.link(ap_ids[0], user_ids[u], Kbps::from_mbps(RATES[ridx]))
                        .unwrap();
                }
                for a in 1..n_aps {
                    for u in 0..user_ids.len() {
                        if let Some(ridx) = links[a * user_ids.len() + u] {
                            b.link(ap_ids[a], user_ids[u], Kbps::from_mbps(RATES[ridx]))
                                .unwrap();
                        }
                    }
                }
                b.build().unwrap()
            })
    })
}

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16)
}

/// A scratch checkpoint path unique across concurrently running test
/// binaries and proptest cases.
fn scratch_path() -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "mcast_ckpt_roundtrip_{}_{n}.ckpt",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Write checkpoints every K rounds through the framed sink, tear
    /// the file at an arbitrary byte offset, restore from whatever
    /// whole frame survives, and require the resumed run to reproduce
    /// the uninterrupted outcome and decision trace exactly.
    #[test]
    fn torn_checkpoint_file_restores_byte_identically(
        inst in coverable_instance(),
        checkpoint_every in 1usize..4,
        cut_permille in 0u32..=1000,
    ) {
        for policy in [Policy::MinTotalLoad, Policy::MinMaxVector] {
            for mode in [ExecutionMode::Serial, ExecutionMode::Simultaneous] {
                let config = DistributedConfig {
                    policy,
                    mode,
                    max_rounds: 30,
                    ..DistributedConfig::default()
                };
                let initial = Association::empty(inst.n_users());
                for w in [1usize, 2, 4] {
                    let part = Partition::contiguous(&inst, w).unwrap();
                    let ctx = format!(
                        "{policy:?}/{mode:?} W={w} K={checkpoint_every} cut={cut_permille}"
                    );
                    let traced = SuperviseOptions {
                        trace: true,
                        ..SuperviseOptions::default()
                    };
                    let oracle = run_distributed_supervised(
                        &inst,
                        &config,
                        initial.clone(),
                        &part,
                        &traced,
                    )
                    .unwrap();

                    let path = scratch_path();
                    let sink = PartitionCheckpointSink::create(&path).unwrap();
                    let opts = SuperviseOptions {
                        trace: true,
                        checkpoint_every: Some(checkpoint_every),
                        sink: Some(&sink),
                        ..SuperviseOptions::default()
                    };
                    let checkpointed = run_distributed_supervised(
                        &inst,
                        &config,
                        initial.clone(),
                        &part,
                        &opts,
                    )
                    .unwrap();
                    drop(sink);
                    // The sink must not perturb the run itself.
                    prop_assert_eq!(
                        &checkpointed.outcome.association,
                        &oracle.outcome.association,
                        "checkpointed association: {}", &ctx
                    );
                    prop_assert_eq!(&checkpointed.trace, &oracle.trace,
                        "checkpointed trace: {}", &ctx);

                    // Tear the file at an arbitrary byte offset — whole
                    // frames before the cut survive, the torn tail is
                    // dropped by the crc32 prefix rule.
                    let bytes = std::fs::read(&path).unwrap();
                    let cut = bytes.len() * cut_permille as usize / 1000;
                    std::fs::write(&path, &bytes[..cut]).unwrap();
                    let restored = load_latest_checkpoint(&path).unwrap();
                    std::fs::remove_file(&path).ok();

                    // A short run (or a deep cut) can leave no frame at
                    // all; restore is only defined when one survives.
                    if let Some(cp) = restored {
                        let resumed = resume_distributed_supervised(
                            &inst,
                            &config,
                            &part,
                            &cp,
                            &traced,
                        )
                        .unwrap();
                        prop_assert_eq!(
                            &resumed.outcome.association,
                            &oracle.outcome.association,
                            "resumed association: {}", &ctx
                        );
                        prop_assert_eq!(
                            resumed.outcome.moves,
                            oracle.outcome.moves,
                            "resumed moves: {}", &ctx
                        );
                        prop_assert_eq!(
                            resumed.outcome.rounds,
                            oracle.outcome.rounds,
                            "resumed rounds: {}", &ctx
                        );
                        prop_assert_eq!(
                            resumed.outcome.converged,
                            oracle.outcome.converged,
                            "resumed converged: {}", &ctx
                        );
                        prop_assert_eq!(&resumed.trace, &oracle.trace,
                            "resumed trace: {}", &ctx);
                    }
                }
            }
        }
    }
}
