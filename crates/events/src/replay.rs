//! Decoding an event stream back out of its on-disk form.
//!
//! This module recovers the *events*; folding them back into controller
//! state (report + association) lives next to the controller
//! (`mcast_controller::replay`), which owns those types. Keeping the
//! decoder here means anything that can read bytes can inspect a stream
//! without pulling in the solver stack.

use serde::Deserialize;

use crate::event::{Event, EventKind};
use crate::journal::replay_raw_bytes;

/// What decoding an `events.jsonl` stream recovered.
#[derive(Debug, Default)]
pub struct StreamReplay {
    /// The valid event prefix, in log order.
    pub events: Vec<Event>,
    /// Bytes of valid prefix.
    pub valid_len: u64,
    /// Bytes dropped past the valid prefix (torn or corrupt tail).
    pub dropped_bytes: u64,
    /// Why the tail was dropped, when it was.
    pub tail_reason: Option<String>,
    /// True if the stream ends with a matching
    /// [`EventKind::StreamClosed`] trailer — the run completed and
    /// nothing was lost.
    pub closed: bool,
}

/// Decodes stream bytes into the valid event prefix.
///
/// Framing errors (bad checksum, torn line) end the prefix exactly as
/// journal replay does; an event whose JSON parses but whose shape is
/// unknown also ends the prefix — a half-upgraded reader must not
/// silently skip what it cannot understand. Out-of-order `seq` ends the
/// prefix too: log order is part of the format.
pub fn replay_stream_bytes(bytes: &[u8]) -> StreamReplay {
    replay_stream_bytes_from(bytes, 0)
}

/// [`replay_stream_bytes`] for a log *suffix*: the first event is
/// expected to carry `start_seq` (the sequence continues from a
/// checkpointed prefix). Snapshot + suffix-replay recovery decodes the
/// bytes past the checkpoint's byte position with the checkpoint's next
/// sequence number.
pub fn replay_stream_bytes_from(bytes: &[u8], start_seq: u64) -> StreamReplay {
    let raw = replay_raw_bytes(bytes);
    let mut out = StreamReplay {
        valid_len: 0,
        dropped_bytes: bytes.len() as u64,
        tail_reason: raw.tail_reason,
        ..StreamReplay::default()
    };
    // Re-derive per-line byte offsets so shape errors can truncate
    // mid-prefix: each valid line is `8 hex + space + payload + \n`.
    let mut offset = 0u64;
    let mut consumed = 0u64;
    for doc in &raw.payloads {
        let event = match Event::deserialize_value(doc) {
            Ok(ev) => ev,
            Err(e) => {
                out.tail_reason = Some(format!("unknown event shape: {e}"));
                break;
            }
        };
        let expected = start_seq + out.events.len() as u64;
        if event.seq != expected {
            out.tail_reason = Some(format!(
                "log sequence broke: expected {expected}, found {}",
                event.seq
            ));
            break;
        }
        // Advance past this line in the original bytes.
        let line_len = line_len_at(bytes, offset);
        offset += line_len;
        consumed = offset;
        out.events.push(event);
    }
    out.valid_len = consumed;
    out.dropped_bytes = bytes.len() as u64 - consumed;
    out.closed = match out.events.last() {
        Some(Event {
            kind: EventKind::StreamClosed { events },
            ..
        }) => *events == (start_seq + out.events.len() as u64 - 1),
        _ => false,
    };
    out
}

fn line_len_at(bytes: &[u8], offset: u64) -> u64 {
    let rest = &bytes[offset as usize..];
    let nl = rest
        .iter()
        .position(|&b| b == b'\n')
        .expect("valid journal lines end in newline");
    nl as u64 + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::crc32;
    use mcast_core::UserId;

    fn frame(payload: &str) -> String {
        format!("{:08x} {payload}\n", crc32(payload.as_bytes()))
    }

    fn event_line(seq: u64, kind: EventKind) -> String {
        let ev = Event {
            at_us: seq,
            seq,
            kind,
        };
        frame(&serde_json::to_string(&ev).unwrap())
    }

    #[test]
    fn clean_closed_stream_decodes_fully() {
        let mut s = String::new();
        s += &event_line(0, EventKind::UserJoin { user: UserId(0) });
        s += &event_line(1, EventKind::UserJoin { user: UserId(1) });
        s += &event_line(2, EventKind::StreamClosed { events: 2 });
        let r = replay_stream_bytes(s.as_bytes());
        assert_eq!(r.events.len(), 3);
        assert_eq!(r.dropped_bytes, 0);
        assert!(r.closed);
        assert!(r.tail_reason.is_none());
    }

    #[test]
    fn torn_tail_yields_valid_open_prefix() {
        let mut s = String::new();
        s += &event_line(0, EventKind::UserJoin { user: UserId(0) });
        s += &event_line(1, EventKind::StreamClosed { events: 1 });
        let cut = &s.as_bytes()[..s.len() - 5];
        let r = replay_stream_bytes(cut);
        assert_eq!(r.events.len(), 1);
        assert!(!r.closed, "a torn stream is not closed");
        assert!(r.dropped_bytes > 0);
        assert!(r.tail_reason.is_some());
    }

    #[test]
    fn unknown_shape_ends_the_prefix() {
        let mut s = String::new();
        s += &event_line(0, EventKind::UserJoin { user: UserId(0) });
        s += &frame("{\"at_us\":1,\"seq\":1,\"kind\":{\"Warp\":{\"x\":1}}}");
        let r = replay_stream_bytes(s.as_bytes());
        assert_eq!(r.events.len(), 1);
        assert!(r.tail_reason.unwrap().contains("unknown event shape"));
    }

    #[test]
    fn sequence_gap_ends_the_prefix() {
        let mut s = String::new();
        s += &event_line(0, EventKind::UserJoin { user: UserId(0) });
        s += &event_line(5, EventKind::UserJoin { user: UserId(1) });
        let r = replay_stream_bytes(s.as_bytes());
        assert_eq!(r.events.len(), 1);
        assert!(r.tail_reason.unwrap().contains("sequence broke"));
    }

    #[test]
    fn trailer_with_wrong_count_is_not_closed() {
        let mut s = String::new();
        s += &event_line(0, EventKind::UserJoin { user: UserId(0) });
        s += &event_line(1, EventKind::StreamClosed { events: 7 });
        let r = replay_stream_bytes(s.as_bytes());
        assert_eq!(r.events.len(), 2);
        assert!(!r.closed);
    }
}
