//! Scripted IO faults: a seeded, deterministic plan of write/sync/rename
//! failures injected under the journal, the snapshot appender, the
//! atomic-write protocol, and any [`EventPublisher`] (via [`FaultSink`]).
//!
//! The design copies the supervision runtime's `ChaosPlan` idiom: the
//! plan is computed up front from a seed with splitmix64, each scripted
//! fault is a one-shot latch keyed by the *operation index* in its
//! category (write/sync/rename), and firing is an atomic swap — so the
//! same seed injects the same faults at the same operations on every
//! run, regardless of timing. A `sticky_write_from` threshold models a
//! disk that stays full: every write operation at or past it fails,
//! which is what forces a resilient publisher down its degrade ladder
//! instead of retrying forever.
//!
//! The faults themselves are honest about their on-disk consequences:
//! a short write really does leave the torn byte prefix in the file
//! (exercising the same recovery the crc32 framing was built for), a
//! failed fsync keeps the bytes (the page cache survives an fsync
//! error in-process), and a failed rename leaves the destination
//! untouched.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::event::Event;
use crate::journal::JournalError;
use crate::publish::{EventPublisher, SinkPressure};

use crate::harden::splitmix64;

/// How a scripted write operation fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Half the bytes land, then the write errors (torn write / ENOSPC
    /// mid-buffer). The file really keeps the torn prefix.
    Short,
    /// Nothing lands; the write errors with an interrupted-style,
    /// transient failure (EINTR). A retry succeeds.
    Interrupted,
    /// Nothing lands; the write errors with a disk-full-style failure.
    DiskFull,
}

impl WriteFault {
    /// Renders the fault as the `std::io::Error` a real syscall in this
    /// failure mode would produce.
    pub fn to_io_error(self) -> std::io::Error {
        match self {
            WriteFault::Short => {
                std::io::Error::new(std::io::ErrorKind::WriteZero, "injected short write (torn)")
            }
            WriteFault::Interrupted => std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "injected interrupted write (EINTR)",
            ),
            WriteFault::DiskFull => std::io::Error::other("injected disk full (ENOSPC)"),
        }
    }
}

/// Counters of what a plan has actually seen and injected, for the
/// deterministic degraded report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoFaultCounters {
    /// Write operations observed.
    pub writes: u64,
    /// Sync operations observed.
    pub syncs: u64,
    /// Rename operations observed.
    pub renames: u64,
    /// Faults injected across all categories.
    pub injected: u64,
}

/// A deterministic plan of IO faults. Threaded (as an `Arc`) into
/// [`Journal`](crate::journal::Journal),
/// [`SnapshotFile`](crate::snapshot::SnapshotFile),
/// [`atomic_write_with`](crate::journal::atomic_write_with), and
/// [`FaultSink`].
#[derive(Debug)]
pub struct IoFaultPlan {
    /// One-shot write faults: `(write op index, fault)`.
    write_ops: Vec<(u64, WriteFault)>,
    write_fired: Vec<AtomicBool>,
    /// One-shot sync failures by sync op index.
    sync_ops: Vec<u64>,
    sync_fired: Vec<AtomicBool>,
    /// One-shot rename failures by rename op index.
    rename_ops: Vec<u64>,
    rename_fired: Vec<AtomicBool>,
    /// All write ops at or past this index fail with disk-full — the
    /// permanent-failure regime that drives degrade ladders.
    sticky_write_from: Option<u64>,
    writes: AtomicU64,
    syncs: AtomicU64,
    renames: AtomicU64,
    injected: AtomicU64,
}

impl IoFaultPlan {
    /// A plan that injects nothing (every operation succeeds).
    pub fn quiet() -> IoFaultPlan {
        IoFaultPlan::scripted(Vec::new(), Vec::new(), Vec::new(), None)
    }

    /// An explicitly scripted plan, for tests that need one exact fault
    /// at one exact operation.
    pub fn scripted(
        write_ops: Vec<(u64, WriteFault)>,
        sync_ops: Vec<u64>,
        rename_ops: Vec<u64>,
        sticky_write_from: Option<u64>,
    ) -> IoFaultPlan {
        let write_fired = write_ops.iter().map(|_| AtomicBool::new(false)).collect();
        let sync_fired = sync_ops.iter().map(|_| AtomicBool::new(false)).collect();
        let rename_fired = rename_ops.iter().map(|_| AtomicBool::new(false)).collect();
        IoFaultPlan {
            write_ops,
            write_fired,
            sync_ops,
            sync_fired,
            rename_ops,
            rename_fired,
            sticky_write_from,
            writes: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            renames: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// A seeded plan: a handful of transient write faults and a sync
    /// failure early in the run, then — on roughly half of seeds — a
    /// sticky disk-full partway through, so both the retry-and-recover
    /// path and the full degrade ladder get exercised across seeds.
    /// Identical seeds script identical faults at identical operations.
    pub fn seeded(seed: u64) -> IoFaultPlan {
        let mut s = seed ^ 0x10FA_017C_0DE5;
        let mut write_ops = Vec::new();
        let n_transient = 2 + (splitmix64(&mut s) % 3); // 2..=4
        for _ in 0..n_transient {
            let op = splitmix64(&mut s) % 48;
            let fault = match splitmix64(&mut s) % 3 {
                0 => WriteFault::Short,
                1 => WriteFault::Interrupted,
                _ => WriteFault::DiskFull,
            };
            write_ops.push((op, fault));
        }
        write_ops.sort_by_key(|&(op, _)| op);
        write_ops.dedup_by_key(|&mut (op, _)| op);
        let sync_ops = vec![splitmix64(&mut s) % 12];
        let sticky_write_from = if splitmix64(&mut s).is_multiple_of(2) {
            Some(64 + splitmix64(&mut s) % 128)
        } else {
            None
        };
        IoFaultPlan::scripted(write_ops, sync_ops, Vec::new(), sticky_write_from)
    }

    /// Whether this plan can ever inject anything.
    pub fn is_quiet(&self) -> bool {
        self.write_ops.is_empty()
            && self.sync_ops.is_empty()
            && self.rename_ops.is_empty()
            && self.sticky_write_from.is_none()
    }

    /// Consulted once per write operation: `None` means the write
    /// proceeds untouched, `Some(fault)` tells the caller how to fail.
    pub fn next_write_fate(&self) -> Option<WriteFault> {
        let op = self.writes.fetch_add(1, Ordering::Relaxed);
        if let Some(from) = self.sticky_write_from {
            if op >= from {
                self.injected.fetch_add(1, Ordering::Relaxed);
                return Some(WriteFault::DiskFull);
            }
        }
        for (i, &(at, fault)) in self.write_ops.iter().enumerate() {
            if at == op && !self.write_fired[i].swap(true, Ordering::Relaxed) {
                self.injected.fetch_add(1, Ordering::Relaxed);
                return Some(fault);
            }
        }
        None
    }

    /// Consulted once per fsync operation.
    pub fn next_sync_fails(&self) -> bool {
        let op = self.syncs.fetch_add(1, Ordering::Relaxed);
        for (i, &at) in self.sync_ops.iter().enumerate() {
            if at == op && !self.sync_fired[i].swap(true, Ordering::Relaxed) {
                self.injected.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Consulted once per rename operation.
    pub fn next_rename_fails(&self) -> bool {
        let op = self.renames.fetch_add(1, Ordering::Relaxed);
        for (i, &at) in self.rename_ops.iter().enumerate() {
            if at == op && !self.rename_fired[i].swap(true, Ordering::Relaxed) {
                self.injected.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// What the plan has observed and injected so far.
    pub fn counters(&self) -> IoFaultCounters {
        IoFaultCounters {
            writes: self.writes.load(Ordering::Relaxed),
            syncs: self.syncs.load(Ordering::Relaxed),
            renames: self.renames.load(Ordering::Relaxed),
            injected: self.injected.load(Ordering::Relaxed),
        }
    }

    /// Renders a write fault for callers that persist nothing
    /// themselves (e.g. [`FaultSink`] over a memory publisher).
    pub fn write_error(fault: WriteFault, path: &std::path::Path) -> JournalError {
        JournalError::Io {
            path: path.to_path_buf(),
            message: fault.to_io_error().to_string(),
        }
    }
}

/// An [`EventPublisher`] wrapper that injects the plan's write/sync
/// faults *in front of* any inner sink — the pure-sink counterpart of
/// threading the plan into a [`Journal`](crate::journal::Journal).
/// Used to unit-test degrade ladders without touching the filesystem.
#[derive(Debug)]
pub struct FaultSink<P> {
    inner: P,
    plan: Arc<IoFaultPlan>,
}

impl<P: EventPublisher> FaultSink<P> {
    /// Wraps `inner`, failing operations as `plan` scripts.
    pub fn new(inner: P, plan: Arc<IoFaultPlan>) -> FaultSink<P> {
        FaultSink { inner, plan }
    }

    /// The wrapped sink.
    pub fn into_inner(self) -> P {
        self.inner
    }

    fn synthetic(fault: WriteFault) -> JournalError {
        JournalError::Io {
            path: std::path::PathBuf::from("<fault-sink>"),
            message: fault.to_io_error().to_string(),
        }
    }
}

impl<P: EventPublisher> EventPublisher for FaultSink<P> {
    fn publish(&mut self, event: &Event) -> Result<(), JournalError> {
        match self.plan.next_write_fate() {
            // A "short" publish on a non-file sink delivers nothing —
            // the inner sink never sees the event.
            Some(fault) => Err(Self::synthetic(fault)),
            None => self.inner.publish(event),
        }
    }

    fn sync(&mut self) -> Result<(), JournalError> {
        if self.plan.next_sync_fails() {
            return Err(JournalError::Io {
                path: std::path::PathBuf::from("<fault-sink>"),
                message: "injected fsync failure".to_string(),
            });
        }
        self.inner.sync()
    }

    fn bytes_logged(&self) -> Option<u64> {
        self.inner.bytes_logged()
    }

    fn pressure(&self) -> SinkPressure {
        self.inner.pressure()
    }

    fn repair(&mut self) -> Result<(), JournalError> {
        self.inner.repair()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_faults_fire_exactly_once_at_their_op() {
        let plan = IoFaultPlan::scripted(
            vec![(2, WriteFault::Short), (5, WriteFault::DiskFull)],
            vec![1],
            vec![0],
            None,
        );
        let fates: Vec<Option<WriteFault>> = (0..8).map(|_| plan.next_write_fate()).collect();
        assert_eq!(fates[2], Some(WriteFault::Short));
        assert_eq!(fates[5], Some(WriteFault::DiskFull));
        assert_eq!(fates.iter().flatten().count(), 2);
        assert!(!plan.next_sync_fails());
        assert!(plan.next_sync_fails());
        assert!(!plan.next_sync_fails());
        assert!(plan.next_rename_fails());
        assert!(!plan.next_rename_fails());
        let c = plan.counters();
        assert_eq!(c.writes, 8);
        assert_eq!(c.syncs, 3);
        assert_eq!(c.renames, 2);
        assert_eq!(c.injected, 4);
    }

    #[test]
    fn sticky_disk_full_fails_every_write_from_threshold() {
        let plan = IoFaultPlan::scripted(Vec::new(), Vec::new(), Vec::new(), Some(3));
        let fates: Vec<Option<WriteFault>> = (0..6).map(|_| plan.next_write_fate()).collect();
        assert_eq!(fates[..3], [None, None, None]);
        assert!(fates[3..].iter().all(|f| *f == Some(WriteFault::DiskFull)));
    }

    #[test]
    fn seeded_plans_are_reproducible_and_seed_dependent() {
        let a = IoFaultPlan::seeded(7);
        let b = IoFaultPlan::seeded(7);
        assert_eq!(a.write_ops, b.write_ops);
        assert_eq!(a.sync_ops, b.sync_ops);
        assert_eq!(a.sticky_write_from, b.sticky_write_from);
        assert!(!a.is_quiet());
        // Some nearby seed must differ somewhere (not a constant plan).
        let differs = (0..16u64).any(|s| {
            let p = IoFaultPlan::seeded(s);
            p.write_ops != a.write_ops || p.sticky_write_from != a.sticky_write_from
        });
        assert!(differs);
    }

    #[test]
    fn quiet_plan_injects_nothing() {
        let plan = IoFaultPlan::quiet();
        assert!(plan.is_quiet());
        for _ in 0..100 {
            assert_eq!(plan.next_write_fate(), None);
            assert!(!plan.next_sync_fails());
            assert!(!plan.next_rename_fails());
        }
        assert_eq!(plan.counters().injected, 0);
    }
}
