//! Pluggable event sinks.
//!
//! The service runtime publishes every event through an
//! [`EventPublisher`]; which sink is plugged in decides whether a run is
//! observable ([`JsonlPublisher`] streaming `events.jsonl`), testable
//! ([`MemoryPublisher`] collecting in memory), or bare
//! ([`NullPublisher`] for benchmarks that only want the report).

use std::path::Path;
use std::sync::Arc;

use crate::event::Event;
use crate::faultio::IoFaultPlan;
use crate::journal::{Journal, JournalError};

/// How hard a sink is struggling, as seen by the service's admission
/// control: [`SinkPressure::Degraded`] tells `serve` to shed load
/// (cap the per-epoch ingest batch) instead of growing an unbounded
/// backlog behind a stalled sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkPressure {
    /// The sink is keeping up; admit normally.
    Ok,
    /// The sink has degraded (spilling or dropping); shed load.
    Degraded,
}

/// A sink for the controller's event stream.
///
/// Publishers are infallible-ordering: events arrive exactly in log
/// order (`seq` strictly increasing). `sync` marks a durability
/// boundary (the service calls it at every `EpochClosed`); `close`
/// flushes and ends the stream.
pub trait EventPublisher {
    /// Accepts the next event in the stream.
    ///
    /// # Errors
    ///
    /// [`JournalError`] if the sink could not persist the event; the
    /// service treats this as fatal (an event log with holes is worse
    /// than no run).
    fn publish(&mut self, event: &Event) -> Result<(), JournalError>;

    /// Makes everything published so far durable.
    ///
    /// # Errors
    ///
    /// [`JournalError`] on sink failure.
    fn sync(&mut self) -> Result<(), JournalError>;

    /// Ends the stream (final flush).
    ///
    /// # Errors
    ///
    /// [`JournalError`] on sink failure.
    fn close(&mut self) -> Result<(), JournalError> {
        self.sync()
    }

    /// Bytes of framed log written so far, when the sink is a byte log.
    /// Service checkpoints record this so recovery can replay only the
    /// log *suffix* past the snapshot; sinks without a byte position
    /// (memory, null) return `None` and cannot back checkpointed runs.
    fn bytes_logged(&self) -> Option<u64> {
        None
    }

    /// How hard the sink is struggling. The service consults this at
    /// each epoch boundary to decide whether to shed admission load.
    /// Plain sinks never struggle.
    fn pressure(&self) -> SinkPressure {
        SinkPressure::Ok
    }

    /// Puts the sink back into an appendable state after a failed
    /// (possibly torn) publish, so a retry never lands after garbage.
    /// Sinks without repairable state do nothing.
    ///
    /// # Errors
    ///
    /// [`JournalError`] when the repair itself fails.
    fn repair(&mut self) -> Result<(), JournalError> {
        Ok(())
    }
}

/// Discards every event. For benchmark runs that only want the report.
#[derive(Debug, Default)]
pub struct NullPublisher;

impl EventPublisher for NullPublisher {
    fn publish(&mut self, _event: &Event) -> Result<(), JournalError> {
        Ok(())
    }

    fn sync(&mut self) -> Result<(), JournalError> {
        Ok(())
    }
}

/// Collects the stream in memory. For tests and in-process replay
/// checks.
#[derive(Debug, Default)]
pub struct MemoryPublisher {
    /// Every published event, in log order.
    pub events: Vec<Event>,
}

impl MemoryPublisher {
    /// An empty collector.
    pub fn new() -> MemoryPublisher {
        MemoryPublisher::default()
    }
}

impl EventPublisher for MemoryPublisher {
    fn publish(&mut self, event: &Event) -> Result<(), JournalError> {
        self.events.push(event.clone());
        Ok(())
    }

    fn sync(&mut self) -> Result<(), JournalError> {
        Ok(())
    }
}

/// Streams events into an append-only crc32-framed JSONL journal
/// (`events.jsonl`): one event per line, checksummed with the same
/// framing the experiment checkpoints use, torn-tail recoverable.
///
/// Appends are buffered by the OS; [`EventPublisher::sync`] fsyncs, so
/// with the service syncing at every `EpochClosed` a crash loses at most
/// the epoch in flight.
#[derive(Debug)]
pub struct JsonlPublisher {
    journal: Journal,
    bytes: u64,
}

impl JsonlPublisher {
    /// Creates (truncating) the event log at `path`.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the file cannot be created.
    pub fn create(path: &Path) -> Result<JsonlPublisher, JournalError> {
        Ok(JsonlPublisher {
            journal: Journal::create(path)?,
            bytes: 0,
        })
    }

    /// [`JsonlPublisher::create`] with an IO-fault plan threaded into
    /// the underlying journal, for `--io-chaos` runs and resilience
    /// tests. `None` behaves exactly like [`JsonlPublisher::create`].
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the file cannot be created.
    pub fn create_with_faults(
        path: &Path,
        faults: Option<Arc<IoFaultPlan>>,
    ) -> Result<JsonlPublisher, JournalError> {
        Ok(JsonlPublisher {
            journal: Journal::create_with_faults(path, faults)?,
            bytes: 0,
        })
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        self.journal.path()
    }
}

impl EventPublisher for JsonlPublisher {
    fn publish(&mut self, event: &Event) -> Result<(), JournalError> {
        let line =
            serde_json::to_string(event).map_err(|e| JournalError::Serialize(e.to_string()))?;
        self.journal.append_raw(&line)?;
        // "xxxxxxxx " crc prefix (9 bytes) + payload + newline.
        self.bytes += line.len() as u64 + 10;
        Ok(())
    }

    fn sync(&mut self) -> Result<(), JournalError> {
        self.journal.sync()
    }

    fn bytes_logged(&self) -> Option<u64> {
        Some(self.bytes)
    }

    fn repair(&mut self) -> Result<(), JournalError> {
        // Truncate any torn half-line so the retried append lands after
        // the last fully-committed record.
        self.journal.repair_tail()?;
        self.bytes = self.journal.committed_len();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::replay::replay_stream_bytes;
    use mcast_core::UserId;

    fn ev(seq: u64) -> Event {
        Event {
            at_us: seq * 10,
            seq,
            kind: EventKind::UserJoin {
                user: UserId(seq as u32),
            },
        }
    }

    #[test]
    fn memory_publisher_keeps_order() {
        let mut p = MemoryPublisher::new();
        for s in 0..5 {
            p.publish(&ev(s)).unwrap();
        }
        p.close().unwrap();
        let seqs: Vec<u64> = p.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn jsonl_publisher_round_trips_through_replay() {
        let path =
            std::env::temp_dir().join(format!("mcast_events_pub_{}.jsonl", std::process::id()));
        let mut p = JsonlPublisher::create(&path).unwrap();
        let events: Vec<Event> = (0..4).map(ev).collect();
        for e in &events {
            p.publish(e).unwrap();
        }
        p.close().unwrap();
        drop(p);
        let bytes = std::fs::read(&path).unwrap();
        let replay = replay_stream_bytes(&bytes);
        assert_eq!(replay.events, events);
        assert_eq!(replay.dropped_bytes, 0);
        let _ = std::fs::remove_file(path);
    }
}
