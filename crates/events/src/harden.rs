//! Hardened decoding of untrusted bytes: the typed error taxonomy, the
//! allocation/size limits every reader shares, and the seedable corpus
//! mutator the differential tests feed them with.
//!
//! Every persistent format in the system — the `.mcb` binary scenario
//! wire, the sparse/dense JSON instance wires, the crc32-framed JSONL
//! event log, and the snapshot/checkpoint files — decodes bytes it did
//! not write. A bit-rotted disk, a crashed writer, or a hostile peer can
//! hand any of them garbage, and the contract here is uniform: decoding
//! yields a typed [`DecodeError`] naming the byte offset and the
//! violated rule, or (for append-only streams) a salvaged valid prefix —
//! never a panic, an unbounded allocation, or silent garbage.
//!
//! The two load-bearing rules:
//!
//! * **declared-vs-actual**: a length prefix is only trusted after it is
//!   checked against the bytes that actually remain
//!   ([`check_declared_len`]) and against an absolute sanity cap
//!   ([`DecodeLimits`]) — so a forged 2⁶⁰-byte section header is a named
//!   error, not a 2⁶⁰-byte `Vec::reserve`;
//! * **bounded salvage**: stream formats recover the longest prefix that
//!   passes framing, checksum, and schema checks, and report why the
//!   tail was dropped with its byte offset.
//!
//! See DESIGN.md §15 for the full threat model.

use std::path::Path;

/// What class of rule a decoder caught the input violating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeErrorKind {
    /// The underlying file could not be read at all.
    Io,
    /// The input ended before the bytes its framing promised.
    Truncated,
    /// The leading magic/version marker is wrong — not this format.
    BadMagic,
    /// Structural framing is broken (wrong tag, misaligned records,
    /// malformed envelope).
    Framing,
    /// A checksum did not match its payload.
    Checksum,
    /// A declared length or count exceeds what remains in the file or an
    /// absolute sanity cap — the length-prefix-inflation guard.
    LimitExceeded,
    /// Bytes decoded structurally but carry an invalid value (bad enum
    /// byte, non-positive denominator, inconsistent counts, …).
    BadValue,
}

impl DecodeErrorKind {
    /// The kind as a short stable label (used in error text and logs).
    pub fn label(self) -> &'static str {
        match self {
            DecodeErrorKind::Io => "io",
            DecodeErrorKind::Truncated => "truncated",
            DecodeErrorKind::BadMagic => "bad-magic",
            DecodeErrorKind::Framing => "framing",
            DecodeErrorKind::Checksum => "checksum",
            DecodeErrorKind::LimitExceeded => "limit-exceeded",
            DecodeErrorKind::BadValue => "bad-value",
        }
    }
}

/// A decoding failure with byte-offset provenance: which rule broke,
/// where in the input, and a human-readable account.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// The violated rule class.
    pub kind: DecodeErrorKind,
    /// Byte offset into the input where the violation was detected.
    pub offset: u64,
    /// What went wrong, human-readable.
    pub what: String,
}

impl DecodeError {
    /// Builds a decode error at `offset`.
    pub fn new(kind: DecodeErrorKind, offset: u64, what: impl Into<String>) -> DecodeError {
        DecodeError {
            kind,
            offset,
            what: what.into(),
        }
    }

    /// Wraps a filesystem error (no meaningful offset).
    pub fn io(path: &Path, e: &std::io::Error) -> DecodeError {
        DecodeError::new(
            DecodeErrorKind::Io,
            0,
            format!("cannot read {}: {e}", path.display()),
        )
    }
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "decode error [{}] at byte {}: {}",
            self.kind.label(),
            self.offset,
            self.what
        )
    }
}

impl std::error::Error for DecodeError {}

/// Absolute sanity caps for untrusted input. The primary defense against
/// length-prefix inflation is checking declared lengths against the
/// bytes that actually remain; these caps are the backstop for formats
/// or fields where "remaining bytes" is not a tight bound.
#[derive(Debug, Clone, Copy)]
pub struct DecodeLimits {
    /// Largest payload one framed section may declare.
    pub max_section_bytes: u64,
    /// Largest single record/line in a JSONL stream. Bounds the JSON
    /// parse work and allocation a corrupt line can demand.
    pub max_record_bytes: u64,
    /// Largest whole scenario/JSON document a loader will read.
    pub max_document_bytes: u64,
}

impl Default for DecodeLimits {
    fn default() -> DecodeLimits {
        DecodeLimits {
            // The link arena of a 16M-user scenario is ~2 GiB; leave
            // generous headroom while still rejecting absurd headers.
            max_section_bytes: 64 << 30,
            max_record_bytes: 64 << 20,
            max_document_bytes: 64 << 30,
        }
    }
}

impl DecodeLimits {
    /// Deliberately tiny caps for tests that want to watch the limits
    /// fire without multi-gigabyte fixtures.
    pub fn strict_small() -> DecodeLimits {
        DecodeLimits {
            max_section_bytes: 1 << 16,
            max_record_bytes: 1 << 12,
            max_document_bytes: 1 << 20,
        }
    }
}

/// Largest single journal/snapshot line the stream replayers accept
/// ([`DecodeLimits::max_record_bytes`] of the default limits). A longer
/// line ends the valid prefix with a named tail reason.
pub const MAX_RECORD_BYTES: u64 = 64 << 20;

/// The declared-vs-actual guard: a section/field that declares
/// `declared` payload bytes at `offset` is rejected when the declaration
/// exceeds the `remaining` bytes of input or the absolute `cap`.
///
/// # Errors
///
/// [`DecodeErrorKind::LimitExceeded`] naming the declaration, the bound
/// it broke, and the offset of the declaring header.
pub fn check_declared_len(
    declared: u64,
    remaining: u64,
    cap: u64,
    offset: u64,
    what: &str,
) -> Result<(), DecodeError> {
    if declared > cap {
        return Err(DecodeError::new(
            DecodeErrorKind::LimitExceeded,
            offset,
            format!("{what} declares {declared} bytes, above the {cap}-byte cap"),
        ));
    }
    if declared > remaining {
        return Err(DecodeError::new(
            DecodeErrorKind::LimitExceeded,
            offset,
            format!("{what} declares {declared} bytes but only {remaining} remain in the file"),
        ));
    }
    Ok(())
}

/// splitmix64 — the same tiny deterministic generator the supervision
/// chaos plan uses, re-exported here so fault plans and corpus mutation
/// share one seeding idiom.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One corruption class the corpus mutator can apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Flip one random bit.
    BitFlip,
    /// Cut the input at a random offset (a torn write).
    Truncate,
    /// Overwrite 8 random bytes with an enormous little-endian value —
    /// lands on a length prefix often enough to exercise the
    /// declared-vs-actual guard, and is garbage everywhere else.
    LengthInflate,
    /// Swap two random same-length blocks (section reordering and
    /// record shuffling both reduce to this at the byte level).
    Reorder,
    /// Corrupt a payload byte *and* patch a checksum so the framing
    /// layer passes — only semantic validation can catch it. The generic
    /// form targets the journal line framing
    /// (`<crc32-hex8> <payload>\n`); format-specific forgeries (e.g.
    /// `.mcb` section trailers) live with their format's tests.
    CrcForge,
}

/// Every mutation class, for exhaustive corpus sweeps.
pub const ALL_MUTATIONS: [Mutation; 5] = [
    Mutation::BitFlip,
    Mutation::Truncate,
    Mutation::LengthInflate,
    Mutation::Reorder,
    Mutation::CrcForge,
];

impl Mutation {
    /// A stable lowercase name (corpus fixture file names use it).
    pub fn name(self) -> &'static str {
        match self {
            Mutation::BitFlip => "bitflip",
            Mutation::Truncate => "truncate",
            Mutation::LengthInflate => "inflate",
            Mutation::Reorder => "reorder",
            Mutation::CrcForge => "crcforge",
        }
    }
}

/// Applies `mutation` to a copy of `bytes`, deterministically from
/// `seed`. The output is a corrupted variant a decoder must survive:
/// return a typed error, or decode to something that passes the
/// format's own validation — never panic or over-allocate.
pub fn mutate(bytes: &[u8], mutation: Mutation, seed: u64) -> Vec<u8> {
    let mut s = seed;
    let mut out = bytes.to_vec();
    if out.is_empty() {
        return out;
    }
    match mutation {
        Mutation::BitFlip => {
            let pos = (splitmix64(&mut s) % out.len() as u64) as usize;
            let bit = (splitmix64(&mut s) % 8) as u8;
            out[pos] ^= 1 << bit;
        }
        Mutation::Truncate => {
            let cut = (splitmix64(&mut s) % out.len() as u64) as usize;
            out.truncate(cut);
        }
        Mutation::LengthInflate => {
            if out.len() >= 8 {
                let pos = (splitmix64(&mut s) % (out.len() as u64 - 7)) as usize;
                let huge: u64 = (1 << 60) | (splitmix64(&mut s) % (1 << 40));
                out[pos..pos + 8].copy_from_slice(&huge.to_le_bytes());
            } else {
                out.fill(0xFF);
            }
        }
        Mutation::Reorder => {
            let len = out.len();
            let block = ((splitmix64(&mut s) % (len as u64 / 2).max(1)) + 1) as usize;
            let a = (splitmix64(&mut s) % (len - block + 1) as u64) as usize;
            let b = (splitmix64(&mut s) % (len - block + 1) as u64) as usize;
            if a.abs_diff(b) >= block {
                let (lo, hi) = (a.min(b), a.max(b));
                let (left, right) = out.split_at_mut(hi);
                left[lo..lo + block].swap_with_slice(&mut right[..block]);
            } else {
                out.rotate_left(block.min(len));
            }
        }
        Mutation::CrcForge => forge_journal_line(&mut out, &mut s),
    }
    out
}

/// Picks a random journal-framed line, corrupts one payload byte, and
/// rewrites the line's crc32 hex prefix so the checksum holds — the
/// framing layer now vouches for garbage, and only schema/semantic
/// validation stands between the file and the caller.
fn forge_journal_line(bytes: &mut [u8], s: &mut u64) {
    let lines: Vec<(usize, usize)> = {
        let mut spans = Vec::new();
        let mut start = 0usize;
        for (i, &b) in bytes.iter().enumerate() {
            if b == b'\n' {
                if i > start + 10 {
                    spans.push((start, i));
                }
                start = i + 1;
            }
        }
        spans
    };
    if lines.is_empty() {
        // Not line-framed input: degrade to a bit flip.
        let pos = (splitmix64(s) % bytes.len() as u64) as usize;
        bytes[pos] ^= 0x01;
        return;
    }
    let (start, end) = lines[(splitmix64(s) % lines.len() as u64) as usize];
    let payload_start = start + 9;
    if payload_start >= end {
        return;
    }
    let pos = payload_start + (splitmix64(s) % (end - payload_start) as u64) as usize;
    bytes[pos] ^= 0x04;
    let crc = crate::journal::crc32(&bytes[payload_start..end]);
    let hex = format!("{crc:08x}");
    bytes[start..start + 8].copy_from_slice(hex.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_carries_kind_and_offset() {
        let e = DecodeError::new(DecodeErrorKind::Checksum, 1234, "section 8 mismatch");
        let s = e.to_string();
        assert!(s.contains("[checksum]"), "{s}");
        assert!(s.contains("byte 1234"), "{s}");
        assert!(s.contains("section 8"), "{s}");
    }

    #[test]
    fn declared_len_guard_fires_on_inflation_and_caps() {
        // Fits: fine.
        assert!(check_declared_len(100, 200, 1000, 4, "section 2").is_ok());
        // More than remains in the file.
        let e = check_declared_len(300, 200, 1000, 4, "section 2").unwrap_err();
        assert_eq!(e.kind, DecodeErrorKind::LimitExceeded);
        assert!(e.to_string().contains("only 200 remain"), "{e}");
        // Above the absolute cap, even if the file claimed to be huge.
        let e = check_declared_len(2000, u64::MAX, 1000, 4, "section 2").unwrap_err();
        assert!(e.to_string().contains("cap"), "{e}");
        assert_eq!(e.offset, 4);
    }

    #[test]
    fn mutations_are_deterministic_per_seed() {
        let base: Vec<u8> = (0..=255u8).cycle().take(1024).collect();
        for m in ALL_MUTATIONS {
            let a = mutate(&base, m, 42);
            let b = mutate(&base, m, 42);
            assert_eq!(a, b, "{m:?} not deterministic");
            if m != Mutation::Truncate {
                assert_eq!(a.len(), base.len(), "{m:?} changed length");
            }
            let c = mutate(&base, m, 43);
            // Different seeds *usually* differ; at minimum nothing panics.
            let _ = c;
        }
    }

    #[test]
    fn bitflip_changes_exactly_one_bit() {
        let base = vec![0u8; 64];
        let flipped = mutate(&base, Mutation::BitFlip, 7);
        let ones: u32 = flipped.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1);
    }

    #[test]
    fn crc_forge_keeps_the_frame_checksum_valid() {
        let payload = "{\"n\":1}";
        let line = format!(
            "{:08x} {payload}\n",
            crate::journal::crc32(payload.as_bytes())
        );
        let doc = line.repeat(4).into_bytes();
        let forged = mutate(&doc, Mutation::CrcForge, 3);
        assert_ne!(forged, doc, "forgery must change the payload");
        // The framing layer must NOT be what catches this: any dropped
        // tail is a JSON/schema rejection, never a checksum mismatch.
        let replay = crate::journal::replay_raw_bytes(&forged);
        if let Some(reason) = &replay.tail_reason {
            assert!(!reason.contains("checksum"), "{reason}");
        }
    }

    #[test]
    fn mutating_empty_input_is_a_no_op() {
        for m in ALL_MUTATIONS {
            assert!(mutate(&[], m, 1).is_empty());
        }
    }
}
