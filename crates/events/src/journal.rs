//! Crash-safe append-only persistence: a checksummed JSONL journal
//! (write-ahead log) plus the atomic-write discipline every final
//! artifact goes through.
//!
//! Grown in PR 3 inside the experiments harness for sweep checkpoints;
//! it now lives here so the event-log subsystem and the harness share
//! one framing, one recovery rule, and one set of tests.
//!
//! ## Framing
//!
//! One record per line:
//!
//! ```text
//! <crc32-hex8> <payload-json>\n
//! ```
//!
//! The checksum is CRC-32 (IEEE) over the payload bytes. On replay, the
//! first line that is incomplete (no trailing newline), fails its
//! checksum, or does not parse marks the end of the valid prefix:
//! everything before it is recovered, everything from it on is discarded
//! and the file is truncated back to the valid prefix so new appends
//! never interleave with garbage.
//!
//! Two payload conventions ride on that framing:
//!
//! * **keyed records** (`{"key": ..., "value": ...}`) — the experiment
//!   runner's trial checkpoints ([`Journal::append`] / [`replay_bytes`]);
//! * **raw records** (any JSON document per line) — the controller's
//!   event stream ([`Journal::append_raw`] / [`replay_raw_bytes`]), where
//!   the caller owns the payload schema and the durability boundary
//!   ([`Journal::sync`] is called at epoch close, not per event).
//!
//! ## Atomic writes
//!
//! [`atomic_write`] writes into a same-directory temp file, fsyncs it,
//! and renames it over the destination, so readers (and crashed runs)
//! only ever observe either the old complete file or the new complete
//! file — never a partial one.

use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use serde::Value;

use crate::faultio::{IoFaultPlan, WriteFault};
use crate::harden::MAX_RECORD_BYTES;

/// CRC-32 (IEEE 802.3, reflected) of `bytes`. Bitwise implementation —
/// the journal appends at solver-trial / controller-event granularity,
/// so table-free simplicity beats throughput here.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Why a journal (or atomic write) operation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalError {
    /// An I/O failure on the journal file or its directory.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error, rendered.
        message: String,
    },
    /// A record could not be serialized (e.g. a non-finite float), or a
    /// raw payload broke the one-record-per-line framing.
    Serialize(String),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io { path, message } => {
                write!(f, "journal I/O error on {}: {message}", path.display())
            }
            JournalError::Serialize(m) => write!(f, "journal serialize error: {m}"),
        }
    }
}

impl std::error::Error for JournalError {}

fn io_err(path: &Path, e: &std::io::Error) -> JournalError {
    JournalError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    }
}

/// What a keyed-record journal replay recovered.
#[derive(Debug, Default)]
pub struct Replay {
    /// Valid records, in append order: `(key payload, value payload)`.
    pub records: Vec<(Value, Value)>,
    /// Bytes of valid prefix (the file is truncated to this length).
    pub valid_len: u64,
    /// Bytes dropped past the valid prefix (crash-truncated or corrupt
    /// tail). Zero on a clean journal.
    pub dropped_bytes: u64,
    /// Why the tail was dropped, when it was.
    pub tail_reason: Option<String>,
}

/// What a raw-record journal replay recovered.
#[derive(Debug, Default)]
pub struct RawReplay {
    /// Valid payload documents, in append order.
    pub payloads: Vec<Value>,
    /// Bytes of valid prefix.
    pub valid_len: u64,
    /// Bytes dropped past the valid prefix. Zero on a clean journal.
    pub dropped_bytes: u64,
    /// Why the tail was dropped, when it was.
    pub tail_reason: Option<String>,
}

/// The file plus the byte length of its fully-committed line prefix,
/// guarded together: `good_len` is what [`Journal::repair_tail`]
/// truncates back to after a torn (injected or real) append.
#[derive(Debug)]
struct JournalInner {
    file: File,
    good_len: u64,
}

/// The append-only journal. Appends are serialized through an internal
/// mutex.
#[derive(Debug)]
pub struct Journal {
    inner: Mutex<JournalInner>,
    path: PathBuf,
    faults: Option<Arc<IoFaultPlan>>,
}

impl Journal {
    /// Creates (or truncates) the journal at `path` for a fresh run.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the file or its parents cannot be made.
    pub fn create(path: &Path) -> Result<Journal, JournalError> {
        Journal::create_with_faults(path, None)
    }

    /// [`Journal::create`] with a scripted IO-fault plan consulted on
    /// every write and sync — the injection seam the resilience tests
    /// and `--io-chaos` runs use. `None` behaves exactly like
    /// [`Journal::create`].
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the file or its parents cannot be made.
    pub fn create_with_faults(
        path: &Path,
        faults: Option<Arc<IoFaultPlan>>,
    ) -> Result<Journal, JournalError> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir).map_err(|e| io_err(dir, &e))?;
        }
        let file = File::create(path).map_err(|e| io_err(path, &e))?;
        Ok(Journal {
            inner: Mutex::new(JournalInner { file, good_len: 0 }),
            path: path.to_path_buf(),
            faults,
        })
    }

    /// Opens the journal at `path` for a resumed run: replays the valid
    /// keyed-record prefix, truncates any crash-damaged tail, and
    /// positions the journal for appending. A missing file resumes to an
    /// empty journal.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the file cannot be read or reopened.
    pub fn resume(path: &Path) -> Result<(Journal, Replay), JournalError> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir).map_err(|e| io_err(dir, &e))?;
        }
        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_err(path, &e)),
        };
        let replay = replay_bytes(&bytes);
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(path)
            .map_err(|e| io_err(path, &e))?;
        file.set_len(replay.valid_len)
            .map_err(|e| io_err(path, &e))?;
        file.seek(SeekFrom::End(0)).map_err(|e| io_err(path, &e))?;
        Ok((
            Journal {
                inner: Mutex::new(JournalInner {
                    file,
                    good_len: replay.valid_len,
                }),
                path: path.to_path_buf(),
                faults: None,
            },
            replay,
        ))
    }

    /// Appends one `(key, value)` record, durably: the record is written
    /// as a single checksummed line, flushed, and fsynced.
    ///
    /// # Errors
    ///
    /// [`JournalError`] on serialization or I/O failure. The caller may
    /// keep running without durability (degraded completion).
    pub fn append(&self, key: &Value, value: &Value) -> Result<(), JournalError> {
        let payload = serde_json::to_string(&Value::Object(vec![
            ("key".to_string(), key.clone()),
            ("value".to_string(), value.clone()),
        ]))
        .map_err(|e| JournalError::Serialize(e.to_string()))?;
        self.append_line(&payload)?;
        self.sync()
    }

    /// Appends one raw JSON payload as a checksummed line **without
    /// fsyncing**. The caller picks the durability boundary by calling
    /// [`Journal::sync`] — the event log syncs once per epoch, not per
    /// event, so a crash loses at most the epoch in flight (the crc32
    /// framing recovers the valid prefix either way).
    ///
    /// # Errors
    ///
    /// [`JournalError::Serialize`] if `payload` contains a newline (it
    /// would break the one-record-per-line framing); [`JournalError::Io`]
    /// on write failure.
    pub fn append_raw(&self, payload: &str) -> Result<(), JournalError> {
        if payload.contains('\n') {
            return Err(JournalError::Serialize(
                "raw payload contains a newline".to_string(),
            ));
        }
        self.append_line(payload)
    }

    fn append_line(&self, payload: &str) -> Result<(), JournalError> {
        let line = format!("{:08x} {payload}\n", crc32(payload.as_bytes()));
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(plan) = &self.faults {
            if let Some(fault) = plan.next_write_fate() {
                if fault == WriteFault::Short {
                    // The torn prefix really lands on disk: recovery has
                    // something real to truncate.
                    let _ = inner.file.write_all(&line.as_bytes()[..line.len() / 2]);
                }
                return Err(IoFaultPlan::write_error(fault, &self.path));
            }
        }
        inner
            .file
            .write_all(line.as_bytes())
            .map_err(|e| io_err(&self.path, &e))?;
        inner.good_len += line.len() as u64;
        Ok(())
    }

    /// Flushes and fsyncs everything appended so far.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on flush/fsync failure.
    pub fn sync(&self) -> Result<(), JournalError> {
        if let Some(plan) = &self.faults {
            if plan.next_sync_fails() {
                return Err(JournalError::Io {
                    path: self.path.clone(),
                    message: "injected fsync failure".to_string(),
                });
            }
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner
            .file
            .flush()
            .and_then(|()| inner.file.sync_data())
            .map_err(|e| io_err(&self.path, &e))
    }

    /// Truncates the file back to the last fully-committed line and
    /// repositions for appending — the repair step a resilient writer
    /// runs between a failed (possibly torn) append and its retry, so
    /// the retry never lands after garbage.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the truncate/seek itself fails.
    pub fn repair_tail(&self) -> Result<(), JournalError> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let good = inner.good_len;
        inner
            .file
            .set_len(good)
            .and_then(|_| inner.file.seek(SeekFrom::End(0)))
            .map(|_| ())
            .map_err(|e| io_err(&self.path, &e))
    }

    /// Bytes of fully-committed (whole-line) prefix written so far.
    pub fn committed_len(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .good_len
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Parses journal bytes into the valid keyed-record prefix. Stops at the
/// first incomplete, corrupt, or unparseable line — a crash can only
/// damage the tail, so everything past the first bad line is untrusted.
pub fn replay_bytes(bytes: &[u8]) -> Replay {
    let mut replay = Replay::default();
    let raw = replay_raw_inner(bytes);
    replay.tail_reason = raw.tail_reason;
    let mut offset = 0u64;
    for (i, doc) in raw.payloads.iter().enumerate() {
        let (key, value) = match (doc.get("key"), doc.get("value")) {
            (Some(k), Some(v)) => (k.clone(), v.clone()),
            (None, _) => {
                replay.tail_reason = Some("record missing `key`".to_string());
                break;
            }
            (_, None) => {
                replay.tail_reason = Some("record missing `value`".to_string());
                break;
            }
        };
        replay.records.push((key, value));
        offset = raw.line_ends[i];
    }
    replay.valid_len = offset;
    replay.dropped_bytes = bytes.len() as u64 - offset;
    replay
}

/// Like [`RawReplay`] but also tracking where each valid line ends, so
/// keyed replay can truncate mid-prefix when a key/value envelope is
/// missing.
struct RawReplayInner {
    payloads: Vec<Value>,
    line_ends: Vec<u64>,
    tail_reason: Option<String>,
}

fn replay_raw_inner(bytes: &[u8]) -> RawReplayInner {
    let mut payloads = Vec::new();
    let mut line_ends = Vec::new();
    let mut tail_reason = None;
    let mut offset = 0usize;
    while offset < bytes.len() {
        let rest = &bytes[offset..];
        // Bound the line scan: a (corrupt) record longer than the cap
        // ends the prefix before the JSON parser is asked to allocate
        // for it.
        let cap = MAX_RECORD_BYTES as usize;
        let scan = &rest[..rest.len().min(cap + 1)];
        let Some(nl) = scan.iter().position(|&b| b == b'\n') else {
            tail_reason = Some(if rest.len() > cap {
                format!("record at byte {offset} exceeds the {MAX_RECORD_BYTES}-byte cap")
            } else {
                format!("incomplete final record (no newline) at byte {offset}")
            });
            break;
        };
        match parse_line(&rest[..nl]) {
            Ok(doc) => {
                offset += nl + 1;
                payloads.push(doc);
                line_ends.push(offset as u64);
            }
            Err(reason) => {
                tail_reason = Some(format!("{reason} (at byte {offset})"));
                break;
            }
        }
    }
    RawReplayInner {
        payloads,
        line_ends,
        tail_reason,
    }
}

/// Parses journal bytes into the valid raw-payload prefix: each line's
/// checksum must hold and its payload must be well-formed JSON. The
/// first bad line ends the prefix.
pub fn replay_raw_bytes(bytes: &[u8]) -> RawReplay {
    let inner = replay_raw_inner(bytes);
    let valid_len = inner.line_ends.last().copied().unwrap_or(0);
    RawReplay {
        payloads: inner.payloads,
        valid_len,
        dropped_bytes: bytes.len() as u64 - valid_len,
        tail_reason: inner.tail_reason,
    }
}

fn parse_line(line: &[u8]) -> Result<Value, String> {
    if line.len() < 10 || line[8] != b' ' {
        return Err("malformed record framing".to_string());
    }
    let crc_hex = std::str::from_utf8(&line[..8]).map_err(|_| "non-UTF-8 checksum".to_string())?;
    let expected = u32::from_str_radix(crc_hex, 16).map_err(|_| "bad checksum hex".to_string())?;
    let payload = &line[9..];
    let actual = crc32(payload);
    if actual != expected {
        return Err(format!(
            "checksum mismatch ({actual:08x} != {expected:08x})"
        ));
    }
    let payload = std::str::from_utf8(payload).map_err(|_| "non-UTF-8 payload".to_string())?;
    serde_json::parse_value(payload).map_err(|e| format!("bad payload JSON: {e}"))
}

/// Writes `contents` to `path` atomically: same-directory temp file,
/// fsync, rename over the destination, best-effort directory fsync. A
/// crash mid-write leaves the previous file intact.
///
/// # Errors
///
/// Propagates I/O errors (the temp file is cleaned up on failure).
pub fn atomic_write(path: &Path, contents: &[u8]) -> std::io::Result<()> {
    atomic_write_with(path, contents, None)
}

/// [`atomic_write`] with a scripted IO-fault plan consulted at each of
/// its three fallible steps (temp-file write, temp-file fsync, rename).
/// Every injected failure upholds the atomicity contract: the
/// destination keeps its previous contents and no temp file survives.
///
/// # Errors
///
/// Propagates real or injected I/O errors (the temp file is cleaned up
/// on failure either way).
pub fn atomic_write_with(
    path: &Path,
    contents: &[u8],
    faults: Option<&IoFaultPlan>,
) -> std::io::Result<()> {
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => PathBuf::from("."),
    };
    fs::create_dir_all(&dir)?;
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("artifact");
    let tmp = dir.join(format!(".{name}.tmp.{}", std::process::id()));
    let result = (|| {
        let mut f = File::create(&tmp)?;
        if let Some(fault) = faults.and_then(IoFaultPlan::next_write_fate) {
            if fault == WriteFault::Short {
                // Leave a genuinely torn temp file for the cleanup path
                // to erase — the destination is never touched.
                let _ = f.write_all(&contents[..contents.len() / 2]);
            }
            return Err(fault.to_io_error());
        }
        f.write_all(contents)?;
        if faults.is_some_and(IoFaultPlan::next_sync_fails) {
            return Err(std::io::Error::other("injected fsync failure"));
        }
        f.sync_all()?;
        drop(f);
        if faults.is_some_and(IoFaultPlan::next_rename_fails) {
            return Err(std::io::Error::other("injected rename failure"));
        }
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    } else if let Ok(d) = File::open(&dir) {
        // Make the rename itself durable where the platform allows it.
        let _ = d.sync_all();
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mcast_journal_{name}_{}", std::process::id()))
    }

    fn k(s: &str) -> Value {
        Value::Str(s.to_string())
    }

    #[test]
    fn crc32_known_vectors() {
        // IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_then_replay_roundtrips() {
        let path = tmp("roundtrip.jsonl");
        let j = Journal::create(&path).unwrap();
        j.append(&k("a"), &Value::Int(1)).unwrap();
        j.append(&k("b"), &Value::Float(2.5)).unwrap();
        drop(j);
        let (_, replay) = Journal::resume(&path).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.dropped_bytes, 0);
        assert_eq!(replay.records[0], (k("a"), Value::Int(1)));
        assert_eq!(replay.records[1], (k("b"), Value::Float(2.5)));
        let _ = fs::remove_file(path);
    }

    #[test]
    fn truncated_tail_is_dropped_and_file_repaired() {
        let path = tmp("truncate.jsonl");
        let j = Journal::create(&path).unwrap();
        j.append(&k("a"), &Value::Int(1)).unwrap();
        j.append(&k("b"), &Value::Int(2)).unwrap();
        drop(j);
        let full = fs::read(&path).unwrap();
        // Cut the second record mid-line.
        fs::write(&path, &full[..full.len() - 3]).unwrap();
        let (j2, replay) = Journal::resume(&path).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert!(replay.dropped_bytes > 0);
        assert!(replay.tail_reason.is_some());
        // The file was truncated back to the valid prefix; a new append
        // lands cleanly after record one.
        j2.append(&k("c"), &Value::Int(3)).unwrap();
        drop(j2);
        let (_, replay2) = Journal::resume(&path).unwrap();
        assert_eq!(replay2.records.len(), 2);
        assert_eq!(replay2.records[1].0, k("c"));
        let _ = fs::remove_file(path);
    }

    #[test]
    fn corrupt_byte_fails_checksum() {
        let path = tmp("corrupt.jsonl");
        let j = Journal::create(&path).unwrap();
        j.append(&k("a"), &Value::Int(7)).unwrap();
        drop(j);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        let replay = replay_bytes(&bytes);
        assert_eq!(replay.records.len(), 0);
        assert!(replay.tail_reason.unwrap().contains("checksum"));
        let _ = fs::remove_file(path);
    }

    #[test]
    fn resume_missing_file_is_empty() {
        let path = tmp("missing.jsonl");
        let _ = fs::remove_file(&path);
        let (_, replay) = Journal::resume(&path).unwrap();
        assert!(replay.records.is_empty());
        let _ = fs::remove_file(path);
    }

    #[test]
    fn raw_appends_replay_in_order_and_survive_torn_tails() {
        let path = tmp("raw.jsonl");
        let j = Journal::create(&path).unwrap();
        j.append_raw("{\"n\":1}").unwrap();
        j.append_raw("{\"n\":2}").unwrap();
        j.sync().unwrap();
        j.append_raw("{\"n\":3}").unwrap();
        j.sync().unwrap();
        drop(j);
        let bytes = fs::read(&path).unwrap();
        let replay = replay_raw_bytes(&bytes);
        assert_eq!(replay.payloads.len(), 3);
        assert_eq!(replay.dropped_bytes, 0);
        assert_eq!(replay.payloads[2].get("n"), Some(&Value::Int(3)));
        // A torn tail recovers the two complete records.
        let torn = replay_raw_bytes(&bytes[..bytes.len() - 4]);
        assert_eq!(torn.payloads.len(), 2);
        assert!(torn.dropped_bytes > 0);
        assert!(torn.tail_reason.is_some());
        assert_eq!(&bytes[..torn.valid_len as usize], {
            let clean = replay_raw_bytes(&bytes[..torn.valid_len as usize]);
            assert_eq!(clean.payloads.len(), 2);
            &bytes[..torn.valid_len as usize]
        });
        let _ = fs::remove_file(path);
    }

    #[test]
    fn raw_append_rejects_embedded_newline() {
        let path = tmp("rawnl.jsonl");
        let j = Journal::create(&path).unwrap();
        assert!(matches!(
            j.append_raw("{\"a\":\n1}"),
            Err(JournalError::Serialize(_))
        ));
        let _ = fs::remove_file(path);
    }

    #[test]
    fn keyed_replay_truncates_at_missing_envelope() {
        // A raw (non-keyed) record in a keyed journal ends the prefix.
        let path = tmp("envelope.jsonl");
        let j = Journal::create(&path).unwrap();
        j.append(&k("a"), &Value::Int(1)).unwrap();
        j.append_raw("{\"n\":1}").unwrap();
        j.sync().unwrap();
        drop(j);
        let replay = replay_bytes(&fs::read(&path).unwrap());
        assert_eq!(replay.records.len(), 1);
        assert!(replay.tail_reason.unwrap().contains("key"));
        let _ = fs::remove_file(path);
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp() {
        let dir = tmp("atomic_dir");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("out.json");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind");
        let _ = fs::remove_dir_all(dir);
    }
}
