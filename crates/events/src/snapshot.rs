//! Crc32-framed snapshot files for checkpoint/restore.
//!
//! A snapshot file is an append-only sequence of checkpoint frames using
//! the exact [`journal`](crate::journal) framing
//! (`<crc32-hex8> <payload-json>\n`): each save appends one whole frame
//! and fsyncs, so the file is a monotone history of checkpoints and a
//! crash — even one that tears the frame in flight — loses at most the
//! checkpoint being written. Loading truncates to the valid prefix and
//! takes the *last* whole frame, which is exactly "the most recent
//! durable checkpoint".
//!
//! [`PartitionCheckpointSink`] adapts a [`SnapshotFile`] to the
//! `mcast-core` [`CheckpointSink`] boundary for the supervised
//! partitioned runtime; the torn-write hook ([`SnapshotFile::append_torn`])
//! persists a deliberately half-written frame so chaos tests can prove
//! the recovery rule on disk rather than in theory.

use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use mcast_core::{CheckpointError, CheckpointSink, PartitionCheckpoint};

use crate::faultio::{IoFaultPlan, WriteFault};
use crate::journal::{crc32, replay_raw_bytes, JournalError};

/// An append-only file of crc32-framed JSON payloads with torn-tail
/// recovery, one frame per save. Appends are serialized through an
/// internal mutex and fsynced individually (checkpoints are rare and
/// each one must be durable).
#[derive(Debug)]
pub struct SnapshotFile {
    file: Mutex<File>,
    path: PathBuf,
    faults: Option<Arc<IoFaultPlan>>,
}

fn io_err(path: &Path, e: &std::io::Error) -> JournalError {
    JournalError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    }
}

impl SnapshotFile {
    /// Creates (or truncates) the snapshot file at `path`.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the file or its parents cannot be made.
    pub fn create(path: &Path) -> Result<SnapshotFile, JournalError> {
        SnapshotFile::create_with_faults(path, None)
    }

    /// [`SnapshotFile::create`] with an IO-fault plan consulted on
    /// every frame append and fsync. `None` behaves exactly like
    /// [`SnapshotFile::create`].
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the file or its parents cannot be made.
    pub fn create_with_faults(
        path: &Path,
        faults: Option<Arc<IoFaultPlan>>,
    ) -> Result<SnapshotFile, JournalError> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir).map_err(|e| io_err(dir, &e))?;
        }
        let file = File::create(path).map_err(|e| io_err(path, &e))?;
        Ok(SnapshotFile {
            file: Mutex::new(file),
            path: path.to_path_buf(),
            faults,
        })
    }

    /// Opens the snapshot file at `path` for appending: truncates any
    /// torn tail back to the last whole frame first. A missing file
    /// opens empty.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the file cannot be read or reopened.
    pub fn open_append(path: &Path) -> Result<SnapshotFile, JournalError> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir).map_err(|e| io_err(dir, &e))?;
        }
        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_err(path, &e)),
        };
        let valid_len = replay_raw_bytes(&bytes).valid_len;
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(path)
            .map_err(|e| io_err(path, &e))?;
        file.set_len(valid_len).map_err(|e| io_err(path, &e))?;
        file.seek(SeekFrom::End(0)).map_err(|e| io_err(path, &e))?;
        Ok(SnapshotFile {
            file: Mutex::new(file),
            path: path.to_path_buf(),
            faults: None,
        })
    }

    /// Appends one whole frame and fsyncs it.
    ///
    /// # Errors
    ///
    /// [`JournalError::Serialize`] if `payload` contains a newline;
    /// [`JournalError::Io`] on write/fsync failure.
    pub fn append_payload(&self, payload: &str) -> Result<(), JournalError> {
        if payload.contains('\n') {
            return Err(JournalError::Serialize(
                "snapshot payload contains a newline".to_string(),
            ));
        }
        let line = format!("{:08x} {payload}\n", crc32(payload.as_bytes()));
        self.write_and_sync(line.as_bytes())
    }

    /// Chaos hook: appends the *first half* of the frame — checksum
    /// intact, payload cut, no newline — and fsyncs, as if the process
    /// died mid-write. [`load_checkpoints`] recovers the previous frame.
    ///
    /// # Errors
    ///
    /// Like [`SnapshotFile::append_payload`].
    pub fn append_torn(&self, payload: &str) -> Result<(), JournalError> {
        if payload.contains('\n') {
            return Err(JournalError::Serialize(
                "snapshot payload contains a newline".to_string(),
            ));
        }
        let line = format!("{:08x} {payload}\n", crc32(payload.as_bytes()));
        self.write_and_sync(&line.as_bytes()[..line.len() / 2])
    }

    fn write_and_sync(&self, bytes: &[u8]) -> Result<(), JournalError> {
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(plan) = &self.faults {
            if let Some(fault) = plan.next_write_fate() {
                if fault == WriteFault::Short {
                    // A genuinely torn frame lands on disk — the same
                    // shape `append_torn` scripts deliberately — so the
                    // loader's recovery rule is exercised for real.
                    let _ = file.write_all(&bytes[..bytes.len() / 2]);
                    let _ = file.flush();
                }
                return Err(IoFaultPlan::write_error(fault, &self.path));
            }
        }
        file.write_all(bytes)
            .and_then(|()| file.flush())
            .map_err(|e| io_err(&self.path, &e))?;
        if self
            .faults
            .as_deref()
            .is_some_and(IoFaultPlan::next_sync_fails)
        {
            return Err(JournalError::Io {
                path: self.path.clone(),
                message: "injected fsync failure".to_string(),
            });
        }
        file.sync_data().map_err(|e| io_err(&self.path, &e))
    }

    /// The snapshot file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Reads the valid payload strings of the snapshot file at `path`, in
/// append order, applying torn-tail recovery (a torn final frame is
/// dropped). A missing file loads as empty.
///
/// # Errors
///
/// [`JournalError::Io`] when the file cannot be read.
pub fn load_payloads(path: &Path) -> Result<Vec<String>, JournalError> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(io_err(path, &e)),
    };
    let valid_len = replay_raw_bytes(&bytes).valid_len as usize;
    // Recover the exact payload strings: each valid line is
    // "xxxxxxxx <payload>" — strip the 9-byte checksum prefix.
    Ok(bytes[..valid_len]
        .split(|&b| b == b'\n')
        .filter(|line| !line.is_empty())
        .map(|line| String::from_utf8_lossy(&line[9..]).into_owned())
        .collect())
}

/// A [`CheckpointSink`] for the supervised partitioned runtime backed by
/// a [`SnapshotFile`] of serialized [`PartitionCheckpoint`]s.
#[derive(Debug)]
pub struct PartitionCheckpointSink {
    file: SnapshotFile,
}

impl PartitionCheckpointSink {
    /// Creates (or truncates) the checkpoint file at `path`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] when the file cannot be created.
    pub fn create(path: &Path) -> Result<PartitionCheckpointSink, CheckpointError> {
        SnapshotFile::create(path)
            .map(|file| PartitionCheckpointSink { file })
            .map_err(|e| CheckpointError(e.to_string()))
    }

    /// Opens the checkpoint file at `path` for appending after a crash
    /// (torn tail truncated). A missing file opens empty.
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] when the file cannot be opened.
    pub fn open_append(path: &Path) -> Result<PartitionCheckpointSink, CheckpointError> {
        SnapshotFile::open_append(path)
            .map(|file| PartitionCheckpointSink { file })
            .map_err(|e| CheckpointError(e.to_string()))
    }

    /// The checkpoint file's path.
    pub fn path(&self) -> &Path {
        self.file.path()
    }
}

impl CheckpointSink for PartitionCheckpointSink {
    fn save(&self, cp: &PartitionCheckpoint) -> Result<(), CheckpointError> {
        let payload = serde_json::to_string(cp).map_err(|e| CheckpointError(e.to_string()))?;
        self.file
            .append_payload(&payload)
            .map_err(|e| CheckpointError(e.to_string()))
    }

    fn save_torn(&self, cp: &PartitionCheckpoint) -> Result<(), CheckpointError> {
        let payload = serde_json::to_string(cp).map_err(|e| CheckpointError(e.to_string()))?;
        self.file
            .append_torn(&payload)
            .map_err(|e| CheckpointError(e.to_string()))
    }
}

/// Loads every whole checkpoint frame from `path`, in append order,
/// applying torn-tail recovery. A missing file loads as empty.
///
/// # Errors
///
/// [`CheckpointError`] on read failure or a frame that is valid JSON but
/// not a checkpoint.
pub fn load_checkpoints(path: &Path) -> Result<Vec<PartitionCheckpoint>, CheckpointError> {
    load_payloads(path)
        .map_err(|e| CheckpointError(e.to_string()))?
        .iter()
        .map(|p| {
            serde_json::from_str::<PartitionCheckpoint>(p)
                .map_err(|e| CheckpointError(format!("bad checkpoint frame: {e}")))
        })
        .collect()
}

/// Loads the most recent whole checkpoint from `path` (torn final frames
/// fall back to the previous one); `None` when the file is missing or
/// holds no whole frame.
///
/// # Errors
///
/// Like [`load_checkpoints`].
pub fn load_latest_checkpoint(path: &Path) -> Result<Option<PartitionCheckpoint>, CheckpointError> {
    Ok(load_checkpoints(path)?.pop())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_core::{ApId, CHECKPOINT_SCHEMA};

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mcast_snapshot_{name}_{}", std::process::id()))
    }

    fn cp(round: u32) -> PartitionCheckpoint {
        let assoc = vec![Some(ApId(round)), None];
        PartitionCheckpoint {
            schema: CHECKPOINT_SCHEMA.to_string(),
            round,
            moves: u64::from(round) * 3,
            assoc: assoc.clone(),
            seen: vec![vec![None, None], assoc],
            trace: Vec::new(),
            traced: false,
        }
    }

    #[test]
    fn save_load_roundtrips_latest_wins() {
        let path = tmp("roundtrip.ckpt");
        let sink = PartitionCheckpointSink::create(&path).unwrap();
        sink.save(&cp(1)).unwrap();
        sink.save(&cp(2)).unwrap();
        let all = load_checkpoints(&path).unwrap();
        assert_eq!(all, vec![cp(1), cp(2)]);
        assert_eq!(load_latest_checkpoint(&path).unwrap(), Some(cp(2)));
        let _ = fs::remove_file(path);
    }

    #[test]
    fn torn_frame_falls_back_to_previous_whole_frame() {
        let path = tmp("torn.ckpt");
        let sink = PartitionCheckpointSink::create(&path).unwrap();
        sink.save(&cp(1)).unwrap();
        sink.save_torn(&cp(2)).unwrap();
        assert_eq!(load_latest_checkpoint(&path).unwrap(), Some(cp(1)));
        // Reopening for append truncates the tear; the next save lands
        // cleanly.
        drop(sink);
        let sink = PartitionCheckpointSink::open_append(&path).unwrap();
        sink.save(&cp(3)).unwrap();
        assert_eq!(load_checkpoints(&path).unwrap(), vec![cp(1), cp(3)],);
        let _ = fs::remove_file(path);
    }

    #[test]
    fn truncation_at_every_byte_recovers_a_whole_prefix() {
        let path = tmp("everybyte.ckpt");
        let sink = PartitionCheckpointSink::create(&path).unwrap();
        sink.save(&cp(1)).unwrap();
        sink.save(&cp(2)).unwrap();
        let bytes = fs::read(&path).unwrap();
        let cut_path = tmp("everybyte_cut.ckpt");
        for cut in 0..=bytes.len() {
            fs::write(&cut_path, &bytes[..cut]).unwrap();
            let got = load_checkpoints(&cut_path).unwrap();
            assert!(got.len() <= 2);
            for (i, c) in got.iter().enumerate() {
                assert_eq!(*c, cp(i as u32 + 1));
            }
        }
        let _ = fs::remove_file(path);
        let _ = fs::remove_file(cut_path);
    }

    #[test]
    fn missing_file_loads_empty() {
        let path = tmp("missing.ckpt");
        let _ = fs::remove_file(&path);
        assert_eq!(load_latest_checkpoint(&path).unwrap(), None);
    }

    #[test]
    fn injected_short_write_tears_a_real_frame_and_recovery_holds() {
        let path = tmp("faulted.ckpt");
        let plan = Arc::new(IoFaultPlan::scripted(
            vec![(1, WriteFault::Short)],
            Vec::new(),
            Vec::new(),
            None,
        ));
        let file = SnapshotFile::create_with_faults(&path, Some(plan)).unwrap();
        file.append_payload("{\"a\":1}").unwrap();
        let err = file.append_payload("{\"a\":2}").unwrap_err();
        assert!(err.to_string().contains("short write"));
        // The torn bytes really landed; the loader recovers frame 1.
        assert_eq!(load_payloads(&path).unwrap(), vec!["{\"a\":1}".to_string()]);
        // Reopening for append truncates the tear, as after a crash.
        drop(file);
        let file = SnapshotFile::open_append(&path).unwrap();
        file.append_payload("{\"a\":3}").unwrap();
        assert_eq!(
            load_payloads(&path).unwrap(),
            vec!["{\"a\":1}".to_string(), "{\"a\":3}".to_string()]
        );
        let _ = fs::remove_file(path);
    }

    #[test]
    fn injected_sync_failure_keeps_the_frame_bytes() {
        let path = tmp("syncfail.ckpt");
        let plan = Arc::new(IoFaultPlan::scripted(Vec::new(), vec![0], Vec::new(), None));
        let file = SnapshotFile::create_with_faults(&path, Some(plan)).unwrap();
        let err = file.append_payload("{\"a\":1}").unwrap_err();
        assert!(err.to_string().contains("fsync"));
        // An fsync failure does not un-write the page cache: the frame
        // is still readable in-process.
        assert_eq!(load_payloads(&path).unwrap(), vec!["{\"a\":1}".to_string()]);
        file.append_payload("{\"a\":2}").unwrap();
        assert_eq!(load_payloads(&path).unwrap().len(), 2);
        let _ = fs::remove_file(path);
    }
}
