//! Typed controller events: the vocabulary of the event queue and the
//! append-only event log.
//!
//! Two families share one enum so a single stream tells the whole story:
//!
//! * **input events** — things that happen *to* the network
//!   ([`EventKind::UserJoin`], [`EventKind::UserLeave`],
//!   [`EventKind::ApDown`], [`EventKind::ApRecovered`],
//!   [`EventKind::LinkReroll`]); producers push these into the
//!   [`TimeQueue`](crate::TimeQueue) and the service echoes them to the
//!   log as it admits them;
//! * **output events** — things the controller *did* in response
//!   ([`EventKind::Assoc`], [`EventKind::SolveCompleted`],
//!   [`EventKind::Violation`], [`EventKind::EpochClosed`]), plus the
//!   [`EventKind::ServiceStarted`] header and [`EventKind::StreamClosed`]
//!   trailer framing the run.
//!
//! The log is self-describing: replaying the output events alone
//! reconstructs the controller's report and final association state
//! without re-running any solver.

use serde::{Deserialize, Serialize};

use mcast_core::{ApId, UserId};

/// The current stream schema tag, carried by
/// [`EventKind::ServiceStarted`].
pub const STREAM_SCHEMA: &str = "mcast-events/v1";

/// One event in the stream: when it applied, where it sits in the log,
/// and what it is.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// When the event applied (µs on the service clock). Output events
    /// carry the closing instant of the epoch that produced them.
    pub at_us: u64,
    /// Position in the log: strictly increasing from 0. Same-instant
    /// events are ordered by `seq` — this is the queue's stable
    /// tie-break made durable.
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Every kind of event the controller service consumes or emits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// Header: the run's identity and shape. Always the first event.
    ServiceStarted {
        /// Stream schema tag ([`STREAM_SCHEMA`]).
        schema: String,
        /// Objective name (`MNU`/`BLA`/`MLA`).
        objective: String,
        /// Ladder policy name.
        policy: String,
        /// Epoch length in µs.
        epoch_us: u64,
        /// Epochs the service will run.
        n_epochs: u64,
        /// APs in the instance.
        n_aps: u64,
        /// Users in the instance.
        n_users: u64,
        /// Per-epoch work budget (0 = unlimited).
        work_budget: u64,
    },

    /// A user asks to join their multicast session.
    UserJoin {
        /// The joining user.
        user: UserId,
    },
    /// A user powers off for good.
    UserLeave {
        /// The departing user.
        user: UserId,
    },
    /// An AP crashes; its users are forcibly disassociated.
    ApDown {
        /// The failed AP.
        ap: ApId,
    },
    /// An AP recovers with empty state.
    ApRecovered {
        /// The recovered AP.
        ap: ApId,
    },
    /// A user jumps position: their candidate links re-roll from `seed`
    /// (the same per-jump seed the fault compiler resolved, so the
    /// service and the lock-step runtime see identical topologies).
    LinkReroll {
        /// The moving user.
        user: UserId,
        /// Per-jump RNG seed.
        seed: u64,
    },

    /// The controller changed one user's association. Emitted in
    /// user-id order per epoch; `ap = null` means the user lost service.
    Assoc {
        /// The re-homed user.
        user: UserId,
        /// Their new AP, or `None` if now unserved.
        ap: Option<ApId>,
    },
    /// A non-idle ladder rung finished for the epoch being closed.
    SolveCompleted {
        /// Rung that ran (`full`/`repair`/`ssa`).
        path: String,
        /// True if budget or solver failure pushed the epoch below its
        /// policy's preferred rung.
        degraded: bool,
        /// Coverage promise the auditor held (`exact`/`strongest-only`).
        rule: String,
        /// Work units spent.
        work: u64,
        /// Users placed this epoch.
        rehomed: u64,
        /// Users newly shed this epoch.
        shed: u64,
        /// Previously shed users readmitted this epoch.
        readmitted: u64,
        /// Users deferred to the next epoch.
        deferred: u64,
    },
    /// The post-epoch auditor found an invariant violation.
    Violation {
        /// Epoch it was found in.
        epoch: u64,
        /// The auditor's message.
        message: String,
    },
    /// An epoch finished; everything since the previous `EpochClosed`
    /// belongs to it. This is the durability boundary: the JSONL sink
    /// fsyncs here, and replay only commits fully closed epochs.
    EpochClosed {
        /// The epoch just closed.
        epoch: u64,
        /// Fault events ingested (down/up/leave/reroll).
        events: u64,
        /// Join events admitted.
        joins: u64,
        /// Invariant violations found.
        violations: u64,
    },
    /// Trailer: the run completed. `events` is the count of log events
    /// before this one — a cheap completeness check for replay.
    StreamClosed {
        /// Events published before this trailer.
        events: u64,
    },
}

impl EventKind {
    /// True for the input family (network happenings the service
    /// ingests), false for controller output/framing events.
    pub fn is_input(&self) -> bool {
        matches!(
            self,
            EventKind::UserJoin { .. }
                | EventKind::UserLeave { .. }
                | EventKind::ApDown { .. }
                | EventKind::ApRecovered { .. }
                | EventKind::LinkReroll { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_json() {
        let kinds = vec![
            EventKind::ServiceStarted {
                schema: STREAM_SCHEMA.to_string(),
                objective: "MNU".to_string(),
                policy: "repair".to_string(),
                epoch_us: 100_000,
                n_epochs: 16,
                n_aps: 12,
                n_users: 48,
                work_budget: 0,
            },
            EventKind::UserJoin { user: UserId(3) },
            EventKind::UserLeave { user: UserId(9) },
            EventKind::ApDown { ap: ApId(1) },
            EventKind::ApRecovered { ap: ApId(1) },
            EventKind::LinkReroll {
                user: UserId(5),
                seed: 0xDEAD_BEEF,
            },
            EventKind::Assoc {
                user: UserId(7),
                ap: Some(ApId(2)),
            },
            EventKind::Assoc {
                user: UserId(7),
                ap: None,
            },
            EventKind::SolveCompleted {
                path: "repair".to_string(),
                degraded: false,
                rule: "exact".to_string(),
                work: 42,
                rehomed: 3,
                shed: 0,
                readmitted: 1,
                deferred: 0,
            },
            EventKind::Violation {
                epoch: 4,
                message: "user u3 on down AP".to_string(),
            },
            EventKind::EpochClosed {
                epoch: 4,
                events: 2,
                joins: 1,
                violations: 0,
            },
            EventKind::StreamClosed { events: 10 },
        ];
        for (i, kind) in kinds.into_iter().enumerate() {
            let ev = Event {
                at_us: 1_000 * i as u64,
                seq: i as u64,
                kind,
            };
            let json = serde_json::to_string(&ev).unwrap();
            assert!(!json.contains('\n'), "one event must fit one log line");
            let back: Event = serde_json::from_str(&json).unwrap();
            assert_eq!(ev, back);
        }
    }

    #[test]
    fn input_family_is_exactly_the_network_happenings() {
        assert!(EventKind::UserJoin { user: UserId(0) }.is_input());
        assert!(EventKind::ApDown { ap: ApId(0) }.is_input());
        assert!(!EventKind::EpochClosed {
            epoch: 0,
            events: 0,
            joins: 0,
            violations: 0
        }
        .is_input());
        assert!(!EventKind::StreamClosed { events: 0 }.is_input());
    }
}
