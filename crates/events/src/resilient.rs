//! The service publisher's degrade ladder: retry → spill → drop.
//!
//! [`ResilientPublisher`] wraps a primary [`EventPublisher`] and
//! guarantees that `publish` never returns an error and never blocks
//! the decision path indefinitely. It climbs down a three-rung ladder:
//!
//! 1. **Primary + retry** — a failed append is retried a bounded number
//!    of times with capped backoff; between attempts the sink is
//!    [`repaired`](EventPublisher::repair) so a torn half-record never
//!    precedes the retry.
//! 2. **Spill** — when retries are exhausted (e.g. the disk stays
//!    full), the publisher opens a spill sink from its factory and
//!    sends the *same* event — and all subsequent ones — there, so the
//!    sequence stays contiguous: the primary log's valid prefix plus
//!    the spill replays as one gapless stream.
//! 3. **Drop with counter** — only when the spill sink also fails is an
//!    event dropped, and every drop is counted; the degraded report
//!    makes the gap explicit, never silent.
//!
//! Sync failures are likewise counted rather than propagated (durability
//! degrades; decisions continue). [`EventPublisher::pressure`] reports
//! [`SinkPressure::Degraded`] once the ladder has left the primary
//! rung, which is what lets `serve` shed admission load deterministically.

use std::time::Duration;

use crate::event::Event;
use crate::journal::JournalError;
use crate::publish::{EventPublisher, SinkPressure};

/// Bounded retry with capped exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per append (first try included). At least 1.
    pub max_attempts: u32,
    /// Backoff before the first retry, in milliseconds (doubles per
    /// retry).
    pub backoff_ms_base: u64,
    /// Ceiling on any single backoff, in milliseconds.
    pub backoff_ms_cap: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            backoff_ms_base: 1,
            backoff_ms_cap: 8,
        }
    }
}

impl RetryPolicy {
    fn backoff(&self, retry_index: u32) -> Duration {
        let ms = self
            .backoff_ms_base
            .saturating_mul(1u64 << retry_index.min(16))
            .min(self.backoff_ms_cap);
        Duration::from_millis(ms)
    }
}

/// Which rung of the ladder the publisher is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeRung {
    /// Appending to the primary sink.
    Primary,
    /// Appending to the spill sink.
    Spill,
    /// Dropping events (with a counter).
    Drop,
}

impl DegradeRung {
    /// Stable lower-case label for reports.
    pub fn label(self) -> &'static str {
        match self {
            DegradeRung::Primary => "primary",
            DegradeRung::Spill => "spill",
            DegradeRung::Drop => "drop",
        }
    }
}

/// What the ladder did, for the deterministic degraded report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradeReport {
    /// Retried append attempts (beyond each first try).
    pub retries: u64,
    /// Tail repairs run between attempts.
    pub repairs: u64,
    /// Events diverted to the spill sink.
    pub spilled: u64,
    /// Events dropped outright. Every drop is visible here — the
    /// stream never has a silent gap.
    pub dropped: u64,
    /// Sync (durability) failures swallowed.
    pub sync_failures: u64,
    /// Sequence number of the first spilled event, when any was.
    pub first_spilled_seq: Option<u64>,
}

/// The retry/spill/drop ladder over a primary [`EventPublisher`].
pub struct ResilientPublisher<'a> {
    primary: Box<dyn EventPublisher + 'a>,
    spill_factory: Box<dyn FnMut() -> Result<Box<dyn EventPublisher + 'a>, JournalError> + 'a>,
    spill: Option<Box<dyn EventPublisher + 'a>>,
    rung: DegradeRung,
    policy: RetryPolicy,
    report: DegradeReport,
}

impl std::fmt::Debug for ResilientPublisher<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientPublisher")
            .field("rung", &self.rung)
            .field("report", &self.report)
            .finish_non_exhaustive()
    }
}

impl<'a> ResilientPublisher<'a> {
    /// Wraps `primary`; `spill_factory` is called (once) if the ladder
    /// ever needs the spill rung.
    pub fn new(
        primary: Box<dyn EventPublisher + 'a>,
        spill_factory: impl FnMut() -> Result<Box<dyn EventPublisher + 'a>, JournalError> + 'a,
        policy: RetryPolicy,
    ) -> ResilientPublisher<'a> {
        ResilientPublisher {
            primary,
            spill_factory: Box::new(spill_factory),
            spill: None,
            rung: DegradeRung::Primary,
            policy,
            report: DegradeReport::default(),
        }
    }

    /// Current rung.
    pub fn rung(&self) -> DegradeRung {
        self.rung
    }

    /// What the ladder has done so far.
    pub fn report(&self) -> DegradeReport {
        self.report
    }

    /// Bounded-retry append to the primary. `Ok` when one attempt
    /// lands; `Err` when every attempt (with inter-attempt repair)
    /// failed.
    fn try_primary(&mut self, event: &Event) -> Result<(), JournalError> {
        let attempts = self.policy.max_attempts.max(1);
        let mut last = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.report.retries += 1;
                if self.primary.repair().is_ok() {
                    self.report.repairs += 1;
                }
                std::thread::sleep(self.policy.backoff(attempt - 1));
            }
            match self.primary.publish(event) {
                Ok(()) => return Ok(()),
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    /// Sends `event` to the spill sink, opening it on first use; drops
    /// (with counter) when the spill rung itself fails.
    fn spill_or_drop(&mut self, event: &Event) {
        if self.spill.is_none() {
            match (self.spill_factory)() {
                Ok(sink) => self.spill = Some(sink),
                Err(_) => {
                    self.rung = DegradeRung::Drop;
                    self.report.dropped += 1;
                    return;
                }
            }
        }
        let sink = self.spill.as_mut().expect("spill sink just ensured");
        match sink.publish(event) {
            Ok(()) => {
                self.rung = DegradeRung::Spill;
                self.report.spilled += 1;
                if self.report.first_spilled_seq.is_none() {
                    self.report.first_spilled_seq = Some(event.seq);
                }
            }
            Err(_) => {
                self.rung = DegradeRung::Drop;
                self.report.dropped += 1;
            }
        }
    }
}

impl EventPublisher for ResilientPublisher<'_> {
    /// Never returns an error: the ladder absorbs every sink failure
    /// into a retry, a spill, or a counted drop.
    fn publish(&mut self, event: &Event) -> Result<(), JournalError> {
        match self.rung {
            DegradeRung::Primary => {
                if self.try_primary(event).is_err() {
                    // Leave the primary file as a clean committed
                    // prefix before abandoning it.
                    let _ = self.primary.repair();
                    let _ = self.primary.sync();
                    self.spill_or_drop(event);
                }
            }
            DegradeRung::Spill | DegradeRung::Drop => self.spill_or_drop(event),
        }
        Ok(())
    }

    /// Durability failures are counted, not propagated — a missed fsync
    /// degrades crash-durability but must not halt decisions.
    fn sync(&mut self) -> Result<(), JournalError> {
        let target = match self.rung {
            DegradeRung::Primary => &mut self.primary,
            DegradeRung::Spill | DegradeRung::Drop => match self.spill.as_mut() {
                Some(s) => s,
                None => return Ok(()),
            },
        };
        if target.sync().is_err() {
            self.report.sync_failures += 1;
        }
        Ok(())
    }

    fn close(&mut self) -> Result<(), JournalError> {
        if self.primary.close().is_err() {
            self.report.sync_failures += 1;
        }
        if let Some(s) = self.spill.as_mut() {
            if s.close().is_err() {
                self.report.sync_failures += 1;
            }
        }
        Ok(())
    }

    /// The primary's byte position while on the primary rung; `None`
    /// once degraded (a spilled stream cannot back byte-offset
    /// checkpoints).
    fn bytes_logged(&self) -> Option<u64> {
        match self.rung {
            DegradeRung::Primary => self.primary.bytes_logged(),
            DegradeRung::Spill | DegradeRung::Drop => None,
        }
    }

    fn pressure(&self) -> SinkPressure {
        match self.rung {
            DegradeRung::Primary => SinkPressure::Ok,
            DegradeRung::Spill | DegradeRung::Drop => SinkPressure::Degraded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::faultio::{FaultSink, IoFaultPlan, WriteFault};
    use crate::publish::{JsonlPublisher, MemoryPublisher};
    use crate::replay::{replay_stream_bytes, replay_stream_bytes_from};
    use mcast_core::UserId;
    use std::path::PathBuf;
    use std::sync::Arc;

    fn ev(seq: u64) -> Event {
        Event {
            at_us: seq * 10,
            seq,
            kind: EventKind::UserJoin {
                user: UserId(seq as u32),
            },
        }
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mcast_resilient_{name}_{}", std::process::id()))
    }

    #[test]
    fn transient_faults_recover_on_primary_via_repair_and_retry() {
        let path = tmp("transient.jsonl");
        let plan = Arc::new(IoFaultPlan::scripted(
            vec![(1, WriteFault::Short), (3, WriteFault::Interrupted)],
            Vec::new(),
            Vec::new(),
            None,
        ));
        let primary = JsonlPublisher::create_with_faults(&path, Some(plan)).unwrap();
        let mut p = ResilientPublisher::new(
            Box::new(primary),
            || Ok(Box::new(MemoryPublisher::new()) as Box<dyn EventPublisher>),
            RetryPolicy::default(),
        );
        for s in 0..5 {
            p.publish(&ev(s)).unwrap();
        }
        p.close().unwrap();
        assert_eq!(p.rung(), DegradeRung::Primary);
        let r = p.report();
        assert_eq!(r.retries, 2);
        assert_eq!(r.spilled, 0);
        assert_eq!(r.dropped, 0);
        drop(p);
        let replay = replay_stream_bytes(&std::fs::read(&path).unwrap());
        assert_eq!(replay.events.len(), 5);
        assert_eq!(replay.dropped_bytes, 0, "torn bytes must be repaired away");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn sticky_disk_full_spills_with_contiguous_sequence() {
        let primary_path = tmp("sticky_primary.jsonl");
        let spill_path = tmp("sticky_spill.jsonl");
        // Writes 0 and 1 land; from op 2 on the disk stays full. With 3
        // attempts per event, every later event exhausts its retries.
        let plan = Arc::new(IoFaultPlan::scripted(
            Vec::new(),
            Vec::new(),
            Vec::new(),
            Some(2),
        ));
        let primary = JsonlPublisher::create_with_faults(&primary_path, Some(plan)).unwrap();
        let spill_path_cl = spill_path.clone();
        let mut p = ResilientPublisher::new(
            Box::new(primary),
            move || Ok(Box::new(JsonlPublisher::create(&spill_path_cl)?) as Box<dyn EventPublisher>),
            RetryPolicy::default(),
        );
        for s in 0..6 {
            p.publish(&ev(s)).unwrap();
        }
        p.close().unwrap();
        assert_eq!(p.rung(), DegradeRung::Spill);
        assert_eq!(p.pressure(), SinkPressure::Degraded);
        assert_eq!(p.bytes_logged(), None);
        let r = p.report();
        assert_eq!(r.spilled, 4);
        assert_eq!(r.dropped, 0);
        assert_eq!(r.first_spilled_seq, Some(2));
        drop(p);
        let head = replay_stream_bytes(&std::fs::read(&primary_path).unwrap());
        assert_eq!(head.events.len(), 2);
        assert_eq!(head.dropped_bytes, 0);
        let tail = replay_stream_bytes_from(
            &std::fs::read(&spill_path).unwrap(),
            head.events.len() as u64,
        );
        assert_eq!(tail.events.len(), 4);
        let seqs: Vec<u64> = head
            .events
            .iter()
            .chain(tail.events.iter())
            .map(|e| e.seq)
            .collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4, 5], "no gap across the spill");
        let _ = std::fs::remove_file(primary_path);
        let _ = std::fs::remove_file(spill_path);
    }

    #[test]
    fn failing_spill_drops_with_counter_never_errors() {
        let plan = Arc::new(IoFaultPlan::scripted(
            Vec::new(),
            Vec::new(),
            Vec::new(),
            Some(0),
        ));
        let primary = FaultSink::new(MemoryPublisher::new(), plan);
        let mut p = ResilientPublisher::new(
            Box::new(primary),
            || {
                Err(JournalError::Serialize(
                    "spill unavailable in this test".to_string(),
                ))
            },
            RetryPolicy::default(),
        );
        for s in 0..4 {
            assert!(p.publish(&ev(s)).is_ok(), "publish must never error");
        }
        p.sync().unwrap();
        assert_eq!(p.rung(), DegradeRung::Drop);
        let r = p.report();
        assert_eq!(r.dropped, 4);
        assert_eq!(r.spilled, 0);
    }

    #[test]
    fn quiet_plan_is_byte_identical_to_a_plain_publisher() {
        let faulted = tmp("quiet_faulted.jsonl");
        let plain = tmp("quiet_plain.jsonl");
        let primary =
            JsonlPublisher::create_with_faults(&faulted, Some(Arc::new(IoFaultPlan::quiet())))
                .unwrap();
        let mut p = ResilientPublisher::new(
            Box::new(primary),
            || Ok(Box::new(MemoryPublisher::new()) as Box<dyn EventPublisher>),
            RetryPolicy::default(),
        );
        let mut q = JsonlPublisher::create(&plain).unwrap();
        for s in 0..8 {
            p.publish(&ev(s)).unwrap();
            q.publish(&ev(s)).unwrap();
        }
        p.close().unwrap();
        q.close().unwrap();
        assert_eq!(p.report(), DegradeReport::default());
        assert_eq!(p.bytes_logged(), q.bytes_logged());
        drop((p, q));
        assert_eq!(
            std::fs::read(&faulted).unwrap(),
            std::fs::read(&plain).unwrap()
        );
        let _ = std::fs::remove_file(faulted);
        let _ = std::fs::remove_file(plain);
    }
}
