//! The deterministic time-ordered event queue.
//!
//! A [`TimeQueue`] is a binary-heap priority queue keyed by
//! `(at_us, seq)`: events pop in timestamp order, and events carrying
//! the same timestamp pop in the order they were pushed. The `seq`
//! tie-break makes the queue a *stable* priority queue, which is what
//! keeps the whole runtime deterministic — producers decide the order of
//! simultaneous events once, at push time, and every consumer sees that
//! same order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An item stamped with its due time and push sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timed<T> {
    /// When the item is due (µs on the producer's clock).
    pub at_us: u64,
    /// Push order, assigned by the queue: the tie-break for items due at
    /// the same instant.
    pub seq: u64,
    /// The payload.
    pub item: T,
}

/// Min-heap wrapper: ordered by `(at_us, seq)` only, never by the
/// payload, so `T` needs no `Ord`.
#[derive(Debug)]
struct Entry<T>(Timed<T>);

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Entry<T>) -> bool {
        (self.0.at_us, self.0.seq) == (other.0.at_us, other.0.seq)
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Entry<T>) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Entry<T>) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.0.at_us, other.0.seq).cmp(&(self.0.at_us, self.0.seq))
    }
}

/// A deterministic time-ordered queue of pending events.
#[derive(Debug)]
pub struct TimeQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> Default for TimeQueue<T> {
    fn default() -> TimeQueue<T> {
        TimeQueue::new()
    }
}

impl<T> TimeQueue<T> {
    /// An empty queue.
    pub fn new() -> TimeQueue<T> {
        TimeQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `item` at `at_us` and returns the sequence number that
    /// orders it among same-instant events (monotonic per queue).
    pub fn push(&mut self, at_us: u64, item: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry(Timed { at_us, seq, item }));
        seq
    }

    /// The due time of the earliest pending event, if any.
    pub fn peek_at_us(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.0.at_us)
    }

    /// Pops the earliest pending event if it is due at or before
    /// `now_us`.
    pub fn pop_due(&mut self, now_us: u64) -> Option<Timed<T>> {
        if self.peek_at_us()? <= now_us {
            self.heap.pop().map(|e| e.0)
        } else {
            None
        }
    }

    /// Pops the earliest pending event unconditionally.
    pub fn pop(&mut self) -> Option<Timed<T>> {
        self.heap.pop().map(|e| e.0)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = TimeQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|t| t.item)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_instant_pops_in_push_order() {
        let mut q = TimeQueue::new();
        for i in 0..50 {
            q.push(7, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|t| t.item)).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_clock() {
        let mut q = TimeQueue::new();
        q.push(10, 'x');
        q.push(20, 'y');
        assert_eq!(q.peek_at_us(), Some(10));
        assert!(q.pop_due(5).is_none());
        assert_eq!(q.pop_due(10).unwrap().item, 'x');
        assert!(q.pop_due(15).is_none());
        assert_eq!(q.pop_due(25).unwrap().item, 'y');
        assert!(q.is_empty());
        assert!(q.pop_due(u64::MAX).is_none());
    }

    #[test]
    fn seq_is_monotonic_across_times() {
        let mut q = TimeQueue::new();
        assert_eq!(q.push(99, ()), 0);
        assert_eq!(q.push(1, ()), 1);
        assert_eq!(q.push(99, ()), 2);
        // The earlier-time event still pops first, seq notwithstanding.
        assert_eq!(q.pop().unwrap().seq, 1);
        assert_eq!(q.pop().unwrap().seq, 0);
        assert_eq!(q.pop().unwrap().seq, 2);
    }
}
