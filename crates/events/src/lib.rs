//! # mcast-events
//!
//! The event subsystem under the online controller: a deterministic
//! time-ordered event queue, the typed event vocabulary, pluggable
//! publishers, and an append-only crc32-framed JSONL event log with
//! torn-tail recovery.
//!
//! The pieces compose into one contract:
//!
//! * producers schedule [`EventKind`]s into a [`TimeQueue`], whose
//!   `(timestamp, seq)` heap order makes simultaneous events
//!   deterministic;
//! * the controller service drains the queue and publishes everything it
//!   ingests *and* everything it decides through an [`EventPublisher`] —
//!   in production a [`JsonlPublisher`] streaming `events.jsonl` through
//!   the same checksummed [`journal`] the experiment harness uses for
//!   crash-safe checkpoints;
//! * [`replay_stream_bytes`] decodes a stream (including a
//!   crash-truncated one) back into its valid event prefix, from which
//!   `mcast_controller::replay` folds the report and final association
//!   without re-running a single solver.
//!
//! The journal module itself ([`journal::Journal`],
//! [`journal::atomic_write`]) moved here from the experiments crate so
//! both consumers share one framing and one recovery rule; the
//! experiments crate re-exports it unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
pub mod faultio;
pub mod harden;
pub mod journal;
mod publish;
mod queue;
mod replay;
mod resilient;
pub mod snapshot;

pub use event::{Event, EventKind, STREAM_SCHEMA};
pub use faultio::{FaultSink, IoFaultCounters, IoFaultPlan, WriteFault};
pub use harden::{check_declared_len, DecodeError, DecodeErrorKind, DecodeLimits, Mutation};
pub use publish::{EventPublisher, JsonlPublisher, MemoryPublisher, NullPublisher, SinkPressure};
pub use queue::{TimeQueue, Timed};
pub use replay::{replay_stream_bytes, replay_stream_bytes_from, StreamReplay};
pub use resilient::{DegradeReport, DegradeRung, ResilientPublisher, RetryPolicy};
pub use snapshot::{
    load_checkpoints, load_latest_checkpoint, PartitionCheckpointSink, SnapshotFile,
};
