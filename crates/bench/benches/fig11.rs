//! Figure 11 bench: the satisfied-users experiment at a tight budget —
//! MNU-C (MCG greedy + partition) and MNU-D (budgeted serial rounds).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mcast_core::{run_min_total, solve_mnu};

fn fig11_mnu(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_satisfied_users");
    group.sample_size(20);
    for &budget in &[40u32, 100] {
        let scenario = mcast_bench::fig11_scenario(budget, 5);
        let inst = &scenario.instance;
        group.bench_with_input(
            BenchmarkId::new("mnu_centralized", budget),
            inst,
            |b, inst| b.iter(|| black_box(solve_mnu(inst).satisfied)),
        );
        group.bench_with_input(
            BenchmarkId::new("mnu_distributed", budget),
            inst,
            |b, inst| b.iter(|| black_box(run_min_total(inst).association.satisfied_count())),
        );
    }
    group.finish();
}

criterion_group!(benches, fig11_mnu);
criterion_main!(benches);
