//! Table 1 bench: the rate–distance staircase lookup that every link in
//! every generated scenario pays.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mcast_core::RateTable;

fn table1_rate_lookup(c: &mut Criterion) {
    let table = RateTable::ieee80211a();
    let distances: Vec<f64> = (0..1000).map(|i| i as f64 * 0.21).collect();
    c.bench_function("table1_rate_lookup_1k", |b| {
        b.iter(|| {
            let mut found = 0u32;
            for &d in &distances {
                if table.rate_at(black_box(d)).is_some() {
                    found += 1;
                }
            }
            black_box(found)
        })
    });

    c.bench_function("table1_scenario_link_derivation_50x100", |b| {
        b.iter(|| {
            let s = mcast_bench::scenario(50, 100, 5, 7);
            black_box(s.instance.n_users())
        })
    });
}

criterion_group!(benches, table1_rate_lookup);
criterion_main!(benches);
