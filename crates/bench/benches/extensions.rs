//! Benches for the §8-extension substrates: interference graph + channel
//! assignment, the primal–dual MLA variant, per-AP power optimization,
//! and mobility perturbation/repair.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mcast_channels::{assign_channels, ColoringStrategy, EffectiveLoads, InterferenceGraph};
use mcast_core::{
    run_distributed, solve_mla, solve_mla_with, solve_ssa, DistributedConfig, MlaAlgorithm,
    Objective,
};
use mcast_topology::{optimize_power, ScenarioConfig};

fn bench_channels(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_channels");
    group.sample_size(20);
    let scenario = mcast_bench::scenario(150, 300, 5, 21);
    let range = 2.0 * scenario.config.rate_table.range_m();
    group.bench_function("interference_graph_150aps", |b| {
        b.iter(|| {
            black_box(InterferenceGraph::from_positions(&scenario.ap_positions, range).n_edges())
        })
    });
    let graph = InterferenceGraph::from_positions(&scenario.ap_positions, range);
    group.bench_function("dsatur_12ch", |b| {
        b.iter(|| {
            black_box(
                assign_channels(&graph, 12, ColoringStrategy::Dsatur)
                    .conflicts()
                    .len(),
            )
        })
    });
    let assignment = assign_channels(&graph, 12, ColoringStrategy::Dsatur);
    let assoc = solve_ssa(&scenario.instance, Objective::Mla).association;
    group.bench_function("effective_loads", |b| {
        b.iter(|| {
            black_box(
                EffectiveLoads::compute(&scenario.instance, &assoc, &graph, &assignment)
                    .max_effective(),
            )
        })
    });
    group.finish();
}

fn bench_primal_dual(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_mla_algorithms");
    group.sample_size(20);
    let scenario = mcast_bench::scenario(100, 250, 5, 23);
    let inst = &scenario.instance;
    group.bench_function("greedy", |b| {
        b.iter(|| black_box(solve_mla(inst).unwrap().total_load))
    });
    group.bench_function("primal_dual", |b| {
        b.iter(|| {
            black_box(
                solve_mla_with(inst, MlaAlgorithm::PrimalDual)
                    .unwrap()
                    .total_load,
            )
        })
    });
    group.finish();
}

fn bench_power_optimizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_power");
    group.sample_size(10);
    let scenario = ScenarioConfig {
        n_aps: 20,
        n_users: 50,
        n_sessions: 3,
        ..ScenarioConfig::paper_default()
    }
    .with_seed(25)
    .generate();
    group.bench_function("coordinate_descent_1round", |b| {
        b.iter(|| {
            let out = optimize_power(&scenario, &[1.0, 1.25], 1, |inst| {
                solve_mla(inst).map_or(f64::INFINITY, |s| s.total_load.as_f64())
            });
            black_box(out.objective)
        })
    });
    group.finish();
}

fn bench_mobility(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_mobility");
    group.sample_size(20);
    let scenario = mcast_bench::scenario(60, 150, 4, 27);
    group.bench_function("perturb_10pct", |b| {
        b.iter(|| black_box(scenario.perturb(9, 0.10, 120.0).instance.n_users()))
    });
    let moved = scenario.perturb(9, 0.10, 120.0);
    let carried = run_distributed(
        &scenario.instance,
        &DistributedConfig::default(),
        mcast_core::Association::empty(scenario.instance.n_users()),
    )
    .association
    .restricted_to(&moved.instance);
    group.bench_function("repair_after_10pct", |b| {
        b.iter(|| {
            black_box(
                run_distributed(
                    &moved.instance,
                    &DistributedConfig::default(),
                    carried.clone(),
                )
                .moves,
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_channels,
    bench_primal_dual,
    bench_power_optimizer,
    bench_mobility
);
criterion_main!(benches);
