//! Figure 9 bench: one scenario's worth of the total-load experiment —
//! MLA-C (reduction + greedy set cover), MLA-D (serial rounds), and SSA —
//! at the sweep's extremes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mcast_core::{run_min_total, solve_mla, solve_ssa, Objective};

fn fig9_mla(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_total_load");
    group.sample_size(20);
    for &users in &[100usize, 400] {
        let scenario = mcast_bench::scenario(200, users, 5, 3);
        let inst = &scenario.instance;
        group.bench_with_input(
            BenchmarkId::new("mla_centralized", users),
            inst,
            |b, inst| b.iter(|| black_box(solve_mla(inst).unwrap().total_load)),
        );
        group.bench_with_input(
            BenchmarkId::new("mla_distributed", users),
            inst,
            |b, inst| b.iter(|| black_box(run_min_total(inst).association.satisfied_count())),
        );
        group.bench_with_input(BenchmarkId::new("ssa", users), inst, |b, inst| {
            b.iter(|| black_box(solve_ssa(inst, Objective::Mla).total_load))
        });
    }
    group.finish();
}

criterion_group!(benches, fig9_mla);
criterion_main!(benches);
