//! Figure 10 bench: one scenario's worth of the max-load experiment —
//! BLA-C (SCG over the dual-rule candidate grid) and BLA-D.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mcast_core::{run_min_max_vector, solve_bla};

fn fig10_bla(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_max_load");
    group.sample_size(10);
    for &users in &[100usize, 400] {
        let scenario = mcast_bench::scenario(200, users, 5, 3);
        let inst = &scenario.instance;
        group.bench_with_input(
            BenchmarkId::new("bla_centralized", users),
            inst,
            |b, inst| b.iter(|| black_box(solve_bla(inst).unwrap().max_load)),
        );
        group.bench_with_input(
            BenchmarkId::new("bla_distributed", users),
            inst,
            |b, inst| b.iter(|| black_box(run_min_max_vector(inst).association.satisfied_count())),
        );
    }
    group.finish();
}

criterion_group!(benches, fig10_bla);
criterion_main!(benches);
