//! Substrate microbenches: the three covering solvers on synthetic
//! systems, independent of the WLAN layer.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mcast_covering::{greedy_mcg, greedy_set_cover, solve_scg, SetSystem, SetSystemBuilder};

/// A synthetic system: `n` elements, `n` singletons plus `n` random-ish
/// wide sets across `g` groups (deterministic construction).
fn synthetic(n: usize, g: u32) -> SetSystem<u64> {
    let mut b = SetSystemBuilder::<u64>::new(n);
    for e in 0..n {
        b.push_set([e as u32], 3 + (e as u64 % 5), (e as u32) % g)
            .unwrap();
    }
    for i in 0..n {
        let members: Vec<u32> = (0..n as u32)
            .filter(|&e| (e as usize * 7 + i * 13).is_multiple_of(5))
            .collect();
        if !members.is_empty() {
            b.push_set(members, 2 + (i as u64 % 7), (i as u32) % g)
                .unwrap();
        }
    }
    b.build().unwrap()
}

fn covering_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("covering_substrate");
    group.sample_size(20);
    for &n in &[100usize, 400] {
        let system = synthetic(n, 20);
        group.bench_with_input(BenchmarkId::new("greedy_set_cover", n), &system, |b, s| {
            b.iter(|| black_box(greedy_set_cover(s).unwrap().covered_count()))
        });
        let budgets = vec![25u64; s_groups(&system)];
        group.bench_with_input(BenchmarkId::new("greedy_mcg", n), &system, |b, s| {
            b.iter(|| black_box(greedy_mcg(s, &budgets).feasible().covered_count()))
        });
        let candidates: Vec<u64> = vec![10, 20, 40, 80, 160, 1000];
        group.bench_with_input(BenchmarkId::new("solve_scg", n), &system, |b, s| {
            b.iter(|| black_box(*solve_scg(s, &candidates).unwrap().max_group_cost()))
        });
    }
    group.finish();
}

fn s_groups(s: &SetSystem<u64>) -> usize {
    s.n_groups()
}

criterion_group!(benches, covering_benches);
criterion_main!(benches);
