//! Figure 12 bench: the certified-optimal branch-and-bound solvers (the
//! reproduction's ILP substitute) on the small-network workload.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mcast_exact::{optimal_bla, optimal_mla, optimal_mnu, SearchLimits};

fn fig12_optimal(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_exact_solvers");
    group.sample_size(10);
    let limits = SearchLimits::default();
    for &users in &[20usize, 40] {
        let scenario = mcast_bench::fig12_scenario(users, 900, 11);
        let inst = &scenario.instance;
        group.bench_with_input(BenchmarkId::new("optimal_mla", users), inst, |b, inst| {
            b.iter(|| black_box(optimal_mla(inst, limits).unwrap().nodes))
        });
        group.bench_with_input(BenchmarkId::new("optimal_bla", users), inst, |b, inst| {
            b.iter(|| black_box(optimal_bla(inst, limits).unwrap().nodes))
        });
        let tight = mcast_bench::fig12_scenario(users, 42, 11);
        group.bench_with_input(
            BenchmarkId::new("optimal_mnu_budget042", users),
            &tight.instance,
            |b, inst| b.iter(|| black_box(optimal_mnu(inst, limits).nodes)),
        );
    }
    group.finish();
}

criterion_group!(benches, fig12_optimal);
criterion_main!(benches);
