//! Ablation benches for the design choices DESIGN.md calls out:
//! basic-rate-only vs multi-rate reductions, the MNU augmentation pass,
//! and the lock-coordinated vs staggered simulator schedules.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mcast_core::{solve_mla, solve_mnu_with, MnuConfig, RatePolicy};
use mcast_sim::{SimConfig, Simulator, WakeSchedule};
use mcast_topology::ScenarioConfig;

fn ablation_rate_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_rate_policy");
    group.sample_size(20);
    for (name, policy) in [
        ("multi_rate", RatePolicy::MultiRate),
        ("basic_only", RatePolicy::BasicOnly),
    ] {
        let scenario = ScenarioConfig {
            n_aps: 100,
            n_users: 200,
            rate_policy: policy,
            ..ScenarioConfig::paper_default()
        }
        .with_seed(13)
        .generate();
        group.bench_function(name, |b| {
            b.iter(|| black_box(solve_mla(&scenario.instance).unwrap().total_load))
        });
    }
    group.finish();
}

fn ablation_mnu_augment(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_mnu_augment");
    group.sample_size(20);
    let scenario = mcast_bench::fig11_scenario(40, 13);
    for (name, augment) in [("plain", false), ("augmented", true)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(solve_mnu_with(&scenario.instance, &MnuConfig { augment }).satisfied)
            })
        });
    }
    group.finish();
}

fn ablation_locks(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_locks");
    group.sample_size(10);
    let scenario = ScenarioConfig {
        n_aps: 15,
        n_users: 40,
        n_sessions: 3,
        ..ScenarioConfig::paper_default()
    }
    .with_seed(17)
    .generate();
    for (name, schedule) in [
        ("staggered", WakeSchedule::Staggered),
        ("locked", WakeSchedule::SynchronizedLocked),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let report = Simulator::new(
                    &scenario.instance,
                    SimConfig {
                        schedule,
                        max_cycles: 60,
                        ..SimConfig::default()
                    },
                )
                .run();
                black_box((report.converged, report.total_messages()))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_rate_policy,
    ablation_mnu_augment,
    ablation_locks
);
criterion_main!(benches);
