//! Channel assignment and interference modeling for dense WLAN
//! deployments.
//!
//! The paper assumes "the radio channels of the neighboring APs are
//! configured such that they do not interfere" (§3.1) — justified by
//! 802.11a's 12 non-overlapping channels — and leaves explicit
//! interference modeling as future work (§8). This crate closes that gap
//! for the reproduction:
//!
//! 1. [`InterferenceGraph`] — which AP pairs would interfere if
//!    co-channel, from deployment geometry (carrier-sense range model).
//! 2. [`assign_channels`] — greedy / DSATUR coloring of the graph under a
//!    channel budget (3 for 802.11b/g, 12 for 802.11a), minimizing
//!    leftover co-channel conflicts when the budget is short.
//! 3. [`EffectiveLoads`] — with an assignment and the per-AP multicast
//!    loads of an association, the *effective* busy fraction each AP
//!    observes: its own load plus the load of co-channel interferers
//!    sharing its airtime.
//!
//! The `ablation_channels` experiment uses this to validate the paper's
//! assumption (12 channels ⇒ effective ≈ nominal) and to show BLA/MLA
//! "implicitly optimize interference" (§3.2 note) when channels are
//! scarce.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aware;
mod coloring;
mod effective;
mod graph;

pub use aware::{run_interference_aware, AwareOutcome};
pub use coloring::{assign_channels, Channel, ChannelAssignment, ColoringStrategy};
pub use effective::EffectiveLoads;
pub use graph::InterferenceGraph;
