//! Interference-aware association: the paper's §8 closing direction
//! ("the approximation algorithms need to be modified to explicitly
//! account for interference"), realized for the distributed rule.
//!
//! An AP's multicast transmission occupies the medium at itself *and* at
//! every co-channel AP in carrier-sense range, so the true medium time it
//! consumes is `load × (1 + co-channel degree)`. Weighting each AP's load
//! by that factor and running the standard min-total-load local rule
//! (unchanged — it operates through the [`ApStateView`] trait) makes
//! users prefer APs whose transmissions disturb fewer neighbors.

use mcast_core::{
    local_decision, ApId, ApStateView, Association, Instance, Load, LoadLedger, Policy, UserId,
};

use crate::coloring::ChannelAssignment;
use crate::graph::InterferenceGraph;

/// A view that scales each AP's load by its interference weight
/// `1 + |co-channel interferers|`, so the min-total-load rule minimizes
/// total *medium* time instead of total *transmitter* time.
struct WeightedView<'a, 'b> {
    ledger: &'b LoadLedger<'a>,
    weights: &'b [u64],
}

impl ApStateView for WeightedView<'_, '_> {
    fn instance(&self) -> &Instance {
        self.ledger.instance()
    }

    fn ap_of(&self, u: UserId) -> Option<ApId> {
        self.ledger.ap_of(u)
    }

    fn ap_load(&self, a: ApId) -> Load {
        self.ledger.ap_load(a) * self.weights[a.index()]
    }

    fn load_if_joined(&self, u: UserId, a: ApId) -> Option<Load> {
        // Feasibility is *nominal*: the weights steer preferences, but an
        // AP that can nominally host the user must stay a candidate (the
        // decision rule is invoked with its own budget check disabled).
        let nominal = self.ledger.load_if_joined(u, a)?;
        if nominal > self.ledger.instance().budget(a) {
            return None;
        }
        Some(nominal * self.weights[a.index()])
    }

    fn load_if_left(&self, u: UserId) -> Option<Load> {
        let a = self.ledger.ap_of(u)?;
        self.ledger
            .load_if_left(u)
            .map(|l| l * self.weights[a.index()])
    }
}

/// Outcome of [`run_interference_aware`].
#[derive(Debug, Clone)]
pub struct AwareOutcome {
    /// The final association.
    pub association: Association,
    /// Rounds executed.
    pub rounds: usize,
    /// True if a full round made no changes.
    pub converged: bool,
}

/// Serial interference-aware distributed association: the standard
/// min-total-load rule over the weighted view, from an empty association.
///
/// Budget feasibility is checked against the *nominal* per-AP budgets (the
/// weights only steer preferences). Convergence follows the same
/// potential-function argument as Lemma 1 — the weighted total load
/// strictly decreases on every voluntary move.
///
/// # Panics
///
/// Panics if the graph or assignment disagree with the instance size.
pub fn run_interference_aware(
    inst: &Instance,
    graph: &InterferenceGraph,
    assignment: &ChannelAssignment,
    max_rounds: usize,
) -> AwareOutcome {
    assert_eq!(graph.n_aps(), inst.n_aps(), "graph size");
    assert_eq!(assignment.channels().len(), inst.n_aps(), "assignment size");
    let weights: Vec<u64> = inst
        .aps()
        .map(|a| {
            1 + graph
                .neighbors(a)
                .iter()
                .filter(|&&b| assignment.channel(a) == assignment.channel(b))
                .count() as u64
        })
        .collect();

    let mut ledger = LoadLedger::new(inst, Association::empty(inst.n_users()));
    let mut rounds = 0;
    let mut converged = false;
    for _ in 0..max_rounds {
        rounds += 1;
        let mut changed = false;
        for u in inst.users() {
            let view = WeightedView {
                ledger: &ledger,
                weights: &weights,
            };
            // The view's `load_if_joined` already filters nominally
            // infeasible APs, so the rule's own (weighted) budget check
            // stays off.
            if let Some(a) = local_decision(&view, u, Policy::MinTotalLoad, false) {
                ledger.reassociate(u, a);
                changed = true;
            }
        }
        if !changed {
            converged = true;
            break;
        }
    }

    AwareOutcome {
        association: ledger.into_association(),
        rounds,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::{assign_channels, ColoringStrategy};
    use crate::effective::EffectiveLoads;
    use mcast_core::{InstanceBuilder, Kbps};

    /// Two equal-rate APs for one user; AP0 sits in a co-channel cluster
    /// (weight 3), AP1 is isolated. The aware rule must pick AP1 even
    /// though plain min-total-load is indifferent.
    #[test]
    fn prefers_less_interfering_ap() {
        let mut b = InstanceBuilder::new();
        b.supported_rates([Kbps::from_mbps(6)]);
        let s = b.add_session(Kbps::from_mbps(1));
        let a0 = b.add_ap(Load::ONE);
        let a1 = b.add_ap(Load::ONE);
        let _a2 = b.add_ap(Load::ONE);
        let _a3 = b.add_ap(Load::ONE);
        let u = b.add_user(s);
        b.link(a0, u, Kbps::from_mbps(6)).unwrap();
        b.link(a1, u, Kbps::from_mbps(6)).unwrap();
        let inst = b.build().unwrap();
        // a0 interferes with a2 and a3; everyone shares one channel.
        let graph = InterferenceGraph::from_edges(4, &[(0, 2), (0, 3)]);
        let assignment = assign_channels(&graph, 1, ColoringStrategy::Greedy);
        let out = run_interference_aware(&inst, &graph, &assignment, 20);
        assert!(out.converged);
        assert_eq!(out.association.ap_of(u), Some(a1));
    }

    /// On a generated scenario with scarce channels, the aware rule never
    /// produces more interference overhead than the plain rule.
    #[test]
    fn reduces_interference_overhead_on_generated_scenarios() {
        use mcast_topology::ScenarioConfig;
        let mut aware_wins = 0;
        let seeds = 6;
        for seed in 0..seeds {
            let scenario = ScenarioConfig {
                n_aps: 30,
                n_users: 80,
                n_sessions: 4,
                ..ScenarioConfig::paper_default()
            }
            .with_seed(seed)
            .generate();
            let inst = &scenario.instance;
            let graph = InterferenceGraph::from_positions(&scenario.ap_positions, 400.0);
            let assignment = assign_channels(&graph, 3, ColoringStrategy::Dsatur);

            let plain = mcast_core::run_min_total(inst).association;
            let aware = run_interference_aware(inst, &graph, &assignment, 100).association;
            assert_eq!(aware.satisfied_count(), inst.n_users(), "seed {seed}");

            let ovh = |assoc: &Association| {
                EffectiveLoads::compute(inst, assoc, &graph, &assignment).interference_overhead()
            };
            if ovh(&aware) <= ovh(&plain) {
                aware_wins += 1;
            }
        }
        assert!(
            aware_wins >= seeds - 1,
            "aware rule lost on {} of {seeds} seeds",
            seeds - aware_wins
        );
    }

    /// Uniform weights (no interference) reduce to the plain rule exactly.
    #[test]
    fn no_interference_equals_plain_rule() {
        use mcast_topology::ScenarioConfig;
        let scenario = ScenarioConfig {
            n_aps: 10,
            n_users: 30,
            n_sessions: 3,
            ..ScenarioConfig::paper_default()
        }
        .with_seed(3)
        .generate();
        let inst = &scenario.instance;
        let graph = InterferenceGraph::from_edges(10, &[]); // no edges
        let assignment = assign_channels(&graph, 1, ColoringStrategy::Greedy);
        let aware = run_interference_aware(inst, &graph, &assignment, 100);
        let plain = mcast_core::run_min_total(inst);
        assert_eq!(aware.association, plain.association);
        assert!(aware.converged);
    }
}
