//! Co-channel effective loads: what each AP's airtime looks like once
//! interfering same-channel neighbors share the medium.

use mcast_core::{ApId, Association, Instance, Load};

use crate::coloring::ChannelAssignment;
use crate::graph::InterferenceGraph;

/// Per-AP effective busy fractions under an association and a channel
/// assignment: an AP's channel is busy for its own multicast transmissions
/// *plus* those of every interfering co-channel AP (carrier sense defers
/// to them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EffectiveLoads {
    own: Vec<Load>,
    effective: Vec<Load>,
}

impl EffectiveLoads {
    /// Computes effective loads.
    ///
    /// # Panics
    ///
    /// Panics if the graph/assignment AP counts disagree with the
    /// instance.
    pub fn compute(
        inst: &Instance,
        assoc: &Association,
        graph: &InterferenceGraph,
        assignment: &ChannelAssignment,
    ) -> EffectiveLoads {
        assert_eq!(graph.n_aps(), inst.n_aps(), "graph size");
        assert_eq!(assignment.channels().len(), inst.n_aps(), "assignment size");
        let own = assoc.loads(inst);
        let effective = inst
            .aps()
            .map(|a| {
                let mut total = own[a.index()];
                for &b in graph.neighbors(a) {
                    if assignment.channel(a) == assignment.channel(b) {
                        total += own[b.index()];
                    }
                }
                total
            })
            .collect();
        EffectiveLoads { own, effective }
    }

    /// The AP's own (Definition 1) load.
    pub fn own(&self, a: ApId) -> Load {
        self.own[a.index()]
    }

    /// The AP's effective busy fraction including co-channel interferers.
    pub fn effective(&self, a: ApId) -> Load {
        self.effective[a.index()]
    }

    /// Maximum effective load over all APs.
    pub fn max_effective(&self) -> Load {
        self.effective.iter().copied().max().unwrap_or(Load::ZERO)
    }

    /// Total interference overhead: `Σ (effective − own)` — each unit is
    /// an (interferer load × victim) airtime overlap.
    pub fn interference_overhead(&self) -> Load {
        self.effective
            .iter()
            .zip(&self.own)
            .map(|(e, o)| *e - *o)
            .sum()
    }

    /// APs whose effective load exceeds 1 — their channel is saturated
    /// (multicast alone over-commits the medium around them).
    pub fn saturated_aps(&self) -> Vec<ApId> {
        self.effective
            .iter()
            .enumerate()
            .filter(|(_, &e)| e > Load::ONE)
            .map(|(i, _)| ApId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::{assign_channels, ColoringStrategy};
    use mcast_core::{InstanceBuilder, Kbps};

    /// Two APs in range of each other, one user each on distinct sessions.
    fn two_ap_world() -> (Instance, Association) {
        let mut b = InstanceBuilder::new();
        b.supported_rates([Kbps::from_mbps(6)]);
        let s1 = b.add_session(Kbps::from_mbps(1));
        let s2 = b.add_session(Kbps::from_mbps(1));
        let a1 = b.add_ap(Load::ONE);
        let a2 = b.add_ap(Load::ONE);
        let u1 = b.add_user(s1);
        let u2 = b.add_user(s2);
        b.link(a1, u1, Kbps::from_mbps(6)).unwrap();
        b.link(a2, u2, Kbps::from_mbps(6)).unwrap();
        let inst = b.build().unwrap();
        let assoc = Association::from_vec(vec![Some(a1), Some(a2)]);
        (inst, assoc)
    }

    #[test]
    fn separate_channels_mean_no_overhead() {
        let (inst, assoc) = two_ap_world();
        let graph = InterferenceGraph::from_edges(2, &[(0, 1)]);
        let asg = assign_channels(&graph, 2, ColoringStrategy::Dsatur);
        let eff = EffectiveLoads::compute(&inst, &assoc, &graph, &asg);
        assert_eq!(eff.interference_overhead(), Load::ZERO);
        assert_eq!(eff.effective(ApId(0)), Load::from_ratio(1, 6));
        assert_eq!(eff.max_effective(), Load::from_ratio(1, 6));
        assert!(eff.saturated_aps().is_empty());
    }

    #[test]
    fn shared_channel_adds_neighbor_load() {
        let (inst, assoc) = two_ap_world();
        let graph = InterferenceGraph::from_edges(2, &[(0, 1)]);
        let asg = assign_channels(&graph, 1, ColoringStrategy::Greedy);
        let eff = EffectiveLoads::compute(&inst, &assoc, &graph, &asg);
        // Each AP sees its own 1/6 plus the neighbor's 1/6.
        assert_eq!(eff.effective(ApId(0)), Load::from_ratio(1, 3));
        assert_eq!(eff.effective(ApId(1)), Load::from_ratio(1, 3));
        assert_eq!(eff.own(ApId(0)), Load::from_ratio(1, 6));
        // Overhead: 1/6 on each side.
        assert_eq!(eff.interference_overhead(), Load::from_ratio(1, 3));
    }

    #[test]
    fn non_interfering_aps_never_add() {
        let (inst, assoc) = two_ap_world();
        let graph = InterferenceGraph::from_edges(2, &[]);
        let asg = assign_channels(&graph, 1, ColoringStrategy::Greedy);
        let eff = EffectiveLoads::compute(&inst, &assoc, &graph, &asg);
        assert_eq!(eff.interference_overhead(), Load::ZERO);
    }

    #[test]
    fn saturation_detected() {
        // Three co-channel APs each loaded 2/5: effective 6/5 > 1.
        let mut b = InstanceBuilder::new();
        b.supported_rates([Kbps::from_mbps(5)]);
        let mut assoc_v = Vec::new();
        let mut aps = Vec::new();
        for _ in 0..3 {
            aps.push(b.add_ap(Load::ONE));
        }
        for (i, &ap) in aps.iter().enumerate() {
            let s = b.add_session(Kbps::from_mbps(2));
            let u = b.add_user(s);
            b.link(ap, u, Kbps::from_mbps(5)).unwrap();
            assoc_v.push((i, ap));
        }
        let inst = b.build().unwrap();
        let assoc = Association::from_vec(assoc_v.iter().map(|&(_, a)| Some(a)).collect());
        let graph = InterferenceGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let asg = assign_channels(&graph, 1, ColoringStrategy::Greedy);
        let eff = EffectiveLoads::compute(&inst, &assoc, &graph, &asg);
        assert_eq!(eff.effective(ApId(0)), Load::from_ratio(6, 5));
        assert_eq!(eff.saturated_aps().len(), 3);
    }
}
