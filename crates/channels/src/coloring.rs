//! Channel assignment as bounded graph coloring.

use mcast_core::ApId;
use serde::{Deserialize, Serialize};

use crate::graph::InterferenceGraph;

/// A radio channel index (`0..n_channels`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Channel(pub u16);

/// How channels are picked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ColoringStrategy {
    /// Vertices in id order, smallest least-conflicting channel each.
    Greedy,
    /// DSATUR: highest color-saturation first (ties: higher degree, then
    /// lower id) — usually needs fewer channels on geometric graphs.
    #[default]
    Dsatur,
}

/// A complete channel assignment under a fixed budget.
///
/// When the budget is smaller than the graph needs, some interfering pairs
/// end up co-channel; the assignment minimizes those greedily and reports
/// them as [`conflicts`](ChannelAssignment::conflicts).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChannelAssignment {
    channels: Vec<Channel>,
    n_channels: u16,
    conflicts: Vec<(ApId, ApId)>,
}

impl ChannelAssignment {
    /// The channel of AP `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn channel(&self, a: ApId) -> Channel {
        self.channels[a.index()]
    }

    /// The per-AP channels, indexable by `ApId::index`.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// The channel budget the assignment was made under.
    pub fn n_channels(&self) -> u16 {
        self.n_channels
    }

    /// Interfering AP pairs that had to share a channel (empty when the
    /// budget sufficed). Pairs are `(lower, higher)` by id, sorted.
    pub fn conflicts(&self) -> &[(ApId, ApId)] {
        &self.conflicts
    }

    /// Number of distinct channels actually used.
    pub fn channels_used(&self) -> usize {
        let mut used: Vec<Channel> = self.channels.clone();
        used.sort_unstable();
        used.dedup();
        used.len()
    }
}

/// Colors the interference graph with at most `n_channels` channels.
///
/// Every AP always receives a channel: when all budget channels conflict,
/// the one with the fewest already-assigned interfering neighbors is
/// chosen (minimizing residual conflicts greedily).
///
/// # Panics
///
/// Panics if `n_channels == 0` and the graph has at least one AP.
pub fn assign_channels(
    graph: &InterferenceGraph,
    n_channels: u16,
    strategy: ColoringStrategy,
) -> ChannelAssignment {
    let n = graph.n_aps();
    if n > 0 {
        assert!(n_channels > 0, "at least one channel required");
    }
    let mut assigned: Vec<Option<Channel>> = vec![None; n];

    let order: Vec<ApId> = match strategy {
        ColoringStrategy::Greedy => (0..n as u32).map(ApId).collect(),
        ColoringStrategy::Dsatur => Vec::new(), // computed incrementally
    };

    let pick = |a: ApId, assigned: &[Option<Channel>]| -> Channel {
        // Count assigned interfering neighbors per channel.
        let mut conflict_count = vec![0u32; n_channels as usize];
        for &b in graph.neighbors(a) {
            if let Some(ch) = assigned[b.index()] {
                conflict_count[ch.0 as usize] += 1;
            }
        }
        let best = (0..n_channels)
            .min_by_key(|&c| (conflict_count[c as usize], c))
            .expect("n_channels > 0");
        Channel(best)
    };

    match strategy {
        ColoringStrategy::Greedy => {
            for a in order {
                assigned[a.index()] = Some(pick(a, &assigned));
            }
        }
        ColoringStrategy::Dsatur => {
            for _ in 0..n {
                // Saturation = distinct channels among assigned neighbors.
                let next = (0..n as u32)
                    .map(ApId)
                    .filter(|a| assigned[a.index()].is_none())
                    .max_by_key(|&a| {
                        let mut sat: Vec<Channel> = graph
                            .neighbors(a)
                            .iter()
                            .filter_map(|b| assigned[b.index()])
                            .collect();
                        sat.sort_unstable();
                        sat.dedup();
                        (sat.len(), graph.degree(a), std::cmp::Reverse(a))
                    })
                    .expect("unassigned vertex exists");
                assigned[next.index()] = Some(pick(next, &assigned));
            }
        }
    }

    let channels: Vec<Channel> = assigned
        .into_iter()
        .map(|c| c.expect("all assigned"))
        .collect();
    let mut conflicts = Vec::new();
    for a in 0..n as u32 {
        for &b in graph.neighbors(ApId(a)) {
            if b.0 > a && channels[a as usize] == channels[b.index()] {
                conflicts.push((ApId(a), b));
            }
        }
    }
    conflicts.sort_unstable();

    ChannelAssignment {
        channels,
        n_channels,
        conflicts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 5-cycle needs 3 colors; both strategies find a conflict-free
    /// assignment with 3 channels.
    #[test]
    fn cycle_needs_three_channels() {
        let g = InterferenceGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        for strategy in [ColoringStrategy::Greedy, ColoringStrategy::Dsatur] {
            let asg = assign_channels(&g, 3, strategy);
            assert!(asg.conflicts().is_empty(), "{strategy:?}");
            assert!(asg.channels_used() <= 3);
        }
        // Two channels cannot color an odd cycle: at least one conflict.
        let asg2 = assign_channels(&g, 2, ColoringStrategy::Dsatur);
        assert!(!asg2.conflicts().is_empty());
    }

    #[test]
    fn one_channel_everything_conflicts() {
        let g = InterferenceGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let asg = assign_channels(&g, 1, ColoringStrategy::Greedy);
        assert_eq!(asg.channels_used(), 1);
        assert_eq!(asg.conflicts().len(), 3);
        assert_eq!(asg.n_channels(), 1);
    }

    #[test]
    fn triangle_with_three_channels_is_clean() {
        let g = InterferenceGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let asg = assign_channels(&g, 3, ColoringStrategy::Dsatur);
        assert!(asg.conflicts().is_empty());
        assert_eq!(asg.channels_used(), 3);
        // All three channels distinct.
        assert_ne!(asg.channel(ApId(0)), asg.channel(ApId(1)));
        assert_ne!(asg.channel(ApId(1)), asg.channel(ApId(2)));
    }

    #[test]
    fn empty_and_isolated_graphs() {
        let g = InterferenceGraph::from_edges(0, &[]);
        let asg = assign_channels(&g, 3, ColoringStrategy::Dsatur);
        assert!(asg.channels().is_empty());

        let g2 = InterferenceGraph::from_edges(4, &[]);
        let asg2 = assign_channels(&g2, 1, ColoringStrategy::Greedy);
        assert!(asg2.conflicts().is_empty());
        assert_eq!(asg2.channels_used(), 1);
    }

    /// DSATUR never uses more channels than greedy needs on a star (hub
    /// colored against all leaves).
    #[test]
    fn star_uses_two_channels() {
        let g = InterferenceGraph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let asg = assign_channels(&g, 12, ColoringStrategy::Dsatur);
        assert!(asg.conflicts().is_empty());
        assert_eq!(asg.channels_used(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        let g = InterferenceGraph::from_edges(1, &[]);
        assign_channels(&g, 0, ColoringStrategy::Greedy);
    }
}
