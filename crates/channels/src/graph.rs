//! The AP interference graph.

use mcast_core::ApId;
use mcast_topology::Point;
use serde::{Deserialize, Serialize};

/// Which AP pairs would interfere if operating on the same channel.
///
/// Built from deployment geometry with a carrier-sense range: two APs
/// interfere when their distance is at most `interference_range_m`
/// (typically ~2× the communication range — an AP's transmissions reach
/// and defer stations well beyond its decodable range).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InterferenceGraph {
    n_aps: usize,
    /// Adjacency lists, sorted ascending; symmetric, irreflexive.
    adj: Vec<Vec<ApId>>,
}

impl InterferenceGraph {
    /// Builds the graph from AP positions.
    ///
    /// # Panics
    ///
    /// Panics if `interference_range_m` is not positive and finite.
    pub fn from_positions(positions: &[Point], interference_range_m: f64) -> InterferenceGraph {
        assert!(
            interference_range_m.is_finite() && interference_range_m > 0.0,
            "interference range must be positive and finite"
        );
        let n = positions.len();
        let mut adj = vec![Vec::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                if positions[i].distance(&positions[j]) <= interference_range_m {
                    adj[i].push(ApId(j as u32));
                    adj[j].push(ApId(i as u32));
                }
            }
        }
        InterferenceGraph { n_aps: n, adj }
    }

    /// Builds a graph from explicit edges (for tests and synthetic cases).
    ///
    /// # Panics
    ///
    /// Panics if an edge references an AP `>= n_aps` or is a self-loop.
    pub fn from_edges(n_aps: usize, edges: &[(u32, u32)]) -> InterferenceGraph {
        let mut adj: Vec<Vec<ApId>> = vec![Vec::new(); n_aps];
        for &(a, b) in edges {
            assert!(a != b, "self-interference is implicit");
            assert!(
                (a as usize) < n_aps && (b as usize) < n_aps,
                "edge endpoint out of range"
            );
            adj[a as usize].push(ApId(b));
            adj[b as usize].push(ApId(a));
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        InterferenceGraph { n_aps, adj }
    }

    /// Number of APs (vertices).
    pub fn n_aps(&self) -> usize {
        self.n_aps
    }

    /// The APs that interfere with `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn neighbors(&self, a: ApId) -> &[ApId] {
        &self.adj[a.index()]
    }

    /// The degree of `a`.
    pub fn degree(&self, a: ApId) -> usize {
        self.adj[a.index()].len()
    }

    /// Maximum degree over all APs (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Total number of undirected edges.
    pub fn n_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// True if `a` and `b` interfere.
    pub fn interferes(&self, a: ApId, b: ApId) -> bool {
        self.adj[a.index()].binary_search(&b).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_construction() {
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(100.0, 0.0),
            Point::new(500.0, 0.0),
        ];
        let g = InterferenceGraph::from_positions(&positions, 150.0);
        assert_eq!(g.n_aps(), 3);
        assert!(g.interferes(ApId(0), ApId(1)));
        assert!(!g.interferes(ApId(0), ApId(2)));
        assert!(!g.interferes(ApId(1), ApId(2)));
        assert_eq!(g.n_edges(), 1);
        assert_eq!(g.max_degree(), 1);
    }

    #[test]
    fn symmetry_and_sorted_adjacency() {
        let g = InterferenceGraph::from_edges(4, &[(2, 0), (0, 1), (2, 1), (2, 0)]);
        assert_eq!(g.neighbors(ApId(2)), &[ApId(0), ApId(1)]);
        assert_eq!(g.neighbors(ApId(0)), &[ApId(1), ApId(2)]);
        assert!(g.interferes(ApId(1), ApId(2)) && g.interferes(ApId(2), ApId(1)));
        assert_eq!(g.n_edges(), 3);
        assert_eq!(g.degree(ApId(3)), 0);
    }

    #[test]
    #[should_panic(expected = "self-interference")]
    fn self_loop_rejected() {
        InterferenceGraph::from_edges(2, &[(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_rejected() {
        InterferenceGraph::from_edges(2, &[(0, 5)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_range_rejected() {
        InterferenceGraph::from_positions(&[Point::new(0.0, 0.0)], 0.0);
    }
}
