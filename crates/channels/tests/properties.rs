//! Property tests for the interference/channel substrate.

use proptest::collection::vec;
use proptest::prelude::*;

use mcast_channels::{assign_channels, ColoringStrategy, InterferenceGraph};
use mcast_core::ApId;
use mcast_topology::Point;

fn random_graph() -> impl Strategy<Value = InterferenceGraph> {
    (2usize..20).prop_flat_map(|n| {
        vec(
            (0u32..(n as u32), 0u32..(n as u32)),
            0..(n * (n - 1) / 2).max(1),
        )
        .prop_map(move |pairs| {
            let edges: Vec<(u32, u32)> = pairs.into_iter().filter(|&(a, b)| a != b).collect();
            InterferenceGraph::from_edges(n, &edges)
        })
    })
}

fn random_positions() -> impl Strategy<Value = Vec<Point>> {
    vec((0.0f64..1000.0, 0.0f64..1000.0), 1..30)
        .prop_map(|ps| ps.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn assignment_covers_every_ap_within_budget(
        graph in random_graph(),
        n_channels in 1u16..13,
    ) {
        for strategy in [ColoringStrategy::Greedy, ColoringStrategy::Dsatur] {
            let asg = assign_channels(&graph, n_channels, strategy);
            prop_assert_eq!(asg.channels().len(), graph.n_aps());
            for &c in asg.channels() {
                prop_assert!(c.0 < n_channels);
            }
        }
    }

    #[test]
    fn conflicts_exactly_the_cochannel_edges(
        graph in random_graph(),
        n_channels in 1u16..13,
    ) {
        let asg = assign_channels(&graph, n_channels, ColoringStrategy::Dsatur);
        // Recompute conflicts from scratch; must match the report.
        let mut expected = Vec::new();
        for a in 0..graph.n_aps() as u32 {
            for &b in graph.neighbors(ApId(a)) {
                if b.0 > a && asg.channel(ApId(a)) == asg.channel(b) {
                    expected.push((ApId(a), b));
                }
            }
        }
        expected.sort();
        prop_assert_eq!(asg.conflicts(), &expected[..]);
    }

    #[test]
    fn enough_channels_means_no_conflicts(graph in random_graph()) {
        // Greedy coloring needs at most maxdeg + 1 colors.
        let budget = (graph.max_degree() + 1) as u16;
        for strategy in [ColoringStrategy::Greedy, ColoringStrategy::Dsatur] {
            let asg = assign_channels(&graph, budget, strategy);
            prop_assert!(
                asg.conflicts().is_empty(),
                "{strategy:?} conflicted with {} channels on max degree {}",
                budget,
                graph.max_degree()
            );
        }
    }

    #[test]
    fn more_channels_never_more_conflicts(graph in random_graph()) {
        let mut previous = usize::MAX;
        for n_channels in 1u16..=8 {
            let asg = assign_channels(&graph, n_channels, ColoringStrategy::Dsatur);
            prop_assert!(
                asg.conflicts().len() <= previous,
                "conflicts increased at {n_channels} channels"
            );
            previous = asg.conflicts().len();
        }
    }

    #[test]
    fn geometric_graph_is_symmetric_and_threshold_exact(
        positions in random_positions(),
        range in 50.0f64..500.0,
    ) {
        let g = InterferenceGraph::from_positions(&positions, range);
        for i in 0..positions.len() {
            for j in 0..positions.len() {
                if i == j { continue; }
                let expect = positions[i].distance(&positions[j]) <= range;
                prop_assert_eq!(g.interferes(ApId(i as u32), ApId(j as u32)), expect);
                prop_assert_eq!(
                    g.interferes(ApId(i as u32), ApId(j as u32)),
                    g.interferes(ApId(j as u32), ApId(i as u32))
                );
            }
        }
    }
}
