//! The discrete-event engine: user agents, AP agents, and the wake-cycle
//! driver.

use std::collections::BTreeMap;

use mcast_core::{
    local_decision_scratch, ApId, ApStateView, Association, DecisionScratch, Instance, Kbps, Load,
    LoadLedger, Policy, SessionId, UserId,
};
use mcast_faults::{FaultEventKind, FaultPlan, FaultTimeline, MessageClass};

use crate::event::{EventQueue, Time};
use crate::messages::{Message, MessageBody, Node};
use crate::report::{AssociationChange, SimReport};

/// When users become active (start scanning and associating).
///
/// The paper's Lemma 1 covers both regimes: an already-populated static
/// network, and "a new user joins the network" — arrivals model the
/// latter at message level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Activation {
    /// Everyone is present from cycle 0 (the default).
    #[default]
    AllAtStart,
    /// `per_cycle` users (in id order) activate at the start of each
    /// cycle; inactive users neither wake nor answer.
    Arrivals {
        /// New users per cycle (minimum 1 to guarantee progress).
        per_cycle: usize,
    },
}

/// How user re-evaluation timers fire within a wake cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeSchedule {
    /// Users wake one after another, separated by more than a full
    /// query-decide-associate exchange: decisions serialize and the
    /// algorithms converge (Lemmas 1–2).
    Staggered,
    /// All users wake at the same instant: everyone queries the same
    /// stale state and decisions race (the paper's Figure 4 oscillation).
    Synchronized,
    /// Synchronized wake-ups, but each user acquires locks on all its
    /// neighboring APs (in ascending `ApId` order) before querying and
    /// committing — the paper's §8 coordination idea. Restores
    /// convergence at the cost of lock traffic and retries.
    SynchronizedLocked,
}

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The decision rule users apply.
    pub policy: Policy,
    /// Wake scheduling model.
    pub schedule: WakeSchedule,
    /// Enforce AP budgets at admission time.
    pub respect_budget: bool,
    /// Maximum wake cycles before giving up on convergence.
    pub max_cycles: usize,
    /// Wake period (cycle length).
    pub period: Time,
    /// One-way control-frame latency base (propagation + MAC).
    pub base_latency: Time,
    /// Control channel bit-rate for serialization delay.
    pub control_rate: Kbps,
    /// Lock retries within a cycle before deferring to the next.
    pub max_lock_retries: usize,
    /// Independent per-frame loss probability (failure injection).
    /// A user whose exchange stalls on a lost frame abandons it at its
    /// next wake (the periodic timer doubles as the retry timeout).
    pub loss_prob: f64,
    /// Seed for the loss process (only consumed when `loss_prob > 0`).
    pub loss_seed: u64,
    /// Lock lease: an AP steals a lock held longer than this, so a lost
    /// `LockRelease` cannot starve other users.
    pub lock_lease: Time,
    /// Consecutive change-free cycles required to declare convergence.
    /// Two suffice without loss; under loss a user's whole exchange can
    /// vanish for a cycle or two, so more patience avoids declaring
    /// convergence while a straggler still wants to move.
    pub quiet_cycles: usize,
    /// User arrival model.
    pub activation: Activation,
    /// Optional departure wave: at the start of the given cycle, the
    /// first `count` users disassociate and go silent for the rest of the
    /// run — freeing their APs' airtime so the remaining users can
    /// re-optimize (the network stays convergent after churn).
    pub departure: Option<Departure>,
    /// Fault plan: AP failure/recovery windows, per-message-class
    /// control-plane faults, and user churn/mobility. The plan is
    /// compiled to a deterministic timeline at construction, so a
    /// `(plan, seeds)` pair always reproduces the same run.
    /// [`FaultPlan::none()`] (the default) makes the run event-for-event
    /// identical to one with no fault layer at all.
    pub faults: FaultPlan,
}

/// A scheduled departure wave (see [`SimConfig::departure`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Departure {
    /// Cycle index at whose start the wave happens.
    pub at_cycle: usize,
    /// How many users (lowest ids first) leave.
    pub count: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            policy: Policy::MinTotalLoad,
            schedule: WakeSchedule::Staggered,
            respect_budget: true,
            max_cycles: 50,
            period: Time::from_millis(1000),
            base_latency: Time(200),
            control_rate: Kbps::from_mbps(6),
            max_lock_retries: 3,
            loss_prob: 0.0,
            loss_seed: 0,
            lock_lease: Time::from_millis(100),
            quiet_cycles: 2,
            activation: Activation::AllAtStart,
            departure: None,
            faults: FaultPlan::none(),
        }
    }
}

/// A user agent's protocol phase.
#[derive(Debug, Clone, PartialEq)]
enum Phase {
    Idle,
    Scanning {
        /// Responders so far, kept sorted by insertion position so no
        /// completion-time sort is needed.
        heard: Vec<ApId>,
        pending: usize,
    },
    Locking {
        heard: Vec<ApId>,
        granted: Vec<ApId>,
        retries: usize,
    },
    Querying {
        responses: BTreeMap<ApId, ResponseData>,
        pending: usize,
        locked: bool,
    },
    AwaitingAssoc {
        locked: bool,
    },
}

#[derive(Debug, Clone, PartialEq)]
struct ResponseData {
    sessions: Vec<(SessionId, Kbps)>,
    load: Load,
    load_without: Option<Load>,
}

/// The user-side knowledge assembled from `LoadResponse`s; implements the
/// same [`ApStateView`] the round-based engine uses, proving the decision
/// needs no global information.
struct QueryView<'a> {
    inst: &'a Instance,
    user: UserId,
    current: Option<ApId>,
    responses: &'a BTreeMap<ApId, ResponseData>,
}

impl ApStateView for QueryView<'_> {
    fn instance(&self) -> &Instance {
        self.inst
    }

    fn reachable_aps(&self, u: UserId) -> Vec<ApId> {
        debug_assert_eq!(u, self.user);
        // Only the APs that answered the load query: under failure
        // injection a silent neighbor may be crashed or out of range, and
        // the decision must not pretend to know its load.
        self.responses.keys().copied().collect()
    }

    fn reachable_aps_into(&self, u: UserId, out: &mut Vec<ApId>) {
        debug_assert_eq!(u, self.user);
        out.clear();
        out.extend(self.responses.keys().copied());
    }

    fn ap_of(&self, u: UserId) -> Option<ApId> {
        debug_assert_eq!(u, self.user, "view only knows the querying user");
        self.current
    }

    fn ap_load(&self, a: ApId) -> Load {
        self.responses
            .get(&a)
            .map(|r| r.load)
            .expect("decision only inspects queried neighbors")
    }

    fn load_if_joined(&self, u: UserId, a: ApId) -> Option<Load> {
        debug_assert_eq!(u, self.user);
        let r = self.responses.get(&a)?;
        let s = self.inst.user_session(u);
        let my_rate = self.inst.multicast_rate_to(a, u)?;
        let stream = self.inst.session_rate(s);
        match r.sessions.iter().find(|(sid, _)| *sid == s) {
            Some(&(_, tx)) => {
                let new_tx = tx.min(my_rate);
                Some(
                    r.load - Load::per_transmission(stream, tx)
                        + Load::per_transmission(stream, new_tx),
                )
            }
            None => Some(r.load + Load::per_transmission(stream, my_rate)),
        }
    }

    fn load_if_left(&self, u: UserId) -> Option<Load> {
        debug_assert_eq!(u, self.user);
        let cur = self.current?;
        self.responses.get(&cur).and_then(|r| r.load_without)
    }
}

/// The fault class a control frame belongs to.
fn class_of(body: &MessageBody) -> MessageClass {
    match body {
        MessageBody::ProbeRequest | MessageBody::ProbeResponse => MessageClass::Probe,
        MessageBody::LoadQuery | MessageBody::LoadResponse { .. } => MessageClass::Query,
        MessageBody::LockRequest
        | MessageBody::LockGrant
        | MessageBody::LockDeny
        | MessageBody::LockRelease => MessageClass::Lock,
        MessageBody::AssocRequest { .. }
        | MessageBody::AssocResponse { .. }
        | MessageBody::Disassoc => MessageClass::Association,
    }
}

/// Events the engine processes.
#[derive(Debug)]
enum SimEvent {
    Wake(UserId),
    Deliver(Message),
    /// A compiled fault-plan event falls due.
    Fault(FaultEventKind),
    /// Loss-recovery timer for an exchange phase; `epoch` guards against
    /// firing on a later exchange. Only scheduled when a fault plan is
    /// active.
    Timeout {
        user: UserId,
        epoch: u64,
    },
}

/// The discrete-event simulator.
///
/// # Example
///
/// ```
/// use mcast_core::examples_paper::figure1_instance;
/// use mcast_core::Kbps;
/// use mcast_sim::{SimConfig, Simulator};
///
/// let inst = figure1_instance(Kbps::from_mbps(1));
/// let report = Simulator::new(&inst, SimConfig::default()).run();
/// assert!(report.converged);
/// assert_eq!(report.association.satisfied_count(), 5);
/// ```
pub struct Simulator<'a> {
    inst: &'a Instance,
    config: SimConfig,
    queue: EventQueue<SimEvent>,
    now: Time,
    ledger: LoadLedger<'a>,
    phases: Vec<Phase>,
    /// Per AP: the lock holder and when the lock was granted.
    locks: Vec<Option<(UserId, Time)>>,
    lock_retries: Vec<usize>,
    changes: Vec<AssociationChange>,
    message_counts: BTreeMap<&'static str, u64>,
    cycle_changes: usize,
    loss_rng: rand_chacha::ChaCha8Rng,
    frames_lost: u64,
    first_wake: Vec<Option<Time>>,
    first_joined: Vec<Option<Time>>,
    /// Compiled fault schedule; consumed cycle by cycle.
    fault_timeline: FaultTimeline,
    /// Dedicated stream for per-frame fault rolls (drop/dup/jitter), so
    /// fault sampling never perturbs the `loss_prob` process.
    fault_rng: rand_chacha::ChaCha8Rng,
    /// True when a fault plan is active: exchange timeouts are armed.
    timeouts_enabled: bool,
    /// True when any failure injection is on (`loss_prob` or a plan):
    /// gates the stuck-phase recovery at wake.
    faulty: bool,
    /// Worst per-frame jitter any class can add (sizes the timeouts).
    max_jitter_us: u64,
    /// Per AP: currently crashed.
    ap_down: Vec<bool>,
    /// Per user: departed for good (churn).
    user_gone: Vec<bool>,
    /// Per (user, AP) candidate link: still in radio range. All true
    /// until a mobility jump re-rolls a user's row.
    link_ok: Vec<bool>,
    /// Per user: bumped on every exchange-phase entry; stale timeouts
    /// carry an older value and are ignored.
    phase_epochs: Vec<u64>,
    /// Shared decision-rule buffers, reused across every user decision.
    scratch: DecisionScratch,
    fault_epochs: Vec<Time>,
    fault_events: u64,
    abandoned_exchanges: u64,
    assoc_denied: u64,
    peak_max_load: Load,
    initial_satisfied: usize,
}

impl<'a> Simulator<'a> {
    /// Builds a simulator over `inst`, starting with no associations.
    pub fn new(inst: &'a Instance, config: SimConfig) -> Simulator<'a> {
        Simulator::with_initial(inst, config, Association::empty(inst.n_users()))
    }

    /// Builds a simulator starting from an existing association.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is structurally invalid for `inst`.
    pub fn with_initial(
        inst: &'a Instance,
        config: SimConfig,
        initial: Association,
    ) -> Simulator<'a> {
        use rand::SeedableRng;
        let loss_rng = rand_chacha::ChaCha8Rng::seed_from_u64(config.loss_seed);
        // A distinct stream for the fault plan's per-frame rolls; the
        // constant keeps it apart from the plan's compile-time streams.
        let fault_rng = rand_chacha::ChaCha8Rng::seed_from_u64(config.faults.seed ^ 0x51_7E_AF);
        let horizon_us = config.max_cycles as u64 * config.period.0;
        let fault_timeline = config
            .faults
            .compile(inst.n_aps(), inst.n_users(), horizon_us);
        let timeouts_enabled = !config.faults.is_none();
        let faulty = config.loss_prob > 0.0 || timeouts_enabled;
        let max_jitter_us = MessageClass::ALL
            .iter()
            .map(|&c| config.faults.faults_for(c).jitter.max_us)
            .max()
            .unwrap_or(0);
        let initial_satisfied = initial.satisfied_count();
        let ledger = LoadLedger::new(inst, initial);
        let peak_max_load = ledger.max_load();
        Simulator {
            inst,
            config,
            queue: EventQueue::new(),
            now: Time::ZERO,
            ledger,
            phases: vec![Phase::Idle; inst.n_users()],
            locks: vec![None; inst.n_aps()],
            lock_retries: vec![0; inst.n_users()],
            changes: Vec::new(),
            message_counts: BTreeMap::new(),
            cycle_changes: 0,
            loss_rng,
            frames_lost: 0,
            first_wake: vec![None; inst.n_users()],
            first_joined: vec![None; inst.n_users()],
            fault_timeline,
            fault_rng,
            timeouts_enabled,
            faulty,
            max_jitter_us,
            ap_down: vec![false; inst.n_aps()],
            user_gone: vec![false; inst.n_users()],
            link_ok: vec![true; inst.n_users() * inst.n_aps()],
            phase_epochs: vec![0; inst.n_users()],
            scratch: DecisionScratch::default(),
            fault_epochs: Vec::new(),
            fault_events: 0,
            abandoned_exchanges: 0,
            assoc_denied: 0,
            peak_max_load,
            initial_satisfied,
        }
    }

    /// True if the candidate link `u → a` is currently in radio range
    /// (mobility jumps re-roll a user's links).
    fn link_up(&self, u: UserId, a: ApId) -> bool {
        self.link_ok[u.index() * self.inst.n_aps() + a.index()]
    }

    /// Sends a `LockRelease` to every in-range candidate AP of `u` —
    /// covering any lock it might hold (releases to non-holders are
    /// no-ops on the AP side).
    fn release_all_locks(&mut self, u: UserId) {
        let inst = self.inst;
        for &(a, _) in inst.candidate_aps(u) {
            if self.link_up(u, a) {
                self.send(Node::User(u), Node::Ap(a), MessageBody::LockRelease);
            }
        }
    }

    /// Records the ledger's current max load into the running peak.
    fn note_load_peak(&mut self) {
        let ml = self.ledger.max_load();
        if ml > self.peak_max_load {
            self.peak_max_load = ml;
        }
    }

    /// Enters a new exchange phase for `u`: bumps the phase epoch and,
    /// when a fault plan is active, arms a loss-recovery timeout sized to
    /// `steps` sequential round trips (plus worst-case injected jitter).
    fn arm_timeout(&mut self, u: UserId, steps: u64) {
        self.phase_epochs[u.index()] += 1;
        if self.timeouts_enabled {
            let rt = self.latency_for(&MessageBody::ProbeRequest).0;
            let at = self.now + Time(rt * 8 * steps.max(1) + 2 * self.max_jitter_us);
            let epoch = self.phase_epochs[u.index()];
            self.queue.push(at, SimEvent::Timeout { user: u, epoch });
        }
    }

    fn latency_for(&self, body: &MessageBody) -> Time {
        let bits = (body.size_bytes() * 8) as u64;
        // Serialization at the control rate (kbps → bits/µs = kbps/1000).
        let ser_us = bits * 1000 / u64::from(self.config.control_rate.0);
        self.config.base_latency + Time(ser_us.max(1))
    }

    fn send(&mut self, from: Node, to: Node, body: MessageBody) {
        let name = match &body {
            MessageBody::ProbeRequest => "probe_req",
            MessageBody::ProbeResponse => "probe_resp",
            MessageBody::LoadQuery => "load_query",
            MessageBody::LoadResponse { .. } => "load_resp",
            MessageBody::AssocRequest { .. } => "assoc_req",
            MessageBody::AssocResponse { .. } => "assoc_resp",
            MessageBody::Disassoc => "disassoc",
            MessageBody::LockRequest => "lock_req",
            MessageBody::LockGrant => "lock_grant",
            MessageBody::LockDeny => "lock_deny",
            MessageBody::LockRelease => "lock_release",
        };
        *self.message_counts.entry(name).or_insert(0) += 1;
        if self.config.loss_prob > 0.0 {
            use rand::Rng;
            if self.loss_rng.gen::<f64>() < self.config.loss_prob {
                self.frames_lost += 1;
                return; // frame lost in the air
            }
        }
        let mut at = self.now + self.latency_for(&body);
        let faults = *self.config.faults.faults_for(class_of(&body));
        if !faults.is_none() {
            use rand::Rng;
            if faults.drop_prob > 0.0 && self.fault_rng.gen::<f64>() < faults.drop_prob {
                self.frames_lost += 1;
                return; // dropped by the fault plan
            }
            if !faults.jitter.is_none() {
                at = at
                    + Time(
                        self.fault_rng
                            .gen_range(faults.jitter.min_us..=faults.jitter.max_us),
                    );
            }
            if faults.dup_prob > 0.0 && self.fault_rng.gen::<f64>() < faults.dup_prob {
                // A retransmit whose ACK was lost: the same frame arrives
                // again one serialization later.
                let dup_at = at + self.latency_for(&body);
                self.queue.push(
                    dup_at,
                    SimEvent::Deliver(Message {
                        from,
                        to,
                        body: body.clone(),
                    }),
                );
            }
        }
        self.queue
            .push(at, SimEvent::Deliver(Message { from, to, body }));
    }

    /// Runs wake cycles until convergence (`quiet_cycles` consecutive
    /// change-free cycles, counted only once every user is active) or
    /// `max_cycles`, and returns the report.
    pub fn run(mut self) -> SimReport {
        let mut quiet_cycles = 0;
        let mut cycles = 0;
        let mut active = match self.config.activation {
            Activation::AllAtStart => self.inst.n_users(),
            Activation::Arrivals { .. } => 0,
        };
        let mut departed = 0usize;
        for cycle in 0..self.config.max_cycles {
            cycles = cycle + 1;
            if let Activation::Arrivals { per_cycle } = self.config.activation {
                active = (active + per_cycle.max(1)).min(self.inst.n_users());
            }
            if let Some(dep) = self.config.departure {
                if cycle == dep.at_cycle && departed == 0 {
                    departed = dep.count.min(self.inst.n_users());
                    for u in self.inst.users().take(departed) {
                        if self.ledger.ap_of(u).is_some() {
                            let from = self.ledger.ap_of(u);
                            self.ledger.leave(u);
                            self.changes.push(AssociationChange {
                                at: self.now,
                                user: u,
                                from,
                                to: None,
                            });
                        }
                        self.phases[u.index()] = Phase::Idle;
                    }
                }
            }
            let cycle_start = Time(self.now.0.max(cycle as u64 * self.config.period.0));
            // Release the fault events falling inside this cycle's window
            // into the queue (late ones — the clock drifted past them —
            // apply at the window start).
            let window_end = cycle_start.0 + self.config.period.0;
            while let Some(at_us) = self.fault_timeline.peek_at_us() {
                if at_us >= window_end {
                    break;
                }
                let ev = self.fault_timeline.pop_any().expect("peeked");
                self.queue
                    .push(Time(ev.at_us.max(cycle_start.0)), SimEvent::Fault(ev.kind));
            }
            self.schedule_wakes(cycle_start, active, departed);
            self.cycle_changes = 0;
            self.drain();
            let departure_pending = self
                .config
                .departure
                .is_some_and(|d| d.count > 0 && departed == 0);
            // Quiet cycles only count once every scheduled fault inside
            // the horizon has been applied — a run is not "converged"
            // while an outage is still coming.
            let horizon_us = self.config.max_cycles as u64 * self.config.period.0;
            let faults_pending = self
                .fault_timeline
                .peek_at_us()
                .is_some_and(|t| t < horizon_us);
            if self.cycle_changes == 0
                && active == self.inst.n_users()
                && !departure_pending
                && !faults_pending
            {
                quiet_cycles += 1;
                if quiet_cycles >= self.config.quiet_cycles {
                    break;
                }
            } else {
                quiet_cycles = 0;
            }
        }
        let converged = quiet_cycles >= self.config.quiet_cycles;
        SimReport {
            association: self.ledger.association().clone(),
            cycles,
            converged,
            oscillating: !converged && self.changes.len() >= self.inst.n_users(),
            changes: self.changes,
            message_counts: self.message_counts,
            frames_lost: self.frames_lost,
            join_latencies: self
                .first_wake
                .iter()
                .zip(&self.first_joined)
                .map(|(w, j)| match (w, j) {
                    (Some(w), Some(j)) if j.0 >= w.0 => Some(Time(j.0 - w.0)),
                    _ => None,
                })
                .collect(),
            finished_at: self.now,
            initial_satisfied: self.initial_satisfied,
            fault_events: self.fault_events,
            fault_epochs: self.fault_epochs,
            abandoned_exchanges: self.abandoned_exchanges,
            assoc_denied: self.assoc_denied,
            peak_max_load: self.peak_max_load,
        }
    }

    fn schedule_wakes(&mut self, start: Time, active: usize, departed: usize) {
        // A full exchange takes ~6 round trips; the stagger gap must
        // exceed it so decisions serialize.
        let gap = Time(self.latency_for(&MessageBody::ProbeRequest).0 * 40);
        for u in self.inst.users().take(active).skip(departed) {
            if self.user_gone[u.index()] {
                continue;
            }
            let at = match self.config.schedule {
                WakeSchedule::Staggered => Time(start.0 + u.0 as u64 * gap.0),
                WakeSchedule::Synchronized | WakeSchedule::SynchronizedLocked => start,
            };
            self.queue.push(at, SimEvent::Wake(u));
        }
    }

    fn drain(&mut self) {
        while let Some((t, ev)) = self.queue.pop() {
            self.now = t;
            match ev {
                SimEvent::Wake(u) => self.on_wake(u),
                SimEvent::Deliver(m) => self.on_deliver(m),
                SimEvent::Fault(kind) => self.on_fault(kind),
                SimEvent::Timeout { user, epoch } => self.on_timeout(user, epoch),
            }
        }
    }

    /// Applies a fault-plan event at its due time.
    fn on_fault(&mut self, kind: FaultEventKind) {
        self.fault_events += 1;
        // Simultaneous events (a coordinated outage) share one epoch.
        if self.fault_epochs.last() != Some(&self.now) {
            self.fault_epochs.push(self.now);
        }
        match kind {
            FaultEventKind::ApDown(a) => self.apply_ap_down(a),
            FaultEventKind::ApUp(a) => {
                // Back with empty volatile state; users rediscover it at
                // their next wake (it answers probes again).
                self.ap_down[a.index()] = false;
            }
            FaultEventKind::UserDepart(u) => self.apply_user_depart(u),
            FaultEventKind::UserJump { user, seed } => self.apply_user_jump(user, seed),
        }
        // The fault paths must never corrupt the load bookkeeping.
        #[cfg(debug_assertions)]
        self.ledger.assert_consistent();
    }

    fn apply_ap_down(&mut self, a: ApId) {
        if self.ap_down[a.index()] {
            return;
        }
        self.ap_down[a.index()] = true;
        self.locks[a.index()] = None; // volatile lock state dies with the AP
        let evicted = self.ledger.evict_ap(a);
        let gap = Time(self.latency_for(&MessageBody::ProbeRequest).0 * 40);
        // Beacon-loss detection: a station notices within a fraction of
        // its wake period and restarts its wake cycle.
        let detect = Time(self.config.period.0 / 8 + 1);
        for (i, u) in evicted.into_iter().enumerate() {
            self.changes.push(AssociationChange {
                at: self.now,
                user: u,
                from: Some(a),
                to: None,
            });
            self.cycle_changes += 1;
            self.phases[u.index()] = Phase::Idle;
            if self.user_gone[u.index()] {
                continue;
            }
            let at = match self.config.schedule {
                // Staggered recovery wakes keep the serialization the
                // schedule promises; synchronized modes stampede by design.
                WakeSchedule::Staggered => Time(self.now.0 + detect.0 + i as u64 * gap.0),
                _ => self.now + detect,
            };
            self.queue.push(at, SimEvent::Wake(u));
        }
    }

    fn apply_user_depart(&mut self, u: UserId) {
        if self.user_gone[u.index()] {
            return;
        }
        self.user_gone[u.index()] = true;
        let from = self.ledger.ap_of(u);
        if from.is_some() {
            self.ledger.leave(u);
            self.changes.push(AssociationChange {
                at: self.now,
                user: u,
                from,
                to: None,
            });
            self.cycle_changes += 1;
        }
        // Any locks it held are reclaimed by the AP-side lease.
        self.phases[u.index()] = Phase::Idle;
    }

    fn apply_user_jump(&mut self, u: UserId, seed: u64) {
        if self.user_gone[u.index()] {
            return;
        }
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let keep = self.config.faults.link_keep_prob();
        let inst = self.inst;
        for &(a, _) in inst.candidate_aps(u) {
            let idx = u.index() * inst.n_aps() + a.index();
            self.link_ok[idx] = rng.gen::<f64>() < keep;
        }
        // The move tears down whatever exchange was in flight (the radio
        // environment it was measuring no longer exists).
        if self.phases[u.index()] != Phase::Idle {
            let holds_locks = matches!(self.phases[u.index()], Phase::Locking { .. })
                || matches!(self.phases[u.index()], Phase::Querying { locked: true, .. })
                || matches!(
                    self.phases[u.index()],
                    Phase::AwaitingAssoc { locked: true }
                );
            if holds_locks {
                self.release_all_locks(u);
            }
            self.abandoned_exchanges += 1;
            self.phases[u.index()] = Phase::Idle;
        }
        if let Some(cur) = self.ledger.ap_of(u) {
            if !self.link_up(u, cur) {
                // Out of range of the old AP: the association is gone.
                self.ledger.leave(u);
                self.changes.push(AssociationChange {
                    at: self.now,
                    user: u,
                    from: Some(cur),
                    to: None,
                });
                self.cycle_changes += 1;
                let detect = Time(self.config.period.0 / 8 + 1);
                self.queue.push(self.now + detect, SimEvent::Wake(u));
            }
        }
    }

    /// A phase timeout fires: if the exchange it was armed for is still
    /// in flight, recover — proceed with partial information where that
    /// is sound (scan results), abandon otherwise.
    fn on_timeout(&mut self, u: UserId, epoch: u64) {
        if self.user_gone[u.index()] || self.phase_epochs[u.index()] != epoch {
            return;
        }
        let phase = std::mem::replace(&mut self.phases[u.index()], Phase::Idle);
        match phase {
            Phase::Idle => {}
            Phase::Scanning { heard, .. } if !heard.is_empty() => {
                // Some APs never answered (down, or the frame vanished):
                // proceed with the ones that did (already sorted).
                match self.config.schedule {
                    WakeSchedule::SynchronizedLocked => {
                        let retries = self.lock_retries[u.index()];
                        self.start_locking(u, heard, retries);
                    }
                    _ => self.start_querying(u, heard, false),
                }
            }
            Phase::Scanning { .. } => {
                self.abandoned_exchanges += 1; // nobody answered; retry next wake
            }
            Phase::Locking { granted, .. } => {
                self.abandoned_exchanges += 1;
                for a in granted {
                    self.send(Node::User(u), Node::Ap(a), MessageBody::LockRelease);
                }
            }
            Phase::Querying { locked, .. } | Phase::AwaitingAssoc { locked } => {
                self.abandoned_exchanges += 1;
                if locked {
                    self.release_all_locks(u);
                }
            }
        }
    }

    fn on_wake(&mut self, u: UserId) {
        if self.user_gone[u.index()] {
            return;
        }
        if self.first_wake[u.index()].is_none() {
            self.first_wake[u.index()] = Some(self.now);
        }
        if self.phases[u.index()] != Phase::Idle {
            if self.faulty {
                // The periodic timer doubles as the loss-recovery timeout:
                // abandon the stalled exchange and start over. Any locks
                // believed held are released explicitly (a lost release is
                // further covered by the AP-side lease).
                if matches!(self.phases[u.index()], Phase::Locking { .. })
                    || matches!(self.phases[u.index()], Phase::Querying { locked: true, .. })
                {
                    self.release_all_locks(u);
                }
                self.abandoned_exchanges += 1;
                self.phases[u.index()] = Phase::Idle;
            } else {
                return; // still mid-exchange from a previous wake
            }
        }
        // Active scan: probe every in-range candidate AP (its current
        // neighbors); crashed APs are still probed — the user cannot know
        // they are down, they just never answer.
        let inst = self.inst;
        let mut pending = 0usize;
        for &(a, _) in inst.candidate_aps(u) {
            if self.link_up(u, a) {
                self.send(Node::User(u), Node::Ap(a), MessageBody::ProbeRequest);
                pending += 1;
            }
        }
        if pending == 0 {
            return;
        }
        self.arm_timeout(u, 1);
        self.phases[u.index()] = Phase::Scanning {
            pending,
            heard: Vec::new(),
        };
    }

    fn on_deliver(&mut self, m: Message) {
        // A crashed AP processes nothing (frames it sent before crashing
        // still arrive); a departed user's frames die with it.
        match m.to {
            Node::Ap(a) if self.ap_down[a.index()] => return,
            Node::User(u) if self.user_gone[u.index()] => return,
            _ => {}
        }
        if let Node::User(u) = m.from {
            if self.user_gone[u.index()] {
                return;
            }
        }
        match (m.to, m.body) {
            // ---- AP side ----
            (Node::Ap(a), MessageBody::ProbeRequest) => {
                let Node::User(u) = m.from else { return };
                self.send(Node::Ap(a), Node::User(u), MessageBody::ProbeResponse);
            }
            (Node::Ap(a), MessageBody::LoadQuery) => {
                let Node::User(u) = m.from else { return };
                let sessions: Vec<(SessionId, Kbps)> = self
                    .inst
                    .sessions()
                    .filter_map(|s| self.ledger.ap_session_rate(a, s).map(|r| (s, r)))
                    .collect();
                let load = self.ledger.ap_load(a);
                let load_without = if self.ledger.ap_of(u) == Some(a) {
                    self.ledger.load_if_left(u)
                } else {
                    None
                };
                self.send(
                    Node::Ap(a),
                    Node::User(u),
                    MessageBody::LoadResponse {
                        sessions,
                        load,
                        load_without,
                    },
                );
            }
            (Node::Ap(a), MessageBody::AssocRequest { leaving }) => {
                let Node::User(u) = m.from else { return };
                // A request whose `leaving` snapshot no longer matches the
                // ledger is stale — a duplicate of an already-granted
                // request, or overtaken by a forced disassociation. The AP
                // denies it rather than corrupt the ledger; never happens
                // without failure injection.
                let fresh = self.ledger.ap_of(u) == leaving;
                debug_assert!(fresh || self.faulty, "stale AssocRequest without faults");
                let admitted = fresh
                    && self.link_up(u, a)
                    && match self.ledger.load_if_joined(u, a) {
                        Some(load) => !self.config.respect_budget || load <= self.inst.budget(a),
                        None => false,
                    };
                if admitted {
                    let from_ap = self.ledger.ap_of(u);
                    if let Some(old) = from_ap {
                        self.send(Node::User(u), Node::Ap(old), MessageBody::Disassoc);
                    }
                    self.ledger.reassociate(u, a);
                    self.note_load_peak();
                    if self.first_joined[u.index()].is_none() {
                        self.first_joined[u.index()] = Some(self.now);
                    }
                    self.changes.push(AssociationChange {
                        at: self.now,
                        user: u,
                        from: from_ap,
                        to: Some(a),
                    });
                    self.cycle_changes += 1;
                } else {
                    self.assoc_denied += 1;
                }
                self.send(
                    Node::Ap(a),
                    Node::User(u),
                    MessageBody::AssocResponse { granted: admitted },
                );
            }
            (Node::Ap(_), MessageBody::Disassoc) => {
                // Membership bookkeeping already applied via the ledger at
                // grant time; the frame models the over-the-air traffic.
            }
            (Node::Ap(a), MessageBody::LockRequest) => {
                let Node::User(u) = m.from else { return };
                let grantable = match self.locks[a.index()] {
                    None => true,
                    Some((holder, _)) if holder == u => true,
                    // Lease expiry: a holder that never released (lost
                    // frame, crashed exchange) cannot starve others.
                    Some((_, since)) => self.now.0 - since.0 > self.config.lock_lease.0,
                };
                let body = if grantable {
                    self.locks[a.index()] = Some((u, self.now));
                    MessageBody::LockGrant
                } else {
                    MessageBody::LockDeny
                };
                self.send(Node::Ap(a), Node::User(u), body);
            }
            (Node::Ap(a), MessageBody::LockRelease) => {
                let Node::User(u) = m.from else { return };
                if matches!(self.locks[a.index()], Some((holder, _)) if holder == u) {
                    self.locks[a.index()] = None;
                }
            }

            // ---- User side ----
            (Node::User(u), MessageBody::ProbeResponse) => {
                let Node::Ap(a) = m.from else { return };
                let Phase::Scanning { heard, pending } = &mut self.phases[u.index()] else {
                    return;
                };
                // Sorted insertion keeps `heard` ordered as it fills, so
                // completion (here or at the recovery timeout) never sorts.
                match heard.binary_search(&a) {
                    Ok(_) => return, // duplicated response
                    Err(i) => heard.insert(i, a),
                }
                *pending -= 1;
                if *pending == 0 {
                    let heard = std::mem::take(heard);
                    match self.config.schedule {
                        WakeSchedule::SynchronizedLocked => {
                            let retries = self.lock_retries[u.index()];
                            self.start_locking(u, heard, retries);
                        }
                        _ => self.start_querying(u, heard, false),
                    }
                }
            }
            (Node::User(u), MessageBody::LockGrant) => {
                let Phase::Locking {
                    heard,
                    granted,
                    retries,
                } = &mut self.phases[u.index()]
                else {
                    return;
                };
                let Node::Ap(a) = m.from else { return };
                if granted.contains(&a) {
                    return; // duplicated grant
                }
                granted.push(a);
                // Ordered acquisition: request the next AP, or proceed.
                let next = heard.iter().find(|ap| !granted.contains(ap)).copied();
                match next {
                    Some(next_ap) => {
                        self.send(Node::User(u), Node::Ap(next_ap), MessageBody::LockRequest)
                    }
                    None => {
                        // The phase is replaced by `start_querying`, so the
                        // list can be moved out rather than cloned.
                        let heard = std::mem::take(heard);
                        let _ = retries;
                        self.lock_retries[u.index()] = 0;
                        self.start_querying(u, heard, true);
                    }
                }
            }
            (Node::User(u), MessageBody::LockDeny) => {
                let Phase::Locking {
                    granted, retries, ..
                } = &mut self.phases[u.index()]
                else {
                    return;
                };
                let granted = std::mem::take(granted);
                let retries = *retries;
                for a in granted {
                    self.send(Node::User(u), Node::Ap(a), MessageBody::LockRelease);
                }
                self.phases[u.index()] = Phase::Idle;
                if retries < self.config.max_lock_retries {
                    // Deterministic, collision-breaking backoff: the retry
                    // wake rescans and re-locks with the bumped counter.
                    self.lock_retries[u.index()] = retries + 1;
                    let backoff = Time(
                        self.config.base_latency.0 * 50 * (retries as u64 + 1 + u.0 as u64 % 7),
                    );
                    let at = self.now + backoff;
                    self.queue.push(at, SimEvent::Wake(u));
                } else {
                    self.lock_retries[u.index()] = 0; // defer to next cycle
                }
            }
            (
                Node::User(u),
                MessageBody::LoadResponse {
                    sessions,
                    load,
                    load_without,
                },
            ) => {
                let Phase::Querying {
                    responses,
                    pending,
                    locked,
                } = &mut self.phases[u.index()]
                else {
                    return;
                };
                let Node::Ap(a) = m.from else { return };
                let dup = responses
                    .insert(
                        a,
                        ResponseData {
                            sessions,
                            load,
                            load_without,
                        },
                    )
                    .is_some();
                if dup {
                    return; // duplicated response: don't double-count
                }
                *pending -= 1;
                if *pending > 0 {
                    return;
                }
                let locked = *locked;
                let responses = std::mem::take(responses);
                self.decide_and_act(u, responses, locked);
            }
            (Node::User(u), MessageBody::AssocResponse { granted: _ }) => {
                let Phase::AwaitingAssoc { locked } = self.phases[u.index()] else {
                    return;
                };
                if locked {
                    self.release_all_locks(u);
                }
                self.phases[u.index()] = Phase::Idle;
            }
            _ => {}
        }
    }

    fn start_locking(&mut self, u: UserId, heard: Vec<ApId>, retries: usize) {
        let first = heard[0];
        // The lock chain is sequential over `heard`, so the timeout
        // scales with its length.
        self.arm_timeout(u, heard.len() as u64);
        self.phases[u.index()] = Phase::Locking {
            heard,
            granted: Vec::new(),
            retries,
        };
        self.send(Node::User(u), Node::Ap(first), MessageBody::LockRequest);
    }

    fn start_querying(&mut self, u: UserId, heard: Vec<ApId>, locked: bool) {
        let pending = heard.len();
        self.arm_timeout(u, 1);
        for &a in &heard {
            self.send(Node::User(u), Node::Ap(a), MessageBody::LoadQuery);
        }
        self.phases[u.index()] = Phase::Querying {
            responses: BTreeMap::new(),
            pending,
            locked,
        };
    }

    fn decide_and_act(&mut self, u: UserId, responses: BTreeMap<ApId, ResponseData>, locked: bool) {
        let current = self.ledger.ap_of(u);
        // Without its own AP's answer there is no stay-baseline to
        // compare moves against — stay put and retry next wake. (Never
        // happens without failure injection: every queried AP answers.)
        if current.is_some_and(|cur| !responses.contains_key(&cur)) {
            self.abandoned_exchanges += 1;
            if locked {
                self.release_all_locks(u);
            }
            self.phases[u.index()] = Phase::Idle;
            return;
        }
        let view = QueryView {
            inst: self.inst,
            user: u,
            current,
            responses: &responses,
        };
        let decision = local_decision_scratch(
            &view,
            u,
            self.config.policy,
            self.config.respect_budget,
            Load::ZERO,
            &mut self.scratch,
        );
        match decision {
            Some(a) => {
                let leaving = current;
                self.arm_timeout(u, 1);
                self.phases[u.index()] = Phase::AwaitingAssoc { locked };
                self.send(
                    Node::User(u),
                    Node::Ap(a),
                    MessageBody::AssocRequest { leaving },
                );
            }
            None => {
                if locked {
                    self.release_all_locks(u);
                }
                self.phases[u.index()] = Phase::Idle;
            }
        }
    }
}
