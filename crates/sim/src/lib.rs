//! Discrete-event simulation of the WLAN multicast association protocols.
//!
//! The paper evaluates in ns-2; this crate is the reproduction's
//! packet-free substitute (see DESIGN.md for why the substitution preserves
//! the evaluated behaviour). It realizes the *message pattern* of the
//! distributed algorithms —
//!
//! 1. a user wakes (periodic re-evaluation timer),
//! 2. actively scans (probe request / probe response, as in the paper's
//!    cited SyncScan-style active scanning),
//! 3. queries each neighboring AP for its multicast sessions, their rates
//!    and its load (`LoadQuery` / `LoadResponse`),
//! 4. applies the local decision rule (`mcast_core::local_decision`),
//! 5. (optionally) acquires per-AP locks — the paper's §8 future-work
//!    coordination mechanism — and
//! 6. sends an association request; the AP admits or rejects under its
//!    budget at *grant* time.
//!
//! Because queries and association requests are separated by propagation
//! and processing latency, simultaneous wake-ups act on stale state —
//! reproducing the paper's Figure 4 oscillation at message level — while
//! staggered wake-ups serialize decisions and converge (Lemmas 1–2), and
//! the lock protocol restores convergence even for synchronized wake-ups.
//!
//! The simulator also *measures* multicast airtime per AP over a window by
//! replaying each served session's packet schedule, validating that
//! Definition 1's analytic load equals observed airtime.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod airtime;
mod engine;
mod event;
mod messages;
mod partitioned;
mod report;

pub use airtime::{measure_airtime, AirtimeReport};
pub use engine::{Activation, Departure, SimConfig, Simulator, WakeSchedule};
pub use event::Time;
pub use messages::{Message, MessageBody};
pub use partitioned::{evict_downed, rebalance_partitioned};
pub use report::SimReport;
