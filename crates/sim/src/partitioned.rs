//! Post-recovery rebalance sweeps on the partitioned parallel engine.
//!
//! After an AP failure (or a mobility epoch), the surviving association is
//! typically far from the load-balanced fixed point: every member of a
//! downed AP is unsatisfied and must re-associate, and the serving load
//! concentrates on the neighbors that absorb them. The controller repairs
//! this with a *rebalance sweep* — a bounded run of the distributed
//! engine from the surviving association. On large deployments that sweep
//! is the dominant recovery cost, so it runs on the partitioned driver
//! ([`mcast_core::run_distributed_partitioned`]), which produces the
//! *same* decision sequence and outcome as the single-threaded engine for
//! any worker count (see `DESIGN.md` §12).

use mcast_core::{
    run_distributed_partitioned, ApId, Association, DistributedConfig, DistributedOutcome,
    Instance, Partition,
};

/// Returns `assoc` with every user of a downed AP evicted (unsatisfied).
///
/// Users associated to APs not in `down` are untouched; the result is a
/// valid starting association for a rebalance sweep where the downed APs
/// have been removed from the instance (or their links pruned).
pub fn evict_downed(assoc: &Association, down: &[ApId]) -> Association {
    Association::from_vec(
        assoc
            .iter()
            .map(|ap| ap.filter(|a| !down.contains(a)))
            .collect(),
    )
}

/// Runs a partitioned rebalance sweep from `survivors`.
///
/// `survivors` is first restricted to in-coverage assignments
/// ([`Association::restricted_to`]) so that stale assignments — users who
/// moved out of range, or whose AP was removed from `inst` — become
/// unsatisfied rather than panicking the engine. The sweep itself is
/// deterministic and identical to `mcast_core::run_distributed` with the
/// same `config`, independent of `part`'s tile count.
pub fn rebalance_partitioned(
    inst: &Instance,
    config: &DistributedConfig,
    survivors: &Association,
    part: &Partition,
) -> DistributedOutcome {
    run_distributed_partitioned(inst, config, survivors.restricted_to(inst), part)
        .expect("restricted association is in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_core::{
        examples_paper, run_distributed, ExecutionMode, Kbps, Partition, Policy, UserId,
    };

    #[test]
    fn evict_unassigns_only_downed_members() {
        let assoc = Association::from_vec(vec![
            Some(ApId(0)),
            Some(ApId(1)),
            None,
            Some(ApId(0)),
            Some(ApId(2)),
        ]);
        let evicted = evict_downed(&assoc, &[ApId(0)]);
        assert_eq!(
            evicted.to_vec(),
            vec![None, Some(ApId(1)), None, None, Some(ApId(2))]
        );
        // No downed APs: identity.
        assert_eq!(evict_downed(&assoc, &[]), assoc);
    }

    /// The partitioned sweep after an eviction matches the single-threaded
    /// engine exactly, for every worker count.
    #[test]
    fn rebalance_matches_single_thread_after_failure() {
        let inst = examples_paper::figure1_instance(Kbps::from_mbps(1));
        let config = DistributedConfig {
            policy: Policy::MinMaxVector,
            mode: ExecutionMode::Serial,
            ..DistributedConfig::default()
        };
        // Converge from scratch, then knock out the most loaded AP.
        let settled = run_distributed(&inst, &config, Association::empty(inst.n_users()));
        assert!(settled.converged);
        let loads = settled.association.loads(&inst);
        let worst = ApId(
            loads
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
                .map(|(i, _)| i as u32)
                .unwrap(),
        );
        let survivors = evict_downed(&settled.association, &[worst]);
        assert!(survivors.iter().all(|ap| ap != Some(worst)));
        // Reference repair keeps serving the full instance; the evicted
        // users simply re-run their local decision.
        let single = run_distributed(&inst, &config, survivors.clone());
        for w in [1usize, 2, 4] {
            let part = Partition::contiguous(&inst, w).unwrap();
            let par = rebalance_partitioned(&inst, &config, &survivors, &part);
            assert_eq!(par.association, single.association, "W={w}");
            assert_eq!(par.moves, single.moves, "W={w}");
            assert_eq!(par.rounds, single.rounds, "W={w}");
        }
    }

    /// Stale out-of-coverage assignments are shed by `restricted_to`
    /// instead of panicking the partitioned driver.
    #[test]
    fn stale_assignments_are_shed_not_fatal() {
        let inst = examples_paper::figure4_instance();
        // u0 exists but pin it to an AP it cannot reach: figure 4 has two
        // APs; find one u0 is NOT linked to, if any — otherwise fabricate
        // staleness by evicting and checking the restricted run still works.
        let mut stale = Association::empty(inst.n_users());
        let u0 = UserId(0);
        let unreachable = inst
            .aps()
            .find(|&a| !inst.candidate_aps(u0).iter().any(|&(c, _)| c == a));
        if let Some(a) = unreachable {
            stale.set(u0, Some(a));
        }
        let config = DistributedConfig {
            mode: ExecutionMode::Simultaneous,
            max_rounds: 2,
            ..DistributedConfig::default()
        };
        let part = Partition::contiguous(&inst, 2).unwrap();
        let par = rebalance_partitioned(&inst, &config, &stale, &part);
        let single = run_distributed(&inst, &config, stale.restricted_to(&inst));
        assert_eq!(par.association, single.association);
    }
}
