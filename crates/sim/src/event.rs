//! Simulation time and the deterministic event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::ops::Add;

use serde::{Deserialize, Serialize};

/// Simulation time in microseconds since start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Time(pub u64);

impl Time {
    /// Zero.
    pub const ZERO: Time = Time(0);

    /// Builds from milliseconds.
    pub const fn from_millis(ms: u64) -> Time {
        Time(ms * 1000)
    }

    /// Builds from whole seconds.
    pub const fn from_secs(s: u64) -> Time {
        Time(s * 1_000_000)
    }

    /// The value in (fractional) seconds, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
}

impl Add for Time {
    type Output = Time;

    fn add(self, rhs: Time) -> Time {
        Time(self.0.checked_add(rhs.0).expect("time overflow"))
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// A deterministic priority queue of timed events: ties in time break by
/// insertion sequence, so identical runs replay identically.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(Time, u64, WrappedEvent<E>)>>,
    seq: u64,
}

/// Wrapper that excludes the payload from ordering (only time + seq order).
#[derive(Debug)]
struct WrappedEvent<E>(E);

impl<E> PartialEq for WrappedEvent<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for WrappedEvent<E> {}
impl<E> PartialOrd for WrappedEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for WrappedEvent<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at absolute time `at`.
    pub fn push(&mut self, at: Time, event: E) {
        self.heap.push(Reverse((at, self.seq, WrappedEvent(event))));
        self.seq += 1;
    }

    /// Pops the earliest event (FIFO among equal times).
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap
            .pop()
            .map(|Reverse((t, _, WrappedEvent(e)))| (t, e))
    }

    /// Number of pending events.
    #[allow(dead_code)] // part of the queue's natural API; used in tests
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[allow(dead_code)] // part of the queue's natural API; used in tests
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_conversions() {
        assert_eq!(Time::from_millis(3), Time(3000));
        assert_eq!(Time::from_secs(2), Time(2_000_000));
        assert_eq!(Time::from_secs(1) + Time::from_millis(500), Time(1_500_000));
        assert!((Time(1_500_000).as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(Time(1_500_000).to_string(), "1.500000s");
    }

    #[test]
    fn queue_orders_by_time_then_insertion() {
        let mut q = EventQueue::new();
        q.push(Time(10), "late");
        q.push(Time(5), "early-1");
        q.push(Time(5), "early-2");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((Time(5), "early-1")));
        assert_eq!(q.pop(), Some((Time(5), "early-2")));
        assert_eq!(q.pop(), Some((Time(10), "late")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }
}
