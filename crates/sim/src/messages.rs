//! The over-the-air control messages of the association protocols.

use mcast_core::{ApId, Kbps, Load, SessionId, UserId};
use serde::{Deserialize, Serialize};

/// One control frame in flight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Message {
    /// Sending node (for accounting; delivery is point-to-point).
    pub from: Node,
    /// Destination node.
    pub to: Node,
    /// Payload.
    pub body: MessageBody,
}

/// A network endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Node {
    /// An access point.
    Ap(ApId),
    /// A user station.
    User(UserId),
}

/// Protocol payloads. The first four realize the paper's §4.2/§5.2/§6.2
/// query mechanism; the `Lock*` messages realize the §8 coordination
/// extension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MessageBody {
    /// Active-scan probe.
    ProbeRequest,
    /// Probe answer: "I exist".
    ProbeResponse,
    /// "Which sessions do you transmit, at what rates, and what is your
    /// load (also without me, if I am a member)?"
    LoadQuery,
    /// The AP's answer, carrying everything the local decision rule needs.
    LoadResponse {
        /// Sessions currently transmitted, with their transmission rates.
        sessions: Vec<(SessionId, Kbps)>,
        /// Current multicast load of the AP.
        load: Load,
        /// The AP's load if the querying user left it (`None` when the
        /// user is not a member).
        load_without: Option<Load>,
    },
    /// Request to join this AP (leaving `leaving`, if any).
    AssocRequest {
        /// The AP the user is simultaneously leaving, if any.
        leaving: Option<ApId>,
    },
    /// Admission decision (budget check at grant time).
    AssocResponse {
        /// True if the AP admitted the user.
        granted: bool,
    },
    /// Notification that the user left the AP.
    Disassoc,
    /// §8 lock protocol: request exclusive decision rights at this AP.
    LockRequest,
    /// Lock granted.
    LockGrant,
    /// Lock denied (held by another user).
    LockDeny,
    /// Release a held (or requested) lock.
    LockRelease,
}

impl MessageBody {
    /// Rough frame size in bytes, used for latency modeling.
    pub fn size_bytes(&self) -> usize {
        match self {
            MessageBody::ProbeRequest | MessageBody::ProbeResponse => 32,
            MessageBody::LoadQuery => 24,
            MessageBody::LoadResponse { sessions, .. } => 48 + sessions.len() * 8,
            MessageBody::AssocRequest { .. } => 32,
            MessageBody::AssocResponse { .. } => 24,
            MessageBody::Disassoc => 16,
            MessageBody::LockRequest
            | MessageBody::LockGrant
            | MessageBody::LockDeny
            | MessageBody::LockRelease => 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_scale_with_session_count() {
        let small = MessageBody::LoadResponse {
            sessions: vec![],
            load: Load::ZERO,
            load_without: None,
        };
        let big = MessageBody::LoadResponse {
            sessions: vec![(SessionId(0), Kbps::from_mbps(6)); 5],
            load: Load::ZERO,
            load_without: None,
        };
        assert!(big.size_bytes() > small.size_bytes());
        assert_eq!(MessageBody::ProbeRequest.size_bytes(), 32);
    }
}
