//! Simulation outcome reporting.

use std::collections::BTreeMap;

use mcast_core::{ApId, Association, UserId};

use crate::event::Time;

/// One association change observed during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AssociationChange {
    /// When the AP granted the (re)association.
    pub at: Time,
    /// The moving user.
    pub user: UserId,
    /// Previous AP (`None` = was unassociated).
    pub from: Option<ApId>,
    /// New AP.
    pub to: Option<ApId>,
}

/// The outcome of a [`Simulator`](crate::Simulator) run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// The association when the run ended.
    pub association: Association,
    /// Wake cycles executed.
    pub cycles: usize,
    /// True if two consecutive cycles passed without any change.
    pub converged: bool,
    /// Heuristic: the run hit its cycle limit while still churning at
    /// least as many changes as there are users — a live oscillation
    /// (always true for the Figure 4 gadget under synchronized wake-ups).
    pub oscillating: bool,
    /// Every association change, in order.
    pub changes: Vec<AssociationChange>,
    /// Control frames sent, by type.
    pub message_counts: BTreeMap<&'static str, u64>,
    /// Control frames dropped by the loss process (failure injection).
    pub frames_lost: u64,
    /// Per user: time from its first wake to its first granted
    /// association (`None` if it never associated). Indexable by
    /// `UserId::index`.
    pub join_latencies: Vec<Option<Time>>,
    /// Simulated clock when the run ended.
    pub finished_at: Time,
}

impl SimReport {
    /// Total control frames sent.
    pub fn total_messages(&self) -> u64 {
        self.message_counts.values().sum()
    }

    /// Changes after the first `k` cycles — useful to separate the initial
    /// join wave from steady-state churn.
    pub fn changes_after(&self, t: Time) -> usize {
        self.changes.iter().filter(|c| c.at > t).count()
    }

    /// Median time from a user's first wake to its first granted
    /// association, over users that did associate. `None` if nobody did.
    pub fn median_join_latency(&self) -> Option<Time> {
        let mut v: Vec<Time> = self.join_latencies.iter().flatten().copied().collect();
        if v.is_empty() {
            return None;
        }
        v.sort_unstable();
        Some(v[v.len() / 2])
    }
}
