//! Simulation outcome reporting.

use std::collections::BTreeMap;

use mcast_core::{ApId, Association, Load, UserId};
use mcast_faults::RecoverySummary;

use crate::event::Time;

/// One association change observed during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AssociationChange {
    /// When the AP granted the (re)association — or, for `to: None`
    /// records, when the user departed or was forcibly disassociated.
    pub at: Time,
    /// The moving user.
    pub user: UserId,
    /// Previous AP (`None` = was unassociated).
    pub from: Option<ApId>,
    /// New AP (`None` = lost or gave up service).
    pub to: Option<ApId>,
}

impl AssociationChange {
    /// Effect of this change on the satisfied-user count.
    fn coverage_delta(&self) -> i64 {
        match (self.from, self.to) {
            (None, Some(_)) => 1,
            (Some(_), None) => -1,
            _ => 0,
        }
    }
}

/// The outcome of a [`Simulator`](crate::Simulator) run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// The association when the run ended.
    pub association: Association,
    /// Wake cycles executed.
    pub cycles: usize,
    /// True if two consecutive cycles passed without any change.
    pub converged: bool,
    /// Heuristic: the run hit its cycle limit while still churning at
    /// least as many changes as there are users — a live oscillation
    /// (always true for the Figure 4 gadget under synchronized wake-ups).
    pub oscillating: bool,
    /// Every association change, in order.
    pub changes: Vec<AssociationChange>,
    /// Control frames sent, by type.
    pub message_counts: BTreeMap<&'static str, u64>,
    /// Control frames dropped in the air (the crude `loss_prob` process
    /// plus per-class fault-plan drops).
    pub frames_lost: u64,
    /// Per user: time from its first wake to its first granted
    /// association (`None` if it never associated). Indexable by
    /// `UserId::index`.
    pub join_latencies: Vec<Option<Time>>,
    /// Simulated clock when the run ended.
    pub finished_at: Time,
    /// Satisfied users in the association the run started from.
    pub initial_satisfied: usize,
    /// Fault-plan events applied (AP down/up, departures, jumps).
    pub fault_events: u64,
    /// Distinct instants at which fault events were applied — the "fault
    /// epochs" the recovery metrics are segmented by. Simultaneous events
    /// (a coordinated multi-AP outage) form a single epoch.
    pub fault_epochs: Vec<Time>,
    /// Exchanges abandoned mid-flight (timeout or wake-over recovery).
    pub abandoned_exchanges: u64,
    /// Association requests the AP denied (stale, out of range, or over
    /// budget).
    pub assoc_denied: u64,
    /// Highest per-AP load the ledger ever held during the run — the
    /// transient overshoot faults cause before the protocol rebalances.
    pub peak_max_load: Load,
}

impl SimReport {
    /// Total control frames sent.
    pub fn total_messages(&self) -> u64 {
        self.message_counts.values().sum()
    }

    /// Changes after the first `k` cycles — useful to separate the initial
    /// join wave from steady-state churn.
    pub fn changes_after(&self, t: Time) -> usize {
        self.changes.iter().filter(|c| c.at > t).count()
    }

    /// Median time from a user's first wake to its first granted
    /// association, over users that did associate. `None` if nobody did.
    pub fn median_join_latency(&self) -> Option<Time> {
        let mut v: Vec<Time> = self.join_latencies.iter().flatten().copied().collect();
        if v.is_empty() {
            return None;
        }
        v.sort_unstable();
        Some(v[v.len() / 2])
    }

    /// Retried work that bought nothing: lock denials, denied association
    /// requests, and exchanges abandoned to a timeout or wake-over.
    pub fn wasted_retries(&self) -> u64 {
        self.message_counts.get("lock_deny").copied().unwrap_or(0)
            + self.assoc_denied
            + self.abandoned_exchanges
    }

    /// Per fault epoch: how long after the fault the association kept
    /// changing — the time to reconvergence.
    ///
    /// The epoch's observation window runs to the next epoch (or the end
    /// of the run). `Some(Time::ZERO)` means the fault caused no
    /// re-association at all; `None` means the window is the last one and
    /// the run never reconverged.
    pub fn reconvergence_times(&self) -> Vec<Option<Time>> {
        self.fault_epochs
            .iter()
            .enumerate()
            .map(|(i, &start)| {
                let end = self.fault_epochs.get(i + 1).copied();
                let last = self
                    .changes
                    .iter()
                    .filter(|c| c.at > start && end.is_none_or(|e| c.at <= e))
                    .map(|c| c.at)
                    .next_back();
                match last {
                    None => Some(Time::ZERO),
                    Some(lc) if end.is_some() || self.converged => Some(Time(lc.0 - start.0)),
                    Some(_) => None,
                }
            })
            .collect()
    }

    /// Percentile summary of [`SimReport::reconvergence_times`], in
    /// microseconds.
    ///
    /// Windows that never settled (`None`) count as unsettled; the same
    /// [`RecoverySummary`] type is used by the online controller (with
    /// epochs as the unit), so simulator and controller recovery
    /// behavior can be compared side by side.
    pub fn reconvergence_summary(&self) -> RecoverySummary {
        let samples: Vec<Option<f64>> = self
            .reconvergence_times()
            .iter()
            .map(|t| t.map(|t| t.0 as f64))
            .collect();
        RecoverySummary::from_options(&samples)
    }

    /// Per fault epoch: the transient coverage loss, in user-microseconds.
    ///
    /// Replays the change log to reconstruct the satisfied-user count over
    /// time, then integrates how far it stays below its pre-fault level
    /// across the epoch's window (next epoch or end of run). An AP outage
    /// that drops 12 users who rejoin within 2 s contributes about
    /// 12 × 2 × 10⁶; permanent losses (departures) accrue until the
    /// window closes.
    pub fn coverage_loss_user_us(&self) -> Vec<u64> {
        self.fault_epochs
            .iter()
            .enumerate()
            .map(|(i, &start)| {
                let end = self
                    .fault_epochs
                    .get(i + 1)
                    .copied()
                    .unwrap_or(self.finished_at)
                    .max(start);
                // Satisfied count just before the fault hit.
                let mut sat = self.initial_satisfied as i64
                    + self
                        .changes
                        .iter()
                        .take_while(|c| c.at < start)
                        .map(AssociationChange::coverage_delta)
                        .sum::<i64>();
                let baseline = sat;
                let mut loss: u64 = 0;
                let mut t = start;
                for c in self.changes.iter().filter(|c| c.at >= start && c.at < end) {
                    loss += (baseline - sat).max(0) as u64 * (c.at.0 - t.0);
                    sat += c.coverage_delta();
                    t = c.at;
                }
                loss += (baseline - sat).max(0) as u64 * end.0.saturating_sub(t.0);
                loss
            })
            .collect()
    }
}
