//! Airtime measurement: replay the multicast packet schedule of an
//! association and measure each AP's busy fraction.
//!
//! This closes the loop on Definition 1: the *analytic* load
//! (`Σ stream_rate / tx_rate`) must equal the *measured* airtime fraction
//! when each served session emits `stream_rate × interval` bits every
//! interval at its transmission rate. The equality is exercised by tests
//! and by the `table1`/validation experiment.

use mcast_core::{Association, Instance, Load};

use crate::event::Time;

/// Per-AP airtime measurement over a window.
#[derive(Debug, Clone, PartialEq)]
pub struct AirtimeReport {
    /// Measured busy fraction per AP (indexable by `ApId::index`).
    pub measured: Vec<f64>,
    /// The analytic Definition-1 loads for comparison.
    pub analytic: Vec<Load>,
    /// The measurement window used.
    pub window: Time,
}

impl AirtimeReport {
    /// The largest |measured − analytic| over all APs.
    pub fn max_abs_error(&self) -> f64 {
        self.measured
            .iter()
            .zip(&self.analytic)
            .map(|(m, a)| (m - a.as_f64()).abs())
            .fold(0.0, f64::max)
    }
}

/// Replays `interval`-spaced multicast packets for every (AP, session) the
/// association serves over `window`, accumulating per-AP busy time.
///
/// # Panics
///
/// Panics if `interval` is zero or does not divide `window`.
pub fn measure_airtime(
    inst: &Instance,
    assoc: &Association,
    window: Time,
    interval: Time,
) -> AirtimeReport {
    assert!(interval.0 > 0, "interval must be positive");
    assert_eq!(window.0 % interval.0, 0, "interval must divide window");
    let packets = window.0 / interval.0;

    let mut busy_us = vec![0.0f64; inst.n_aps()];
    for a in inst.aps() {
        for s in inst.sessions() {
            if let Some(tx) = assoc.ap_session_rate(a, s, inst) {
                // Bits accumulated per interval at the stream rate, then
                // drained at the transmission rate.
                let stream_kbps = f64::from(inst.session_rate(s).0);
                let bits_per_packet = stream_kbps * interval.0 as f64 / 1000.0;
                let per_packet_us = bits_per_packet / (f64::from(tx.0) / 1000.0);
                busy_us[a.index()] += per_packet_us * packets as f64;
            }
        }
    }

    let measured = busy_us.iter().map(|b| b / window.0 as f64).collect();
    let analytic = assoc.loads(inst);
    AirtimeReport {
        measured,
        analytic,
        window,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_core::examples_paper::figure1_instance;
    use mcast_core::{ApId, Kbps};

    #[test]
    fn measured_airtime_equals_definition1() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let assoc = Association::from_vec(vec![
            Some(ApId(0)),
            Some(ApId(0)),
            Some(ApId(0)),
            Some(ApId(1)),
            Some(ApId(1)),
        ]);
        let report = measure_airtime(&inst, &assoc, Time::from_secs(10), Time::from_millis(100));
        assert!(
            report.max_abs_error() < 1e-9,
            "err {}",
            report.max_abs_error()
        );
        assert!((report.measured[0] - 0.5).abs() < 1e-9);
        assert!((report.measured[1] - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_association_measures_zero() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let assoc = Association::empty(5);
        let report = measure_airtime(&inst, &assoc, Time::from_secs(1), Time::from_millis(50));
        assert!(report.measured.iter().all(|&m| m == 0.0));
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn indivisible_window_panics() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let assoc = Association::empty(5);
        measure_airtime(&inst, &assoc, Time(1000), Time(300));
    }
}
