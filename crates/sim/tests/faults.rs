//! Fault-injection tests: the identity of the none-plan, determinism of
//! faulty runs, recovery after AP outages, control-plane fault
//! robustness, churn, and ledger consistency under forced
//! disassociations.

use mcast_core::examples_paper::figure1_instance;
use mcast_core::{ApId, Association, Kbps, Policy, UserId};
use mcast_faults::{
    ApOutage, DelayJitter, FaultPlan, MessageFaults, RandomApFailures, UserDeparture, UserJump,
};
use mcast_sim::{SimConfig, Simulator, Time, WakeSchedule};
use mcast_topology::ScenarioConfig;
use proptest::prelude::*;

fn scenario(n_aps: usize, n_users: usize, seed: u64) -> mcast_topology::Scenario {
    ScenarioConfig {
        n_aps,
        n_users,
        n_sessions: 3,
        ..ScenarioConfig::paper_default()
    }
    .with_seed(seed)
    .generate()
}

fn faulty_cfg(schedule: WakeSchedule) -> SimConfig {
    SimConfig {
        schedule,
        max_cycles: 120,
        quiet_cycles: 6,
        ..SimConfig::default()
    }
}

/// A single-AP outage window expressed in wake periods.
fn outage(ap: u32, down_cycle: u64, up_cycle: u64, period: Time) -> FaultPlan {
    FaultPlan {
        ap_outages: vec![ApOutage {
            ap: ApId(ap),
            down_at_us: down_cycle * period.0,
            up_at_us: Some(up_cycle * period.0),
        }],
        ..FaultPlan::none()
    }
}

#[test]
fn none_plan_runs_are_fault_free() {
    let inst = figure1_instance(Kbps::from_mbps(1));
    let report = Simulator::new(&inst, SimConfig::default()).run();
    assert_eq!(report.fault_events, 0);
    assert!(report.fault_epochs.is_empty());
    assert_eq!(report.abandoned_exchanges, 0);
    assert_eq!(report.frames_lost, 0);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The identity property: a `FaultPlan::none()` run is event-for-event
    /// identical to a run without the fault layer, regardless of the
    /// plan's seed (the seed must not leak into behaviour when nothing is
    /// configured to fail). Reports capture the full observable history
    /// (changes, message counts, clock), so equality of reports is
    /// equality of event sequences.
    fn none_plan_is_identity(
        seed in 0u64..500,
        fault_seed in 1u64..u64::MAX,
        staggered in proptest::bool::ANY,
    ) {
        let sc = scenario(8, 24, seed);
        let inst = &sc.instance;
        let schedule = if staggered {
            WakeSchedule::Staggered
        } else {
            WakeSchedule::SynchronizedLocked
        };
        let base = SimConfig { schedule, ..SimConfig::default() };
        let no_layer = Simulator::new(inst, base.clone()).run();
        let with_none_plan = Simulator::new(
            inst,
            SimConfig {
                faults: FaultPlan { seed: fault_seed, ..FaultPlan::none() },
                ..base
            },
        )
        .run();
        prop_assert_eq!(no_layer, with_none_plan);
    }

    /// Determinism: the same plan and seeds reproduce the identical
    /// report, fault epochs and all.
    fn faulty_runs_are_deterministic(seed in 0u64..200, fault_seed in 0u64..1000) {
        let sc = scenario(10, 30, seed);
        let inst = &sc.instance;
        let plan = FaultPlan {
            seed: fault_seed,
            random_ap_failures: Some(RandomApFailures {
                failure_prob: 0.3,
                mean_downtime_us: 4_000_000,
            }),
            query: MessageFaults {
                drop_prob: 0.05,
                dup_prob: 0.05,
                jitter: DelayJitter { min_us: 10, max_us: 500 },
            },
            ..FaultPlan::none()
        };
        let cfg = SimConfig { faults: plan, ..faulty_cfg(WakeSchedule::Staggered) };
        let a = Simulator::new(inst, cfg.clone()).run();
        let b = Simulator::new(inst, cfg).run();
        prop_assert_eq!(a, b);
    }
}

#[test]
fn staggered_reconverges_after_single_ap_outage() {
    let sc = scenario(8, 30, 11);
    let inst = &sc.instance;
    let cfg = faulty_cfg(WakeSchedule::Staggered);
    // Pick the AP the fault will actually disturb: the one serving the
    // most users in the converged fault-free association.
    let baseline = Simulator::new(inst, cfg.clone()).run();
    assert!(baseline.converged);
    let victim = inst
        .aps()
        .max_by_key(|&a| {
            baseline
                .association
                .iter()
                .filter(|&ap| ap == Some(a))
                .count()
        })
        .unwrap();
    let served = baseline
        .association
        .iter()
        .filter(|&ap| ap == Some(victim))
        .count();
    assert!(served > 0, "scenario degenerate: victim AP serves nobody");

    let report = Simulator::new(
        inst,
        SimConfig {
            faults: outage(victim.0, 20, 40, cfg.period),
            ..cfg
        },
    )
    .run();
    // One epoch for the failure, one for the recovery.
    assert_eq!(report.fault_events, 2);
    assert_eq!(report.fault_epochs.len(), 2);
    assert!(report.converged, "did not reconverge after the outage");
    // Users displaced by the outage found service again (coverage is
    // guaranteed by generation, budgets are loose).
    assert_eq!(report.association.satisfied_count(), inst.n_users());
    assert!(report.association.is_feasible(inst));
    // Both epochs reconverged in bounded time.
    let rec = report.reconvergence_times();
    assert_eq!(rec.len(), 2);
    for (i, r) in rec.iter().enumerate() {
        assert!(r.is_some(), "epoch {i} never reconverged");
    }
    // The outage displaced somebody, so the failure epoch shows a
    // strictly positive transient coverage loss.
    let loss = report.coverage_loss_user_us();
    assert!(loss[0] > 0, "no transient coverage loss recorded: {loss:?}");
}

#[test]
fn coordinated_outage_recovers_under_both_schedules() {
    let sc = scenario(10, 40, 3);
    let inst = &sc.instance;
    for schedule in [WakeSchedule::Staggered, WakeSchedule::SynchronizedLocked] {
        let cfg = faulty_cfg(schedule);
        let period = cfg.period;
        let plan = FaultPlan {
            ap_outages: (0..3)
                .map(|i| ApOutage {
                    ap: ApId(i),
                    down_at_us: 20 * period.0,
                    up_at_us: Some(45 * period.0),
                })
                .collect(),
            ..FaultPlan::none()
        };
        let report = Simulator::new(
            inst,
            SimConfig {
                faults: plan,
                ..cfg
            },
        )
        .run();
        assert!(report.converged, "{schedule:?} did not reconverge");
        assert_eq!(
            report.association.satisfied_count(),
            inst.n_users(),
            "{schedule:?} lost coverage for good"
        );
        // The three simultaneous failures form ONE epoch; the recoveries
        // another.
        assert_eq!(report.fault_epochs.len(), 2, "{schedule:?}");
        assert_eq!(report.fault_events, 6, "{schedule:?}");
    }
}

#[test]
fn ap_down_forever_sheds_load_to_survivors() {
    let sc = scenario(6, 20, 7);
    let inst = &sc.instance;
    let cfg = faulty_cfg(WakeSchedule::Staggered);
    let report = Simulator::new(
        inst,
        SimConfig {
            faults: FaultPlan {
                ap_outages: vec![ApOutage {
                    ap: ApId(0),
                    down_at_us: 15 * cfg.period.0,
                    up_at_us: None,
                }],
                ..cfg.faults.clone()
            },
            ..cfg
        },
    )
    .run();
    assert!(report.converged);
    // Nobody is left on the dead AP.
    assert!(
        report.association.iter().all(|ap| ap != Some(ApId(0))),
        "users still associated to the crashed AP"
    );
    assert!(report.association.validate(inst).is_ok());
}

#[test]
fn control_plane_faults_do_not_break_convergence() {
    let sc = scenario(8, 25, 5);
    let inst = &sc.instance;
    for policy in [Policy::MinTotalLoad, Policy::MinMaxVector] {
        let plan = FaultPlan {
            seed: 99,
            probe: MessageFaults {
                drop_prob: 0.05,
                ..MessageFaults::none()
            },
            query: MessageFaults {
                drop_prob: 0.08,
                dup_prob: 0.08,
                jitter: DelayJitter {
                    min_us: 50,
                    max_us: 2_000,
                },
            },
            association: MessageFaults {
                drop_prob: 0.05,
                dup_prob: 0.05,
                ..MessageFaults::none()
            },
            lock: MessageFaults {
                drop_prob: 0.05,
                ..MessageFaults::none()
            },
            ..FaultPlan::none()
        };
        let report = Simulator::new(
            inst,
            SimConfig {
                policy,
                faults: plan,
                ..faulty_cfg(WakeSchedule::Staggered)
            },
        )
        .run();
        assert!(report.converged, "{policy:?} under control-plane faults");
        assert!(report.association.is_feasible(inst), "{policy:?}");
        assert_eq!(report.association.satisfied_count(), inst.n_users());
        assert!(report.frames_lost > 0, "{policy:?}: plan dropped nothing");
    }
}

#[test]
fn dropped_association_grants_leave_ledger_consistent() {
    // Heavy association-class faults: grants and their responses are
    // dropped and duplicated. The run executes the ledger consistency
    // assertion after every fault event (debug builds), and the final
    // association must still validate with correct loads.
    let sc = scenario(8, 25, 13);
    let inst = &sc.instance;
    let plan = FaultPlan {
        seed: 21,
        association: MessageFaults {
            drop_prob: 0.25,
            dup_prob: 0.25,
            jitter: DelayJitter {
                min_us: 100,
                max_us: 5_000,
            },
        },
        random_ap_failures: Some(RandomApFailures {
            failure_prob: 0.4,
            mean_downtime_us: 5_000_000,
        }),
        ..FaultPlan::none()
    };
    let report = Simulator::new(
        inst,
        SimConfig {
            faults: plan,
            ..faulty_cfg(WakeSchedule::Staggered)
        },
    )
    .run();
    assert!(report.association.validate(inst).is_ok());
    // Rebuilding a ledger from the final association reproduces the same
    // loads — i.e. nothing the fault layer did desynchronized load
    // bookkeeping from membership.
    let rebuilt = mcast_core::LoadLedger::new(inst, report.association.clone());
    rebuilt.assert_consistent();
    for a in inst.aps() {
        assert_eq!(rebuilt.ap_load(a), report.association.ap_load(a, inst));
    }
}

#[test]
fn user_churn_departures_and_jumps() {
    let sc = scenario(8, 30, 17);
    let inst = &sc.instance;
    let cfg = faulty_cfg(WakeSchedule::Staggered);
    let period = cfg.period;
    let plan = FaultPlan {
        seed: 4,
        churn: mcast_faults::ChurnModel {
            departures: vec![
                UserDeparture {
                    user: UserId(0),
                    at_us: 20 * period.0,
                },
                UserDeparture {
                    user: UserId(1),
                    at_us: 22 * period.0,
                },
            ],
            jumps: vec![UserJump {
                user: UserId(2),
                at_us: 25 * period.0,
            }],
            link_keep_prob: 0.6,
            ..mcast_faults::ChurnModel::none()
        },
        ..FaultPlan::none()
    };
    let report = Simulator::new(
        inst,
        SimConfig {
            faults: plan,
            ..cfg
        },
    )
    .run();
    assert!(report.converged);
    // Departed users end unassociated and everyone else keeps service
    // (the jumper may have lost all links, so only a lower bound holds).
    assert_eq!(report.association.ap_of(UserId(0)), None);
    assert_eq!(report.association.ap_of(UserId(1)), None);
    assert!(report.association.satisfied_count() >= inst.n_users() - 3);
    assert!(report.association.validate(inst).is_ok());
}

#[test]
fn recovery_metrics_reflect_an_undisturbed_run() {
    // A fault epoch that touches nothing (outage of an AP serving
    // nobody): reconvergence is zero and coverage loss is zero.
    let inst = figure1_instance(Kbps::from_mbps(1));
    let cfg = SimConfig {
        max_cycles: 60,
        ..SimConfig::default()
    };
    // In Figure 1 every user can reach AP 1 or 2; first find who serves
    // nobody after convergence... AP 0 serves u1..; instead inject the
    // outage after convergence on an AP with no members in the final
    // association, if any — otherwise skip the strict zero check.
    let baseline = Simulator::new(&inst, cfg.clone()).run();
    let idle_ap = inst
        .aps()
        .find(|&a| baseline.association.iter().all(|ap| ap != Some(a)));
    let Some(idle_ap) = idle_ap else { return };
    let report = Simulator::new(
        &inst,
        SimConfig {
            faults: outage(idle_ap.0, 10, 20, cfg.period),
            ..cfg
        },
    )
    .run();
    assert!(report.converged);
    assert_eq!(report.reconvergence_times(), vec![Some(Time::ZERO); 2]);
    assert_eq!(report.coverage_loss_user_us(), vec![0, 0]);
}

#[test]
fn peak_load_overshoot_is_observed_during_outage() {
    // When a loaded AP dies, survivors absorb its users: the running
    // peak max load must be at least the converged steady-state value.
    let sc = scenario(6, 30, 29);
    let inst = &sc.instance;
    let cfg = faulty_cfg(WakeSchedule::Staggered);
    let baseline = Simulator::new(inst, cfg.clone()).run();
    let victim = inst
        .aps()
        .max_by_key(|&a| {
            baseline
                .association
                .iter()
                .filter(|&ap| ap == Some(a))
                .count()
        })
        .unwrap();
    let report = Simulator::new(
        inst,
        SimConfig {
            faults: outage(victim.0, 20, 50, cfg.period),
            ..cfg
        },
    )
    .run();
    assert!(report.peak_max_load >= report.association.max_load(inst));
    assert!(report.peak_max_load >= baseline.peak_max_load);
}

#[test]
fn stale_assoc_requests_are_denied_not_applied() {
    // With heavy duplication on association frames, duplicate grants are
    // denied (stale `leaving` snapshot) instead of flapping the ledger:
    // the run stays valid and every final association is in range.
    let sc = scenario(6, 20, 31);
    let inst = &sc.instance;
    let plan = FaultPlan {
        seed: 77,
        association: MessageFaults {
            dup_prob: 0.5,
            ..MessageFaults::none()
        },
        ..FaultPlan::none()
    };
    let report = Simulator::new(
        inst,
        SimConfig {
            faults: plan,
            ..faulty_cfg(WakeSchedule::Staggered)
        },
    )
    .run();
    assert!(report.association.validate(inst).is_ok());
    assert!(report.converged);
}

#[test]
fn with_initial_counts_initial_coverage() {
    let inst = figure1_instance(Kbps::from_mbps(1));
    let initial = Association::from_vec(vec![Some(ApId(0)), None, None, None, None]);
    let report = Simulator::with_initial(&inst, SimConfig::default(), initial).run();
    assert_eq!(report.initial_satisfied, 1);
}
