//! Failure injection: the protocol must survive control-frame loss —
//! stalled exchanges recover at the next wake, lost lock releases are
//! covered by the AP-side lease, and the association still converges to a
//! feasible state.

use mcast_core::examples_paper::{figure1_instance, figure4_instance, figure4_start};
use mcast_core::{Kbps, Load, Policy};
use mcast_sim::{SimConfig, Simulator, WakeSchedule};
use mcast_topology::ScenarioConfig;

fn lossy(loss_prob: f64, seed: u64) -> SimConfig {
    SimConfig {
        loss_prob,
        loss_seed: seed,
        max_cycles: 200,
        // Under loss, a straggler's whole exchange can vanish for a few
        // cycles; more quiet cycles make the convergence claim honest.
        quiet_cycles: 8,
        ..SimConfig::default()
    }
}

#[test]
fn loss_free_runs_report_zero_lost_frames() {
    let inst = figure1_instance(Kbps::from_mbps(1));
    let report = Simulator::new(&inst, SimConfig::default()).run();
    assert_eq!(report.frames_lost, 0);
}

#[test]
fn converges_under_moderate_loss() {
    let inst = figure1_instance(Kbps::from_mbps(1));
    for seed in 0..10 {
        let report = Simulator::new(&inst, lossy(0.10, seed)).run();
        assert!(report.converged, "seed {seed} did not converge");
        assert!(report.association.is_feasible(&inst), "seed {seed}");
        // Everyone still gets service, and the local optimum reached is
        // never worse than the loss-free serial one (losses only permute
        // the decision order; 9/20 and 7/12 are both reachable optima).
        assert_eq!(report.association.satisfied_count(), 5, "seed {seed}");
        assert!(
            report.association.total_load(&inst) <= Load::from_ratio(7, 12),
            "seed {seed}"
        );
        assert!(report.frames_lost > 0, "seed {seed}: no frame was lost");
    }
}

#[test]
fn generated_scenario_converges_under_loss() {
    let scenario = ScenarioConfig {
        n_aps: 15,
        n_users: 40,
        n_sessions: 3,
        ..ScenarioConfig::paper_default()
    }
    .with_seed(4)
    .generate();
    let inst = &scenario.instance;
    for policy in [Policy::MinTotalLoad, Policy::MinMaxVector] {
        let report = Simulator::new(
            inst,
            SimConfig {
                policy,
                ..lossy(0.05, 7)
            },
        )
        .run();
        assert!(report.converged, "{policy:?}");
        assert!(report.association.is_feasible(inst));
        // Everyone eventually finds service (coverage is guaranteed and
        // budgets are loose at 0.9).
        assert_eq!(report.association.satisfied_count(), inst.n_users());
    }
}

#[test]
fn lock_lease_prevents_starvation_under_loss() {
    // Lock mode with loss: releases can vanish, but the lease lets other
    // users reclaim the APs, so the system still converges.
    let inst = figure4_instance();
    for seed in 0..10 {
        let report = Simulator::with_initial(
            &inst,
            SimConfig {
                schedule: WakeSchedule::SynchronizedLocked,
                ..lossy(0.10, seed)
            },
            figure4_start(),
        )
        .run();
        assert!(report.converged, "seed {seed} starved");
        assert!(report.association.is_feasible(&inst));
    }
}

#[test]
fn heavy_loss_still_terminates_cleanly() {
    // At 40% loss most exchanges die; the run must still terminate with a
    // structurally valid (possibly partial) association.
    let inst = figure1_instance(Kbps::from_mbps(1));
    let report = Simulator::new(
        &inst,
        SimConfig {
            max_cycles: 30,
            ..lossy(0.40, 99)
        },
    )
    .run();
    assert!(report.association.validate(&inst).is_ok());
    assert!(report.frames_lost > 0);
}

#[test]
fn loss_process_is_seed_deterministic() {
    let inst = figure1_instance(Kbps::from_mbps(1));
    let a = Simulator::new(&inst, lossy(0.15, 5)).run();
    let b = Simulator::new(&inst, lossy(0.15, 5)).run();
    assert_eq!(a.association, b.association);
    assert_eq!(a.frames_lost, b.frames_lost);
    assert_eq!(a.changes.len(), b.changes.len());
}
