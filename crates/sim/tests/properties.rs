//! Property tests for the simulator: equivalence with the round-based
//! engine across random scenarios, and robustness of the dynamic modes.

use proptest::prelude::*;

use mcast_core::{run_distributed, Association, DistributedConfig, Policy};
use mcast_sim::{Activation, SimConfig, Simulator, WakeSchedule};
use mcast_topology::{Scenario, ScenarioConfig};

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (3usize..15, 5usize..35, 1usize..4, 0u64..500).prop_map(|(n_aps, n_users, n_sessions, seed)| {
        ScenarioConfig {
            n_aps,
            n_users,
            n_sessions,
            width_m: 700.0,
            height_m: 700.0,
            ..ScenarioConfig::paper_default()
        }
        .with_seed(seed)
        .generate()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The staggered message-level run lands exactly where the round-based
    /// serial engine lands, for both policies, on arbitrary scenarios —
    /// the central correctness property of the protocol realization.
    #[test]
    fn sim_equals_round_based(scenario in scenario_strategy()) {
        let inst = &scenario.instance;
        for policy in [Policy::MinTotalLoad, Policy::MinMaxVector] {
            let sim = Simulator::new(
                inst,
                SimConfig { policy, ..SimConfig::default() },
            )
            .run();
            let round = run_distributed(
                inst,
                &DistributedConfig { policy, ..DistributedConfig::default() },
                Association::empty(inst.n_users()),
            );
            prop_assert!(sim.converged);
            prop_assert_eq!(&sim.association, &round.association, "policy {:?}", policy);
        }
    }

    /// Arrivals terminate, serve everyone coverable, and never break
    /// feasibility, regardless of the trickle rate.
    #[test]
    fn arrivals_always_converge(scenario in scenario_strategy(), per_cycle in 1usize..8) {
        let inst = &scenario.instance;
        let report = Simulator::new(
            inst,
            SimConfig {
                activation: Activation::Arrivals { per_cycle },
                max_cycles: inst.n_users() + 30,
                ..SimConfig::default()
            },
        )
        .run();
        prop_assert!(report.converged);
        prop_assert!(report.association.is_feasible(inst));
        prop_assert_eq!(report.association.satisfied_count(), inst.n_users());
    }

    /// Under loss, runs terminate with structurally valid associations and
    /// the loss accounting is consistent.
    #[test]
    fn lossy_runs_stay_structurally_valid(
        scenario in scenario_strategy(),
        loss in 0.01f64..0.3,
        loss_seed in 0u64..100,
    ) {
        let inst = &scenario.instance;
        let report = Simulator::new(
            inst,
            SimConfig {
                loss_prob: loss,
                loss_seed,
                max_cycles: 60,
                quiet_cycles: 4,
                ..SimConfig::default()
            },
        )
        .run();
        prop_assert!(report.association.validate(inst).is_ok());
        // Frames lost is bounded by frames sent.
        prop_assert!(report.frames_lost <= report.total_messages());
        // Join latencies only exist for served users.
        for u in inst.users() {
            if report.join_latencies[u.index()].is_some() {
                prop_assert!(report.association.ap_of(u).is_some()
                    // ...or the user later moved/left in churn; it must at
                    // least have joined once:
                    || report.changes.iter().any(|c| c.user == u));
            }
        }
    }

    /// Lock mode converges on arbitrary scenarios under synchronized
    /// wake-ups (the §8 claim, beyond the Figure 4 gadget).
    #[test]
    fn locks_converge_everywhere(scenario in scenario_strategy()) {
        let inst = &scenario.instance;
        let report = Simulator::new(
            inst,
            SimConfig {
                schedule: WakeSchedule::SynchronizedLocked,
                max_cycles: 150,
                ..SimConfig::default()
            },
        )
        .run();
        prop_assert!(report.converged);
        prop_assert!(report.association.is_feasible(inst));
    }
}
