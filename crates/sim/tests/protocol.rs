//! Message-level protocol tests: convergence, oscillation, locks, and
//! agreement with the round-based engine.

use mcast_core::examples_paper::{figure1_instance, figure4_instance, figure4_start};
use mcast_core::{run_distributed, Association, DistributedConfig, Kbps, Load, Policy};
use mcast_sim::{measure_airtime, SimConfig, Simulator, Time, WakeSchedule};
use mcast_topology::ScenarioConfig;

#[test]
fn staggered_figure1_matches_round_based_mla() {
    let inst = figure1_instance(Kbps::from_mbps(1));
    let report = Simulator::new(&inst, SimConfig::default()).run();
    assert!(report.converged);
    let round = run_distributed(
        &inst,
        &DistributedConfig::default(),
        Association::empty(inst.n_users()),
    );
    assert_eq!(report.association, round.association);
    // Paper §6.2: everyone ends on a1, total load 7/12.
    assert_eq!(
        report.association.total_load(&inst),
        Load::from_ratio(7, 12)
    );
}

#[test]
fn staggered_figure1_bla_policy() {
    let inst = figure1_instance(Kbps::from_mbps(1));
    let report = Simulator::new(
        &inst,
        SimConfig {
            policy: Policy::MinMaxVector,
            ..SimConfig::default()
        },
    )
    .run();
    assert!(report.converged);
    let loads = report.association.loads(&inst);
    assert_eq!(loads[0], Load::from_ratio(1, 2));
    assert_eq!(loads[1], Load::from_ratio(1, 3));
}

#[test]
fn synchronized_figure4_oscillates() {
    let inst = figure4_instance();
    let report = Simulator::with_initial(
        &inst,
        SimConfig {
            schedule: WakeSchedule::Synchronized,
            max_cycles: 20,
            ..SimConfig::default()
        },
        figure4_start(),
    )
    .run();
    assert!(!report.converged, "figure 4 must not converge synchronized");
    assert!(report.oscillating);
    // u2 and u3 swap every cycle: roughly 2 changes per cycle.
    assert!(report.changes.len() >= 20);
}

#[test]
fn staggered_figure4_converges() {
    let inst = figure4_instance();
    let report = Simulator::with_initial(
        &inst,
        SimConfig {
            schedule: WakeSchedule::Staggered,
            ..SimConfig::default()
        },
        figure4_start(),
    )
    .run();
    assert!(report.converged);
    // One swap settles it (total 9/20, the paper's serial outcome).
    assert_eq!(
        report.association.total_load(&inst),
        Load::from_ratio(9, 20)
    );
}

#[test]
fn locks_restore_convergence_under_synchronized_wakes() {
    let inst = figure4_instance();
    let report = Simulator::with_initial(
        &inst,
        SimConfig {
            schedule: WakeSchedule::SynchronizedLocked,
            max_cycles: 30,
            ..SimConfig::default()
        },
        figure4_start(),
    )
    .run();
    assert!(
        report.converged,
        "lock coordination must converge (changes: {:?})",
        report.changes
    );
    assert!(report.message_counts.contains_key("lock_req"));
    // Locks serialized the swap: the final state is a local optimum.
    assert_eq!(
        report.association.total_load(&inst),
        Load::from_ratio(9, 20)
    );
}

#[test]
fn lock_denies_occur_under_contention() {
    let inst = figure4_instance();
    let report = Simulator::with_initial(
        &inst,
        SimConfig {
            schedule: WakeSchedule::SynchronizedLocked,
            ..SimConfig::default()
        },
        figure4_start(),
    )
    .run();
    // u2 and u3 share both APs and wake simultaneously: someone is denied.
    assert!(report.message_counts.get("lock_deny").copied().unwrap_or(0) > 0);
    // Every grant is eventually released (no lock leaks): counts match.
    let grants = report
        .message_counts
        .get("lock_grant")
        .copied()
        .unwrap_or(0);
    let releases = report
        .message_counts
        .get("lock_release")
        .copied()
        .unwrap_or(0);
    assert!(releases >= grants, "grants {grants} releases {releases}");
}

#[test]
fn generated_scenario_sim_matches_round_based() {
    // A mid-size generated scenario: the staggered message-level run must
    // land exactly where the round-based serial engine lands.
    let scenario = ScenarioConfig {
        n_aps: 12,
        n_users: 30,
        n_sessions: 3,
        ..ScenarioConfig::paper_default()
    }
    .with_seed(5)
    .generate();
    let inst = &scenario.instance;
    for policy in [Policy::MinTotalLoad, Policy::MinMaxVector] {
        let sim = Simulator::new(
            inst,
            SimConfig {
                policy,
                ..SimConfig::default()
            },
        )
        .run();
        let round = run_distributed(
            inst,
            &DistributedConfig {
                policy,
                ..DistributedConfig::default()
            },
            Association::empty(inst.n_users()),
        );
        assert!(sim.converged, "policy {policy:?} did not converge");
        assert_eq!(
            sim.association, round.association,
            "policy {policy:?} diverged from round-based result"
        );
    }
}

#[test]
fn airtime_of_simulated_association_matches_analytic() {
    let scenario = ScenarioConfig {
        n_aps: 10,
        n_users: 25,
        n_sessions: 2,
        ..ScenarioConfig::paper_default()
    }
    .with_seed(8)
    .generate();
    let inst = &scenario.instance;
    let report = Simulator::new(inst, SimConfig::default()).run();
    let airtime = measure_airtime(
        inst,
        &report.association,
        Time::from_secs(10),
        Time::from_millis(100),
    );
    assert!(airtime.max_abs_error() < 1e-9);
}

#[test]
fn message_counts_are_plausible() {
    let inst = figure1_instance(Kbps::from_mbps(1));
    let report = Simulator::new(&inst, SimConfig::default()).run();
    // Every probe gets an answer; every query gets a response.
    assert_eq!(
        report.message_counts["probe_req"],
        report.message_counts["probe_resp"]
    );
    assert_eq!(
        report.message_counts["load_query"],
        report.message_counts["load_resp"]
    );
    // Association churn: 5 joins at minimum.
    assert!(report.message_counts["assoc_req"] >= 5);
    assert!(report.total_messages() > 0);
    assert!(report.finished_at > Time::ZERO);
}

#[test]
fn budget_respected_at_admission() {
    let inst = figure1_instance(Kbps::from_mbps(3));
    let report = Simulator::new(&inst, SimConfig::default()).run();
    assert!(report.converged);
    assert!(report.association.is_feasible(&inst));
    // Same outcome as the round-based distributed MNU: 4 users served.
    assert_eq!(report.association.satisfied_count(), 4);
}

#[test]
fn arrivals_reach_the_same_place_as_all_at_start() {
    // Lemma 1's "new user joins the network" case: users trickling in a
    // few per cycle must still converge, serve everyone, and (for the
    // serial total-load rule) land on a feasible local optimum.
    use mcast_sim::Activation;
    let scenario = ScenarioConfig {
        n_aps: 12,
        n_users: 30,
        n_sessions: 3,
        ..ScenarioConfig::paper_default()
    }
    .with_seed(13)
    .generate();
    let inst = &scenario.instance;
    let arrivals = Simulator::new(
        inst,
        SimConfig {
            activation: Activation::Arrivals { per_cycle: 4 },
            max_cycles: 60,
            ..SimConfig::default()
        },
    )
    .run();
    assert!(arrivals.converged);
    assert_eq!(arrivals.association.satisfied_count(), inst.n_users());
    assert!(arrivals.association.is_feasible(inst));

    // Same decision rule from a cold start: both are local optima; the
    // arrival order may land elsewhere, but never unserved or infeasible.
    let cold = Simulator::new(inst, SimConfig::default()).run();
    assert_eq!(cold.association.satisfied_count(), inst.n_users());
}

#[test]
fn arrivals_one_per_cycle_terminates() {
    use mcast_sim::Activation;
    let inst = figure1_instance(Kbps::from_mbps(1));
    let report = Simulator::new(
        &inst,
        SimConfig {
            activation: Activation::Arrivals { per_cycle: 1 },
            max_cycles: 20,
            ..SimConfig::default()
        },
    )
    .run();
    assert!(report.converged);
    assert_eq!(report.association.satisfied_count(), 5);
    // At least 5 cycles were needed just to activate everyone.
    assert!(report.cycles >= 6);
}

#[test]
fn join_latency_is_measured_for_every_served_user() {
    let inst = figure1_instance(Kbps::from_mbps(1));
    let report = Simulator::new(&inst, SimConfig::default()).run();
    for u in inst.users() {
        let served = report.association.ap_of(u).is_some();
        assert_eq!(
            report.join_latencies[u.index()].is_some(),
            served,
            "latency recorded iff served ({u})"
        );
    }
    let median = report.median_join_latency().expect("someone joined");
    // A join takes at least one probe + query + assoc round trip.
    assert!(median > Time::ZERO);
    // And comfortably under a wake period in a 2-AP network.
    assert!(median < Time::from_millis(1000), "median {median}");
}

#[test]
fn departures_free_airtime_and_survivors_reoptimize() {
    use mcast_sim::Departure;
    // Tight budgets: initially only some users fit. After half the users
    // depart, the survivors (and previously blocked ones) re-optimize.
    let scenario = ScenarioConfig {
        n_aps: 10,
        n_users: 40,
        n_sessions: 4,
        budget: Load::from_ratio(1, 10),
        ..ScenarioConfig::paper_default()
    }
    .with_seed(21)
    .generate();
    let inst = &scenario.instance;
    let baseline = Simulator::new(inst, SimConfig::default()).run();
    let with_departure = Simulator::new(
        inst,
        SimConfig {
            departure: Some(Departure {
                at_cycle: 6,
                count: 20,
            }),
            max_cycles: 60,
            ..SimConfig::default()
        },
    )
    .run();
    assert!(with_departure.converged);
    // The departed users are gone...
    for u in inst.users().take(20) {
        assert_eq!(with_departure.association.ap_of(u), None, "{u} still on");
    }
    // ...and the survivors are served at least as well as in the full
    // network (less contention can only help them).
    let survivors_before = baseline
        .association
        .iter()
        .skip(20)
        .filter(|a| a.is_some())
        .count();
    let survivors_after = with_departure
        .association
        .iter()
        .skip(20)
        .filter(|a| a.is_some())
        .count();
    assert!(survivors_after >= survivors_before);
    assert!(with_departure.association.is_feasible(inst));
}
