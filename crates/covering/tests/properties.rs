//! Property-based tests for the covering solvers.

use proptest::collection::vec;
use proptest::prelude::*;

use mcast_covering::{
    check_budgets, check_cover, greedy_mcg, greedy_mcg_opts, greedy_set_cover, group_costs,
    reference, solve_scg, total_cost, SetId, SetSystem, SetSystemBuilder,
};

/// Strategy: a random set system over `n` elements where every element is
/// guaranteed coverable (each element gets one singleton set in group 0,
/// plus random extra sets).
fn coverable_system() -> impl Strategy<Value = SetSystem<u64>> {
    (2usize..12, 0usize..14).prop_flat_map(|(n, extra)| {
        let singleton_costs = vec(1u64..20, n);
        let extras = vec((vec(0u32..(n as u32), 1..=n), 1u64..20, 0u32..4), extra);
        (singleton_costs, extras).prop_map(move |(costs, extras)| {
            let mut b = SetSystemBuilder::<u64>::new(n);
            for (e, c) in costs.into_iter().enumerate() {
                b.push_set([e as u32], c, 0).unwrap();
            }
            for (members, cost, group) in extras {
                b.push_set(members, cost, group).unwrap();
            }
            b.build().unwrap()
        })
    })
}

/// Brute-force optimal set cover cost for tiny systems (≤ 14 sets).
fn optimal_cover_cost(system: &SetSystem<u64>) -> Option<u64> {
    let m = system.n_sets();
    if m > 20 {
        return None;
    }
    let mut best: Option<u64> = None;
    for mask in 0u32..(1 << m) {
        let sets: Vec<SetId> = (0..m)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| SetId(i as u32))
            .collect();
        if check_cover(system, &sets) {
            let c = total_cost(system, &sets);
            best = Some(best.map_or(c, |b: u64| b.min(c)));
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn greedy_cover_covers_everything(system in coverable_system()) {
        let cover = greedy_set_cover(&system).unwrap();
        prop_assert!(cover.covers_all());
        prop_assert!(check_cover(&system, cover.chosen()));
        // Reported total equals recomputed total.
        prop_assert_eq!(*cover.total_cost(), total_cost(&system, cover.chosen()));
    }

    #[test]
    fn greedy_cover_assignment_is_consistent(system in coverable_system()) {
        let cover = greedy_set_cover(&system).unwrap();
        for (e, assigned) in cover.assignment().iter().enumerate() {
            let sid = assigned.expect("full cover assigns every element");
            prop_assert!(system.set(sid).members().iter().any(|m| m.0 as usize == e));
        }
        // Chosen sets are distinct and each newly covers at least one element.
        let mut seen = std::collections::HashSet::new();
        for (sid, news) in cover.chosen().iter().zip(cover.newly_covered()) {
            prop_assert!(seen.insert(*sid));
            prop_assert!(!news.is_empty());
        }
    }

    #[test]
    fn greedy_cover_within_harmonic_factor(system in coverable_system()) {
        // ln(n) + 1 guarantee; we check the (weaker) harmonic-number bound
        // H(n) * OPT which the greedy provably satisfies.
        if system.n_sets() <= 18 {
            let cover = greedy_set_cover(&system).unwrap();
            let opt = optimal_cover_cost(&system).unwrap();
            let n = system.n_elements() as f64;
            let h = (1..=system.n_elements()).map(|k| 1.0 / k as f64).sum::<f64>();
            let _ = n;
            prop_assert!(
                (*cover.total_cost() as f64) <= h * (opt as f64) + 1e-9,
                "greedy {} vs H(n)*opt {}",
                cover.total_cost(),
                h * opt as f64
            );
        }
    }

    #[test]
    fn mcg_feasible_half_respects_budgets(
        system in coverable_system(),
        budget in 1u64..40,
    ) {
        let budgets = vec![budget; system.n_groups()];
        let sol = greedy_mcg(&system, &budgets);
        prop_assert!(check_budgets(&system, sol.feasible().chosen(), &budgets));
        // Picks are distinct.
        let mut seen = std::collections::HashSet::new();
        for s in sol.all() {
            prop_assert!(seen.insert(*s));
        }
        // The feasible half is a sub-multiset of the raw selection.
        for s in sol.feasible().chosen() {
            prop_assert!(sol.all().contains(s));
        }
        // Covered counts agree with the union of the halves' picks.
        prop_assert_eq!(
            sol.all_covered_count(),
            sol.all_newly_covered().iter().map(Vec::len).sum::<usize>()
        );
    }

    #[test]
    fn mcg_halves_cover_at_least_half_of_h(
        system in coverable_system(),
        budget in 1u64..40,
    ) {
        let budgets = vec![budget; system.n_groups()];
        let sol = greedy_mcg(&system, &budgets);
        // max(|H1|, |H2|) >= |H| / 2 — the partition argument of Theorem 2.
        prop_assert!(2 * sol.feasible().covered_count() >= sol.all_covered_count());
    }

    #[test]
    fn scg_covers_all_and_reports_true_max(system in coverable_system()) {
        // Candidate grid: all distinct set costs plus the total cost —
        // the largest always succeeds because every element has a
        // singleton set.
        let mut candidates: Vec<u64> = system.sets().iter().map(|s| *s.cost()).collect();
        let all: Vec<SetId> = (0..system.n_sets()).map(|i| SetId(i as u32)).collect();
        candidates.push(total_cost(&system, &all));
        candidates.sort_unstable();
        candidates.dedup();
        let sol = solve_scg(&system, &candidates).unwrap();
        prop_assert!(sol.cover().covers_all());
        let gc = group_costs(&system, sol.cover().chosen());
        prop_assert_eq!(gc.into_iter().max().unwrap(), *sol.max_group_cost());
        prop_assert!(candidates.contains(sol.budget_used()));
    }

    // ---- Lazy-greedy vs full-rescan reference equivalence ----
    //
    // The fast solvers (CELF heap + carried tie class, see
    // `crates/covering/src/celf.rs`) must select the *identical* set
    // sequence as the verbatim pre-optimization scans kept in
    // `mcast_covering::reference` — not just equally good covers. These
    // properties pin that bit-for-bit claim on random systems, where
    // effectiveness ties and budget-exhaustion edge cases are common.

    #[test]
    fn lazy_set_cover_selects_identical_sequence(system in coverable_system()) {
        let fast = greedy_set_cover(&system).unwrap();
        let slow = reference::greedy_set_cover(&system).unwrap();
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn lazy_mcg_selects_identical_sequence(
        system in coverable_system(),
        budget in 1u64..40,
    ) {
        let budgets = vec![budget; system.n_groups()];
        let fast = greedy_mcg(&system, &budgets);
        let slow = reference::greedy_mcg(&system, &budgets);
        prop_assert_eq!(fast.all(), slow.all());
        prop_assert_eq!(fast.violating(), slow.violating());
        prop_assert_eq!(fast.all_newly_covered(), slow.all_newly_covered());
        prop_assert_eq!(fast.feasible(), slow.feasible());
    }

    #[test]
    fn lazy_mcg_opts_matches_reference_on_residual_instances(
        system in coverable_system(),
        budget in 1u64..40,
        mask in 0u64..u64::MAX,
        skip in proptest::bool::ANY,
    ) {
        // The SCG iteration calls the opts form with partial coverage and
        // `skip_unaffordable = false`; exercise both rules.
        let covered: Vec<bool> = (0..system.n_elements())
            .map(|e| mask >> (e % 64) & 1 == 1)
            .collect();
        let budgets = vec![budget; system.n_groups()];
        let fast = greedy_mcg_opts(&system, &budgets, &covered, skip);
        let slow = reference::greedy_mcg_opts(&system, &budgets, &covered, skip);
        prop_assert_eq!(fast.all(), slow.all());
        prop_assert_eq!(fast.violating(), slow.violating());
        prop_assert_eq!(fast.all_newly_covered(), slow.all_newly_covered());
        prop_assert_eq!(fast.feasible(), slow.feasible());
    }

    #[test]
    fn lazy_scg_selects_identical_solution(system in coverable_system()) {
        let mut candidates: Vec<u64> = system.sets().iter().map(|s| *s.cost()).collect();
        let all: Vec<SetId> = (0..system.n_sets()).map(|i| SetId(i as u32)).collect();
        candidates.push(total_cost(&system, &all));
        candidates.sort_unstable();
        candidates.dedup();
        let fast = solve_scg(&system, &candidates).unwrap();
        let slow = reference::solve_scg(&system, &candidates).unwrap();
        prop_assert_eq!(fast.cover(), slow.cover());
        prop_assert_eq!(fast.max_group_cost(), slow.max_group_cost());
        prop_assert_eq!(fast.budget_used(), slow.budget_used());
    }

    #[test]
    fn scg_no_worse_than_single_budget_run(system in coverable_system()) {
        // Adding more candidates can only improve (or keep) the objective.
        let all: Vec<SetId> = (0..system.n_sets()).map(|i| SetId(i as u32)).collect();
        let big = total_cost(&system, &all);
        let coarse = solve_scg(&system, &[big]).unwrap();
        let mut candidates: Vec<u64> = system.sets().iter().map(|s| *s.cost()).collect();
        candidates.push(big);
        candidates.sort_unstable();
        candidates.dedup();
        let fine = solve_scg(&system, &candidates).unwrap();
        prop_assert!(fine.max_group_cost() <= coarse.max_group_cost());
    }
}
