//! Greedy **Maximum Coverage with Group Budgets** — paper Fig. 3, after
//! Chekuri & Kumar (APPROX 2004), cost version with no overall budget.

use crate::cost::Cost;
use crate::set_cover::Cover;
use crate::system::{ElementId, SetId, SetSystem};

/// Outcome of [`greedy_mcg`].
///
/// `all` is the raw greedy selection `H` (which may overrun group budgets by
/// the final set each group accepted); [`McgSolution::feasible`] is the
/// better-covering of the partition `H₁`/`H₂`, each of which respects every
/// group budget — this is the 8-approximate solution of Theorem 2.
#[derive(Debug, Clone)]
pub struct McgSolution<C> {
    all: Vec<SetId>,
    all_newly_covered: Vec<Vec<ElementId>>,
    violating: Vec<bool>,
    feasible: Cover<C>,
}

impl<C: Cost> McgSolution<C> {
    /// The raw greedy selection `H`, in pick order. Used by the SCG wrapper
    /// (BLA), which re-budgets every iteration.
    pub fn all(&self) -> &[SetId] {
        &self.all
    }

    /// For the `i`-th set of [`all`](McgSolution::all), the elements it
    /// newly covered when picked.
    pub fn all_newly_covered(&self) -> &[Vec<ElementId>] {
        &self.all_newly_covered
    }

    /// For the `i`-th set of [`all`](McgSolution::all), whether adding it
    /// pushed its group's accumulated cost strictly over the budget
    /// (the `H₂` membership test).
    pub fn violating(&self) -> &[bool] {
        &self.violating
    }

    /// The budget-feasible half (`H₁` or `H₂`, whichever covers more),
    /// with assignments recomputed within the half.
    pub fn feasible(&self) -> &Cover<C> {
        &self.feasible
    }

    /// Total elements covered by the raw selection `H`.
    pub fn all_covered_count(&self) -> usize {
        self.all_newly_covered.iter().map(Vec::len).sum()
    }
}

/// Runs the MCG greedy with every element initially uncovered, skipping
/// sets whose individual cost exceeds their group's budget.
///
/// `budgets[g]` is the budget of group `g` (`budgets.len()` must equal
/// `system.n_groups()`). The skip enforces the paper's assumption that "the
/// cost of any single set in any group is not more than the budget" — such
/// sets are unusable by any feasible MNU solution anyway, and dropping them
/// is what makes the `H₁`/`H₂` halves feasible (Theorem 2).
///
/// # Panics
///
/// Panics if `budgets.len() != system.n_groups()`.
pub fn greedy_mcg<C: Cost>(system: &SetSystem<C>, budgets: &[C]) -> McgSolution<C> {
    greedy_mcg_opts(system, budgets, &vec![false; system.n_elements()], true)
}

/// Like [`greedy_mcg`], but elements flagged in `initially_covered` count
/// as already covered (they contribute nothing and are never assigned) —
/// the residual-instance form used by the SCG iteration.
///
/// `skip_unaffordable` selects the rule for sets costing more than their
/// group's budget: `true` drops them (MNU semantics, required for the
/// feasibility of the returned halves); `false` admits them as the
/// budget-crossing pick, exactly as Fig. 3's line 5 condition
/// (`c(H ∩ G_i) < B_i`) allows — the right semantics for SCG/BLA, where
/// `B*` is a spreading knob rather than a hard budget.
///
/// # Panics
///
/// Panics if `budgets.len() != system.n_groups()` or
/// `initially_covered.len() != system.n_elements()`.
pub fn greedy_mcg_opts<C: Cost>(
    system: &SetSystem<C>,
    budgets: &[C],
    initially_covered: &[bool],
    skip_unaffordable: bool,
) -> McgSolution<C> {
    assert_eq!(
        budgets.len(),
        system.n_groups(),
        "one budget per group required"
    );
    assert_eq!(initially_covered.len(), system.n_elements());

    let n = system.n_elements();
    let mut covered = initially_covered.to_vec();
    // Residual |S ∩ X'| per set.
    let mut residual: Vec<u64> = system
        .sets()
        .iter()
        .map(|s| {
            s.members()
                .iter()
                .filter(|e| !covered[e.0 as usize])
                .count() as u64
        })
        .collect();
    let mut group_cost: Vec<C> = vec![C::zero(); system.n_groups()];
    let mut all: Vec<SetId> = Vec::new();
    let mut all_news: Vec<Vec<ElementId>> = Vec::new();
    let mut violating: Vec<bool> = Vec::new();

    loop {
        // Line 4–10 of Fig. 3: each group whose budget is not exhausted
        // proposes its most cost-effective set; we additionally require the
        // proposal to cover at least one new element (a zero-gain set can
        // never improve coverage, only burn budget).
        let mut best: Option<(SetId, u64)> = None;
        for g in 0..system.n_groups() {
            if group_cost[g] >= budgets[g] {
                continue;
            }
            for &sid in system.group_sets(crate::system::GroupId(g as u32)) {
                let set = system.set(sid);
                if skip_unaffordable && *set.cost() > budgets[g] {
                    continue; // unusable by any budget-feasible solution
                }
                let news = residual[sid.0 as usize];
                if news == 0 {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((bid, bnews)) => {
                        match C::cmp_effectiveness(news, set.cost(), bnews, system.set(bid).cost())
                        {
                            std::cmp::Ordering::Greater => true,
                            // Equal effectiveness: prefer the less-loaded
                            // group (tie-breaking is unspecified in the
                            // paper; this choice spreads load, which only
                            // helps the SCG/BLA use and is neutral for
                            // pure coverage).
                            std::cmp::Ordering::Equal => {
                                group_cost[g] < group_cost[system.set(bid).group().0 as usize]
                            }
                            std::cmp::Ordering::Less => false,
                        }
                    }
                };
                if better {
                    best = Some((sid, news));
                }
            }
        }
        let Some((sid, _)) = best else { break };

        let set = system.set(sid);
        let g = set.group().0 as usize;
        let news: Vec<ElementId> = set
            .members()
            .iter()
            .copied()
            .filter(|e| !covered[e.0 as usize])
            .collect();
        for &e in &news {
            covered[e.0 as usize] = true;
            for &other in system.covering_sets(e) {
                residual[other.0 as usize] -= 1;
            }
        }
        group_cost[g] = group_cost[g].add(set.cost());
        violating.push(group_cost[g] > budgets[g]);
        all.push(sid);
        all_news.push(news);

        if covered.iter().all(|&c| c) {
            break;
        }
    }

    // Partition H into H₁ (additions that stayed within budget) and H₂
    // (additions that crossed it; at most one per group, each individually
    // within budget), then keep the half covering more *new* elements.
    let feasible = better_half(system, n, initially_covered, &all, &violating);

    McgSolution {
        all,
        all_newly_covered: all_news,
        violating,
        feasible,
    }
}

fn better_half<C: Cost>(
    system: &SetSystem<C>,
    n: usize,
    initially_covered: &[bool],
    all: &[SetId],
    violating: &[bool],
) -> Cover<C> {
    let half = |want_violating: bool| -> Vec<SetId> {
        all.iter()
            .zip(violating)
            .filter(|(_, &v)| v == want_violating)
            .map(|(&s, _)| s)
            .collect()
    };
    let build = |ids: &[SetId]| -> Cover<C> {
        let mut covered = initially_covered.to_vec();
        let mut picks = Vec::new();
        for &sid in ids {
            let news: Vec<ElementId> = system
                .set(sid)
                .members()
                .iter()
                .copied()
                .filter(|e| !covered[e.0 as usize])
                .collect();
            for &e in &news {
                covered[e.0 as usize] = true;
            }
            picks.push((sid, news, system.set(sid).cost().clone()));
        }
        Cover::from_picks(n, picks)
    };
    let h1 = build(&half(false));
    let h2 = build(&half(true));
    // `Cover::covered_count` counts assignments, which here include only the
    // elements this half newly covers (initially covered ones are unassigned).
    if h2.covered_count() > h1.covered_count() {
        h2
    } else {
        h1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SetSystemBuilder;
    use crate::verify::{check_budgets, group_costs};

    /// The paper's Fig. 2 MCG instance (MNU reduction of Fig. 1 with both
    /// sessions at 3 Mbps). Costs ×12: cost = 12 * (3 / rate).
    ///
    /// Ground set: u1..u5 = 0..4. Budgets: 12 per AP (load 1).
    fn figure2() -> (SetSystem<u64>, Vec<u64>) {
        let mut b = SetSystemBuilder::<u64>::new(5);
        b.push_set([2], 12 * 3 / 4, 0).unwrap(); // S1: a1,s1@4 {u3} cost 9
        b.push_set([0, 2], 12 * 3 / 3, 0).unwrap(); // S2: a1,s1@3 {u1,u3} cost 12
        b.push_set([1], 12 * 3 / 6, 0).unwrap(); // S3: a1,s2@6 {u2} cost 6
        b.push_set([1, 3, 4], 12 * 3 / 4, 0).unwrap(); // S4: a1,s2@4 {u2,u4,u5} cost 9
        b.push_set([2], 12 * 3 / 5, 1).unwrap(); // S5: a2,s1@5 {u3} cost 36/5 -> not integral!
        b.push_set([3], 12 * 3 / 5, 1).unwrap(); // S6
        b.push_set([3, 4], 12 * 3 / 3, 1).unwrap(); // S7: a2,s2@3 {u4,u5} cost 12
        (b.build().unwrap(), vec![12, 12])
    }

    #[test]
    fn paper_figure2_mnu_example() {
        // NOTE: 12*3/5 = 7 by integer division (36/5 = 7.2); the slight
        // rounding does not change any greedy comparison in this instance.
        let (system, budgets) = figure2();
        let sol = greedy_mcg(&system, &budgets);
        // Paper walk-through: S4 first (eff 3/(3/4) = 4), then S2
        // (eff 2/1 = 2, a1 still under budget), then stop; H = {S4, S2},
        // H exceeds a1's budget (9 + 12 = 21 > 12), H1 = {S4}, H2 = {S2};
        // H1 covers 3 > 2, so the feasible half is {S4}: u2,u4,u5 on a1.
        assert_eq!(sol.all(), &[SetId(3), SetId(1)]);
        assert_eq!(sol.violating(), &[false, true]);
        let feasible = sol.feasible();
        assert_eq!(feasible.chosen(), &[SetId(3)]);
        assert_eq!(feasible.covered_count(), 3);
        assert!(check_budgets(&system, feasible.chosen(), &budgets));
    }

    #[test]
    fn respects_per_group_budget_in_feasible_half() {
        let mut b = SetSystemBuilder::<u64>::new(6);
        b.push_set([0, 1], 5, 0).unwrap();
        b.push_set([2, 3], 5, 0).unwrap();
        b.push_set([4, 5], 5, 0).unwrap();
        let system = b.build().unwrap();
        let sol = greedy_mcg(&system, &[7]);
        // Greedy adds two sets (second crosses 7); halves are {first} and
        // {second}; tie at 2 covered each -> H1 wins.
        assert_eq!(sol.all().len(), 2);
        assert_eq!(sol.feasible().chosen().len(), 1);
        let gc = group_costs(&system, sol.feasible().chosen());
        assert!(gc[0] <= 7);
    }

    #[test]
    fn ignores_sets_costlier_than_budget() {
        let mut b = SetSystemBuilder::<u64>::new(2);
        b.push_set([0, 1], 10, 0).unwrap(); // unaffordable
        b.push_set([0], 2, 0).unwrap();
        let system = b.build().unwrap();
        let sol = greedy_mcg(&system, &[5]);
        assert_eq!(sol.all(), &[SetId(1)]);
        assert_eq!(sol.feasible().covered_count(), 1);
    }

    #[test]
    fn zero_gain_sets_never_picked() {
        let mut b = SetSystemBuilder::<u64>::new(2);
        b.push_set([0, 1], 2, 0).unwrap();
        b.push_set([0], 1, 1).unwrap(); // nothing new after S0
        let system = b.build().unwrap();
        let sol = greedy_mcg(&system, &[10, 10]);
        assert_eq!(sol.all(), &[SetId(0)]);
    }

    #[test]
    fn initially_covered_elements_are_skipped() {
        let mut b = SetSystemBuilder::<u64>::new(3);
        b.push_set([0, 1], 2, 0).unwrap();
        b.push_set([2], 1, 0).unwrap();
        let system = b.build().unwrap();
        let sol = greedy_mcg_opts(&system, &[10], &[true, true, false], true);
        // Only element 2 is worth anything now.
        assert_eq!(sol.all(), &[SetId(1)]);
        assert_eq!(sol.feasible().covered_count(), 1);
        assert_eq!(sol.feasible().assignment()[0], None);
        assert_eq!(sol.feasible().assignment()[2], Some(SetId(1)));
    }

    #[test]
    fn stops_when_every_group_budget_exhausted() {
        let mut b = SetSystemBuilder::<u64>::new(4);
        b.push_set([0], 3, 0).unwrap();
        b.push_set([1], 3, 0).unwrap();
        b.push_set([2], 3, 0).unwrap();
        b.push_set([3], 3, 0).unwrap();
        let system = b.build().unwrap();
        let sol = greedy_mcg(&system, &[4]);
        // First pick: cost 3 < 4 budget. Second pick crosses (6 > 4).
        // Then the group is exhausted: 2 picks total.
        assert_eq!(sol.all().len(), 2);
        assert_eq!(sol.violating(), &[false, true]);
        assert_eq!(sol.feasible().covered_count(), 1);
    }
}
