//! Greedy **Maximum Coverage with Group Budgets** — paper Fig. 3, after
//! Chekuri & Kumar (APPROX 2004), cost version with no overall budget.
//!
//! The selection loop is a lazy greedy (see [`crate::celf`]): stale
//! marginal gains live in a max-heap and only the popped top is
//! re-evaluated. Because the naive scan's tie-break consults the *current*
//! group costs, a fresh top entry alone does not determine the pick — all
//! entries tying on effectiveness are drained, re-evaluated, and the
//! winner chosen by `(group cost, group, set id)` ascending, which is
//! exactly the order the reference scan's "strictly smaller group cost
//! replaces, first scanned wins" rule induces. The selected sequence is
//! bit-for-bit identical to [`crate::reference::greedy_mcg_opts`].

use std::collections::binary_heap::PeekMut;
use std::collections::BinaryHeap;

use crate::celf::GainEntry;
use crate::cost::Cost;
use crate::set_cover::Cover;
use crate::system::{ElementId, SetId, SetSystem};

/// Outcome of [`greedy_mcg`].
///
/// `all` is the raw greedy selection `H` (which may overrun group budgets by
/// the final set each group accepted); [`McgSolution::feasible`] is the
/// better-covering of the partition `H₁`/`H₂`, each of which respects every
/// group budget — this is the 8-approximate solution of Theorem 2.
#[derive(Debug, Clone)]
pub struct McgSolution<C> {
    all: Vec<SetId>,
    all_newly_covered: Vec<Vec<ElementId>>,
    violating: Vec<bool>,
    feasible: Cover<C>,
}

impl<C: Cost> McgSolution<C> {
    /// The raw greedy selection `H`, in pick order. Used by the SCG wrapper
    /// (BLA), which re-budgets every iteration.
    pub fn all(&self) -> &[SetId] {
        &self.all
    }

    /// For the `i`-th set of [`all`](McgSolution::all), the elements it
    /// newly covered when picked.
    pub fn all_newly_covered(&self) -> &[Vec<ElementId>] {
        &self.all_newly_covered
    }

    /// For the `i`-th set of [`all`](McgSolution::all), whether adding it
    /// pushed its group's accumulated cost strictly over the budget
    /// (the `H₂` membership test).
    pub fn violating(&self) -> &[bool] {
        &self.violating
    }

    /// The budget-feasible half (`H₁` or `H₂`, whichever covers more),
    /// with assignments recomputed within the half.
    pub fn feasible(&self) -> &Cover<C> {
        &self.feasible
    }

    /// Total elements covered by the raw selection `H`.
    pub fn all_covered_count(&self) -> usize {
        self.all_newly_covered.iter().map(Vec::len).sum()
    }

    pub(crate) fn new(
        all: Vec<SetId>,
        all_newly_covered: Vec<Vec<ElementId>>,
        violating: Vec<bool>,
        feasible: Cover<C>,
    ) -> McgSolution<C> {
        McgSolution {
            all,
            all_newly_covered,
            violating,
            feasible,
        }
    }
}

/// Runs the MCG greedy with every element initially uncovered, skipping
/// sets whose individual cost exceeds their group's budget.
///
/// `budgets[g]` is the budget of group `g` (`budgets.len()` must equal
/// `system.n_groups()`). The skip enforces the paper's assumption that "the
/// cost of any single set in any group is not more than the budget" — such
/// sets are unusable by any feasible MNU solution anyway, and dropping them
/// is what makes the `H₁`/`H₂` halves feasible (Theorem 2).
///
/// # Panics
///
/// Panics if `budgets.len() != system.n_groups()`.
pub fn greedy_mcg<C: Cost>(system: &SetSystem<C>, budgets: &[C]) -> McgSolution<C> {
    greedy_mcg_opts(system, budgets, &vec![false; system.n_elements()], true)
}

/// Like [`greedy_mcg`], but elements flagged in `initially_covered` count
/// as already covered (they contribute nothing and are never assigned) —
/// the residual-instance form used by the SCG iteration.
///
/// `skip_unaffordable` selects the rule for sets costing more than their
/// group's budget: `true` drops them (MNU semantics, required for the
/// feasibility of the returned halves); `false` admits them as the
/// budget-crossing pick, exactly as Fig. 3's line 5 condition
/// (`c(H ∩ G_i) < B_i`) allows — the right semantics for SCG/BLA, where
/// `B*` is a spreading knob rather than a hard budget.
///
/// # Panics
///
/// Panics if `budgets.len() != system.n_groups()` or
/// `initially_covered.len() != system.n_elements()`.
pub fn greedy_mcg_opts<C: Cost>(
    system: &SetSystem<C>,
    budgets: &[C],
    initially_covered: &[bool],
    skip_unaffordable: bool,
) -> McgSolution<C> {
    assert_eq!(
        budgets.len(),
        system.n_groups(),
        "one budget per group required"
    );
    assert_eq!(initially_covered.len(), system.n_elements());

    let n = system.n_elements();
    let mut covered = initially_covered.to_vec();
    let mut n_uncovered = covered.iter().filter(|&&c| !c).count();
    // Residual |S ∩ X'| per set. With nothing initially covered (the plain
    // `greedy_mcg` entry) that is just the set size — skip the O(total
    // membership) per-element scan.
    let mut residual: Vec<u64> = if n_uncovered == n {
        system
            .sets()
            .iter()
            .map(|s| s.members().len() as u64)
            .collect()
    } else {
        system
            .sets()
            .iter()
            .map(|s| {
                s.members()
                    .iter()
                    .filter(|e| !covered[e.0 as usize])
                    .count() as u64
            })
            .collect()
    };
    let mut group_cost: Vec<C> = vec![C::zero(); system.n_groups()];
    let mut all: Vec<SetId> = Vec::new();
    let mut all_news: Vec<Vec<ElementId>> = Vec::new();
    let mut violating: Vec<bool> = Vec::new();

    // Lazy-greedy heap over every potentially usable set. Unaffordable
    // sets (under the skip rule) are excluded up front — budgets never
    // change, so the naive scan would skip them on every pick anyway.
    // Zero-gain sets are excluded too; gains only shrink.
    let mut heap: BinaryHeap<GainEntry<C>> = system
        .sets()
        .iter()
        .enumerate()
        .filter(|&(i, set)| {
            residual[i] > 0 && !(skip_unaffordable && *set.cost() > budgets[set.group().0 as usize])
        })
        .map(|(i, set)| GainEntry {
            gain: residual[i],
            cost: set.cost().clone(),
            tie: (set.group().0, i as u32),
        })
        .collect();
    // The current effectiveness-tie class, kept *outside* the heap across
    // picks. Invariant at each pick: every heap entry's stored (stale,
    // upper-bound) effectiveness is strictly below the class's, so any
    // class member that re-validates (gain unchanged, group within budget)
    // is still a true maximum and the next winner comes from the class with
    // no heap traffic at all. Draining the often-large tie class back and
    // forth through the heap was the dominant cost of this loop.
    let mut tied: Vec<GainEntry<C>> = Vec::new();

    while n_uncovered > 0 {
        // Re-validate the carried class against the previous pick: discard
        // members whose group is now exhausted or whose gain hit zero, and
        // demote members whose gain shrank back into the heap (their fresh
        // effectiveness is strictly below the class's, and it is exact, so
        // the stale-upper-bound heap invariant holds).
        let mut i = 0;
        while i < tied.len() {
            let g = tied[i].group_index();
            let fresh = residual[tied[i].set_index()];
            if group_cost[g] >= budgets[g] || fresh == 0 {
                tied.swap_remove(i); // never usable again
            } else if fresh < tied[i].gain {
                let mut e = tied.swap_remove(i);
                e.gain = fresh;
                heap.push(e);
            } else {
                i += 1;
            }
        }

        if tied.is_empty() {
            // Line 4–10 of Fig. 3: each group whose budget is not exhausted
            // proposes its most cost-effective set; we additionally require
            // the proposal to cover at least one new element (a zero-gain
            // set can never improve coverage, only burn budget). Lazily:
            // re-evaluate the top until it is current — it is then the true
            // maximum. `peek_mut` refreshes stale gains in place (sift-down
            // on drop), halving the heap traffic of a pop + push.
            let lead = loop {
                let Some(mut top) = heap.peek_mut() else {
                    break None;
                };
                if group_cost[top.group_index()] >= budgets[top.group_index()] {
                    PeekMut::pop(top); // group exhausted for good (costs only grow)
                    continue;
                }
                let fresh = residual[top.set_index()];
                if fresh == 0 {
                    PeekMut::pop(top); // gains only shrink: never usable again
                    continue;
                }
                if fresh < top.gain {
                    top.gain = fresh; // drop re-sifts the refreshed entry
                    continue;
                }
                break Some(PeekMut::pop(top));
            };
            let Some(lead) = lead else { break };

            // The naive scan breaks effectiveness ties by the *current*
            // group cost (prefer the less-loaded group, then scan order).
            // Drain every entry whose stale gain still ties the lead — a
            // stale tie's fresh effectiveness is strictly lower, so only
            // up-to-date entries compete.
            tied.push(lead);
            loop {
                let Some(mut top) = heap.peek_mut() else {
                    break;
                };
                if top.cmp_effectiveness(&tied[0]) != std::cmp::Ordering::Equal {
                    break;
                }
                if group_cost[top.group_index()] >= budgets[top.group_index()] {
                    PeekMut::pop(top);
                    continue;
                }
                let fresh = residual[top.set_index()];
                if fresh == 0 {
                    PeekMut::pop(top);
                    continue;
                }
                if fresh < top.gain {
                    // Strictly worse once refreshed, so it leaves the tie;
                    // the drop sifts it down and the loop re-examines the
                    // new top.
                    top.gain = fresh;
                    continue;
                }
                tied.push(PeekMut::pop(top));
            }
        }

        // Pick the (group cost, group, id)-minimal class member — exactly
        // the winner the reference scan's "strictly smaller group cost
        // replaces, first scanned wins" rule induces. The rest of the class
        // stays in `tied` for the next pick.
        let wi = tied
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                (&group_cost[a.group_index()], a.tie).cmp(&(&group_cost[b.group_index()], b.tie))
            })
            .map(|(i, _)| i)
            .expect("tied contains at least the lead");
        let winner = tied.swap_remove(wi);

        let sid = SetId(winner.tie.1);
        let set = system.set(sid);
        let g = set.group().0 as usize;
        let news: Vec<ElementId> = set
            .members()
            .iter()
            .copied()
            .filter(|e| !covered[e.0 as usize])
            .collect();
        for &e in &news {
            covered[e.0 as usize] = true;
            n_uncovered -= 1;
            for &other in system.covering_sets(e) {
                residual[other.0 as usize] -= 1;
            }
        }
        group_cost[g] = group_cost[g].add(set.cost());
        violating.push(group_cost[g] > budgets[g]);
        all.push(sid);
        all_news.push(news);
    }

    // Partition H into H₁ (additions that stayed within budget) and H₂
    // (additions that crossed it; at most one per group, each individually
    // within budget), then keep the half covering more *new* elements.
    let feasible = better_half(system, n, initially_covered, &all, &violating);

    McgSolution {
        all,
        all_newly_covered: all_news,
        violating,
        feasible,
    }
}

pub(crate) fn better_half<C: Cost>(
    system: &SetSystem<C>,
    n: usize,
    initially_covered: &[bool],
    all: &[SetId],
    violating: &[bool],
) -> Cover<C> {
    let half = |want_violating: bool| -> Vec<SetId> {
        all.iter()
            .zip(violating)
            .filter(|(_, &v)| v == want_violating)
            .map(|(&s, _)| s)
            .collect()
    };
    let build = |ids: &[SetId]| -> Cover<C> {
        let mut covered = initially_covered.to_vec();
        let mut picks = Vec::new();
        for &sid in ids {
            let news: Vec<ElementId> = system
                .set(sid)
                .members()
                .iter()
                .copied()
                .filter(|e| !covered[e.0 as usize])
                .collect();
            for &e in &news {
                covered[e.0 as usize] = true;
            }
            picks.push((sid, news, system.set(sid).cost().clone()));
        }
        Cover::from_picks(n, picks)
    };
    let h1 = build(&half(false));
    let h2 = build(&half(true));
    // `Cover::covered_count` counts assignments, which here include only the
    // elements this half newly covers (initially covered ones are unassigned).
    if h2.covered_count() > h1.covered_count() {
        h2
    } else {
        h1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SetSystemBuilder;
    use crate::verify::{check_budgets, group_costs};

    /// The paper's Fig. 2 MCG instance (MNU reduction of Fig. 1 with both
    /// sessions at 3 Mbps). Costs ×12: cost = 12 * (3 / rate).
    ///
    /// Ground set: u1..u5 = 0..4. Budgets: 12 per AP (load 1).
    fn figure2() -> (SetSystem<u64>, Vec<u64>) {
        let mut b = SetSystemBuilder::<u64>::new(5);
        b.push_set([2], 12 * 3 / 4, 0).unwrap(); // S1: a1,s1@4 {u3} cost 9
        b.push_set([0, 2], 12 * 3 / 3, 0).unwrap(); // S2: a1,s1@3 {u1,u3} cost 12
        b.push_set([1], 12 * 3 / 6, 0).unwrap(); // S3: a1,s2@6 {u2} cost 6
        b.push_set([1, 3, 4], 12 * 3 / 4, 0).unwrap(); // S4: a1,s2@4 {u2,u4,u5} cost 9
        b.push_set([2], 12 * 3 / 5, 1).unwrap(); // S5: a2,s1@5 {u3} cost 36/5 -> not integral!
        b.push_set([3], 12 * 3 / 5, 1).unwrap(); // S6
        b.push_set([3, 4], 12 * 3 / 3, 1).unwrap(); // S7: a2,s2@3 {u4,u5} cost 12
        (b.build().unwrap(), vec![12, 12])
    }

    #[test]
    fn paper_figure2_mnu_example() {
        // NOTE: 12*3/5 = 7 by integer division (36/5 = 7.2); the slight
        // rounding does not change any greedy comparison in this instance.
        let (system, budgets) = figure2();
        let sol = greedy_mcg(&system, &budgets);
        // Paper walk-through: S4 first (eff 3/(3/4) = 4), then S2
        // (eff 2/1 = 2, a1 still under budget), then stop; H = {S4, S2},
        // H exceeds a1's budget (9 + 12 = 21 > 12), H1 = {S4}, H2 = {S2};
        // H1 covers 3 > 2, so the feasible half is {S4}: u2,u4,u5 on a1.
        assert_eq!(sol.all(), &[SetId(3), SetId(1)]);
        assert_eq!(sol.violating(), &[false, true]);
        let feasible = sol.feasible();
        assert_eq!(feasible.chosen(), &[SetId(3)]);
        assert_eq!(feasible.covered_count(), 3);
        assert!(check_budgets(&system, feasible.chosen(), &budgets));
    }

    #[test]
    fn respects_per_group_budget_in_feasible_half() {
        let mut b = SetSystemBuilder::<u64>::new(6);
        b.push_set([0, 1], 5, 0).unwrap();
        b.push_set([2, 3], 5, 0).unwrap();
        b.push_set([4, 5], 5, 0).unwrap();
        let system = b.build().unwrap();
        let sol = greedy_mcg(&system, &[7]);
        // Greedy adds two sets (second crosses 7); halves are {first} and
        // {second}; tie at 2 covered each -> H1 wins.
        assert_eq!(sol.all().len(), 2);
        assert_eq!(sol.feasible().chosen().len(), 1);
        let gc = group_costs(&system, sol.feasible().chosen());
        assert!(gc[0] <= 7);
    }

    #[test]
    fn ignores_sets_costlier_than_budget() {
        let mut b = SetSystemBuilder::<u64>::new(2);
        b.push_set([0, 1], 10, 0).unwrap(); // unaffordable
        b.push_set([0], 2, 0).unwrap();
        let system = b.build().unwrap();
        let sol = greedy_mcg(&system, &[5]);
        assert_eq!(sol.all(), &[SetId(1)]);
        assert_eq!(sol.feasible().covered_count(), 1);
    }

    #[test]
    fn zero_gain_sets_never_picked() {
        let mut b = SetSystemBuilder::<u64>::new(2);
        b.push_set([0, 1], 2, 0).unwrap();
        b.push_set([0], 1, 1).unwrap(); // nothing new after S0
        let system = b.build().unwrap();
        let sol = greedy_mcg(&system, &[10, 10]);
        assert_eq!(sol.all(), &[SetId(0)]);
    }

    #[test]
    fn initially_covered_elements_are_skipped() {
        let mut b = SetSystemBuilder::<u64>::new(3);
        b.push_set([0, 1], 2, 0).unwrap();
        b.push_set([2], 1, 0).unwrap();
        let system = b.build().unwrap();
        let sol = greedy_mcg_opts(&system, &[10], &[true, true, false], true);
        // Only element 2 is worth anything now.
        assert_eq!(sol.all(), &[SetId(1)]);
        assert_eq!(sol.feasible().covered_count(), 1);
        assert_eq!(sol.feasible().assignment()[0], None);
        assert_eq!(sol.feasible().assignment()[2], Some(SetId(1)));
    }

    #[test]
    fn stops_when_every_group_budget_exhausted() {
        let mut b = SetSystemBuilder::<u64>::new(4);
        b.push_set([0], 3, 0).unwrap();
        b.push_set([1], 3, 0).unwrap();
        b.push_set([2], 3, 0).unwrap();
        b.push_set([3], 3, 0).unwrap();
        let system = b.build().unwrap();
        let sol = greedy_mcg(&system, &[4]);
        // First pick: cost 3 < 4 budget. Second pick crosses (6 > 4).
        // Then the group is exhausted: 2 picks total.
        assert_eq!(sol.all().len(), 2);
        assert_eq!(sol.violating(), &[false, true]);
        assert_eq!(sol.feasible().covered_count(), 1);
    }
}
