//! CELF-style lazy-greedy machinery shared by the covering solvers.
//!
//! The classic greedy recomputes every set's marginal gain on every pick —
//! O(picks × sets). Because coverage gain is submodular (a set's residual
//! `|S ∩ X'|` only shrinks as elements get covered), a stale gain is always
//! an *upper bound* on the fresh one. The lazy greedy therefore keeps the
//! gains in a max-heap and re-evaluates only the popped top: if the popped
//! entry is up to date it is provably the true maximum and can be selected
//! without looking at anything else; otherwise it is re-inserted with its
//! fresh gain (Leskovec et al.'s CELF). Each membership `(set, element)`
//! pair can trigger at most one re-insertion, so a whole run costs
//! O(membership × log sets) instead of O(picks × sets).
//!
//! Exact tie-break reproduction: the heap order is *effectiveness
//! descending, then `tie` ascending* — the same total order the naive
//! scan's "strictly greater replaces, first scanned wins" loop induces —
//! so the lazy solvers select the identical set sequence bit for bit
//! (property-tested in `tests/properties.rs`).

use std::cmp::Ordering;

use crate::cost::Cost;

/// One heap entry: a possibly stale marginal gain for set `id`, plus the
/// static tie-break key. The `Ord` impl makes `BinaryHeap` a max-heap by
/// cost-effectiveness (`gain / cost`, compared exactly via
/// [`Cost::cmp_effectiveness`]), breaking ties toward the *smallest*
/// `tie` key.
#[derive(Debug, Clone)]
pub(crate) struct GainEntry<C> {
    /// Last evaluated `|S ∩ X'|` — an upper bound on the current value.
    pub gain: u64,
    /// The set's cost (cloned so comparisons need no system lookup).
    pub cost: C,
    /// Tie-break key, ascending: `(group, id)` for the group-aware MCG
    /// scan, `(0, id)` for the plain set-cover scan.
    pub tie: (u32, u32),
}

impl<C: Cost> GainEntry<C> {
    /// The set this entry scores.
    pub fn set_index(&self) -> usize {
        self.tie.1 as usize
    }

    /// The group component of the tie-break key.
    pub fn group_index(&self) -> usize {
        self.tie.0 as usize
    }

    /// Exact effectiveness comparison against another entry.
    pub fn cmp_effectiveness(&self, other: &GainEntry<C>) -> Ordering {
        C::cmp_effectiveness(self.gain, &self.cost, other.gain, &other.cost)
    }
}

impl<C: Cost> PartialEq for GainEntry<C> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl<C: Cost> Eq for GainEntry<C> {}

impl<C: Cost> PartialOrd for GainEntry<C> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<C: Cost> Ord for GainEntry<C> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_effectiveness(other)
            .then_with(|| other.tie.cmp(&self.tie))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    fn entry(gain: u64, cost: u64, tie: (u32, u32)) -> GainEntry<u64> {
        GainEntry { gain, cost, tie }
    }

    #[test]
    fn orders_by_effectiveness_then_low_tie() {
        let mut heap = BinaryHeap::new();
        heap.push(entry(1, 1, (0, 0))); // eff 1
        heap.push(entry(4, 2, (0, 1))); // eff 2
        heap.push(entry(2, 1, (0, 2))); // eff 2, later id
        heap.push(entry(2, 1, (1, 0))); // eff 2, later group
        assert_eq!(heap.pop().unwrap().tie, (0, 1));
        assert_eq!(heap.pop().unwrap().tie, (0, 2));
        assert_eq!(heap.pop().unwrap().tie, (1, 0));
        assert_eq!(heap.pop().unwrap().tie, (0, 0));
    }

    #[test]
    fn zero_gain_sorts_last() {
        let mut heap = BinaryHeap::new();
        heap.push(entry(0, 1, (0, 0)));
        heap.push(entry(1, 100, (0, 1)));
        assert_eq!(heap.pop().unwrap().tie, (0, 1));
    }
}
