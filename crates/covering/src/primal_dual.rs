//! The primal–dual ("layering") set-cover algorithm — the paper's §6.1
//! alternative: "the layer algorithm, which is bounded by a constant, can
//! also be used if for any user the number of APs that it can associate
//! with is bounded by a constant" (Vazirani, ch. 2 & 15).
//!
//! Guarantee: `f`-approximation, where `f` is the maximum *frequency* —
//! the number of sets any single element belongs to. In the WLAN
//! reduction `f` is (APs in range) × (usable rates), a constant in
//! bounded-density deployments, making this a constant-factor MLA solver
//! where the greedy only offers `ln(n) + 1`.

use crate::cost::Cost;
use crate::set_cover::{Cover, CoverError};
use crate::system::{ElementId, SetId, SetSystem};

/// Extra diagnostics of a primal–dual run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrimalDualOutcome<C> {
    /// The (pruned) cover.
    pub cover: Cover<C>,
    /// The maximum element frequency `f` — the approximation factor.
    pub max_frequency: usize,
    /// The dual objective `Σ y_e` reached — a certified lower bound on
    /// the optimal cover cost (weak duality).
    pub dual_lower_bound: C,
}

/// Primal–dual weighted set cover.
///
/// Iterates over uncovered elements in id order, raising each one's dual
/// variable until some containing set goes *tight* (its cost is fully
/// paid); tight sets enter the cover. A final reverse-delete pass prunes
/// sets made redundant by later picks. The result is at most
/// `f × OPT`, and `Σ y_e` is returned as a certified lower bound on OPT.
///
/// The extra `Sub + Copy` bounds (beyond [`Cost`]) exist because this is
/// the one covering algorithm that *decreases* residual costs; every cost
/// type in this workspace (`u32`, `u64`, `Load`) satisfies them.
///
/// # Errors
///
/// [`CoverError::Uncoverable`] if some element belongs to no set.
pub fn primal_dual_set_cover<C>(system: &SetSystem<C>) -> Result<PrimalDualOutcome<C>, CoverError>
where
    C: Cost + std::ops::Sub<Output = C> + Copy,
{
    if !system.all_coverable() {
        return Err(CoverError::Uncoverable {
            elements: system.uncoverable_elements(),
        });
    }

    let n = system.n_elements();
    // Residual (unpaid) cost per set; a set is tight at zero.
    let mut residual: Vec<C> = system.sets().iter().map(|s| *s.cost()).collect();
    let mut tight: Vec<bool> = vec![false; system.n_sets()];
    let mut covered = vec![false; n];
    let mut picked_order: Vec<SetId> = Vec::new();
    let mut dual_total = C::zero();

    for e in 0..n as u32 {
        if covered[e as usize] {
            continue;
        }
        // Raise y_e by the minimum residual among sets containing e.
        let delta = system
            .covering_sets(ElementId(e))
            .iter()
            .map(|&s| residual[s.0 as usize])
            .min()
            .expect("coverable element has sets");
        dual_total = dual_total.add(&delta);
        for &s in system.covering_sets(ElementId(e)) {
            let r = &mut residual[s.0 as usize];
            *r = *r - delta;
            if r.is_zero() && !tight[s.0 as usize] {
                tight[s.0 as usize] = true;
                picked_order.push(s);
                for &m in system.set(s).members() {
                    covered[m.0 as usize] = true;
                }
            }
        }
        debug_assert!(covered[e as usize], "raising to tightness covers e");
    }

    // Reverse delete: drop sets whose members are all covered by the
    // remaining picks (never breaks feasibility, only trims cost).
    let mut keep: Vec<bool> = vec![true; picked_order.len()];
    for i in (0..picked_order.len()).rev() {
        let s = picked_order[i];
        let redundant = system.set(s).members().iter().all(|e| {
            picked_order
                .iter()
                .zip(&keep)
                .any(|(&t, &k)| k && t != s && system.set(t).contains(*e))
        });
        if redundant {
            keep[i] = false;
        }
    }
    let kept: Vec<SetId> = picked_order
        .into_iter()
        .zip(keep)
        .filter(|(_, k)| *k)
        .map(|(s, _)| s)
        .collect();

    // Build the Cover with first-coverer assignment over the kept order.
    let mut assigned = vec![false; n];
    let mut picks = Vec::with_capacity(kept.len());
    for s in kept {
        let news: Vec<ElementId> = system
            .set(s)
            .members()
            .iter()
            .copied()
            .filter(|e| !assigned[e.0 as usize])
            .collect();
        for e in &news {
            assigned[e.0 as usize] = true;
        }
        picks.push((s, news, *system.set(s).cost()));
    }
    let cover = Cover::from_picks(n, picks);
    debug_assert!(cover.covers_all());

    let max_frequency = (0..n as u32)
        .map(|e| system.covering_sets(ElementId(e)).len())
        .max()
        .unwrap_or(0);

    Ok(PrimalDualOutcome {
        cover,
        max_frequency,
        dual_lower_bound: dual_total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_cover::greedy_set_cover;
    use crate::system::SetSystemBuilder;
    use crate::verify::{check_cover, total_cost};

    fn simple() -> SetSystem<u64> {
        let mut b = SetSystemBuilder::new(4);
        b.push_set([0, 1], 3, 0).unwrap();
        b.push_set([1, 2], 4, 0).unwrap();
        b.push_set([2, 3], 2, 1).unwrap();
        b.push_set([0], 1, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn produces_a_valid_cover() {
        let sys = simple();
        let out = primal_dual_set_cover(&sys).unwrap();
        assert!(out.cover.covers_all());
        assert!(check_cover(&sys, out.cover.chosen()));
        // f = max frequency: element 0,1,2 in 2 sets each -> f = 2.
        assert_eq!(out.max_frequency, 2);
    }

    #[test]
    fn dual_bound_certifies() {
        let sys = simple();
        let out = primal_dual_set_cover(&sys).unwrap();
        let cost = total_cost(&sys, out.cover.chosen());
        // Weak duality: dual <= OPT <= primal <= f * dual.
        assert!(out.dual_lower_bound <= cost);
        assert!(cost <= out.dual_lower_bound * out.max_frequency as u64);
        // And the greedy's cover is also >= the dual bound.
        let greedy = greedy_set_cover(&sys).unwrap();
        assert!(*greedy.total_cost() >= out.dual_lower_bound);
    }

    #[test]
    fn reverse_delete_prunes_redundant_sets() {
        // Element order makes the expensive superset tight late; the
        // reverse pass must remove early singletons it subsumes... or vice
        // versa: check no kept set is fully covered by the others.
        let mut b = SetSystemBuilder::<u64>::new(3);
        b.push_set([0], 1, 0).unwrap();
        b.push_set([1], 1, 0).unwrap();
        b.push_set([0, 1, 2], 1, 0).unwrap();
        let sys = b.build().unwrap();
        let out = primal_dual_set_cover(&sys).unwrap();
        let chosen = out.cover.chosen();
        for &s in chosen {
            let redundant = sys
                .set(s)
                .members()
                .iter()
                .all(|e| chosen.iter().any(|&t| t != s && sys.set(t).contains(*e)));
            assert!(!redundant, "kept a redundant set {s}");
        }
    }

    #[test]
    fn uncoverable_is_an_error() {
        let mut b = SetSystemBuilder::<u64>::new(2);
        b.push_set([0], 1, 0).unwrap();
        let sys = b.build().unwrap();
        assert!(matches!(
            primal_dual_set_cover(&sys).unwrap_err(),
            CoverError::Uncoverable { .. }
        ));
    }

    #[test]
    fn empty_ground_set() {
        let b = SetSystemBuilder::<u64>::new(0);
        let out = primal_dual_set_cover(&b.build().unwrap()).unwrap();
        assert!(out.cover.covers_all());
        assert_eq!(out.dual_lower_bound, 0);
    }

    #[test]
    fn within_f_times_optimal_on_small_instances() {
        // Brute-force check on the simple system: f=2, so primal <= 2 OPT.
        let sys = simple();
        let out = primal_dual_set_cover(&sys).unwrap();
        let mut opt = u64::MAX;
        for mask in 0u32..16 {
            let sets: Vec<SetId> = (0..4)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| SetId(i as u32))
                .collect();
            if check_cover(&sys, &sets) {
                opt = opt.min(total_cost(&sys, &sets));
            }
        }
        assert!(total_cost(&sys, out.cover.chosen()) <= 2 * opt);
    }
}
