//! The [`SetSystem`] covering instance: ground set, weighted subsets, groups.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::cost::Cost;

/// Identifies an element of the ground set (`0..n_elements`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ElementId(pub u32);

impl fmt::Display for ElementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Identifies a set within a [`SetSystem`] (index into its set list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SetId(pub u32);

impl fmt::Display for SetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Identifies a group of sets (index into the group list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GroupId(pub u32);

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G{}", self.0)
    }
}

/// One weighted subset of the ground set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SetDef<C> {
    members: Vec<ElementId>,
    cost: C,
    group: GroupId,
}

impl<C: Cost> SetDef<C> {
    /// The elements of this set, sorted ascending and duplicate-free.
    pub fn members(&self) -> &[ElementId] {
        &self.members
    }

    /// The cost of selecting this set. Strictly positive.
    pub fn cost(&self) -> &C {
        &self.cost
    }

    /// The group this set belongs to.
    pub fn group(&self) -> GroupId {
        self.group
    }

    /// Whether `e` is a member of this set (binary search).
    pub fn contains(&self, e: ElementId) -> bool {
        self.members.binary_search(&e).is_ok()
    }
}

/// Errors detected while constructing a [`SetSystem`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A set referenced an element `>= n_elements`.
    ElementOutOfRange {
        /// The offending element.
        element: ElementId,
        /// Size of the ground set.
        n_elements: usize,
    },
    /// A set was given a non-positive cost.
    NonPositiveCost {
        /// Index the set would have received.
        set: SetId,
    },
    /// A set had an empty member list.
    EmptySet {
        /// Index the set would have received.
        set: SetId,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::ElementOutOfRange {
                element,
                n_elements,
            } => write!(
                f,
                "set member {element} out of range for ground set of {n_elements} elements"
            ),
            BuildError::NonPositiveCost { set } => {
                write!(f, "set {set} has non-positive cost")
            }
            BuildError::EmptySet { set } => write!(f, "set {set} has no members"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Incremental builder for a [`SetSystem`].
///
/// Groups are created implicitly: pushing a set with group index `g`
/// guarantees groups `0..=g` exist in the built system (possibly empty).
#[derive(Debug, Clone)]
pub struct SetSystemBuilder<C> {
    n_elements: usize,
    sets: Vec<SetDef<C>>,
    min_groups: usize,
}

impl<C: Cost> SetSystemBuilder<C> {
    /// Starts a builder for a ground set `{0, …, n_elements - 1}`.
    pub fn new(n_elements: usize) -> Self {
        SetSystemBuilder {
            n_elements,
            sets: Vec::new(),
            min_groups: 0,
        }
    }

    /// Guarantees the built system has at least `n` groups, even if some
    /// end up empty (e.g. an AP that reaches no user still needs a budget
    /// slot in the MNU reduction).
    pub fn ensure_groups(&mut self, n: usize) -> &mut Self {
        self.min_groups = self.min_groups.max(n);
        self
    }

    /// Adds a set and returns its id.
    ///
    /// `members` may arrive in any order and with duplicates; they are
    /// sorted and deduplicated.
    ///
    /// # Errors
    ///
    /// [`BuildError::ElementOutOfRange`] if a member is outside the ground
    /// set, [`BuildError::NonPositiveCost`] for a cost `<= 0`, and
    /// [`BuildError::EmptySet`] for an empty member list.
    pub fn push_set<I>(&mut self, members: I, cost: C, group: u32) -> Result<SetId, BuildError>
    where
        I: IntoIterator<Item = u32>,
    {
        let id = SetId(self.sets.len() as u32);
        let mut members: Vec<ElementId> = members.into_iter().map(ElementId).collect();
        members.sort_unstable();
        members.dedup();
        if members.is_empty() {
            return Err(BuildError::EmptySet { set: id });
        }
        if let Some(&bad) = members.iter().find(|e| e.0 as usize >= self.n_elements) {
            return Err(BuildError::ElementOutOfRange {
                element: bad,
                n_elements: self.n_elements,
            });
        }
        if cost <= C::zero() {
            return Err(BuildError::NonPositiveCost { set: id });
        }
        self.min_groups = self.min_groups.max(group as usize + 1);
        self.sets.push(SetDef {
            members,
            cost,
            group: GroupId(group),
        });
        Ok(id)
    }

    /// Removes exact-duplicate sets: within each group, if two sets have
    /// identical member lists, only the cheapest survives. Removing such a
    /// set never changes the quality reachable by the greedy solvers.
    ///
    /// Returns the number of sets dropped. Call before [`build`]; set ids
    /// are assigned at build time, so pruning does not invalidate anything.
    ///
    /// [`build`]: SetSystemBuilder::build
    pub fn prune_duplicates(&mut self) -> usize {
        let mut best: HashMap<(GroupId, Vec<ElementId>), usize> = HashMap::new();
        let mut keep = vec![true; self.sets.len()];
        for (i, set) in self.sets.iter().enumerate() {
            let key = (set.group, set.members.clone());
            match best.get(&key) {
                Some(&j) if self.sets[j].cost <= set.cost => keep[i] = false,
                Some(&j) => {
                    keep[j] = false;
                    best.insert(key, i);
                }
                None => {
                    best.insert(key, i);
                }
            }
        }
        let before = self.sets.len();
        let mut iter = keep.iter();
        self.sets
            .retain(|_| *iter.next().expect("keep mask length"));
        before - self.sets.len()
    }

    /// Finalizes the system.
    pub fn build(self) -> Result<SetSystem<C>, BuildError> {
        let mut groups: Vec<Vec<SetId>> = vec![Vec::new(); self.min_groups];
        let mut covering: Vec<Vec<SetId>> = vec![Vec::new(); self.n_elements];
        for (i, set) in self.sets.iter().enumerate() {
            let id = SetId(i as u32);
            groups[set.group.0 as usize].push(id);
            for e in &set.members {
                covering[e.0 as usize].push(id);
            }
        }
        Ok(SetSystem {
            n_elements: self.n_elements,
            sets: self.sets,
            groups,
            covering,
        })
    }
}

/// A covering instance: ground set `{0, …, n-1}`, weighted subsets, and a
/// partition of the subsets into groups.
///
/// In the WLAN reduction each group is an access point and each set is one
/// `(AP, session, transmission-rate)` choice whose members are the users the
/// AP would reach at that rate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SetSystem<C> {
    n_elements: usize,
    sets: Vec<SetDef<C>>,
    groups: Vec<Vec<SetId>>,
    /// For each element, the ids of the sets containing it.
    covering: Vec<Vec<SetId>>,
}

impl<C: Cost> SetSystem<C> {
    /// Size of the ground set.
    pub fn n_elements(&self) -> usize {
        self.n_elements
    }

    /// Number of sets.
    pub fn n_sets(&self) -> usize {
        self.sets.len()
    }

    /// Number of groups (some may be empty).
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// The set with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn set(&self, id: SetId) -> &SetDef<C> {
        &self.sets[id.0 as usize]
    }

    /// All sets, indexable by `SetId.0`.
    pub fn sets(&self) -> &[SetDef<C>] {
        &self.sets
    }

    /// The ids of the sets in group `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn group_sets(&self, g: GroupId) -> &[SetId] {
        &self.groups[g.0 as usize]
    }

    /// The ids of the sets containing element `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn covering_sets(&self, e: ElementId) -> &[SetId] {
        &self.covering[e.0 as usize]
    }

    /// True if every element belongs to at least one set.
    pub fn all_coverable(&self) -> bool {
        self.covering.iter().all(|c| !c.is_empty())
    }

    /// Elements not contained in any set.
    pub fn uncoverable_elements(&self) -> Vec<ElementId> {
        self.covering
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_empty())
            .map(|(i, _)| ElementId(i as u32))
            .collect()
    }

    /// The largest single-set cost, or `None` for an empty system.
    pub fn max_set_cost(&self) -> Option<&C> {
        self.sets.iter().map(|s| &s.cost).max()
    }

    /// The smallest single-set cost, or `None` for an empty system.
    pub fn min_set_cost(&self) -> Option<&C> {
        self.sets.iter().map(|s| &s.cost).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetSystem<u64> {
        let mut b = SetSystemBuilder::new(4);
        b.push_set([0, 1], 2, 0).unwrap();
        b.push_set([1, 2, 3], 3, 0).unwrap();
        b.push_set([3], 1, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn build_indexes_groups_and_covering() {
        let s = small();
        assert_eq!(s.n_elements(), 4);
        assert_eq!(s.n_sets(), 3);
        assert_eq!(s.n_groups(), 2);
        assert_eq!(s.group_sets(GroupId(0)), &[SetId(0), SetId(1)]);
        assert_eq!(s.group_sets(GroupId(1)), &[SetId(2)]);
        assert_eq!(s.covering_sets(ElementId(1)), &[SetId(0), SetId(1)]);
        assert_eq!(s.covering_sets(ElementId(3)), &[SetId(1), SetId(2)]);
        assert!(s.all_coverable());
    }

    #[test]
    fn members_sorted_and_deduped() {
        let mut b = SetSystemBuilder::<u64>::new(5);
        let id = b.push_set([3, 1, 3, 0], 1, 0).unwrap();
        let s = b.build().unwrap();
        assert_eq!(
            s.set(id).members(),
            &[ElementId(0), ElementId(1), ElementId(3)]
        );
        assert!(s.set(id).contains(ElementId(3)));
        assert!(!s.set(id).contains(ElementId(2)));
    }

    #[test]
    fn rejects_out_of_range_member() {
        let mut b = SetSystemBuilder::<u64>::new(2);
        let err = b.push_set([0, 2], 1, 0).unwrap_err();
        assert!(matches!(err, BuildError::ElementOutOfRange { .. }));
    }

    #[test]
    fn rejects_zero_cost_and_empty_set() {
        let mut b = SetSystemBuilder::<u64>::new(2);
        assert!(matches!(
            b.push_set([0], 0, 0).unwrap_err(),
            BuildError::NonPositiveCost { .. }
        ));
        assert!(matches!(
            b.push_set(std::iter::empty(), 1, 0).unwrap_err(),
            BuildError::EmptySet { .. }
        ));
    }

    #[test]
    fn uncoverable_elements_reported() {
        let mut b = SetSystemBuilder::<u64>::new(3);
        b.push_set([0], 1, 0).unwrap();
        let s = b.build().unwrap();
        assert!(!s.all_coverable());
        assert_eq!(s.uncoverable_elements(), vec![ElementId(1), ElementId(2)]);
    }

    #[test]
    fn prune_duplicates_keeps_cheapest_per_group() {
        let mut b = SetSystemBuilder::<u64>::new(3);
        b.push_set([0, 1], 5, 0).unwrap();
        b.push_set([0, 1], 3, 0).unwrap(); // cheaper duplicate, same group
        b.push_set([0, 1], 2, 1).unwrap(); // other group: kept separately
        b.push_set([0, 2], 5, 0).unwrap(); // different members: kept
        let dropped = b.prune_duplicates();
        assert_eq!(dropped, 1);
        let s = b.build().unwrap();
        assert_eq!(s.n_sets(), 3);
        let costs: Vec<u64> = s.sets().iter().map(|s| *s.cost()).collect();
        assert!(
            costs.contains(&3) && !costs.contains(&5)
                || costs.iter().filter(|&&c| c == 5).count() == 1
        );
        // group 0 retains the cost-3 copy of {0,1} and the {0,2} set.
        let g0: Vec<u64> = s
            .group_sets(GroupId(0))
            .iter()
            .map(|&id| *s.set(id).cost())
            .collect();
        assert_eq!(g0, vec![3, 5]);
    }

    #[test]
    fn min_max_cost() {
        let s = small();
        assert_eq!(s.min_set_cost(), Some(&1));
        assert_eq!(s.max_set_cost(), Some(&3));
    }
}
