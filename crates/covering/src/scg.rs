//! **Set Cover with Group Budgets** by iterated MCG — paper Fig. 6.
//!
//! The paper's `Centralized BLA` guesses the optimal maximum group cost
//! `B*`, runs the MCG greedy with per-group budget `B*`, removes the covered
//! elements, and repeats until everything is covered; iterating
//! `log₈⁄₇(n) + 1` times suffices when `B*` is at least the optimum
//! (Theorem 4). Since `B*` is unknown, the caller supplies a list of
//! candidate budgets ("try several values of B* between c_max and 1") and
//! [`solve_scg`] returns the best feasible outcome over all candidates.

use std::fmt;

use crate::cost::Cost;
use crate::mcg::greedy_mcg_opts;
use crate::set_cover::Cover;
use crate::system::{ElementId, SetId, SetSystem};
use crate::verify::group_costs;

/// Result of [`solve_scg`].
#[derive(Debug, Clone)]
pub struct ScgSolution<C> {
    cover: Cover<C>,
    max_group_cost: C,
    budget_used: C,
    iterations: usize,
}

impl<C: Cost> ScgSolution<C> {
    /// The selected sets with per-element assignment; covers every element.
    pub fn cover(&self) -> &Cover<C> {
        &self.cover
    }

    /// The achieved objective: `max_i c(H ∩ G_i)`.
    pub fn max_group_cost(&self) -> &C {
        &self.max_group_cost
    }

    /// The candidate `B*` that produced this solution.
    pub fn budget_used(&self) -> &C {
        &self.budget_used
    }

    /// How many MCG iterations the winning candidate needed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

/// Errors from [`solve_scg`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScgError {
    /// Some element belongs to no set at all.
    Uncoverable {
        /// The offending elements.
        elements: Vec<ElementId>,
    },
    /// No candidate budget produced a full cover (all too small).
    NoFeasibleBudget,
    /// The candidate list was empty.
    NoCandidates,
}

impl fmt::Display for ScgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScgError::Uncoverable { elements } => {
                write!(f, "{} element(s) belong to no set", elements.len())
            }
            ScgError::NoFeasibleBudget => {
                write!(f, "no candidate budget yielded a complete cover")
            }
            ScgError::NoCandidates => write!(f, "empty candidate budget list"),
        }
    }
}

impl std::error::Error for ScgError {}

/// Solves SCG: finds a cover of all elements (approximately) minimizing the
/// maximum per-group cost, trying each candidate `B*` in `candidates`.
///
/// For each candidate the MCG greedy runs on the residual instance until
/// every element is covered; a candidate is abandoned as infeasible if an
/// iteration makes no progress (this happens exactly when some uncovered
/// element's every covering set costs more than `B*`). Among feasible
/// candidates the solution with the smallest achieved `max_i c(H ∩ G_i)`
/// wins (ties: the earlier candidate).
///
/// The returned assignment maps every element to the set that first covered
/// it, across all iterations of the winning candidate.
///
/// # Errors
///
/// See [`ScgError`].
pub fn solve_scg<C: Cost>(
    system: &SetSystem<C>,
    candidates: &[C],
) -> Result<ScgSolution<C>, ScgError> {
    solve_scg_with(system, candidates, greedy_mcg_opts)
}

/// [`solve_scg`] parameterized over the MCG subroutine, so the reference
/// (full-rescan) and lazy-greedy MCG drive the identical outer loop —
/// used by `crate::reference` and the equivalence property tests.
pub(crate) fn solve_scg_with<C: Cost>(
    system: &SetSystem<C>,
    candidates: &[C],
    mcg: impl Fn(&SetSystem<C>, &[C], &[bool], bool) -> crate::mcg::McgSolution<C>,
) -> Result<ScgSolution<C>, ScgError> {
    if !system.all_coverable() {
        return Err(ScgError::Uncoverable {
            elements: system.uncoverable_elements(),
        });
    }
    if candidates.is_empty() {
        return Err(ScgError::NoCandidates);
    }

    let n = system.n_elements();
    let mut best: Option<ScgSolution<C>> = None;

    // Each candidate `B*` is tried under both readings of Fig. 3's line 5:
    //
    // * `skip_unaffordable = true` — sets costing more than `B*` are
    //   excluded; excludes tempting oversized sets, but a `B*` below the
    //   costliest *required* transmission becomes infeasible.
    // * `skip_unaffordable = false` — a group under budget may take any
    //   set (the literal condition `c(H ∩ G_i) < B_i`); every positive
    //   `B*` stays feasible and small values drive maximal spreading.
    //
    // The best achieved max-group-cost over both rules and all candidates
    // wins; neither rule dominates across instances.
    for skip_unaffordable in [true, false] {
        for b_star in candidates {
            let budgets = vec![b_star.clone(); system.n_groups()];
            let mut covered = vec![false; n];
            let mut picks: Vec<(SetId, Vec<ElementId>, C)> = Vec::new();
            let mut iterations = 0usize;
            let feasible = loop {
                if covered.iter().all(|&c| c) {
                    break true;
                }
                let sol = mcg(system, &budgets, &covered, skip_unaffordable);
                // Per Fig. 6 (and the paper's worked example), each
                // iteration contributes the *output* of Centralized MNU —
                // the feasible half — which respects every group budget
                // and covers at least 1/8 of the remaining elements when
                // B* >= OPT.
                let half = sol.feasible();
                if half.covered_count() == 0 {
                    break false; // B* too small for some remaining element
                }
                iterations += 1;
                for (sid, news) in half.chosen().iter().zip(half.newly_covered()) {
                    for e in news {
                        covered[e.0 as usize] = true;
                    }
                    picks.push((*sid, news.clone(), system.set(*sid).cost().clone()));
                }
            };
            if !feasible {
                continue;
            }
            let chosen: Vec<SetId> = picks.iter().map(|(s, _, _)| *s).collect();
            let gc = group_costs(system, &chosen);
            let max_gc = gc.into_iter().max().unwrap_or_else(C::zero);
            let cover = Cover::from_picks(n, picks);
            debug_assert!(cover.covers_all());
            let candidate_sol = ScgSolution {
                cover,
                max_group_cost: max_gc,
                budget_used: b_star.clone(),
                iterations,
            };
            let improves = match &best {
                None => true,
                Some(b) => candidate_sol.max_group_cost < b.max_group_cost,
            };
            if improves {
                best = Some(candidate_sol);
            }
        }
    }

    best.ok_or(ScgError::NoFeasibleBudget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SetSystemBuilder;

    /// Paper Fig. 5: BLA reduction of the Fig. 1 WLAN, sessions at 1 Mbps.
    /// Costs ×60: cost = 60 / rate.
    fn figure5() -> SetSystem<u64> {
        let mut b = SetSystemBuilder::<u64>::new(5);
        b.push_set([2], 15, 0).unwrap(); // S1: a1,s1@4 {u3}
        b.push_set([0, 2], 20, 0).unwrap(); // S2: a1,s1@3 {u1,u3}
        b.push_set([1], 10, 0).unwrap(); // S3: a1,s2@6 {u2}
        b.push_set([1, 3, 4], 15, 0).unwrap(); // S4: a1,s2@4 {u2,u4,u5}
        b.push_set([2], 12, 1).unwrap(); // S5: a2,s1@5 {u3}
        b.push_set([3], 12, 1).unwrap(); // S6: a2,s2@5 {u4}
        b.push_set([3, 4], 20, 1).unwrap(); // S7: a2,s2@3 {u4,u5}
        b.build().unwrap()
    }

    #[test]
    fn paper_figure5_bla_example() {
        let system = figure5();
        // Optimal H = {S2, S3, S7}: a1 load 20+10=30 (=1/2), a2 load 20
        // (=1/3); optimum max = 30. The paper's walkthrough of Centralized
        // BLA with B*=30 instead selects {S4} then {S2} — all users on a1,
        // max group cost 35 (=7/12) — within the (log₈⁄₇ n + 1)·B* bound.
        // Candidates include the paper's B*=1/2 (=30 in ×60 units).
        let sol = solve_scg(&system, &[15, 20, 25, 30, 35, 40, 60]).unwrap();
        assert!(sol.cover().covers_all());
        assert_eq!(*sol.max_group_cost(), 35);
        let mut chosen = sol.cover().chosen().to_vec();
        chosen.sort();
        assert_eq!(chosen, vec![SetId(1), SetId(3)]); // {S2, S4}
    }

    #[test]
    fn small_candidate_still_feasible_via_no_skip_rule() {
        let mut b = SetSystemBuilder::<u64>::new(1);
        b.push_set([0], 10, 0).unwrap();
        let system = b.build().unwrap();
        // Under the skip rule B*=5 cannot cover (only set costs 10), but
        // the no-skip reading admits the crossing pick: max cost 10.
        let sol = solve_scg(&system, &[5, 10]).unwrap();
        assert_eq!(*sol.max_group_cost(), 10);
    }

    #[test]
    fn no_feasible_budget_for_zero_candidate() {
        let mut b = SetSystemBuilder::<u64>::new(1);
        b.push_set([0], 10, 0).unwrap();
        let system = b.build().unwrap();
        // B* = 0: no group is ever strictly under budget, so nothing can
        // be picked under either rule.
        assert_eq!(
            solve_scg(&system, &[0]).unwrap_err(),
            ScgError::NoFeasibleBudget
        );
    }

    #[test]
    fn uncoverable_detected() {
        let mut b = SetSystemBuilder::<u64>::new(2);
        b.push_set([0], 1, 0).unwrap();
        let system = b.build().unwrap();
        assert!(matches!(
            solve_scg(&system, &[1]).unwrap_err(),
            ScgError::Uncoverable { .. }
        ));
    }

    #[test]
    fn empty_candidates_rejected() {
        let mut b = SetSystemBuilder::<u64>::new(1);
        b.push_set([0], 1, 0).unwrap();
        let system = b.build().unwrap();
        assert_eq!(solve_scg(&system, &[]).unwrap_err(), ScgError::NoCandidates);
    }

    #[test]
    fn multiple_iterations_when_budget_tight() {
        // Two elements, one group; each set costs 3, budget 3: each MCG
        // iteration can afford one set, so two iterations are needed.
        let mut b = SetSystemBuilder::<u64>::new(2);
        b.push_set([0], 3, 0).unwrap();
        b.push_set([1], 3, 0).unwrap();
        let system = b.build().unwrap();
        let sol = solve_scg(&system, &[3]).unwrap();
        assert!(sol.cover().covers_all());
        assert_eq!(sol.iterations(), 2);
        assert_eq!(*sol.max_group_cost(), 6); // both sets in the one group
    }

    #[test]
    fn picks_best_candidate_not_first() {
        // With a generous budget the greedy may pack one group; a tighter
        // budget spreads cost. Best candidate should win regardless of order.
        let mut b = SetSystemBuilder::<u64>::new(2);
        b.push_set([0, 1], 10, 0).unwrap(); // covers both, group cost 10
        b.push_set([0], 6, 0).unwrap();
        b.push_set([1], 6, 1).unwrap();
        let system = b.build().unwrap();
        let sol = solve_scg(&system, &[60, 6]).unwrap();
        // B*=60: greedy picks S0 (eff 2/10 > 1/6) -> max 10.
        // B*=6: S0 unaffordable; picks S1,S2 -> max 6. Best = 6.
        assert_eq!(*sol.max_group_cost(), 6);
        assert_eq!(*sol.budget_used(), 6);
    }
}
