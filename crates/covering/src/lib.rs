//! Weighted covering-problem solvers used by the WLAN multicast association
//! algorithms of Chen, Lee & Sinha (ICDCS 2007).
//!
//! This crate is a self-contained, generic substrate. It knows nothing about
//! WLANs: it operates on a [`SetSystem`] — a ground set of elements, a family
//! of weighted subsets, and a partition of the subsets into *groups* — and
//! provides the three solvers the paper reduces its problems to:
//!
//! * [`greedy_set_cover`] — the classic cost-effectiveness greedy for
//!   weighted **Set Cover** (`CostSC`, paper Fig. 8), an `ln(n) + 1`
//!   approximation. Used for the MLA objective (minimize total AP load).
//! * [`greedy_mcg`] — the greedy for **Maximum Coverage with Group Budgets**
//!   (cost version, paper Fig. 3, after Chekuri & Kumar APPROX'04) together
//!   with the `H₁`/`H₂` partition trick, an 8-approximation when there is no
//!   overall budget. Used for the MNU objective (maximize satisfied users).
//! * [`solve_scg`] — **Set Cover with Group Budgets** by guessing the optimal
//!   per-group budget `B*` and iterating the MCG greedy until every element
//!   is covered (paper Fig. 6), a `log₈⁄₇(n) + 1` approximation. Used for
//!   the BLA objective (minimize the maximum AP load).
//!
//! Costs are generic over the [`Cost`] trait so that callers can plug in
//! exact rational arithmetic; `u64` and `u32` implementations are provided
//! for convenience and testing.
//!
//! # Example
//!
//! ```
//! use mcast_covering::{SetSystemBuilder, greedy_set_cover};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = SetSystemBuilder::<u64>::new(4);
//! b.push_set([0, 1], 2u64, 0)?; // members, cost, group
//! b.push_set([1, 2, 3], 3u64, 0)?;
//! b.push_set([3], 1u64, 1)?;
//! let system = b.build()?;
//! let cover = greedy_set_cover(&system)?;
//! assert!(cover.covers_all());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod celf;
mod cost;
mod mcg;
mod primal_dual;
pub mod reference;
mod scg;
mod set_cover;
mod system;
mod verify;

pub use cost::Cost;
pub use mcg::{greedy_mcg, greedy_mcg_opts, McgSolution};
pub use primal_dual::{primal_dual_set_cover, PrimalDualOutcome};
pub use scg::{solve_scg, ScgError, ScgSolution};
pub use set_cover::{greedy_set_cover, Cover, CoverError};
pub use system::{BuildError, ElementId, GroupId, SetDef, SetId, SetSystem, SetSystemBuilder};
pub use verify::{check_budgets, check_cover, coverage_count, group_costs, total_cost};
