//! Textbook reference implementations of the three solvers.
//!
//! These are the original O(picks × sets) full-rescan greedy loops that the
//! lazy-greedy (CELF) fast paths in [`greedy_set_cover`], [`greedy_mcg`]
//! and [`solve_scg`] replaced. They are kept because they define the
//! *semantics* the fast paths must reproduce bit for bit:
//!
//! * the property tests (`tests/properties.rs`) assert that lazy and naive
//!   select the identical set sequence on random systems;
//! * `repro bench` times naive vs lazy on pinned workloads to record the
//!   speedup trajectory in `BENCH_greedy.json`.
//!
//! Do not use these in production paths — they exist to be slow.
//!
//! [`greedy_set_cover`]: crate::greedy_set_cover
//! [`greedy_mcg`]: crate::greedy_mcg
//! [`solve_scg`]: crate::solve_scg

use crate::cost::Cost;
use crate::mcg::{better_half, McgSolution};
use crate::scg::{ScgError, ScgSolution};
use crate::set_cover::{Cover, CoverError};
use crate::system::{ElementId, SetId, SetSystem};

/// The classic full-rescan cost-effectiveness greedy for weighted set
/// cover — the pre-CELF implementation of [`crate::greedy_set_cover`],
/// selecting by a linear scan over every set each pick.
///
/// # Errors
///
/// [`CoverError::Uncoverable`] if an element belongs to no set.
pub fn greedy_set_cover<C: Cost>(system: &SetSystem<C>) -> Result<Cover<C>, CoverError> {
    if !system.all_coverable() {
        return Err(CoverError::Uncoverable {
            elements: system.uncoverable_elements(),
        });
    }

    let n = system.n_elements();
    let mut covered = vec![false; n];
    let mut n_uncovered = n;
    // Residual |S ∩ X'| per set, maintained incrementally.
    let mut residual: Vec<u64> = system
        .sets()
        .iter()
        .map(|s| s.members().len() as u64)
        .collect();
    let mut picks = Vec::new();

    while n_uncovered > 0 {
        let mut best: Option<(SetId, u64)> = None;
        for (i, set) in system.sets().iter().enumerate() {
            let id = SetId(i as u32);
            let news = residual[i];
            if news == 0 {
                continue;
            }
            let better = match best {
                None => true,
                Some((bid, bnews)) => matches!(
                    C::cmp_effectiveness(news, set.cost(), bnews, system.set(bid).cost()),
                    std::cmp::Ordering::Greater
                ),
            };
            if better {
                best = Some((id, news));
            }
        }
        let (id, _) = best.expect("all elements coverable implies progress");
        let news: Vec<ElementId> = system
            .set(id)
            .members()
            .iter()
            .copied()
            .filter(|e| !covered[e.0 as usize])
            .collect();
        for &e in &news {
            covered[e.0 as usize] = true;
            n_uncovered -= 1;
            for &other in system.covering_sets(e) {
                residual[other.0 as usize] -= 1;
            }
        }
        let cost = system.set(id).cost().clone();
        picks.push((id, news, cost));
    }

    Ok(Cover::from_picks(n, picks))
}

/// The full-rescan MCG greedy — the pre-CELF implementation of
/// [`crate::greedy_mcg`] (every element initially uncovered, unaffordable
/// sets skipped).
///
/// # Panics
///
/// Panics if `budgets.len() != system.n_groups()`.
pub fn greedy_mcg<C: Cost>(system: &SetSystem<C>, budgets: &[C]) -> McgSolution<C> {
    greedy_mcg_opts(system, budgets, &vec![false; system.n_elements()], true)
}

/// The full-rescan form of [`crate::greedy_mcg_opts`]: each pick scans
/// every set of every non-exhausted group.
///
/// # Panics
///
/// Panics if `budgets.len() != system.n_groups()` or
/// `initially_covered.len() != system.n_elements()`.
pub fn greedy_mcg_opts<C: Cost>(
    system: &SetSystem<C>,
    budgets: &[C],
    initially_covered: &[bool],
    skip_unaffordable: bool,
) -> McgSolution<C> {
    assert_eq!(
        budgets.len(),
        system.n_groups(),
        "one budget per group required"
    );
    assert_eq!(initially_covered.len(), system.n_elements());

    let n = system.n_elements();
    let mut covered = initially_covered.to_vec();
    // Residual |S ∩ X'| per set.
    let mut residual: Vec<u64> = system
        .sets()
        .iter()
        .map(|s| {
            s.members()
                .iter()
                .filter(|e| !covered[e.0 as usize])
                .count() as u64
        })
        .collect();
    let mut group_cost: Vec<C> = vec![C::zero(); system.n_groups()];
    let mut all: Vec<SetId> = Vec::new();
    let mut all_news: Vec<Vec<ElementId>> = Vec::new();
    let mut violating: Vec<bool> = Vec::new();

    loop {
        // Line 4–10 of Fig. 3: each group whose budget is not exhausted
        // proposes its most cost-effective set; we additionally require the
        // proposal to cover at least one new element (a zero-gain set can
        // never improve coverage, only burn budget).
        let mut best: Option<(SetId, u64)> = None;
        for g in 0..system.n_groups() {
            if group_cost[g] >= budgets[g] {
                continue;
            }
            for &sid in system.group_sets(crate::system::GroupId(g as u32)) {
                let set = system.set(sid);
                if skip_unaffordable && *set.cost() > budgets[g] {
                    continue; // unusable by any budget-feasible solution
                }
                let news = residual[sid.0 as usize];
                if news == 0 {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((bid, bnews)) => {
                        match C::cmp_effectiveness(news, set.cost(), bnews, system.set(bid).cost())
                        {
                            std::cmp::Ordering::Greater => true,
                            // Equal effectiveness: prefer the less-loaded
                            // group (tie-breaking is unspecified in the
                            // paper; this choice spreads load, which only
                            // helps the SCG/BLA use and is neutral for
                            // pure coverage).
                            std::cmp::Ordering::Equal => {
                                group_cost[g] < group_cost[system.set(bid).group().0 as usize]
                            }
                            std::cmp::Ordering::Less => false,
                        }
                    }
                };
                if better {
                    best = Some((sid, news));
                }
            }
        }
        let Some((sid, _)) = best else { break };

        let set = system.set(sid);
        let g = set.group().0 as usize;
        let news: Vec<ElementId> = set
            .members()
            .iter()
            .copied()
            .filter(|e| !covered[e.0 as usize])
            .collect();
        for &e in &news {
            covered[e.0 as usize] = true;
            for &other in system.covering_sets(e) {
                residual[other.0 as usize] -= 1;
            }
        }
        group_cost[g] = group_cost[g].add(set.cost());
        violating.push(group_cost[g] > budgets[g]);
        all.push(sid);
        all_news.push(news);

        if covered.iter().all(|&c| c) {
            break;
        }
    }

    // Partition H into H₁ (additions that stayed within budget) and H₂
    // (additions that crossed it; at most one per group, each individually
    // within budget), then keep the half covering more *new* elements.
    let feasible = better_half(system, n, initially_covered, &all, &violating);

    McgSolution::new(all, all_news, violating, feasible)
}

/// SCG via the full-rescan MCG — the pre-CELF implementation of
/// [`crate::solve_scg`].
///
/// # Errors
///
/// See [`ScgError`].
pub fn solve_scg<C: Cost>(
    system: &SetSystem<C>,
    candidates: &[C],
) -> Result<ScgSolution<C>, ScgError> {
    crate::scg::solve_scg_with(system, candidates, greedy_mcg_opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SetSystemBuilder;

    #[test]
    fn reference_solvers_run() {
        let mut b = SetSystemBuilder::<u64>::new(4);
        b.push_set([0, 1], 2, 0).unwrap();
        b.push_set([1, 2, 3], 3, 0).unwrap();
        b.push_set([3], 1, 1).unwrap();
        let system = b.build().unwrap();
        let cover = greedy_set_cover(&system).unwrap();
        assert!(cover.covers_all());
        let sol = greedy_mcg(&system, &[10, 10]);
        assert!(sol.feasible().covered_count() > 0);
        let scg = solve_scg(&system, &[2, 3, 10]).unwrap();
        assert!(scg.cover().covers_all());
    }
}
