//! The [`Cost`] abstraction over set weights.

use std::cmp::Ordering;
use std::fmt::Debug;

/// An additive, totally ordered cost type for weighted covering problems.
///
/// The solvers only ever *add* costs and *compare* cost-effectiveness ratios,
/// so implementations never need division: [`Cost::cmp_effectiveness`]
/// compares `n1 / c1` against `n2 / c2` by whatever exact means the type
/// supports (cross-multiplication for rationals and integers).
///
/// Implementations must satisfy, for all values:
///
/// * `zero() + c == c` and addition is commutative and associative;
/// * the order is total and compatible with addition
///   (`a <= b` implies `a + c <= b + c`);
/// * costs handed to the solvers are strictly positive
///   (checked at [`SetSystemBuilder::push_set`]).
///
/// [`SetSystemBuilder::push_set`]: crate::SetSystemBuilder::push_set
pub trait Cost: Clone + Ord + Debug {
    /// The additive identity.
    fn zero() -> Self;

    /// `self + other`. Must not saturate silently; implementations should
    /// panic on overflow (covering instances in this workspace stay far
    /// below any integer limits, so overflow indicates a logic error).
    fn add(&self, other: &Self) -> Self;

    /// Compares the cost-effectiveness ratios `n1 / c1` and `n2 / c2`,
    /// where `n1`, `n2` count newly covered elements.
    ///
    /// Both costs are strictly positive. The default caller contract is
    /// `Ordering::Greater` means the first candidate is *more* effective.
    fn cmp_effectiveness(n1: u64, c1: &Self, n2: u64, c2: &Self) -> Ordering;

    /// Returns true if `self` is the zero cost.
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }
}

impl Cost for u64 {
    fn zero() -> Self {
        0
    }

    fn add(&self, other: &Self) -> Self {
        self.checked_add(*other).expect("u64 cost overflow")
    }

    fn cmp_effectiveness(n1: u64, c1: &Self, n2: u64, c2: &Self) -> Ordering {
        // n1/c1 vs n2/c2  <=>  n1*c2 vs n2*c1 (all values non-negative).
        let lhs = u128::from(n1) * u128::from(*c2);
        let rhs = u128::from(n2) * u128::from(*c1);
        lhs.cmp(&rhs)
    }
}

impl Cost for u32 {
    fn zero() -> Self {
        0
    }

    fn add(&self, other: &Self) -> Self {
        self.checked_add(*other).expect("u32 cost overflow")
    }

    fn cmp_effectiveness(n1: u64, c1: &Self, n2: u64, c2: &Self) -> Ordering {
        let lhs = u128::from(n1) * u128::from(*c2);
        let rhs = u128::from(n2) * u128::from(*c1);
        lhs.cmp(&rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_zero_is_identity() {
        let z = <u64 as Cost>::zero();
        assert!(z.is_zero());
        assert_eq!(z.add(&7), 7);
        assert_eq!(7u64.add(&z), 7);
    }

    #[test]
    fn effectiveness_orders_ratios() {
        // 3/2 > 4/3
        assert_eq!(
            <u64 as Cost>::cmp_effectiveness(3, &2, 4, &3),
            Ordering::Greater
        );
        // 2/4 == 1/2
        assert_eq!(
            <u64 as Cost>::cmp_effectiveness(2, &4, 1, &2),
            Ordering::Equal
        );
        // 1/10 < 5/2
        assert_eq!(
            <u64 as Cost>::cmp_effectiveness(1, &10, 5, &2),
            Ordering::Less
        );
    }

    #[test]
    fn effectiveness_handles_zero_covered() {
        // 0/c is always <= anything positive.
        assert_eq!(
            <u64 as Cost>::cmp_effectiveness(0, &1, 1, &100),
            Ordering::Less
        );
        assert_eq!(
            <u64 as Cost>::cmp_effectiveness(0, &5, 0, &9),
            Ordering::Equal
        );
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn u64_add_overflow_panics() {
        let _ = u64::MAX.add(&1);
    }
}
