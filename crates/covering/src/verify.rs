//! Verification helpers: used by tests, debug assertions, and the exact
//! solvers to certify candidate solutions.

use crate::cost::Cost;
use crate::system::{SetId, SetSystem};

/// Number of distinct elements covered by the union of `sets`.
pub fn coverage_count<C: Cost>(system: &SetSystem<C>, sets: &[SetId]) -> usize {
    let mut covered = vec![false; system.n_elements()];
    for &sid in sets {
        for e in system.set(sid).members() {
            covered[e.0 as usize] = true;
        }
    }
    covered.into_iter().filter(|&c| c).count()
}

/// True if the union of `sets` covers the whole ground set.
pub fn check_cover<C: Cost>(system: &SetSystem<C>, sets: &[SetId]) -> bool {
    coverage_count(system, sets) == system.n_elements()
}

/// Sum of the costs of `sets` (duplicates counted as many times as listed).
pub fn total_cost<C: Cost>(system: &SetSystem<C>, sets: &[SetId]) -> C {
    sets.iter()
        .fold(C::zero(), |acc, &sid| acc.add(system.set(sid).cost()))
}

/// Per-group accumulated cost of `sets`, indexed by group id.
pub fn group_costs<C: Cost>(system: &SetSystem<C>, sets: &[SetId]) -> Vec<C> {
    let mut gc = vec![C::zero(); system.n_groups()];
    for &sid in sets {
        let set = system.set(sid);
        let g = set.group().0 as usize;
        gc[g] = gc[g].add(set.cost());
    }
    gc
}

/// True if every group's accumulated cost is within its budget.
///
/// # Panics
///
/// Panics if `budgets.len() != system.n_groups()`.
pub fn check_budgets<C: Cost>(system: &SetSystem<C>, sets: &[SetId], budgets: &[C]) -> bool {
    assert_eq!(budgets.len(), system.n_groups());
    group_costs(system, sets)
        .iter()
        .zip(budgets)
        .all(|(c, b)| c <= b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SetSystemBuilder;

    fn system() -> SetSystem<u64> {
        let mut b = SetSystemBuilder::new(4);
        b.push_set([0, 1], 2, 0).unwrap();
        b.push_set([1, 2], 3, 0).unwrap();
        b.push_set([3], 1, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn coverage_counts_union() {
        let s = system();
        assert_eq!(coverage_count(&s, &[SetId(0)]), 2);
        assert_eq!(coverage_count(&s, &[SetId(0), SetId(1)]), 3);
        assert!(!check_cover(&s, &[SetId(0), SetId(1)]));
        assert!(check_cover(&s, &[SetId(0), SetId(1), SetId(2)]));
    }

    #[test]
    fn costs_accumulate_per_group() {
        let s = system();
        let all = [SetId(0), SetId(1), SetId(2)];
        assert_eq!(total_cost(&s, &all), 6);
        assert_eq!(group_costs(&s, &all), vec![5, 1]);
        assert!(check_budgets(&s, &all, &[5, 1]));
        assert!(!check_budgets(&s, &all, &[4, 1]));
    }

    #[test]
    fn duplicate_selection_counted_twice() {
        let s = system();
        assert_eq!(total_cost(&s, &[SetId(2), SetId(2)]), 2);
    }
}
