//! Greedy weighted set cover — the paper's `CostSC` (Fig. 8).

use std::collections::binary_heap::PeekMut;
use std::collections::BinaryHeap;
use std::fmt;

use crate::celf::GainEntry;
use crate::cost::Cost;
use crate::system::{ElementId, SetId, SetSystem};

/// The result of a covering run: which sets were chosen, in order, and which
/// elements each chosen set newly covered.
///
/// The *assignment* (element → the set that first covered it) matters to the
/// WLAN reduction: a user associates with the AP of the set that covered it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cover<C> {
    chosen: Vec<SetId>,
    newly_covered: Vec<Vec<ElementId>>,
    assignment: Vec<Option<SetId>>,
    total_cost: C,
    n_elements: usize,
}

impl<C: Cost> Cover<C> {
    pub(crate) fn from_picks(n_elements: usize, picks: Vec<(SetId, Vec<ElementId>, C)>) -> Self {
        let mut assignment = vec![None; n_elements];
        let mut chosen = Vec::with_capacity(picks.len());
        let mut newly_covered = Vec::with_capacity(picks.len());
        let mut total = C::zero();
        for (id, news, cost) in picks {
            for e in &news {
                debug_assert!(assignment[e.0 as usize].is_none());
                assignment[e.0 as usize] = Some(id);
            }
            total = total.add(&cost);
            chosen.push(id);
            newly_covered.push(news);
        }
        Cover {
            chosen,
            newly_covered,
            assignment,
            total_cost: total,
            n_elements,
        }
    }

    /// Chosen sets in selection order.
    pub fn chosen(&self) -> &[SetId] {
        &self.chosen
    }

    /// For the `i`-th chosen set, the elements it newly covered.
    pub fn newly_covered(&self) -> &[Vec<ElementId>] {
        &self.newly_covered
    }

    /// For each element, the set that first covered it (if covered).
    pub fn assignment(&self) -> &[Option<SetId>] {
        &self.assignment
    }

    /// Sum of the chosen sets' costs.
    pub fn total_cost(&self) -> &C {
        &self.total_cost
    }

    /// Number of covered elements.
    pub fn covered_count(&self) -> usize {
        self.assignment.iter().filter(|a| a.is_some()).count()
    }

    /// True if every element of the ground set is covered.
    pub fn covers_all(&self) -> bool {
        self.assignment.iter().all(|a| a.is_some())
    }

    /// Elements left uncovered.
    pub fn uncovered(&self) -> Vec<ElementId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, a)| a.is_none())
            .map(|(i, _)| ElementId(i as u32))
            .collect()
    }
}

/// Errors from [`greedy_set_cover`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoverError {
    /// Some elements belong to no set, so no cover exists.
    Uncoverable {
        /// The elements no set contains.
        elements: Vec<ElementId>,
    },
}

impl fmt::Display for CoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoverError::Uncoverable { elements } => {
                write!(f, "{} element(s) belong to no set", elements.len())
            }
        }
    }
}

impl std::error::Error for CoverError {}

/// The classic cost-effectiveness greedy for weighted set cover
/// (`CostSC`, paper Fig. 8): repeatedly select the set maximizing
/// `|S ∩ X'| / c(S)` over the still-uncovered elements `X'`.
///
/// Groups are ignored — MLA only minimizes the *total* load.
/// Guarantee: `ln(n) + 1` times the optimal cost (Vazirani, ch. 2).
///
/// Ties are broken toward the lowest `SetId`, making the algorithm fully
/// deterministic.
///
/// # Errors
///
/// [`CoverError::Uncoverable`] if an element belongs to no set.
///
/// # Example
///
/// ```
/// use mcast_covering::{SetSystemBuilder, greedy_set_cover};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SetSystemBuilder::<u64>::new(3);
/// b.push_set([0, 1, 2], 4u64, 0)?;
/// b.push_set([0], 1u64, 0)?;
/// b.push_set([1, 2], 2u64, 1)?;
/// let cover = greedy_set_cover(&b.build()?)?;
/// assert_eq!(cover.total_cost(), &3); // picks {1,2} then {0}
/// # Ok(())
/// # }
/// ```
pub fn greedy_set_cover<C: Cost>(system: &SetSystem<C>) -> Result<Cover<C>, CoverError> {
    if !system.all_coverable() {
        return Err(CoverError::Uncoverable {
            elements: system.uncoverable_elements(),
        });
    }

    let n = system.n_elements();
    let mut covered = vec![false; n];
    let mut n_uncovered = n;
    // Residual |S ∩ X'| per set, maintained incrementally.
    let mut residual: Vec<u64> = system
        .sets()
        .iter()
        .map(|s| s.members().len() as u64)
        .collect();
    let mut picks = Vec::new();

    // Lazy greedy (CELF): gains are submodular, so a stale heap entry is an
    // upper bound on the fresh gain. A popped entry whose gain is current is
    // the true maximum — and the heap's (effectiveness desc, id asc) order
    // matches the naive scan's "strictly greater replaces" rule exactly.
    let mut heap: BinaryHeap<GainEntry<C>> = system
        .sets()
        .iter()
        .enumerate()
        .filter(|&(i, _)| residual[i] > 0)
        .map(|(i, set)| GainEntry {
            gain: residual[i],
            cost: set.cost().clone(),
            tie: (0, i as u32),
        })
        .collect();

    while n_uncovered > 0 {
        let id = loop {
            let mut top = heap
                .peek_mut()
                .expect("all elements coverable implies progress");
            let fresh = residual[top.set_index()];
            if fresh == 0 {
                PeekMut::pop(top); // gains only shrink: never usable again
                continue;
            }
            if fresh < top.gain {
                top.gain = fresh; // drop re-sifts the refreshed entry
                continue;
            }
            break SetId(PeekMut::pop(top).tie.1);
        };
        let news: Vec<ElementId> = system
            .set(id)
            .members()
            .iter()
            .copied()
            .filter(|e| !covered[e.0 as usize])
            .collect();
        for &e in &news {
            covered[e.0 as usize] = true;
            n_uncovered -= 1;
            for &other in system.covering_sets(e) {
                residual[other.0 as usize] -= 1;
            }
        }
        let cost = system.set(id).cost().clone();
        picks.push((id, news, cost));
    }

    Ok(Cover::from_picks(n, picks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SetSystemBuilder;

    #[test]
    fn picks_most_cost_effective_first() {
        // Classic: a big cheap set beats many small ones.
        let mut b = SetSystemBuilder::<u64>::new(4);
        b.push_set([0], 1, 0).unwrap(); // eff 1
        b.push_set([1], 1, 0).unwrap();
        b.push_set([0, 1, 2, 3], 2, 0).unwrap(); // eff 2 — wins alone
        let cover = greedy_set_cover(&b.build().unwrap()).unwrap();
        assert_eq!(cover.chosen(), &[SetId(2)]);
        assert_eq!(cover.total_cost(), &2);
        assert!(cover.covers_all());
        assert_eq!(cover.covered_count(), 4);
    }

    #[test]
    fn assignment_records_first_coverer() {
        let mut b = SetSystemBuilder::<u64>::new(3);
        b.push_set([0, 1], 1, 0).unwrap(); // eff 2: picked first
        b.push_set([1, 2], 1, 0).unwrap(); // then covers only {2}
        let cover = greedy_set_cover(&b.build().unwrap()).unwrap();
        assert_eq!(cover.assignment()[0], Some(SetId(0)));
        assert_eq!(cover.assignment()[1], Some(SetId(0)));
        assert_eq!(cover.assignment()[2], Some(SetId(1)));
        assert_eq!(cover.newly_covered()[1], vec![ElementId(2)]);
    }

    #[test]
    fn uncoverable_is_an_error() {
        let mut b = SetSystemBuilder::<u64>::new(2);
        b.push_set([0], 1, 0).unwrap();
        let err = greedy_set_cover(&b.build().unwrap()).unwrap_err();
        assert_eq!(
            err,
            CoverError::Uncoverable {
                elements: vec![ElementId(1)]
            }
        );
    }

    #[test]
    fn ties_break_to_lowest_set_id() {
        let mut b = SetSystemBuilder::<u64>::new(2);
        b.push_set([0], 1, 0).unwrap();
        b.push_set([1], 1, 0).unwrap();
        b.push_set([0], 1, 1).unwrap(); // same as S0
        let cover = greedy_set_cover(&b.build().unwrap()).unwrap();
        assert_eq!(cover.chosen(), &[SetId(0), SetId(1)]);
    }

    #[test]
    fn empty_ground_set_is_trivially_covered() {
        let b = SetSystemBuilder::<u64>::new(0);
        let cover = greedy_set_cover(&b.build().unwrap()).unwrap();
        assert!(cover.covers_all());
        assert_eq!(cover.total_cost(), &0);
        assert!(cover.chosen().is_empty());
    }

    #[test]
    fn paper_figure7_mla_example() {
        // The MLA reduction of the Figure 1 WLAN with both sessions at
        // 1 Mbps (paper Fig. 7). Ground set u1..u5 = 0..4; s1 requested by
        // u1(0), u3(2); s2 by u2(1), u4(3), u5(4). Costs scaled ×60 to stay
        // integral: cost = 60 * (1 Mbps / rate).
        let mut b = SetSystemBuilder::<u64>::new(5);
        b.push_set([2], 60 / 4, 0).unwrap(); // S1: a1, s1 @4 -> {u3}, cost 15
        b.push_set([0, 2], 60 / 3, 0).unwrap(); // S2: a1, s1 @3 -> {u1,u3}, cost 20
        b.push_set([1], 60 / 6, 0).unwrap(); // S3: a1, s2 @6 -> {u2}, cost 10
        b.push_set([1, 3, 4], 60 / 4, 0).unwrap(); // S4: a1, s2 @4 -> {u2,u4,u5}, cost 15
        b.push_set([2], 60 / 5, 1).unwrap(); // S5: a2, s1 @5 -> {u3}, cost 12
        b.push_set([3], 60 / 5, 1).unwrap(); // S6: a2, s2 @5 -> {u4}, cost 12
        b.push_set([3, 4], 60 / 3, 1).unwrap(); // S7: a2, s2 @3 -> {u4,u5}, cost 20
        let cover = greedy_set_cover(&b.build().unwrap()).unwrap();
        // Paper: optimal (and greedy) H = {S2, S4}: all users on a1,
        // total load 1/3 + 1/4 = 7/12 -> 35 in ×60 units.
        let mut chosen = cover.chosen().to_vec();
        chosen.sort();
        assert_eq!(chosen, vec![SetId(1), SetId(3)]);
        assert_eq!(cover.total_cost(), &35);
    }
}
