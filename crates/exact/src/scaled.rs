//! Integer rescaling of rational covering instances.

use mcast_core::Load;
use mcast_covering::{SetId, SetSystem};

fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.abs()
}

fn lcm(a: i128, b: i128) -> i128 {
    (a / gcd(a, b)).checked_mul(b).expect("lcm overflow")
}

/// A covering instance with all costs and budgets rescaled to exact `u64`
/// integers (multiplied by the least common denominator), plus the
/// adjacency indexes the branch-and-bound solvers need.
#[derive(Debug, Clone)]
pub struct ScaledSystem {
    /// Scale factor: `scaled = load * unit`.
    unit: i128,
    n_elements: usize,
    n_groups: usize,
    /// Per set: scaled cost.
    costs: Vec<u64>,
    /// Per set: group index.
    groups: Vec<usize>,
    /// Per set: member elements (sorted).
    members: Vec<Vec<u32>>,
    /// Per element: sets containing it.
    covering: Vec<Vec<SetId>>,
    /// Per group: scaled budget (`u64::MAX` when no budgets supplied).
    budgets: Vec<u64>,
}

impl ScaledSystem {
    /// Rescales `system` (and optional per-group `budgets`) to integers.
    ///
    /// # Panics
    ///
    /// Panics if a cost or budget is negative, or if the common denominator
    /// overflows `i128` (impossible for rate-table-derived instances).
    pub fn new(system: &SetSystem<Load>, budgets: Option<&[Load]>) -> ScaledSystem {
        let mut denom: i128 = 1;
        for set in system.sets() {
            assert!(set.cost().numer() > 0, "costs must be positive");
            denom = lcm(denom, set.cost().denom());
        }
        if let Some(budgets) = budgets {
            for b in budgets {
                assert!(!b.is_negative(), "budgets must be non-negative");
                denom = lcm(denom, b.denom());
            }
        }

        let to_scaled = |l: &Load| -> u64 {
            let v = l
                .numer()
                .checked_mul(denom / l.denom())
                .expect("scaled cost overflow");
            u64::try_from(v).expect("scaled cost fits u64")
        };

        let costs: Vec<u64> = system.sets().iter().map(|s| to_scaled(s.cost())).collect();
        let groups: Vec<usize> = system.sets().iter().map(|s| s.group().0 as usize).collect();
        let members: Vec<Vec<u32>> = system
            .sets()
            .iter()
            .map(|s| s.members().iter().map(|e| e.0).collect())
            .collect();
        let covering: Vec<Vec<SetId>> = (0..system.n_elements())
            .map(|e| {
                system
                    .covering_sets(mcast_covering::ElementId(e as u32))
                    .to_vec()
            })
            .collect();
        let scaled_budgets = match budgets {
            Some(bs) => bs.iter().map(|b| to_scaled_budget(b, denom)).collect(),
            None => vec![u64::MAX; system.n_groups()],
        };

        ScaledSystem {
            unit: denom,
            n_elements: system.n_elements(),
            n_groups: system.n_groups(),
            costs,
            groups,
            members,
            covering,
            budgets: scaled_budgets,
        }
    }

    /// The scale factor (`scaled = load × unit`).
    pub fn unit(&self) -> i128 {
        self.unit
    }

    /// Converts a scaled integer value back to an exact [`Load`].
    pub fn to_load(&self, scaled: u64) -> Load {
        Load::new(scaled as i128, self.unit)
    }

    /// Ground-set size.
    pub fn n_elements(&self) -> usize {
        self.n_elements
    }

    /// Number of groups.
    pub fn n_groups(&self) -> usize {
        self.n_groups
    }

    /// Number of sets.
    pub fn n_sets(&self) -> usize {
        self.costs.len()
    }

    /// Scaled cost of set `s`.
    pub fn cost(&self, s: SetId) -> u64 {
        self.costs[s.0 as usize]
    }

    /// Group of set `s`.
    pub fn group(&self, s: SetId) -> usize {
        self.groups[s.0 as usize]
    }

    /// Members of set `s`.
    pub fn members(&self, s: SetId) -> &[u32] {
        &self.members[s.0 as usize]
    }

    /// Sets containing element `e`.
    pub fn covering(&self, e: u32) -> &[SetId] {
        &self.covering[e as usize]
    }

    /// Scaled budget of group `g` (`u64::MAX` = unconstrained).
    pub fn budget(&self, g: usize) -> u64 {
        self.budgets[g]
    }

    /// True if every element belongs to at least one set.
    pub fn all_coverable(&self) -> bool {
        self.covering.iter().all(|c| !c.is_empty())
    }

    /// For each element, a lower bound on the cheapest per-element "share"
    /// `min over S ∋ e of cost(S) / |S|`, in `1/sub_unit` sub-units of the
    /// scaled cost (rounded *down*, so the bound stays admissible).
    ///
    /// Any cover pays at least the sum of the true shares over the
    /// uncovered elements: covering element `e` with set `S` charges `e`
    /// at least `cost(S)/|S|`, and a set's members charge it at most its
    /// cost in total. Summing the rounded-down shares therefore never
    /// exceeds the cost of any remaining cover.
    pub fn fractional_shares(&self) -> (Vec<u64>, u64) {
        const SUB_UNIT: u64 = 1 << 20;
        let shares = (0..self.n_elements as u32)
            .map(|e| {
                self.covering(e)
                    .iter()
                    .map(|&s| {
                        let size = self.members(s).len() as u128;
                        let scaled = u128::from(self.cost(s)) * u128::from(SUB_UNIT) / size;
                        u64::try_from(scaled).expect("share fits u64")
                    })
                    .min()
                    .unwrap_or(0)
            })
            .collect();
        (shares, SUB_UNIT)
    }
}

fn to_scaled_budget(b: &Load, denom: i128) -> u64 {
    if b.numer() == 0 {
        return 0;
    }
    let v = b
        .numer()
        .checked_mul(denom / b.denom())
        .expect("scaled budget overflow");
    u64::try_from(v).expect("scaled budget fits u64")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_covering::SetSystemBuilder;

    fn system() -> SetSystem<Load> {
        let mut b = SetSystemBuilder::<Load>::new(3);
        b.push_set([0, 1], Load::from_ratio(1, 6), 0).unwrap();
        b.push_set([1, 2], Load::from_ratio(1, 4), 0).unwrap();
        b.push_set([2], Load::from_ratio(1, 3), 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn scaling_uses_lcm() {
        let s = ScaledSystem::new(&system(), None);
        assert_eq!(s.unit(), 12);
        assert_eq!(s.cost(SetId(0)), 2);
        assert_eq!(s.cost(SetId(1)), 3);
        assert_eq!(s.cost(SetId(2)), 4);
        assert_eq!(s.to_load(5), Load::from_ratio(5, 12));
        assert_eq!(s.budget(0), u64::MAX);
    }

    #[test]
    fn budgets_extend_the_denominator() {
        let budgets = vec![Load::permille(900), Load::from_ratio(1, 2)];
        let s = ScaledSystem::new(&system(), Some(&budgets));
        // lcm(6,4,3,10,2) = 60.
        assert_eq!(s.unit(), 60);
        assert_eq!(s.budget(0), 54);
        assert_eq!(s.budget(1), 30);
        assert_eq!(s.cost(SetId(0)), 10);
    }

    #[test]
    fn adjacency_preserved() {
        let s = ScaledSystem::new(&system(), None);
        assert_eq!(s.n_elements(), 3);
        assert_eq!(s.n_groups(), 2);
        assert_eq!(s.members(SetId(0)), &[0, 1]);
        assert_eq!(s.covering(1), &[SetId(0), SetId(1)]);
        assert_eq!(s.group(SetId(2)), 1);
        assert!(s.all_coverable());
    }

    #[test]
    fn fractional_shares_are_admissible() {
        let s = ScaledSystem::new(&system(), None);
        let (shares, sub) = s.fractional_shares();
        // Shares (in 1/sub units of scaled cost): e0: S0 only → 2/2 = 1;
        // e1: min(2/2, 3/2) = 1; e2: min(3/2, 4/1) = 3/2.
        assert_eq!(shares, vec![sub, sub, 3 * sub / 2]);
        // LB for covering all: (1 + 1 + 1.5) = 3.5 scaled units; the true
        // optimum {S0, S2} costs 6 — the bound is below it, as required.
        let lb: u64 = shares.iter().sum();
        assert!(lb <= 6 * sub);
    }
}
