//! Exact maximum coverage under group budgets by branch-and-bound
//! (optimal MNU).

use mcast_covering::SetId;

use crate::scaled::ScaledSystem;
use crate::{BnbOutcome, SearchLimits};

struct State<'a> {
    sys: &'a ScaledSystem,
    /// Elements given up by an ancestor give-up branch.
    given_up: Vec<bool>,
    covered: Vec<bool>,
    covered_count: usize,
    group_cost: Vec<u64>,
    chosen: Vec<SetId>,
    /// Sets excluded by give-up branches (no set containing a given-up
    /// element may be picked deeper in that subtree — this makes the
    /// "covered by S₁ / … / covered by Sₖ / never covered" branches
    /// disjoint, so no solution is explored twice).
    banned: Vec<bool>,
    best_covered: usize,
    best_chosen: Vec<SetId>,
    nodes: u64,
    max_nodes: u64,
    complete: bool,
}

impl State<'_> {
    /// Admissible upper bound on the coverage reachable from this node:
    /// the minimum of two over-estimates of the still-achievable extra —
    ///
    /// * **reachability**: uncovered elements with at least one
    ///   affordable, un-banned set;
    /// * **budget density**: per group, remaining budget × the best
    ///   (uncovered coverage / cost) density among its affordable sets —
    ///   any budget-feasible selection from group `g` adds at most
    ///   `Σ cost × max-density ≤ b_g × max-density` elements.
    fn upper_bound(&self) -> usize {
        let reachable = (0..self.sys.n_elements() as u32)
            .filter(|&e| {
                !self.covered[e as usize]
                    && self.sys.covering(e).iter().any(|&s| {
                        if self.banned[s.0 as usize] {
                            return false;
                        }
                        let g = self.sys.group(s);
                        self.group_cost[g].saturating_add(self.sys.cost(s)) <= self.sys.budget(g)
                    })
            })
            .count();

        // Remaining budget per group; bail out to the reachability bound
        // if any group is unconstrained (the density bound degenerates).
        let mut remaining = Vec::with_capacity(self.sys.n_groups());
        for g in 0..self.sys.n_groups() {
            let budget = self.sys.budget(g);
            if budget == u64::MAX {
                return self.covered_count + reachable;
            }
            remaining.push(budget.saturating_sub(self.group_cost[g]));
        }

        // One pass over the sets: per group, the max (uncovered/cost)
        // density among affordable sets, as an exact fraction (c, w).
        let mut best: Vec<Option<(u64, u64)>> = vec![None; self.sys.n_groups()];
        for s in 0..self.sys.n_sets() {
            let s = SetId(s as u32);
            if self.banned[s.0 as usize] {
                continue;
            }
            let g = self.sys.group(s);
            let w = self.sys.cost(s);
            if w > remaining[g] {
                continue;
            }
            let c = self
                .sys
                .members(s)
                .iter()
                .filter(|&&m| !self.covered[m as usize])
                .count() as u64;
            if c == 0 {
                continue;
            }
            let better = match best[g] {
                None => true,
                Some((bc, bw)) => u128::from(c) * u128::from(bw) > u128::from(bc) * u128::from(w),
            };
            if better {
                best[g] = Some((c, w));
            }
        }
        let density_total: u128 = best
            .iter()
            .zip(&remaining)
            .filter_map(|(b, &r)| b.map(|(c, w)| u128::from(r) * u128::from(c) / u128::from(w)))
            .sum();
        let density = usize::try_from(density_total.min(reachable as u128)).unwrap_or(reachable);
        self.covered_count + reachable.min(density)
    }

    fn record_leaf(&mut self) {
        if self.covered_count > self.best_covered {
            self.best_covered = self.covered_count;
            self.best_chosen = self.chosen.clone();
        }
    }

    /// Affordable, un-banned sets covering `e`, with their fresh coverage.
    fn options_of(&self, e: u32) -> Vec<(SetId, usize)> {
        self.sys
            .covering(e)
            .iter()
            .filter_map(|&s| {
                if self.banned[s.0 as usize] {
                    return None;
                }
                let g = self.sys.group(s);
                if self.group_cost[g].saturating_add(self.sys.cost(s)) > self.sys.budget(g) {
                    return None;
                }
                let news = self
                    .sys
                    .members(s)
                    .iter()
                    .filter(|&&m| !self.covered[m as usize])
                    .count();
                Some((s, news))
            })
            .collect()
    }

    fn dfs(&mut self) {
        self.nodes += 1;
        if self.nodes > self.max_nodes {
            self.complete = false;
            return;
        }

        // Forced give-ups: uncovered, undecided elements with zero
        // affordable options can never be covered in this subtree
        // (budgets only shrink and bans only accumulate).
        let mut forced: Vec<u32> = Vec::new();
        let mut branch_e: Option<(u32, usize)> = None;
        for e in 0..self.sys.n_elements() as u32 {
            if self.covered[e as usize] || self.given_up[e as usize] {
                continue;
            }
            let n_opts = self.options_of(e).len();
            if n_opts == 0 {
                forced.push(e);
                self.given_up[e as usize] = true;
                continue;
            }
            // Dynamic branching: fewest options first.
            if branch_e.is_none_or(|(_, n)| n_opts < n) {
                branch_e = Some((e, n_opts));
            }
        }

        let result: Option<(u32, usize)> = branch_e;
        match result {
            None => self.record_leaf(),
            Some((e, _)) if self.upper_bound() > self.best_covered => {
                self.branch_on(e);
            }
            Some(_) => {} // pruned
        }
        for e in forced {
            self.given_up[e as usize] = false;
        }
    }

    fn branch_on(&mut self, e: u32) {
        let mut candidates = self.options_of(e);
        // Same-group dominance on (cost, uncovered members).
        let snapshot = candidates.clone();
        candidates.retain(|&(s1, n1)| {
            !snapshot.iter().any(|&(s2, n2)| {
                if s2 == s1
                    || self.sys.group(s2) != self.sys.group(s1)
                    || self.sys.cost(s2) > self.sys.cost(s1)
                    || n2 < n1
                {
                    return false;
                }
                let strictly = self.sys.cost(s2) < self.sys.cost(s1) || n2 > n1 || s2 < s1;
                strictly
                    && self
                        .sys
                        .members(s1)
                        .iter()
                        .filter(|&&m| !self.covered[m as usize])
                        .all(|&m| self.sys.members(s2).binary_search(&m).is_ok())
            })
        });
        candidates.sort_by(|&(s1, n1), &(s2, n2)| {
            let lhs = n1 as u128 * u128::from(self.sys.cost(s2));
            let rhs = n2 as u128 * u128::from(self.sys.cost(s1));
            rhs.cmp(&lhs).then(s1.cmp(&s2))
        });

        for (s, _) in candidates {
            let g = self.sys.group(s);
            let news: Vec<u32> = self
                .sys
                .members(s)
                .iter()
                .copied()
                .filter(|&m| !self.covered[m as usize])
                .collect();
            for &m in &news {
                self.covered[m as usize] = true;
            }
            self.covered_count += news.len();
            self.group_cost[g] += self.sys.cost(s);
            self.chosen.push(s);

            self.dfs();

            self.chosen.pop();
            self.group_cost[g] -= self.sys.cost(s);
            self.covered_count -= news.len();
            for &m in &news {
                self.covered[m as usize] = false;
            }
            if !self.complete && self.nodes > self.max_nodes {
                return;
            }
        }

        // Give-up branch: `e` stays uncovered in this subtree — ban every
        // set containing it (solutions that do cover `e` were all explored
        // by the set branches above, so the subtrees are disjoint).
        let newly_banned: Vec<SetId> = self
            .sys
            .covering(e)
            .iter()
            .copied()
            .filter(|&s| !self.banned[s.0 as usize])
            .collect();
        for &s in &newly_banned {
            self.banned[s.0 as usize] = true;
        }
        self.given_up[e as usize] = true;
        self.dfs();
        self.given_up[e as usize] = false;
        for &s in &newly_banned {
            self.banned[s.0 as usize] = false;
        }
    }
}

/// Finds a budget-feasible selection of sets covering a certified-maximum
/// number of elements.
///
/// `initial_lb`: a known feasible `(covered_count, sets)` incumbent (e.g.
/// from the MCG greedy's feasible half).
pub fn optimal_max_coverage(
    sys: &ScaledSystem,
    initial_lb: Option<(usize, Vec<SetId>)>,
    limits: SearchLimits,
) -> BnbOutcome {
    let (best_covered, best_chosen) = match initial_lb {
        Some((c, sets)) => (c, sets),
        None => (0, Vec::new()),
    };
    let mut state = State {
        sys,
        given_up: vec![false; sys.n_elements()],
        covered: vec![false; sys.n_elements()],
        covered_count: 0,
        group_cost: vec![0; sys.n_groups()],
        chosen: Vec::new(),
        banned: vec![false; sys.n_sets()],
        best_covered,
        best_chosen,
        nodes: 0,
        max_nodes: limits.max_nodes,
        complete: true,
    };
    state.dfs();
    BnbOutcome {
        chosen: state.best_chosen,
        objective: state.best_covered as u64,
        proved_optimal: state.complete,
        nodes: state.nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_core::Load;
    use mcast_covering::SetSystemBuilder;

    /// The paper's Figure 2 MCG instance: the greedy serves 3 users; the
    /// optimum serves 4 (e.g. S4 on a1 and S5 on a2).
    fn figure2() -> ScaledSystem {
        let mut b = SetSystemBuilder::<Load>::new(5);
        b.push_set([2], Load::from_ratio(3, 4), 0).unwrap(); // S1
        b.push_set([0, 2], Load::from_ratio(3, 3), 0).unwrap(); // S2
        b.push_set([1], Load::from_ratio(3, 6), 0).unwrap(); // S3
        b.push_set([1, 3, 4], Load::from_ratio(3, 4), 0).unwrap(); // S4
        b.push_set([2], Load::from_ratio(3, 5), 1).unwrap(); // S5
        b.push_set([3], Load::from_ratio(3, 5), 1).unwrap(); // S6
        b.push_set([3, 4], Load::from_ratio(3, 3), 1).unwrap(); // S7
        let sys = b.build().unwrap();
        ScaledSystem::new(&sys, Some(&[Load::ONE, Load::ONE]))
    }

    #[test]
    fn figure2_optimum_serves_four() {
        let sys = figure2();
        let out = optimal_max_coverage(&sys, None, SearchLimits::default());
        assert!(out.proved_optimal);
        assert_eq!(out.objective, 4);
    }

    #[test]
    fn incumbent_seeding_never_hurts() {
        let sys = figure2();
        let seeded = optimal_max_coverage(&sys, Some((3, vec![SetId(3)])), SearchLimits::default());
        assert_eq!(seeded.objective, 4);
        assert!(seeded.proved_optimal);
    }

    #[test]
    fn zero_budget_covers_nothing() {
        let mut b = SetSystemBuilder::<Load>::new(2);
        b.push_set([0, 1], Load::from_ratio(1, 2), 0).unwrap();
        let sys = ScaledSystem::new(&b.build().unwrap(), Some(&[Load::ZERO]));
        let out = optimal_max_coverage(&sys, None, SearchLimits::default());
        assert_eq!(out.objective, 0);
        assert!(out.chosen.is_empty());
    }

    /// Subset-sum gadget (Theorem 7): G = {2, 3, 5}, T = 5; the optimum
    /// covers exactly 5 users.
    #[test]
    fn subset_sum_gadget_optimum() {
        let mut b = SetSystemBuilder::<Load>::new(10);
        // Users 0-1 want s0 (load 2), 2-4 want s1 (load 3), 5-9 want s2
        // (load 5); one AP, budget 5 (scaled /10).
        b.push_set([0, 1], Load::from_ratio(2, 10), 0).unwrap();
        b.push_set([2, 3, 4], Load::from_ratio(3, 10), 0).unwrap();
        b.push_set([5, 6, 7, 8, 9], Load::from_ratio(5, 10), 0)
            .unwrap();
        let sys = ScaledSystem::new(&b.build().unwrap(), Some(&[Load::from_ratio(5, 10)]));
        let out = optimal_max_coverage(&sys, None, SearchLimits::default());
        assert!(out.proved_optimal);
        assert_eq!(out.objective, 5);
    }

    #[test]
    fn node_cap_reports_incomplete() {
        let sys = figure2();
        let out = optimal_max_coverage(
            &sys,
            Some((3, vec![SetId(3)])),
            SearchLimits { max_nodes: 1 },
        );
        assert!(!out.proved_optimal);
        assert_eq!(out.objective, 3); // incumbent survives
    }

    /// Incidental coverage in the give-up branch still counts: give up on
    /// element 0, then a set chosen for element 1 covers both.
    #[test]
    fn incidental_coverage_counts() {
        let mut b = SetSystemBuilder::<Load>::new(2);
        // Element 0's only *direct* consideration comes first in order;
        // the pair set is affordable and covers both.
        b.push_set([0, 1], Load::from_ratio(1, 2), 0).unwrap();
        b.push_set([0], Load::from_ratio(1, 2), 0).unwrap();
        let sys = ScaledSystem::new(&b.build().unwrap(), Some(&[Load::from_ratio(1, 2)]));
        let out = optimal_max_coverage(&sys, None, SearchLimits::default());
        assert!(out.proved_optimal);
        assert_eq!(out.objective, 2);
    }
}
