//! Certified-optimal solvers for the WLAN multicast association problems.
//!
//! The paper evaluates its approximation algorithms against "ILPs … based
//! on the ILP of set cover problem" on small networks (Figure 12). No ILP
//! solver is available in this offline workspace, so this crate implements
//! the same role with purpose-built combinatorial **branch-and-bound**
//! over the covering formulation — producing certified optima (or, under a
//! node budget, the best solution found plus a `proved_optimal = false`
//! flag).
//!
//! Why the covering model's optimum *is* the association optimum: any
//! association induces, per (AP, session), exactly one transmission at the
//! minimum member rate — a covering solution of equal cost; conversely any
//! covering solution's induced association only *consolidates* duplicate
//! (AP, session) picks, never costing more. Hence the two optima coincide
//! for all three objectives (total cost, max group cost, coverage under
//! budgets).
//!
//! Costs are rescaled from exact rationals to exact `u64` integers by the
//! least common denominator ([`ScaledSystem`]), so bounds and comparisons
//! are pure integer arithmetic — fast and certified.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coverage;
mod makespan;
mod scaled;
mod set_cover;
mod wlan;

pub use coverage::optimal_max_coverage;
pub use makespan::optimal_min_max_cover;
pub use scaled::ScaledSystem;
pub use set_cover::optimal_set_cover;
pub use wlan::{optimal_bla, optimal_mla, optimal_mnu, ExactError, ExactSolution};

/// Search limits for the branch-and-bound solvers.
#[derive(Debug, Clone, Copy)]
pub struct SearchLimits {
    /// Maximum number of search-tree nodes to expand before giving up the
    /// optimality proof and returning the incumbent.
    pub max_nodes: u64,
}

impl Default for SearchLimits {
    fn default() -> Self {
        SearchLimits {
            max_nodes: 20_000_000,
        }
    }
}

/// Outcome of a branch-and-bound run over a covering instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BnbOutcome {
    /// The selected sets (ids into the scaled system).
    pub chosen: Vec<mcast_covering::SetId>,
    /// The objective in scaled integer units (total cost, max group cost,
    /// or covered-element count depending on the solver).
    pub objective: u64,
    /// True if the search completed: `objective` is the certified optimum.
    pub proved_optimal: bool,
    /// Nodes expanded.
    pub nodes: u64,
}
