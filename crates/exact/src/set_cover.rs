//! Exact minimum-cost set cover by branch-and-bound (optimal MLA).

use mcast_covering::SetId;

use crate::scaled::ScaledSystem;
use crate::{BnbOutcome, SearchLimits};

struct State<'a> {
    sys: &'a ScaledSystem,
    shares: Vec<u64>,
    sub_unit: u128,
    covered: Vec<bool>,
    n_uncovered: usize,
    chosen: Vec<SetId>,
    cost: u64,
    best_cost: u64,
    best_chosen: Vec<SetId>,
    nodes: u64,
    max_nodes: u64,
    complete: bool,
}

impl State<'_> {
    /// Admissible lower bound on the remaining cost, in sub-units.
    fn remaining_lb(&self) -> u128 {
        self.covered
            .iter()
            .enumerate()
            .filter(|(_, &c)| !c)
            .map(|(e, _)| u128::from(self.shares[e]))
            .sum()
    }

    fn dfs(&mut self) {
        self.nodes += 1;
        if self.nodes > self.max_nodes {
            self.complete = false;
            return;
        }
        if self.n_uncovered == 0 {
            if self.cost < self.best_cost {
                self.best_cost = self.cost;
                self.best_chosen = self.chosen.clone();
            }
            return;
        }
        // Prune: current + admissible remaining bound must beat the best.
        if u128::from(self.cost) * self.sub_unit + self.remaining_lb()
            >= u128::from(self.best_cost) * self.sub_unit
        {
            return;
        }

        // Branch on the uncovered element with the fewest covering sets.
        let e = (0..self.sys.n_elements() as u32)
            .filter(|&e| !self.covered[e as usize])
            .min_by_key(|&e| self.sys.covering(e).len())
            .expect("uncovered element exists");

        // Candidate sets, best-first: highest (newly covered / cost).
        let mut candidates: Vec<(SetId, usize)> = self
            .sys
            .covering(e)
            .iter()
            .map(|&s| {
                let news = self
                    .sys
                    .members(s)
                    .iter()
                    .filter(|&&m| !self.covered[m as usize])
                    .count();
                (s, news)
            })
            .collect();
        // Dominance: drop S1 if some S2 also covering `e` has
        // cost <= cost(S1) and covers a superset of S1's uncovered members.
        let snapshot = candidates.clone();
        candidates
            .retain(|&(s1, n1)| !candidates_dominated(self.sys, &self.covered, &snapshot, s1, n1));
        candidates.sort_by(|&(s1, n1), &(s2, n2)| {
            // n/c descending: n1*c2 > n2*c1 first.
            let lhs = n1 as u128 * u128::from(self.sys.cost(s2));
            let rhs = n2 as u128 * u128::from(self.sys.cost(s1));
            rhs.cmp(&lhs).then(s1.cmp(&s2))
        });

        for (s, _) in candidates {
            let news: Vec<u32> = self
                .sys
                .members(s)
                .iter()
                .copied()
                .filter(|&m| !self.covered[m as usize])
                .collect();
            for &m in &news {
                self.covered[m as usize] = true;
            }
            self.n_uncovered -= news.len();
            self.cost += self.sys.cost(s);
            self.chosen.push(s);

            self.dfs();

            self.chosen.pop();
            self.cost -= self.sys.cost(s);
            self.n_uncovered += news.len();
            for &m in &news {
                self.covered[m as usize] = false;
            }
            if !self.complete && self.nodes > self.max_nodes {
                return;
            }
        }
    }
}

fn candidates_dominated(
    sys: &ScaledSystem,
    covered: &[bool],
    candidates: &[(SetId, usize)],
    s1: SetId,
    n1: usize,
) -> bool {
    candidates.iter().any(|&(s2, n2)| {
        if s2 == s1 || sys.cost(s2) > sys.cost(s1) || n2 < n1 {
            return false;
        }
        // Equal cost and members: keep the lower id only.
        let strictly_better = sys.cost(s2) < sys.cost(s1) || n2 > n1 || s2 < s1;
        if !strictly_better {
            return false;
        }
        // Subset test on uncovered members.
        sys.members(s1)
            .iter()
            .filter(|&&m| !covered[m as usize])
            .all(|&m| sys.members(s2).binary_search(&m).is_ok())
    })
}

/// Finds a certified-minimum-cost cover of all elements.
///
/// `initial_ub` seeds the incumbent: pass a known feasible solution (e.g.
/// the greedy's) as `(cost, sets)` to prune from the start; pass `None` to
/// start from an infinite incumbent.
///
/// Returns `None` if some element is uncoverable.
pub fn optimal_set_cover(
    sys: &ScaledSystem,
    initial_ub: Option<(u64, Vec<SetId>)>,
    limits: SearchLimits,
) -> Option<BnbOutcome> {
    if !sys.all_coverable() {
        return None;
    }
    let (shares, sub_unit) = sys.fractional_shares();
    let (best_cost, best_chosen) = match initial_ub {
        Some((c, sets)) => (c, sets),
        None => (u64::MAX, Vec::new()),
    };
    let mut state = State {
        sys,
        shares,
        sub_unit: u128::from(sub_unit),
        covered: vec![false; sys.n_elements()],
        n_uncovered: sys.n_elements(),
        chosen: Vec::new(),
        cost: 0,
        best_cost,
        best_chosen,
        nodes: 0,
        max_nodes: limits.max_nodes,
        complete: true,
    };
    if state.n_uncovered == 0 {
        return Some(BnbOutcome {
            chosen: Vec::new(),
            objective: 0,
            proved_optimal: true,
            nodes: 0,
        });
    }
    state.dfs();
    assert!(
        state.best_cost < u64::MAX,
        "coverable instance must yield a cover"
    );
    Some(BnbOutcome {
        chosen: state.best_chosen,
        objective: state.best_cost,
        proved_optimal: state.complete,
        nodes: state.nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_core::Load;
    use mcast_covering::{SetSystem, SetSystemBuilder};

    fn scaled(sets: &[(&[u32], (u64, u64))], n: usize) -> ScaledSystem {
        let mut b = SetSystemBuilder::<Load>::new(n);
        for (members, (num, den)) in sets {
            b.push_set(members.iter().copied(), Load::from_ratio(*num, *den), 0)
                .unwrap();
        }
        let sys: SetSystem<Load> = b.build().unwrap();
        ScaledSystem::new(&sys, None)
    }

    #[test]
    fn beats_greedy_on_classic_counterexample() {
        // Greedy picks the big set then patches; optimum is the two sides.
        // X = {0..5}; S0 = {0,1,2} cost 1; S1 = {3,4,5} cost 1;
        // S2 = {0,1,2,3} cost 1 (tempting), S3 = {4}, S4 = {5} cost 1 each.
        let sys = scaled(
            &[
                (&[0, 1, 2], (1, 1)),
                (&[3, 4, 5], (1, 1)),
                (&[0, 1, 2, 3], (1, 1)),
                (&[4], (1, 1)),
                (&[5], (1, 1)),
            ],
            6,
        );
        let out = optimal_set_cover(&sys, None, SearchLimits::default()).unwrap();
        assert!(out.proved_optimal);
        assert_eq!(out.objective, 2); // e.g. {S0, S1} or {S1, S2}
        let mut covered = vec![false; 6];
        for s in &out.chosen {
            for &m in sys.members(*s) {
                covered[m as usize] = true;
            }
        }
        assert!(covered.into_iter().all(|c| c));
    }

    #[test]
    fn uncoverable_returns_none() {
        let sys = scaled(&[(&[0], (1, 1))], 2);
        assert!(optimal_set_cover(&sys, None, SearchLimits::default()).is_none());
    }

    #[test]
    fn empty_ground_set_costs_zero() {
        let sys = scaled(&[], 0);
        let out = optimal_set_cover(&sys, None, SearchLimits::default()).unwrap();
        assert_eq!(out.objective, 0);
        assert!(out.chosen.is_empty());
    }

    #[test]
    fn initial_ub_preserved_when_already_optimal() {
        let sys = scaled(&[(&[0, 1], (1, 2))], 2);
        let out =
            optimal_set_cover(&sys, Some((1, vec![SetId(0)])), SearchLimits::default()).unwrap();
        // Scaled unit is 2, so the set costs 1 scaled unit; the UB equals
        // the optimum and the incumbent stands.
        assert_eq!(out.objective, 1);
        assert!(out.proved_optimal);
    }

    #[test]
    fn node_cap_degrades_gracefully() {
        // A chain of overlapping sets with a tiny node budget: the search
        // must stop, flag incompleteness, and still return the seeded UB.
        let sys = scaled(
            &[
                (&[0, 1], (1, 1)),
                (&[1, 2], (1, 1)),
                (&[2, 3], (1, 1)),
                (&[0], (1, 1)),
                (&[3], (1, 1)),
            ],
            4,
        );
        let ub = (3, vec![SetId(0), SetId(1), SetId(2)]);
        let out = optimal_set_cover(&sys, Some(ub), SearchLimits { max_nodes: 1 }).unwrap();
        assert!(!out.proved_optimal);
        assert_eq!(out.objective, 3);
    }

    #[test]
    fn fractional_costs_handled_exactly() {
        // Costs 1/6 and 1/4 vs a 5/12 "both" set: optimum picks the pair
        // (1/6 + 1/4 = 5/12, tie) or the single set — objective is 5 in
        // 1/12 units either way.
        let sys = scaled(&[(&[0], (1, 6)), (&[1], (1, 4)), (&[0, 1], (5, 12))], 2);
        let out = optimal_set_cover(&sys, None, SearchLimits::default()).unwrap();
        assert_eq!(out.objective, 5);
        assert_eq!(sys.to_load(out.objective), Load::from_ratio(5, 12));
    }
}
