//! WLAN-level wrappers: optimal MNU / BLA / MLA on an [`Instance`],
//! seeded with the corresponding approximation algorithm's solution.

use std::fmt;

use mcast_core::reduction::Reduction;
use mcast_core::{
    solve_bla, solve_mla, solve_mnu, Association, Instance, Load, Objective, Solution, UserId,
};
use mcast_covering::SetId;

use crate::coverage::optimal_max_coverage;
use crate::makespan::optimal_min_max_cover;
use crate::scaled::ScaledSystem;
use crate::set_cover::optimal_set_cover;
use crate::SearchLimits;

/// An exact solver outcome: a [`Solution`] plus the optimality certificate.
#[derive(Debug, Clone)]
pub struct ExactSolution {
    /// The association and its realized metrics.
    pub solution: Solution,
    /// True if the branch-and-bound search completed within its node
    /// budget: the solution is a certified optimum of the covering model
    /// (equivalently, of the association problem — see the crate docs).
    pub proved_optimal: bool,
    /// Search-tree nodes expanded.
    pub nodes: u64,
}

/// Errors from the exact solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExactError {
    /// Some users cannot hear any AP (BLA / MLA need full coverage).
    Uncoverable {
        /// The unreachable users.
        users: Vec<UserId>,
    },
}

impl fmt::Display for ExactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExactError::Uncoverable { users } => {
                write!(f, "{} user(s) cannot hear any AP", users.len())
            }
        }
    }
}

impl std::error::Error for ExactError {}

/// Builds an association from chosen covering sets: iterate the sets,
/// assigning each still-unassigned member to the set's AP.
fn association_from(red: &Reduction, chosen: &[SetId]) -> Association {
    let mut assoc = Association::empty(red.system().n_elements());
    for &sid in chosen {
        let choice = red.choice(sid);
        for e in red.system().set(sid).members() {
            let u = UserId(e.0);
            if assoc.ap_of(u).is_none() {
                assoc.set(u, Some(choice.ap));
            }
        }
    }
    assoc
}

/// Certified-optimal MLA (minimum total load).
///
/// # Errors
///
/// [`ExactError::Uncoverable`] if some user is out of range of every AP.
pub fn optimal_mla(inst: &Instance, limits: SearchLimits) -> Result<ExactSolution, ExactError> {
    let red = Reduction::build(inst);
    let sys = ScaledSystem::new(red.system(), None);
    // Seed with the greedy incumbent (consolidated transmissions, whose
    // model cost equals the realized total load).
    let seed = solve_mla(inst).ok().map(|s| {
        (
            load_to_scaled(&sys, s.total_load),
            collect_transmissions(&red, &s.association),
        )
    });
    let out = optimal_set_cover(&sys, seed, limits).ok_or_else(|| ExactError::Uncoverable {
        users: red.uncoverable_users(),
    })?;
    let assoc = association_from(&red, &out.chosen);
    Ok(ExactSolution {
        solution: Solution::evaluate(
            Objective::Mla,
            assoc,
            inst,
            Some(sys.to_load(out.objective)),
        ),
        proved_optimal: out.proved_optimal,
        nodes: out.nodes,
    })
}

/// Certified-optimal BLA (minimum maximum AP load).
///
/// # Errors
///
/// [`ExactError::Uncoverable`] if some user is out of range of every AP.
pub fn optimal_bla(inst: &Instance, limits: SearchLimits) -> Result<ExactSolution, ExactError> {
    let red = Reduction::build(inst);
    let sys = ScaledSystem::new(red.system(), None);
    let seed = solve_bla(inst).ok().map(|s| {
        (
            load_to_scaled(&sys, s.max_load),
            collect_transmissions(&red, &s.association),
        )
    });
    let out = optimal_min_max_cover(&sys, seed, limits).ok_or_else(|| ExactError::Uncoverable {
        users: red.uncoverable_users(),
    })?;
    let assoc = association_from(&red, &out.chosen);
    Ok(ExactSolution {
        solution: Solution::evaluate(
            Objective::Bla,
            assoc,
            inst,
            Some(sys.to_load(out.objective)),
        ),
        proved_optimal: out.proved_optimal,
        nodes: out.nodes,
    })
}

/// Certified-optimal MNU (maximum satisfied users under AP budgets).
pub fn optimal_mnu(inst: &Instance, limits: SearchLimits) -> ExactSolution {
    let red = Reduction::build(inst);
    let sys = ScaledSystem::new(red.system(), Some(red.budgets()));
    let greedy = solve_mnu(inst);
    let seed = (
        greedy.satisfied,
        collect_transmissions(&red, &greedy.association),
    );
    let out = optimal_max_coverage(&sys, Some(seed), limits);
    let assoc = association_from(&red, &out.chosen);
    debug_assert!(assoc.is_feasible(inst));
    ExactSolution {
        solution: Solution::evaluate(Objective::Mnu, assoc, inst, None),
        proved_optimal: out.proved_optimal,
        nodes: out.nodes,
    }
}

fn load_to_scaled(sys: &ScaledSystem, l: Load) -> u64 {
    let v = l
        .numer()
        .checked_mul(sys.unit() / l.denom())
        .expect("seed cost scales");
    u64::try_from(v).expect("seed cost fits")
}

/// For each (AP, session) an association actually serves, find the
/// reduction set matching the transmission (the one whose rate equals the
/// minimum member rate). Panics are impossible: the reduction contains a
/// set for every (AP, session, achievable min rate).
fn collect_transmissions(red: &Reduction, assoc: &Association) -> Vec<SetId> {
    let sys = red.system();
    let mut result = Vec::new();
    // Group associated users by (ap, session) and find min rates using the
    // reduction's choices: iterate sets and pick those whose (ap, session)
    // is served and whose rate is the served minimum and whose members
    // include all served users of that (ap, session).
    // Compute served (ap, session) -> min rate over the instance encoded in
    // the reduction choices is not directly available here, so match by
    // member containment: the correct set is the cheapest set of the
    // (ap, session) whose members contain every served user.
    use std::collections::HashMap;
    let mut served: HashMap<(u32, u32), Vec<u32>> = HashMap::new();
    for (u, ap) in assoc.iter().enumerate() {
        if let Some(a) = ap {
            // The session of user u: find any set containing u for AP a —
            // all such sets share the user's session.
            let mut session = None;
            for &sid in sys.covering_sets(mcast_covering::ElementId(u as u32)) {
                let c = red.choice(sid);
                if c.ap == a {
                    session = Some(c.session.0);
                    break;
                }
            }
            let session = session.expect("associated user has a set at its AP");
            served.entry((a.0, session)).or_default().push(u as u32);
        }
    }
    for ((ap, session), users) in served {
        // Candidate sets of this (ap, session) containing all users;
        // pick the cheapest (highest rate) — that is the real transmission.
        let mut best: Option<(SetId, Load)> = None;
        for sid in 0..sys.n_sets() {
            let sid = SetId(sid as u32);
            let c = red.choice(sid);
            if c.ap.0 != ap || c.session.0 != session {
                continue;
            }
            let covers_all = users
                .iter()
                .all(|&u| sys.set(sid).contains(mcast_covering::ElementId(u)));
            if covers_all {
                let cost = *sys.set(sid).cost();
                if best.is_none_or(|(_, bc)| cost < bc) {
                    best = Some((sid, cost));
                }
            }
        }
        result.push(best.expect("transmission set exists").0);
    }
    result.sort();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_core::examples_paper::figure1_instance;
    use mcast_core::Kbps;

    fn mbps(m: u32) -> Kbps {
        Kbps::from_mbps(m)
    }

    #[test]
    fn figure1_optimal_mla_is_7_12() {
        let inst = figure1_instance(mbps(1));
        let out = optimal_mla(&inst, SearchLimits::default()).unwrap();
        assert!(out.proved_optimal);
        assert_eq!(out.solution.total_load, Load::from_ratio(7, 12));
        assert_eq!(out.solution.satisfied, 5);
    }

    #[test]
    fn figure1_optimal_bla_is_one_half() {
        let inst = figure1_instance(mbps(1));
        let out = optimal_bla(&inst, SearchLimits::default()).unwrap();
        assert!(out.proved_optimal);
        assert_eq!(out.solution.max_load, Load::from_ratio(1, 2));
        assert_eq!(out.solution.satisfied, 5);
    }

    #[test]
    fn figure1_optimal_mnu_serves_four() {
        let inst = figure1_instance(mbps(3));
        let out = optimal_mnu(&inst, SearchLimits::default());
        assert!(out.proved_optimal);
        assert_eq!(out.solution.satisfied, 4);
        assert!(out.solution.association.is_feasible(&inst));
    }

    #[test]
    fn greedy_never_beats_optimal() {
        let inst = figure1_instance(mbps(1));
        let greedy = solve_mla(&inst).unwrap();
        let exact = optimal_mla(&inst, SearchLimits::default()).unwrap();
        assert!(exact.solution.total_load <= greedy.total_load);

        let greedy_bla = solve_bla(&inst).unwrap();
        let exact_bla = optimal_bla(&inst, SearchLimits::default()).unwrap();
        assert!(exact_bla.solution.max_load <= greedy_bla.max_load);

        let inst3 = figure1_instance(mbps(3));
        let greedy_mnu = solve_mnu(&inst3);
        let exact_mnu = optimal_mnu(&inst3, SearchLimits::default());
        assert!(exact_mnu.solution.satisfied >= greedy_mnu.satisfied);
    }

    #[test]
    fn uncoverable_error_for_full_coverage_objectives() {
        let mut b = mcast_core::InstanceBuilder::new();
        let s = b.add_session(mbps(1));
        b.add_ap(Load::ONE);
        b.add_user(s);
        let inst = b.build().unwrap();
        assert!(matches!(
            optimal_mla(&inst, SearchLimits::default()).unwrap_err(),
            ExactError::Uncoverable { .. }
        ));
        assert!(matches!(
            optimal_bla(&inst, SearchLimits::default()).unwrap_err(),
            ExactError::Uncoverable { .. }
        ));
        // MNU tolerates it.
        let out = optimal_mnu(&inst, SearchLimits::default());
        assert_eq!(out.solution.satisfied, 0);
    }
}
