//! Exact minimum-of-maximum group-cost cover by branch-and-bound
//! (optimal BLA — the "makespan" of the multicast load schedule).

use mcast_covering::SetId;

use crate::scaled::ScaledSystem;
use crate::{BnbOutcome, SearchLimits};

struct State<'a> {
    sys: &'a ScaledSystem,
    shares: Vec<u64>,
    sub_unit: u128,
    covered: Vec<bool>,
    n_uncovered: usize,
    group_cost: Vec<u64>,
    total_cost: u64,
    chosen: Vec<SetId>,
    best_max: u64,
    best_chosen: Vec<SetId>,
    nodes: u64,
    max_nodes: u64,
    complete: bool,
}

impl State<'_> {
    fn current_max(&self) -> u64 {
        self.group_cost.iter().copied().max().unwrap_or(0)
    }

    /// Admissible lower bound on the final maximum group cost:
    /// the larger of (a) the max already committed, and (b) the average
    /// bound `(total committed + fractional remaining) / n_groups`
    /// (the max is at least the average).
    fn lower_bound(&self) -> u128 {
        let current = u128::from(self.current_max()) * self.sub_unit;
        let remaining: u128 = self
            .covered
            .iter()
            .enumerate()
            .filter(|(_, &c)| !c)
            .map(|(e, _)| u128::from(self.shares[e]))
            .sum();
        let avg = (u128::from(self.total_cost) * self.sub_unit + remaining)
            / self.sys.n_groups().max(1) as u128;
        current.max(avg)
    }

    fn dfs(&mut self) {
        self.nodes += 1;
        if self.nodes > self.max_nodes {
            self.complete = false;
            return;
        }
        if self.n_uncovered == 0 {
            let max = self.current_max();
            if max < self.best_max {
                self.best_max = max;
                self.best_chosen = self.chosen.clone();
            }
            return;
        }
        if self.lower_bound() >= u128::from(self.best_max) * self.sub_unit {
            return;
        }

        let e = (0..self.sys.n_elements() as u32)
            .filter(|&e| !self.covered[e as usize])
            .min_by_key(|&e| self.sys.covering(e).len())
            .expect("uncovered element exists");

        let mut candidates: Vec<(SetId, usize, u64)> = self
            .sys
            .covering(e)
            .iter()
            .filter_map(|&s| {
                let g = self.sys.group(s);
                let new_group_cost = self.group_cost[g].saturating_add(self.sys.cost(s));
                // Adding this set must leave room to beat the incumbent.
                if new_group_cost >= self.best_max {
                    return None;
                }
                let news = self
                    .sys
                    .members(s)
                    .iter()
                    .filter(|&&m| !self.covered[m as usize])
                    .count();
                Some((s, news, new_group_cost))
            })
            .collect();
        // Same-group dominance: if S2 (same group) is no costlier and its
        // uncovered members are a superset of S1's, S1 is redundant.
        let snapshot = candidates.clone();
        candidates.retain(|&(s1, n1, _)| {
            !snapshot.iter().any(|&(s2, n2, _)| {
                if s2 == s1
                    || self.sys.group(s2) != self.sys.group(s1)
                    || self.sys.cost(s2) > self.sys.cost(s1)
                    || n2 < n1
                {
                    return false;
                }
                let strictly = self.sys.cost(s2) < self.sys.cost(s1) || n2 > n1 || s2 < s1;
                strictly
                    && self
                        .sys
                        .members(s1)
                        .iter()
                        .filter(|&&m| !self.covered[m as usize])
                        .all(|&m| self.sys.members(s2).binary_search(&m).is_ok())
            })
        });
        // Best-first: the choice leading to the least-loaded group, then
        // the most new coverage.
        candidates.sort_by(|&(s1, n1, g1), &(s2, n2, g2)| {
            g1.cmp(&g2).then(n2.cmp(&n1)).then(s1.cmp(&s2))
        });

        for (s, _, _) in candidates {
            let g = self.sys.group(s);
            let news: Vec<u32> = self
                .sys
                .members(s)
                .iter()
                .copied()
                .filter(|&m| !self.covered[m as usize])
                .collect();
            for &m in &news {
                self.covered[m as usize] = true;
            }
            self.n_uncovered -= news.len();
            self.group_cost[g] += self.sys.cost(s);
            self.total_cost += self.sys.cost(s);
            self.chosen.push(s);

            self.dfs();

            self.chosen.pop();
            self.total_cost -= self.sys.cost(s);
            self.group_cost[g] -= self.sys.cost(s);
            self.n_uncovered += news.len();
            for &m in &news {
                self.covered[m as usize] = false;
            }
            if !self.complete && self.nodes > self.max_nodes {
                return;
            }
        }
    }
}

/// Finds a cover of all elements whose maximum per-group cost is
/// certified minimal.
///
/// `initial_ub`: a known feasible `(max_group_cost, sets)` incumbent
/// (e.g. from the SCG heuristic). Returns `None` if uncoverable.
pub fn optimal_min_max_cover(
    sys: &ScaledSystem,
    initial_ub: Option<(u64, Vec<SetId>)>,
    limits: SearchLimits,
) -> Option<BnbOutcome> {
    if !sys.all_coverable() {
        return None;
    }
    let (shares, sub_unit) = sys.fractional_shares();
    let (best_max, best_chosen) = match initial_ub {
        // +1: the search looks for strictly better, so keep the incumbent
        // reachable as "equal" only through best_chosen.
        Some((c, sets)) => (c, sets),
        None => (u64::MAX, Vec::new()),
    };
    let mut state = State {
        sys,
        shares,
        sub_unit: u128::from(sub_unit),
        covered: vec![false; sys.n_elements()],
        n_uncovered: sys.n_elements(),
        group_cost: vec![0; sys.n_groups()],
        total_cost: 0,
        chosen: Vec::new(),
        best_max,
        best_chosen,
        nodes: 0,
        max_nodes: limits.max_nodes,
        complete: true,
    };
    if state.n_uncovered == 0 {
        return Some(BnbOutcome {
            chosen: Vec::new(),
            objective: 0,
            proved_optimal: true,
            nodes: 0,
        });
    }
    state.dfs();
    assert!(
        state.best_max < u64::MAX,
        "coverable instance must yield a cover"
    );
    Some(BnbOutcome {
        chosen: state.best_chosen,
        objective: state.best_max,
        proved_optimal: state.complete,
        nodes: state.nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_core::Load;
    use mcast_covering::SetSystemBuilder;

    #[test]
    fn spreads_load_across_groups() {
        // Two groups; the one-set-covers-all option loads group 0 with 10;
        // splitting across groups achieves max 6.
        let mut b = SetSystemBuilder::<Load>::new(2);
        b.push_set([0, 1], Load::from_ratio(10, 1), 0).unwrap();
        b.push_set([0], Load::from_ratio(6, 1), 0).unwrap();
        b.push_set([1], Load::from_ratio(6, 1), 1).unwrap();
        let sys = ScaledSystem::new(&b.build().unwrap(), None);
        let out = optimal_min_max_cover(&sys, None, SearchLimits::default()).unwrap();
        assert!(out.proved_optimal);
        assert_eq!(out.objective, 6);
        let mut chosen = out.chosen.clone();
        chosen.sort();
        assert_eq!(chosen, vec![SetId(1), SetId(2)]);
    }

    /// The paper's Figure 5 instance: the optimum is max load 1/2
    /// ({S2, S3, S7}), strictly better than the greedy's 7/12.
    #[test]
    fn figure5_optimum_is_one_half() {
        let mut b = SetSystemBuilder::<Load>::new(5);
        b.push_set([2], Load::from_ratio(1, 4), 0).unwrap(); // S1
        b.push_set([0, 2], Load::from_ratio(1, 3), 0).unwrap(); // S2
        b.push_set([1], Load::from_ratio(1, 6), 0).unwrap(); // S3
        b.push_set([1, 3, 4], Load::from_ratio(1, 4), 0).unwrap(); // S4
        b.push_set([2], Load::from_ratio(1, 5), 1).unwrap(); // S5
        b.push_set([3], Load::from_ratio(1, 5), 1).unwrap(); // S6
        b.push_set([3, 4], Load::from_ratio(1, 3), 1).unwrap(); // S7
        let sys = ScaledSystem::new(&b.build().unwrap(), None);
        let out = optimal_min_max_cover(&sys, None, SearchLimits::default()).unwrap();
        assert!(out.proved_optimal);
        assert_eq!(sys.to_load(out.objective), Load::from_ratio(1, 2));
    }

    #[test]
    fn uncoverable_returns_none() {
        let mut b = SetSystemBuilder::<Load>::new(2);
        b.push_set([0], Load::ONE, 0).unwrap();
        let sys = ScaledSystem::new(&b.build().unwrap(), None);
        assert!(optimal_min_max_cover(&sys, None, SearchLimits::default()).is_none());
    }

    /// Makespan gadget (Theorem 8): jobs {3,3,2,2,2} on 2 machines —
    /// optimum makespan 6.
    #[test]
    fn makespan_gadget() {
        let jobs = [3u64, 3, 2, 2, 2];
        let mut b = SetSystemBuilder::<Load>::new(jobs.len());
        for (i, &p) in jobs.iter().enumerate() {
            for machine in 0..2u32 {
                b.push_set([i as u32], Load::from_ratio(p, 1), machine)
                    .unwrap();
            }
        }
        let sys = ScaledSystem::new(&b.build().unwrap(), None);
        let out = optimal_min_max_cover(&sys, None, SearchLimits::default()).unwrap();
        assert!(out.proved_optimal);
        assert_eq!(out.objective, 6);
    }
}
