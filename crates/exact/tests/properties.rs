//! Property tests: the branch-and-bound solvers against brute force, and
//! the paper's approximation guarantees against certified optima.

use proptest::collection::vec;
use proptest::prelude::*;

use mcast_core::{solve_bla, solve_mla, solve_mnu, Instance, InstanceBuilder, Kbps, Load};
use mcast_covering::{SetId, SetSystem, SetSystemBuilder};
use mcast_exact::{
    optimal_bla, optimal_max_coverage, optimal_min_max_cover, optimal_mla, optimal_mnu,
    optimal_set_cover, ScaledSystem, SearchLimits,
};

/// Random small covering system (every element coverable).
fn small_system() -> impl Strategy<Value = SetSystem<Load>> {
    (2usize..7, 0usize..8).prop_flat_map(|(n, extra)| {
        let singleton_costs = vec(1u64..12, n);
        let extras = vec((vec(0u32..(n as u32), 1..=n), 1u64..12, 0u32..3), extra);
        (singleton_costs, extras).prop_map(move |(costs, extras)| {
            let mut b = SetSystemBuilder::<Load>::new(n);
            for (e, c) in costs.into_iter().enumerate() {
                b.push_set([e as u32], Load::from_ratio(c, 12), (e % 2) as u32)
                    .unwrap();
            }
            for (members, cost, group) in extras {
                b.push_set(members, Load::from_ratio(cost, 12), group)
                    .unwrap();
            }
            b.build().unwrap()
        })
    })
}

/// Brute force over all subsets (systems stay ≤ 15 sets).
fn brute_force(
    sys: &ScaledSystem,
) -> (
    u64, /* min cover cost */
    u64, /* min max-group */
    u64, /* max coverage */
) {
    let m = sys.n_sets();
    assert!(m <= 16);
    let mut best_cost = u64::MAX;
    let mut best_makespan = u64::MAX;
    let mut best_cov = 0u64;
    for mask in 0u32..(1 << m) {
        let sets: Vec<SetId> = (0..m)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| SetId(i as u32))
            .collect();
        let mut covered = vec![false; sys.n_elements()];
        let mut group = vec![0u64; sys.n_groups()];
        for &s in &sets {
            for &e in sys.members(s) {
                covered[e as usize] = true;
            }
            group[sys.group(s)] += sys.cost(s);
        }
        let covered_count = covered.iter().filter(|&&c| c).count() as u64;
        let total: u64 = sets.iter().map(|&s| sys.cost(s)).sum();
        let max_group = group.iter().copied().max().unwrap_or(0);
        if covered.iter().all(|&c| c) {
            best_cost = best_cost.min(total);
            best_makespan = best_makespan.min(max_group);
        }
        let within_budget = (0..sys.n_groups()).all(|g| group[g] <= sys.budget(g));
        if within_budget {
            best_cov = best_cov.max(covered_count);
        }
    }
    (best_cost, best_makespan, best_cov)
}

/// Small coverable WLAN instance for end-to-end optimality checks.
fn small_instance() -> impl Strategy<Value = Instance> {
    const RATES: [u32; 3] = [6, 12, 24];
    (1usize..4, 1usize..7, 1usize..3).prop_flat_map(|(n_aps, n_users, n_sessions)| {
        let sessions = vec(0u32..(n_sessions as u32), n_users);
        let links = vec(proptest::option::of(0usize..RATES.len()), n_aps * n_users);
        let base = vec(0usize..RATES.len(), n_users);
        (Just(n_aps), Just(n_sessions), sessions, links, base).prop_map(
            |(n_aps, n_sessions, sessions, links, base)| {
                let mut b = InstanceBuilder::new();
                b.supported_rates(RATES.iter().map(|&m| Kbps::from_mbps(m)));
                let ss: Vec<_> = (0..n_sessions)
                    .map(|_| b.add_session(Kbps::from_mbps(2)))
                    .collect();
                let aps: Vec<_> = (0..n_aps).map(|_| b.add_ap(Load::permille(500))).collect();
                let us: Vec<_> = sessions
                    .iter()
                    .map(|&s| b.add_user(ss[s as usize]))
                    .collect();
                for (u, &r) in base.iter().enumerate() {
                    b.link(aps[0], us[u], Kbps::from_mbps(RATES[r])).unwrap();
                }
                for a in 1..n_aps {
                    for u in 0..us.len() {
                        if let Some(r) = links[a * us.len() + u] {
                            b.link(aps[a], us[u], Kbps::from_mbps(RATES[r])).unwrap();
                        }
                    }
                }
                b.build().unwrap()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bnb_set_cover_matches_brute_force(sys in small_system()) {
        prop_assume!(sys.n_sets() <= 14);
        let scaled = ScaledSystem::new(&sys, None);
        let (bf_cost, bf_makespan, _) = brute_force(&scaled);

        let out = optimal_set_cover(&scaled, None, SearchLimits::default()).unwrap();
        prop_assert!(out.proved_optimal);
        prop_assert_eq!(out.objective, bf_cost);

        let mm = optimal_min_max_cover(&scaled, None, SearchLimits::default()).unwrap();
        prop_assert!(mm.proved_optimal);
        prop_assert_eq!(mm.objective, bf_makespan);
    }

    #[test]
    fn bnb_coverage_matches_brute_force(sys in small_system(), budget in 1u64..30) {
        prop_assume!(sys.n_sets() <= 14);
        let budgets = vec![Load::from_ratio(budget, 12); sys.n_groups()];
        let scaled = ScaledSystem::new(&sys, Some(&budgets));
        let (_, _, bf_cov) = brute_force(&scaled);
        let out = optimal_max_coverage(&scaled, None, SearchLimits::default());
        prop_assert!(out.proved_optimal);
        prop_assert_eq!(out.objective, bf_cov);
    }

    // ---- The paper's approximation factors, verified against optima ----

    #[test]
    fn greedy_mla_within_harmonic_of_optimal(inst in small_instance()) {
        let greedy = solve_mla(&inst).unwrap();
        let exact = optimal_mla(&inst, SearchLimits::default()).unwrap();
        prop_assert!(exact.proved_optimal);
        // ln(n)+1 bound, checked via the (weaker) harmonic number H(n)
        // which the greedy provably satisfies; use the model cost, which is
        // what the theorem bounds.
        let n = inst.n_users();
        let h: f64 = (1..=n).map(|k| 1.0 / k as f64).sum();
        let opt = exact.solution.total_load.as_f64();
        prop_assert!(
            greedy.model_cost.unwrap().as_f64() <= h * opt + 1e-9,
            "greedy {} vs H(n)*opt {}",
            greedy.model_cost.unwrap().as_f64(),
            h * opt
        );
        // And the realized loads are ordered as expected.
        prop_assert!(exact.solution.total_load <= greedy.total_load);
    }

    #[test]
    fn greedy_bla_never_beats_optimal(inst in small_instance()) {
        let greedy = solve_bla(&inst).unwrap();
        let exact = optimal_bla(&inst, SearchLimits::default()).unwrap();
        prop_assert!(exact.proved_optimal);
        prop_assert!(exact.solution.max_load <= greedy.max_load);
        // (log_{8/7} n + 1) * OPT bound on the model cost.
        let n = inst.n_users() as f64;
        let factor = (n.ln() / (8f64 / 7f64).ln()) + 1.0;
        let opt = exact.solution.max_load.as_f64();
        prop_assert!(greedy.model_cost.unwrap().as_f64() <= factor.max(1.0) * opt + 1e-9);
    }

    #[test]
    fn greedy_mnu_within_factor_8_of_optimal(inst in small_instance()) {
        let greedy = solve_mnu(&inst);
        let exact = optimal_mnu(&inst, SearchLimits::default());
        prop_assert!(exact.proved_optimal);
        prop_assert!(greedy.satisfied <= exact.solution.satisfied);
        // Theorem 2: greedy >= OPT / 8.
        prop_assert!(8 * greedy.satisfied >= exact.solution.satisfied);
        prop_assert!(exact.solution.association.is_feasible(&inst));
    }
}
