//! The shared epoch engine: state mutation primitives and the
//! per-epoch ladder execution both runtimes drive.
//!
//! The lock-step runtime (`runtime::run`, consuming a compiled
//! [`FaultTimeline`](mcast_faults::FaultTimeline)) and the event-driven
//! service (`service::serve`, draining a
//! [`TimeQueue`](mcast_events::TimeQueue)) differ only in *where their
//! events come from*. Everything else — how an AP failure is applied,
//! how the degradation ladder picks a rung, how disruption metrics are
//! recorded and audited — lives here exactly once, so the two runtimes
//! cannot drift apart.

use std::time::Instant;

use mcast_core::{
    repair_user, solve_bla, solve_mla, solve_mnu, strongest_allowed_ap, ApId, Association,
    Instance, InstanceBuilder, LoadLedger, Objective, SolveError, UserId,
};

use crate::audit::{audit_epoch, CoverageRule};
use crate::ladder::{LadderPolicy, SolvePath, WorkMeter};
use crate::report::{assemble_report, ReportParts};
use crate::runtime::{ControllerConfig, ControllerOutcome};
use crate::state::NetworkState;

/// What one epoch of ladder execution produced, beyond its
/// [`EpochRecord`](crate::EpochRecord): the association diff (for the
/// event log) and the raw violation messages (for `Violation` events).
#[derive(Debug)]
pub(crate) struct EpochOutcome {
    /// The rung that ran.
    pub path: SolvePath,
    /// Every user whose AP changed this epoch, in user-id order, with
    /// their new AP (`None` = lost service).
    pub changes: Vec<(UserId, Option<ApId>)>,
    /// Invariant violations the auditor found, unformatted.
    pub violations: Vec<String>,
}

/// The mutable heart of a controller run.
pub(crate) struct EpochEngine<'a> {
    inst: &'a Instance,
    cfg: ControllerConfig,
    /// Per-link survival probability for jump re-rolls.
    keep: f64,
    state: NetworkState,
    ledger: LoadLedger<'a>,
    shed: Vec<bool>,
    deferred: Vec<bool>,
    /// True while an epoch left something unfinished (degraded rung or
    /// deferred users): the next epoch re-runs the ladder even without
    /// new events.
    pending_work: bool,
    rule: CoverageRule,
    records: Vec<crate::report::EpochRecord>,
    violations_sample: Vec<String>,
    pre_assoc: Vec<Option<ApId>>,
    check_oracle: bool,
}

impl<'a> EpochEngine<'a> {
    /// A fresh engine over `inst`. The caller picks the initial
    /// population: [`NetworkState::new`] (everyone present — the
    /// lock-step runtime) or [`NetworkState::absent`] (everyone joins
    /// through the queue — the service).
    pub fn new(
        inst: &'a Instance,
        cfg: &ControllerConfig,
        keep: f64,
        state: NetworkState,
    ) -> EpochEngine<'a> {
        let n_users = inst.n_users();
        EpochEngine {
            inst,
            cfg: *cfg,
            keep,
            state,
            ledger: LoadLedger::fresh(inst),
            shed: vec![false; n_users],
            deferred: vec![false; n_users],
            pending_work: false,
            rule: CoverageRule::Exact,
            records: Vec::with_capacity(cfg.n_epochs as usize),
            violations_sample: Vec::new(),
            pre_assoc: Vec::with_capacity(n_users),
            check_oracle: cfg.audit_oracle || cfg!(debug_assertions),
        }
    }

    // ---- event ingestion primitives ---------------------------------
    // One method per event kind; both runtimes funnel through these, so
    // a fault means exactly the same thing regardless of the transport.

    /// The AP recovers with empty state.
    pub fn ap_up(&mut self, a: ApId) {
        self.state.set_up(a);
    }

    /// The AP crashes; its users are evicted exactly once.
    pub fn ap_down(&mut self, a: ApId) {
        if self.state.set_down(a) {
            self.ledger.evict_ap(a);
        }
    }

    /// The user joins; the next ladder sweep will try to place them.
    pub fn user_join(&mut self, u: UserId) {
        self.state.join(u);
    }

    /// The user leaves; their load (and shed status) goes with them.
    pub fn user_leave(&mut self, u: UserId) {
        if self.state.depart(u) {
            if self.ledger.ap_of(u).is_some() {
                self.ledger.leave(u);
            }
            self.shed[u.index()] = false;
        }
    }

    /// The user jumps: candidate links re-roll from `seed`, and an
    /// association over a lost link is dropped.
    pub fn link_reroll(&mut self, u: UserId, seed: u64) {
        if self.state.is_present(u) {
            self.state.roll_jump(self.inst, u, seed, self.keep);
            if let Some(cur) = self.ledger.ap_of(u) {
                if !self.state.link_ok(u, cur) {
                    self.ledger.leave(u);
                }
            }
        }
    }

    /// Snapshots the association before an epoch's events apply, so the
    /// epoch's diff (handoffs, `Assoc` events) has a baseline.
    pub fn begin_epoch(&mut self) {
        self.pre_assoc.clear();
        self.pre_assoc.extend(self.ledger.association().iter());
    }

    /// Runs the ladder for one epoch (after its events were ingested),
    /// records metrics, and audits. `events`/`joins` are the counts the
    /// caller ingested since [`EpochEngine::begin_epoch`]. When
    /// `latencies` is given, the admission sweep appends one wall-clock
    /// decision time (µs) per examined user — instrumentation only,
    /// never part of the deterministic report.
    pub fn run_epoch(
        &mut self,
        epoch: u64,
        events: u64,
        joins: u64,
        mut latencies: Option<&mut Vec<f64>>,
    ) -> EpochOutcome {
        let inst = self.inst;
        let cfg = &self.cfg;

        // ---- choose and execute a ladder rung -----------------------
        let mut meter = WorkMeter::new(cfg.work_budget);
        let mut path = SolvePath::Idle;
        let mut degraded = false;
        let (mut rehomed, mut newly_shed, mut readmitted, mut deferred_now) =
            (0u64, 0u64, 0u64, 0u64);
        for d in self.deferred.iter_mut() {
            *d = false;
        }

        if epoch == 0 || events + joins > 0 || self.pending_work {
            path = match cfg.policy {
                LadderPolicy::SsaOnly => SolvePath::Ssa,
                LadderPolicy::Full => SolvePath::Full,
                LadderPolicy::Repair if epoch == 0 => SolvePath::Full,
                LadderPolicy::Repair => SolvePath::Repair,
            };

            if path == SolvePath::Full {
                let solved = meter.try_charge(full_cost(inst, &self.state))
                    && match full_resolve(inst, &self.state, cfg.objective) {
                        Ok(assoc) => {
                            self.ledger = LoadLedger::new(inst, assoc);
                            for u in inst.users() {
                                if self.shed[u.index()] && self.ledger.ap_of(u).is_some() {
                                    self.shed[u.index()] = false;
                                    readmitted += 1;
                                }
                            }
                            true
                        }
                        Err(_) => false,
                    };
                if !solved {
                    path = SolvePath::Repair;
                    degraded = true;
                }
            }

            // The admission sweep: the Repair rung proper, the leftover
            // pass after a Full solve, and (starting directly on the SSA
            // rung) the SsaOnly placement sweep. Most-constrained users
            // first, ties in id order — the same order as MNU's augment
            // pass, so an unfaulted Full epoch matches the one-shot
            // solver exactly.
            let mut on_ssa_rung = path == SolvePath::Ssa;
            let enforce_budget = cfg.objective == Objective::Mnu;
            let mut targets: Vec<UserId> = inst
                .users()
                .filter(|&u| {
                    self.state.is_present(u)
                        && self.ledger.ap_of(u).is_none()
                        && inst
                            .candidate_aps(u)
                            .iter()
                            .any(|&(a, _)| self.state.allowed(u, a))
                })
                .collect();
            targets.sort_by_key(|&u| inst.candidate_aps(u).len());

            for u in targets {
                let decision_started = latencies.as_ref().map(|_| Instant::now());
                let was_shed = self.shed[u.index()];
                let placed;
                if !on_ssa_rung && meter.try_charge(inst.candidate_aps(u).len() as u64) {
                    placed = repair_user(&mut self.ledger, u, cfg.objective, enforce_budget, |a| {
                        self.state.allowed(u, a)
                    });
                } else {
                    if !on_ssa_rung {
                        // Fell off the repair rung mid-sweep.
                        on_ssa_rung = true;
                        degraded = true;
                    }
                    if !meter.try_charge(1) {
                        // Cannot even probe the strongest AP: defer to
                        // the next epoch, exempt from the coverage audit.
                        self.deferred[u.index()] = true;
                        deferred_now += 1;
                        degraded = true;
                        continue;
                    }
                    placed = strongest_allowed_ap(inst, u, |a| self.state.allowed(u, a))
                        .filter(|&a| {
                            !enforce_budget
                                || self
                                    .ledger
                                    .load_if_joined(u, a)
                                    .is_some_and(|l| l <= inst.budget(a))
                        })
                        .inspect(|&a| self.ledger.join(u, a));
                }
                match placed {
                    Some(_) => {
                        rehomed += 1;
                        if was_shed {
                            self.shed[u.index()] = false;
                            readmitted += 1;
                        }
                    }
                    None => {
                        if !was_shed {
                            self.shed[u.index()] = true;
                            newly_shed += 1;
                        }
                    }
                }
                if let (Some(sink), Some(t0)) = (latencies.as_deref_mut(), decision_started) {
                    sink.push(t0.elapsed().as_secs_f64() * 1e6);
                }
            }

            self.rule = if on_ssa_rung {
                CoverageRule::StrongestOnly
            } else {
                CoverageRule::Exact
            };
            self.pending_work = degraded || deferred_now > 0;
        }

        // ---- disruption metrics -------------------------------------
        let mut handoffs = 0u64;
        let mut changes: Vec<(UserId, Option<ApId>)> = Vec::new();
        for u in inst.users() {
            let before = self.pre_assoc[u.index()];
            let after = self.ledger.ap_of(u);
            if before != after {
                changes.push((u, after));
                if before.is_some() && after.is_some() {
                    handoffs += 1;
                }
            }
        }

        // ---- audit --------------------------------------------------
        let violations = audit_epoch(
            &self.ledger,
            &self.state,
            cfg.objective,
            self.rule,
            &self.deferred,
            self.check_oracle,
        );
        debug_assert!(violations.is_empty(), "epoch {epoch}: {violations:?}");
        for v in &violations {
            if self.violations_sample.len() < 8 {
                self.violations_sample.push(format!("epoch {epoch}: {v}"));
            }
        }

        self.records.push(crate::report::EpochRecord {
            epoch,
            events,
            joins,
            path,
            degraded,
            rule: self.rule.name().to_string(),
            work: meter.spent(),
            handoffs,
            rehomed,
            shed: newly_shed,
            readmitted,
            deferred: deferred_now,
            satisfied: self.ledger.association().satisfied_count(),
            changed: !changes.is_empty(),
            violations: violations.len() as u64,
        });

        EpochOutcome {
            path,
            changes,
            violations,
        }
    }

    /// The record of the most recently run epoch.
    pub fn last_record(&self) -> Option<&crate::report::EpochRecord> {
        self.records.last()
    }

    /// Closes the run: disruption windows, reconvergence, and the final
    /// report.
    pub fn finalize(self) -> ControllerOutcome {
        let report = assemble_report(ReportParts {
            objective: self.cfg.objective.to_string(),
            policy: self.cfg.policy.name().to_string(),
            epoch_us: self.cfg.epoch_us,
            records: self.records,
            violations_sample: self.violations_sample,
            final_max_load: self.ledger.max_load().as_f64(),
            final_total_load: self.ledger.total_load().as_f64(),
        });
        ControllerOutcome {
            report,
            association: self.ledger.into_association(),
        }
    }
}

/// The work-unit estimate of a full re-solve: every present user's
/// candidate list crossed with the rate grid, plus per-AP setup. Charged
/// up front — a full solve cannot be abandoned halfway.
pub(crate) fn full_cost(inst: &Instance, state: &NetworkState) -> u64 {
    let rates = inst.supported_rates().len().max(1) as u64;
    let mut cost = inst.n_aps() as u64;
    for u in inst.users() {
        if state.is_present(u) {
            cost += inst.candidate_aps(u).len() as u64 * rates;
        }
    }
    cost
}

/// Runs the configured one-shot solver over the effective instance (up
/// APs, present users, surviving links) and maps the result back to
/// original user ids. On a pristine network this is exactly the one-shot
/// solver on the original instance.
pub(crate) fn full_resolve(
    inst: &Instance,
    state: &NetworkState,
    objective: Objective,
) -> Result<Association, SolveError> {
    let solve = |i: &Instance| -> Result<Association, SolveError> {
        Ok(match objective {
            Objective::Mnu => solve_mnu(i),
            Objective::Bla => solve_bla(i)?,
            Objective::Mla => solve_mla(i)?,
        }
        .association)
    };
    if state.pristine() {
        return solve(inst);
    }
    let Some((sub, sub_to_orig)) = effective_instance(inst, state) else {
        return Ok(Association::empty(inst.n_users()));
    };
    let sub_assoc = solve(&sub)?;
    let mut assoc = Association::empty(inst.n_users());
    for (i, &orig) in sub_to_orig.iter().enumerate() {
        assoc.set(orig, sub_assoc.ap_of(UserId(i as u32)));
    }
    Ok(assoc)
}

/// Builds the solver's view of the faulted network: same sessions, same
/// APs (stable [`ApId`]s and budgets — a down AP simply has no links),
/// and only present users with at least one allowed link, re-indexed
/// densely. Returns the sub-instance and the sub→original user id map,
/// or `None` if no user is currently servable.
fn effective_instance(inst: &Instance, state: &NetworkState) -> Option<(Instance, Vec<UserId>)> {
    let mut b = InstanceBuilder::new();
    b.supported_rates(inst.supported_rates().iter().copied());
    b.rate_policy(inst.rate_policy());
    for s in inst.sessions() {
        b.add_session(inst.session_rate(s));
    }
    for a in inst.aps() {
        b.add_ap(inst.budget(a));
    }
    let mut sub_to_orig: Vec<UserId> = Vec::new();
    for u in inst.users() {
        if !state.is_present(u) {
            continue;
        }
        let links: Vec<ApId> = inst
            .candidate_aps(u)
            .iter()
            .filter(|&&(a, _)| state.allowed(u, a))
            .map(|&(a, _)| a)
            .collect();
        if links.is_empty() {
            continue;
        }
        let su = b.add_user(inst.user_session(u));
        sub_to_orig.push(u);
        for a in links {
            let rate = inst.link_rate(a, u).expect("candidate implies link");
            let signal = inst.signal(a, u).expect("candidate implies link");
            b.link_with_signal(a, su, rate, signal)
                .expect("copying a valid link cannot fail");
        }
    }
    if sub_to_orig.is_empty() {
        return None;
    }
    let sub = b
        .build()
        .expect("a sub-instance of a valid instance is valid");
    Some((sub, sub_to_orig))
}
