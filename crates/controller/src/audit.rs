//! The invariant auditor: post-epoch checks that the controller's state
//! is internally consistent and no promise was silently broken.

use mcast_core::{best_rehome_target, strongest_allowed_ap, LoadLedger, Objective};

use crate::state::NetworkState;

/// How strong a coverage promise the epoch's weakest rung made, and
/// therefore which "no covered user left unserved" check applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoverageRule {
    /// Every unserved user was scanned against *all* of its allowed
    /// candidates (Full / Repair rungs): a violation is any unserved
    /// user some allowed AP could still take.
    Exact,
    /// Unserved users were only offered their strongest allowed AP (the
    /// SSA rung): a violation is an unserved user whose strongest
    /// allowed AP could take it.
    StrongestOnly,
}

impl CoverageRule {
    /// Stable lowercase name (report key).
    pub fn name(self) -> &'static str {
        match self {
            CoverageRule::Exact => "exact",
            CoverageRule::StrongestOnly => "strongest",
        }
    }
}

/// Audits one epoch's end state and returns every violation found
/// (empty = all invariants hold).
///
/// Checks, in order:
///
/// 1. no departed user is still associated;
/// 2. no user is associated to a down AP or over a lost link;
/// 3. under [`Objective::Mnu`], no AP exceeds its multicast budget
///    (BLA/MLA treat budgets as soft, matching the paper's objectives);
/// 4. every down AP carries zero load (eviction really happened);
/// 5. no unserved present user the epoch's [`CoverageRule`] promised to
///    serve could still be placed — users in `deferred` (never examined
///    because the work budget ran out) are exempt;
/// 6. if `check_oracle`, the incremental ledger must equal a
///    from-scratch recomputation ([`LoadLedger::assert_consistent`] —
///    this one panics rather than reporting, because a corrupt ledger
///    invalidates every other number in the run).
///
/// The runtime calls this after **every** epoch, including idle ones.
pub fn audit_epoch(
    ledger: &LoadLedger<'_>,
    state: &NetworkState,
    objective: Objective,
    rule: CoverageRule,
    deferred: &[bool],
    check_oracle: bool,
) -> Vec<String> {
    let inst = ledger.instance();
    let mut violations = Vec::new();

    for u in inst.users() {
        match ledger.ap_of(u) {
            Some(a) => {
                if !state.is_present(u) {
                    violations.push(format!("departed user {u} is still associated to AP {a}"));
                    continue;
                }
                if state.is_down(a) {
                    violations.push(format!("user {u} is associated to down AP {a}"));
                }
                if !state.link_ok(u, a) {
                    violations.push(format!("user {u} is associated to out-of-range AP {a}"));
                }
            }
            None => {
                if !state.is_present(u) || deferred.get(u.index()).copied().unwrap_or(false) {
                    continue;
                }
                let enforce_budget = objective == Objective::Mnu;
                match rule {
                    CoverageRule::Exact => {
                        if let Some(a) =
                            best_rehome_target(ledger, u, objective, enforce_budget, |a| {
                                state.allowed(u, a)
                            })
                        {
                            violations.push(format!(
                                "user {u} left unserved though AP {a} could admit it"
                            ));
                        }
                    }
                    CoverageRule::StrongestOnly => {
                        if let Some(a) = strongest_allowed_ap(inst, u, |a| state.allowed(u, a)) {
                            let fits = !enforce_budget
                                || ledger
                                    .load_if_joined(u, a)
                                    .is_some_and(|l| l <= inst.budget(a));
                            if fits {
                                violations.push(format!(
                                    "user {u} left unserved though its strongest AP {a} could admit it"
                                ));
                            }
                        }
                    }
                }
            }
        }
    }

    for a in inst.aps() {
        let load = ledger.ap_load(a);
        if objective == Objective::Mnu && load > inst.budget(a) {
            violations.push(format!(
                "AP {a} exceeds its budget ({} > {})",
                load,
                inst.budget(a)
            ));
        }
        if state.is_down(a) && !load.is_zero() {
            violations.push(format!("down AP {a} still carries load {load}"));
        }
    }

    if check_oracle {
        ledger.assert_consistent();
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_core::examples_paper::{a, figure1_instance, u};
    use mcast_core::{Kbps, LoadLedger};

    #[test]
    fn clean_state_has_no_violations() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let mut ledger = LoadLedger::fresh(&inst);
        for user in inst.users() {
            let target = mcast_core::ssa::strongest_ap(&inst, user).unwrap();
            ledger.join(user, target);
        }
        let state = NetworkState::new(inst.n_aps(), inst.n_users());
        let vs = audit_epoch(
            &ledger,
            &state,
            Objective::Mnu,
            CoverageRule::Exact,
            &[],
            true,
        );
        assert_eq!(vs, Vec::<String>::new());
    }

    #[test]
    fn association_to_down_ap_is_flagged() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let mut ledger = LoadLedger::fresh(&inst);
        ledger.join(u(3), a(2));
        let mut state = NetworkState::new(inst.n_aps(), inst.n_users());
        state.set_down(a(2));
        let vs = audit_epoch(
            &ledger,
            &state,
            Objective::Bla,
            CoverageRule::StrongestOnly,
            &[],
            false,
        );
        assert!(vs.iter().any(|v| v.contains("down AP")), "{vs:?}");
        assert!(
            vs.iter().any(|v| v.contains("still carries load")),
            "{vs:?}"
        );
    }

    #[test]
    fn unserved_admittable_user_is_flagged_under_exact_rule() {
        let inst = figure1_instance(Kbps::from_mbps(1));
        let ledger = LoadLedger::fresh(&inst);
        let state = NetworkState::new(inst.n_aps(), inst.n_users());
        let vs = audit_epoch(
            &ledger,
            &state,
            Objective::Mnu,
            CoverageRule::Exact,
            &[],
            false,
        );
        assert_eq!(
            vs.len(),
            inst.n_users(),
            "every user is admittable yet unserved"
        );
        // Deferred users are exempt: the budget never let us look at them.
        let deferred = vec![true; inst.n_users()];
        let vs = audit_epoch(
            &ledger,
            &state,
            Objective::Mnu,
            CoverageRule::Exact,
            &deferred,
            false,
        );
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn strongest_only_rule_accepts_second_best_misses() {
        // u5's strongest AP is a1 (rate 4 > rate 3). Fill a1 to its
        // budget: under StrongestOnly an unserved u5 is fine (its
        // strongest AP cannot admit it), under Exact it is a violation
        // (a2 could still take it).
        let inst = figure1_instance(Kbps::from_mbps(3));
        let mut ledger = LoadLedger::fresh(&inst);
        ledger.join(u(1), a(1)); // load 1 = budget
        let state = NetworkState::new(inst.n_aps(), inst.n_users());
        let u5 = format!("user {} ", u(5));
        let vs = audit_epoch(
            &ledger,
            &state,
            Objective::Mnu,
            CoverageRule::StrongestOnly,
            &[],
            false,
        );
        assert!(!vs.iter().any(|v| v.contains(&u5)), "{vs:?}");
        let vs = audit_epoch(
            &ledger,
            &state,
            Objective::Mnu,
            CoverageRule::Exact,
            &[],
            false,
        );
        assert!(vs.iter().any(|v| v.contains(&u5)), "{vs:?}");
    }

    #[test]
    fn budget_violation_flagged_only_for_mnu() {
        let inst = figure1_instance(Kbps::from_mbps(3));
        let mut ledger = LoadLedger::fresh(&inst);
        // u1 at rate 3 (load 1) + u2 at rate 6 (load 1/2): over budget 1.
        ledger.join(u(1), a(1));
        ledger.join(u(2), a(1));
        let state = NetworkState::new(inst.n_aps(), inst.n_users());
        let vs = audit_epoch(
            &ledger,
            &state,
            Objective::Mnu,
            CoverageRule::Exact,
            &[],
            false,
        );
        assert!(
            vs.iter().any(|v| v.contains("exceeds its budget")),
            "{vs:?}"
        );
        let vs = audit_epoch(
            &ledger,
            &state,
            Objective::Bla,
            CoverageRule::Exact,
            &[],
            false,
        );
        assert!(
            !vs.iter().any(|v| v.contains("exceeds its budget")),
            "{vs:?}"
        );
    }
}
