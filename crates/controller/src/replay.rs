//! Folding an event stream back into controller state.
//!
//! The service publishes everything it decided — every association
//! change, every solve summary, every epoch boundary — so this fold
//! rebuilds the [`ControllerReport`](crate::ControllerReport) and final
//! association **without re-running a single solver**: it only applies
//! logged `Assoc` diffs and re-derives the metrics with the same
//! [`assemble_report`] the live runtimes use, which is what makes the
//! replayed report byte-identical to the live one.
//!
//! Epochs commit at their `EpochClosed` marker (the stream's
//! durability boundary): a crash-truncated stream replays to the report
//! of its fully closed prefix, and whatever the torn epoch had already
//! streamed is discarded rather than half-applied.

use mcast_core::{Association, Instance, LoadLedger, UserId};
use mcast_events::{replay_stream_bytes, Event, EventKind, STREAM_SCHEMA};

use crate::ladder::SolvePath;
use crate::report::{assemble_report, EpochRecord, ReportParts};
use crate::runtime::ControllerOutcome;

/// What replaying an event stream recovered.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// The reconstructed report and final association, over every fully
    /// closed epoch.
    pub outcome: ControllerOutcome,
    /// Epochs that closed in the valid prefix.
    pub epochs_replayed: u64,
    /// True if the stream carried a matching `StreamClosed` trailer —
    /// the run completed and the reconstruction is total.
    pub complete: bool,
    /// Bytes dropped past the valid prefix (0 on a clean stream).
    pub dropped_bytes: u64,
    /// Why the tail was dropped, when it was.
    pub tail_reason: Option<String>,
}

/// Replays raw `events.jsonl` bytes: crc32 framing first (torn tails
/// truncate to the valid prefix), then [`fold_events`] over what
/// survived.
///
/// # Errors
///
/// A structurally invalid stream (no header, wrong schema, an instance
/// mismatch, out-of-order epochs). Torn tails are **not** errors — they
/// shorten the reconstruction.
pub fn replay_stream(inst: &Instance, bytes: &[u8]) -> Result<ReplayOutcome, String> {
    let stream = replay_stream_bytes(bytes);
    let outcome = fold_events(inst, &stream.events)?;
    Ok(ReplayOutcome {
        epochs_replayed: outcome.report.n_epochs,
        outcome,
        complete: stream.closed,
        dropped_bytes: stream.dropped_bytes,
        tail_reason: stream.tail_reason,
    })
}

/// The not-yet-committed solve summary of the epoch being folded.
struct PendingSolve {
    path: SolvePath,
    degraded: bool,
    rule: String,
    work: u64,
    rehomed: u64,
    shed: u64,
    readmitted: u64,
    deferred: u64,
}

/// Folds a decoded event stream into the controller outcome it
/// documents. Only fully closed epochs commit; trailing events of a
/// never-closed epoch are ignored.
///
/// # Errors
///
/// A stream that does not start with a matching `ServiceStarted`
/// header, whose shape contradicts itself (two solve summaries in one
/// epoch, epochs closing out of order, events after the trailer), or
/// that references users/APs the instance does not have.
pub fn fold_events(inst: &Instance, events: &[Event]) -> Result<ControllerOutcome, String> {
    let mut iter = events.iter();
    let header = iter
        .next()
        .ok_or_else(|| "empty stream: no ServiceStarted header".to_string())?;
    let (objective, policy, epoch_us) = match &header.kind {
        EventKind::ServiceStarted {
            schema,
            objective,
            policy,
            epoch_us,
            n_aps,
            n_users,
            ..
        } => {
            if schema != STREAM_SCHEMA {
                return Err(format!("stream schema {schema:?} is not {STREAM_SCHEMA:?}"));
            }
            if *n_users != inst.n_users() as u64 || *n_aps != inst.n_aps() as u64 {
                return Err(format!(
                    "stream is for a {n_aps}-AP/{n_users}-user network, \
                     instance has {}/{}",
                    inst.n_aps(),
                    inst.n_users()
                ));
            }
            (objective.clone(), policy.clone(), *epoch_us)
        }
        other => return Err(format!("stream starts with {other:?}, not ServiceStarted")),
    };

    let mut committed: Vec<Option<mcast_core::ApId>> = vec![None; inst.n_users()];
    let mut records: Vec<EpochRecord> = Vec::new();
    let mut violations_sample: Vec<String> = Vec::new();
    // `rule` persists across idle epochs in the live record stream, so
    // the fold carries the last solve's rule forward the same way.
    let mut carry_rule = "exact".to_string();
    let mut pending_changes: Vec<(UserId, Option<mcast_core::ApId>)> = Vec::new();
    let mut pending_solve: Option<PendingSolve> = None;
    let mut pending_violations: Vec<String> = Vec::new();
    let mut closed = false;

    for event in iter {
        if closed {
            return Err("events after the StreamClosed trailer".to_string());
        }
        match &event.kind {
            kind if kind.is_input() => {
                // Inputs are logged for observability; their per-epoch
                // counts commit authoritatively via EpochClosed.
            }
            EventKind::Assoc { user, ap } => {
                if user.index() >= inst.n_users() {
                    return Err(format!("stream re-homes unknown user {user}"));
                }
                if let Some(a) = ap {
                    if a.index() >= inst.n_aps() {
                        return Err(format!("stream re-homes {user} to unknown AP {a}"));
                    }
                }
                pending_changes.push((*user, *ap));
            }
            EventKind::SolveCompleted {
                path,
                degraded,
                rule,
                work,
                rehomed,
                shed,
                readmitted,
                deferred,
            } => {
                if pending_solve.is_some() {
                    return Err("two SolveCompleted events in one epoch".to_string());
                }
                pending_solve = Some(PendingSolve {
                    path: SolvePath::from_name(path)
                        .ok_or_else(|| format!("unknown solve path {path:?}"))?,
                    degraded: *degraded,
                    rule: rule.clone(),
                    work: *work,
                    rehomed: *rehomed,
                    shed: *shed,
                    readmitted: *readmitted,
                    deferred: *deferred,
                });
            }
            EventKind::Violation { epoch, message } => {
                pending_violations.push(format!("epoch {epoch}: {message}"));
            }
            EventKind::EpochClosed {
                epoch,
                events,
                joins,
                violations,
            } => {
                if *epoch != records.len() as u64 {
                    return Err(format!(
                        "epoch {epoch} closed out of order (expected {})",
                        records.len()
                    ));
                }
                // Commit the epoch: apply its association diff and
                // rebuild the record exactly as the engine wrote it.
                let mut handoffs = 0u64;
                let mut changed = false;
                for (u, ap) in pending_changes.drain(..) {
                    let before = committed[u.index()];
                    if before != ap {
                        changed = true;
                        if before.is_some() && ap.is_some() {
                            handoffs += 1;
                        }
                    }
                    committed[u.index()] = ap;
                }
                let solve = pending_solve.take();
                let (path, degraded, rule, work, rehomed, shed, readmitted, deferred) = match solve
                {
                    Some(s) => {
                        carry_rule = s.rule.clone();
                        (
                            s.path,
                            s.degraded,
                            s.rule,
                            s.work,
                            s.rehomed,
                            s.shed,
                            s.readmitted,
                            s.deferred,
                        )
                    }
                    None => (SolvePath::Idle, false, carry_rule.clone(), 0, 0, 0, 0, 0),
                };
                for v in pending_violations.drain(..) {
                    if violations_sample.len() < 8 {
                        violations_sample.push(v);
                    }
                }
                records.push(EpochRecord {
                    epoch: *epoch,
                    events: *events,
                    joins: *joins,
                    path,
                    degraded,
                    rule,
                    work,
                    handoffs,
                    rehomed,
                    shed,
                    readmitted,
                    deferred,
                    satisfied: committed.iter().filter(|a| a.is_some()).count(),
                    changed,
                    violations: *violations,
                });
            }
            EventKind::StreamClosed { .. } => closed = true,
            EventKind::ServiceStarted { .. } => {
                return Err("second ServiceStarted mid-stream".to_string());
            }
            other => return Err(format!("unexpected event in stream: {other:?}")),
        }
    }

    let mut assoc = Association::empty(inst.n_users());
    for (i, ap) in committed.iter().enumerate() {
        assoc.set(UserId(i as u32), *ap);
    }
    let ledger = LoadLedger::new(inst, assoc);
    let report = assemble_report(ReportParts {
        objective,
        policy,
        epoch_us,
        records,
        violations_sample,
        final_max_load: ledger.max_load().as_f64(),
        final_total_load: ledger.total_load().as_f64(),
    });
    Ok(ControllerOutcome {
        report,
        association: ledger.into_association(),
    })
}
