//! Folding an event stream back into controller state.
//!
//! The service publishes everything it decided — every association
//! change, every solve summary, every epoch boundary — so this fold
//! rebuilds the [`ControllerReport`](crate::ControllerReport) and final
//! association **without re-running a single solver**: it only applies
//! logged `Assoc` diffs and re-derives the metrics with the same
//! [`assemble_report`] the live runtimes use, which is what makes the
//! replayed report byte-identical to the live one.
//!
//! Epochs commit at their `EpochClosed` marker (the stream's
//! durability boundary): a crash-truncated stream replays to the report
//! of its fully closed prefix, and whatever the torn epoch had already
//! streamed is discarded rather than half-applied.

use mcast_core::{ApId, Association, Instance, LoadLedger, UserId};
use mcast_events::{
    replay_stream_bytes, replay_stream_bytes_from, Event, EventKind, STREAM_SCHEMA,
};
use serde::{Deserialize, Serialize};

use crate::ladder::SolvePath;
use crate::report::{assemble_report, EpochRecord, ReportParts};
use crate::runtime::ControllerOutcome;

/// Schema tag of serialized [`ServiceCheckpoint`]s.
pub const SERVICE_CKPT_SCHEMA: &str = "mcast-serve-ckpt/v1";

/// A snapshot of the service's committed fold state after an
/// `EpochClosed` durability boundary. Recovery is snapshot +
/// event-log-**suffix** replay ([`replay_stream_from`]) instead of
/// full-log replay: the checkpoint pins the log byte position and next
/// sequence number it covers, so only later bytes are folded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceCheckpoint {
    /// Format tag ([`SERVICE_CKPT_SCHEMA`]).
    pub schema: String,
    /// Epochs committed in this snapshot.
    pub epoch: u64,
    /// The run's objective (from the stream header).
    pub objective: String,
    /// The run's repair policy name (from the stream header).
    pub policy: String,
    /// Epoch length in µs (from the stream header).
    pub epoch_us: u64,
    /// The committed association after `epoch` epochs.
    pub committed: Vec<Option<ApId>>,
    /// Every committed epoch record.
    pub records: Vec<EpochRecord>,
    /// The capped violation sample accumulated so far.
    pub violations_sample: Vec<String>,
    /// The solve rule carried across idle epochs.
    pub carry_rule: String,
    /// Bytes of event log covered by this snapshot.
    pub log_bytes: u64,
    /// Sequence number of the first event *after* the snapshot.
    pub next_seq: u64,
}

/// What replaying an event stream recovered.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// The reconstructed report and final association, over every fully
    /// closed epoch.
    pub outcome: ControllerOutcome,
    /// Epochs that closed in the valid prefix.
    pub epochs_replayed: u64,
    /// True if the stream carried a matching `StreamClosed` trailer —
    /// the run completed and the reconstruction is total.
    pub complete: bool,
    /// Bytes dropped past the valid prefix (0 on a clean stream).
    pub dropped_bytes: u64,
    /// Why the tail was dropped, when it was.
    pub tail_reason: Option<String>,
}

/// Replays raw `events.jsonl` bytes: crc32 framing first (torn tails
/// truncate to the valid prefix), then [`fold_events`] over what
/// survived.
///
/// # Errors
///
/// A structurally invalid stream (no header, wrong schema, an instance
/// mismatch, out-of-order epochs). Torn tails are **not** errors — they
/// shorten the reconstruction.
pub fn replay_stream(inst: &Instance, bytes: &[u8]) -> Result<ReplayOutcome, String> {
    let stream = replay_stream_bytes(bytes);
    let outcome = fold_events(inst, &stream.events)?;
    Ok(ReplayOutcome {
        epochs_replayed: outcome.report.n_epochs,
        outcome,
        complete: stream.closed,
        dropped_bytes: stream.dropped_bytes,
        tail_reason: stream.tail_reason,
    })
}

/// The not-yet-committed solve summary of the epoch being folded.
struct PendingSolve {
    path: SolvePath,
    degraded: bool,
    rule: String,
    work: u64,
    rehomed: u64,
    shed: u64,
    readmitted: u64,
    deferred: u64,
}

/// Folds a decoded event stream into the controller outcome it
/// documents. Only fully closed epochs commit; trailing events of a
/// never-closed epoch are ignored.
///
/// # Errors
///
/// A stream that does not start with a matching `ServiceStarted`
/// header, whose shape contradicts itself (two solve summaries in one
/// epoch, epochs closing out of order, events after the trailer), or
/// that references users/APs the instance does not have.
pub fn fold_events(inst: &Instance, events: &[Event]) -> Result<ControllerOutcome, String> {
    let mut iter = events.iter();
    let header = iter
        .next()
        .ok_or_else(|| "empty stream: no ServiceStarted header".to_string())?;
    let mut state = FoldState::from_header(inst, header)?;
    for event in iter {
        state.step(inst, event)?;
    }
    Ok(state.finish(inst))
}

/// The incremental event fold: the same state machine [`fold_events`]
/// runs, exposed stepwise so the live service can mirror its own stream
/// into a [`ServiceCheckpoint`] at each durability boundary.
pub(crate) struct FoldState {
    objective: String,
    policy: String,
    epoch_us: u64,
    committed: Vec<Option<ApId>>,
    records: Vec<EpochRecord>,
    violations_sample: Vec<String>,
    // `rule` persists across idle epochs in the live record stream, so
    // the fold carries the last solve's rule forward the same way.
    carry_rule: String,
    pending_changes: Vec<(UserId, Option<ApId>)>,
    pending_solve: Option<PendingSolve>,
    pending_violations: Vec<String>,
    closed: bool,
}

impl FoldState {
    /// Starts the fold from a `ServiceStarted` header event.
    pub(crate) fn from_header(inst: &Instance, header: &Event) -> Result<FoldState, String> {
        let (objective, policy, epoch_us) = match &header.kind {
            EventKind::ServiceStarted {
                schema,
                objective,
                policy,
                epoch_us,
                n_aps,
                n_users,
                ..
            } => {
                if schema != STREAM_SCHEMA {
                    return Err(format!("stream schema {schema:?} is not {STREAM_SCHEMA:?}"));
                }
                if *n_users != inst.n_users() as u64 || *n_aps != inst.n_aps() as u64 {
                    return Err(format!(
                        "stream is for a {n_aps}-AP/{n_users}-user network, \
                         instance has {}/{}",
                        inst.n_aps(),
                        inst.n_users()
                    ));
                }
                (objective.clone(), policy.clone(), *epoch_us)
            }
            other => return Err(format!("stream starts with {other:?}, not ServiceStarted")),
        };
        Ok(FoldState {
            objective,
            policy,
            epoch_us,
            committed: vec![None; inst.n_users()],
            records: Vec::new(),
            violations_sample: Vec::new(),
            carry_rule: "exact".to_string(),
            pending_changes: Vec::new(),
            pending_solve: None,
            pending_violations: Vec::new(),
            closed: false,
        })
    }

    /// Restarts the fold from a committed snapshot, ready to step the
    /// log suffix past `cp.log_bytes`.
    pub(crate) fn from_checkpoint(
        inst: &Instance,
        cp: &ServiceCheckpoint,
    ) -> Result<FoldState, String> {
        if cp.schema != SERVICE_CKPT_SCHEMA {
            return Err(format!(
                "checkpoint schema {:?} is not {SERVICE_CKPT_SCHEMA:?}",
                cp.schema
            ));
        }
        if cp.committed.len() != inst.n_users() {
            return Err(format!(
                "checkpoint is for {} users, instance has {}",
                cp.committed.len(),
                inst.n_users()
            ));
        }
        if cp.records.len() as u64 != cp.epoch {
            return Err(format!(
                "checkpoint claims {} epochs but carries {} records",
                cp.epoch,
                cp.records.len()
            ));
        }
        Ok(FoldState {
            objective: cp.objective.clone(),
            policy: cp.policy.clone(),
            epoch_us: cp.epoch_us,
            committed: cp.committed.clone(),
            records: cp.records.clone(),
            violations_sample: cp.violations_sample.clone(),
            carry_rule: cp.carry_rule.clone(),
            pending_changes: Vec::new(),
            pending_solve: None,
            pending_violations: Vec::new(),
            closed: false,
        })
    }

    /// Snapshots the committed state. Only legal at a durability
    /// boundary: nothing of the next epoch may be pending.
    pub(crate) fn checkpoint(
        &self,
        log_bytes: u64,
        next_seq: u64,
    ) -> Result<ServiceCheckpoint, String> {
        if !self.pending_changes.is_empty()
            || self.pending_solve.is_some()
            || !self.pending_violations.is_empty()
        {
            return Err("checkpoint requested mid-epoch (uncommitted events pending)".to_string());
        }
        if self.closed {
            return Err("checkpoint requested after the StreamClosed trailer".to_string());
        }
        Ok(ServiceCheckpoint {
            schema: SERVICE_CKPT_SCHEMA.to_string(),
            epoch: self.records.len() as u64,
            objective: self.objective.clone(),
            policy: self.policy.clone(),
            epoch_us: self.epoch_us,
            committed: self.committed.clone(),
            records: self.records.clone(),
            violations_sample: self.violations_sample.clone(),
            carry_rule: self.carry_rule.clone(),
            log_bytes,
            next_seq,
        })
    }

    /// Steps one post-header event through the fold.
    pub(crate) fn step(&mut self, inst: &Instance, event: &Event) -> Result<(), String> {
        if self.closed {
            return Err("events after the StreamClosed trailer".to_string());
        }
        match &event.kind {
            kind if kind.is_input() => {
                // Inputs are logged for observability; their per-epoch
                // counts commit authoritatively via EpochClosed.
            }
            EventKind::Assoc { user, ap } => {
                if user.index() >= inst.n_users() {
                    return Err(format!("stream re-homes unknown user {user}"));
                }
                if let Some(a) = ap {
                    if a.index() >= inst.n_aps() {
                        return Err(format!("stream re-homes {user} to unknown AP {a}"));
                    }
                }
                self.pending_changes.push((*user, *ap));
            }
            EventKind::SolveCompleted {
                path,
                degraded,
                rule,
                work,
                rehomed,
                shed,
                readmitted,
                deferred,
            } => {
                if self.pending_solve.is_some() {
                    return Err("two SolveCompleted events in one epoch".to_string());
                }
                self.pending_solve = Some(PendingSolve {
                    path: SolvePath::from_name(path)
                        .ok_or_else(|| format!("unknown solve path {path:?}"))?,
                    degraded: *degraded,
                    rule: rule.clone(),
                    work: *work,
                    rehomed: *rehomed,
                    shed: *shed,
                    readmitted: *readmitted,
                    deferred: *deferred,
                });
            }
            EventKind::Violation { epoch, message } => {
                self.pending_violations
                    .push(format!("epoch {epoch}: {message}"));
            }
            EventKind::EpochClosed {
                epoch,
                events,
                joins,
                violations,
            } => {
                if *epoch != self.records.len() as u64 {
                    return Err(format!(
                        "epoch {epoch} closed out of order (expected {})",
                        self.records.len()
                    ));
                }
                // Commit the epoch: apply its association diff and
                // rebuild the record exactly as the engine wrote it.
                let mut handoffs = 0u64;
                let mut changed = false;
                for (u, ap) in self.pending_changes.drain(..) {
                    let before = self.committed[u.index()];
                    if before != ap {
                        changed = true;
                        if before.is_some() && ap.is_some() {
                            handoffs += 1;
                        }
                    }
                    self.committed[u.index()] = ap;
                }
                let solve = self.pending_solve.take();
                let (path, degraded, rule, work, rehomed, shed, readmitted, deferred) = match solve
                {
                    Some(s) => {
                        self.carry_rule = s.rule.clone();
                        (
                            s.path,
                            s.degraded,
                            s.rule,
                            s.work,
                            s.rehomed,
                            s.shed,
                            s.readmitted,
                            s.deferred,
                        )
                    }
                    None => (
                        SolvePath::Idle,
                        false,
                        self.carry_rule.clone(),
                        0,
                        0,
                        0,
                        0,
                        0,
                    ),
                };
                for v in self.pending_violations.drain(..) {
                    if self.violations_sample.len() < 8 {
                        self.violations_sample.push(v);
                    }
                }
                self.records.push(EpochRecord {
                    epoch: *epoch,
                    events: *events,
                    joins: *joins,
                    path,
                    degraded,
                    rule,
                    work,
                    handoffs,
                    rehomed,
                    shed,
                    readmitted,
                    deferred,
                    satisfied: self.committed.iter().filter(|a| a.is_some()).count(),
                    changed,
                    violations: *violations,
                });
            }
            EventKind::StreamClosed { .. } => self.closed = true,
            EventKind::ServiceStarted { .. } => {
                return Err("second ServiceStarted mid-stream".to_string());
            }
            other => return Err(format!("unexpected event in stream: {other:?}")),
        }
        Ok(())
    }

    /// Assembles the outcome over every committed epoch; pending events
    /// of a never-closed epoch are discarded.
    pub(crate) fn finish(self, inst: &Instance) -> ControllerOutcome {
        let mut assoc = Association::empty(inst.n_users());
        for (i, ap) in self.committed.iter().enumerate() {
            assoc.set(UserId(i as u32), *ap);
        }
        let ledger = LoadLedger::new(inst, assoc);
        let report = assemble_report(ReportParts {
            objective: self.objective,
            policy: self.policy,
            epoch_us: self.epoch_us,
            records: self.records,
            violations_sample: self.violations_sample,
            final_max_load: ledger.max_load().as_f64(),
            final_total_load: ledger.total_load().as_f64(),
        });
        ControllerOutcome {
            report,
            association: ledger.into_association(),
        }
    }
}

/// Recovers the controller outcome from a [`ServiceCheckpoint`] plus the
/// event log: only the log **suffix** past `cp.log_bytes` is decoded
/// (continuing at `cp.next_seq`) and folded on top of the snapshot, so
/// recovery cost scales with the log written *after* the checkpoint, not
/// the full run. Byte-identical to [`replay_stream`] over the whole log.
///
/// # Errors
///
/// A checkpoint that does not match the instance or the log (suffix
/// starting mid-frame or off-sequence), or a structurally invalid
/// suffix. Torn tails are not errors — they shorten the reconstruction.
pub fn replay_stream_from(
    inst: &Instance,
    cp: &ServiceCheckpoint,
    bytes: &[u8],
) -> Result<ReplayOutcome, String> {
    let mut state = FoldState::from_checkpoint(inst, cp)?;
    if cp.log_bytes as usize > bytes.len() {
        return Err(format!(
            "checkpoint covers {} log bytes but the log has only {}",
            cp.log_bytes,
            bytes.len()
        ));
    }
    let stream = replay_stream_bytes_from(&bytes[cp.log_bytes as usize..], cp.next_seq);
    for event in &stream.events {
        state.step(inst, event)?;
    }
    let outcome = state.finish(inst);
    Ok(ReplayOutcome {
        epochs_replayed: outcome.report.n_epochs,
        outcome,
        complete: stream.closed,
        dropped_bytes: stream.dropped_bytes,
        tail_reason: stream.tail_reason,
    })
}
