//! The event-driven controller service.
//!
//! Where the lock-step runtime walks a precompiled fault timeline, the
//! service drains a deterministic [`TimeQueue`] of typed events — joins,
//! leaves, AP failures and recoveries, link re-rolls — and **batches
//! admission**: every event due up to the epoch boundary is ingested,
//! then the whole batch is answered by one pass through the existing
//! degradation ladder. Batching is what keeps a storm of concurrent
//! joins O(ladder) instead of O(joins × ladder): one repair sweep
//! places the entire cohort (see `docs/algorithms.md`).
//!
//! Everything the service ingests and everything it decides is
//! published through an [`EventPublisher`] as an append-only stream —
//! replayable into a byte-identical [`ControllerReport`] by
//! [`crate::replay`] — and instrumented for sustained-throughput
//! reporting ([`ServiceStats`]).

use std::time::Instant;

use mcast_core::Instance;
use mcast_events::{Event, EventKind, EventPublisher, SinkPressure, TimeQueue, STREAM_SCHEMA};
use mcast_faults::{FaultEventKind, FaultPlan, RecoverySummary};

use crate::engine::EpochEngine;
use crate::ladder::SolvePath;
use crate::replay::{FoldState, ServiceCheckpoint};
use crate::runtime::{ControllerConfig, ControllerOutcome};
use crate::state::NetworkState;

/// Throughput instrumentation for one service run.
///
/// Deliberately **not** part of [`ControllerOutcome`]: wall-clock
/// numbers vary run to run, while the outcome is deterministic — mixing
/// them would break byte-identical replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStats {
    /// Join events admitted.
    pub joins: u64,
    /// Fault events ingested (down/up/leave/reroll).
    pub fault_events: u64,
    /// Events published to the stream (including header and trailer).
    pub events_published: u64,
    /// Per-user decision latency in the admission sweeps, µs
    /// (p50/p95/p99/max, nearest-rank).
    pub decision_latency_us: RecoverySummary,
    /// Wall-clock seconds spent in epochs that admitted joins.
    pub admission_wall_s: f64,
    /// Sustained admission throughput: joins per admission-wall second.
    pub joins_per_sec: f64,
    /// Epochs whose ingest batch was truncated at [`SHED_BATCH_CAP`]
    /// because the sink reported degraded pressure (overload shedding).
    pub backpressure_sheds: u64,
}

/// Per-epoch admission cap while the event sink reports
/// [`SinkPressure::Degraded`]: at most this many queue events are
/// ingested per epoch, the rest stay queued (in their deterministic
/// `(at_us, seq)` order) and are admitted first in later epochs. The
/// sink's pressure is sampled once at each epoch boundary, so the
/// shedding schedule is a pure function of the fault plan and the
/// event timeline — never of wall-clock sink latency.
pub const SHED_BATCH_CAP: u64 = 64;

/// Lowers a fault plan into the event queue, reproducing the lock-step
/// runtime's semantics event by event:
///
/// * every user joins at `t = 0` (the runtime starts everyone present,
///   so the service's epoch-0 batch must admit the full population);
/// * each compiled fault becomes its event-queue equivalent at the same
///   instant, pushed in timeline order.
///
/// Joins are pushed first, so at `t = 0` the queue's `seq` tie-break
/// admits the population before any fault applies — matching the
/// runtime, where users exist before the first fault can touch them.
///
/// # Errors
///
/// A plan that does not [validate](FaultPlan::validate) against the
/// instance and the configured horizon, or a config with a zero or
/// overflowing horizon.
pub fn lower_plan(
    inst: &Instance,
    plan: &FaultPlan,
    cfg: &ControllerConfig,
) -> Result<TimeQueue<EventKind>, String> {
    let horizon_us = validate_horizon(cfg)?;
    plan.validate(inst.n_aps(), inst.n_users(), horizon_us)
        .map_err(|e| format!("invalid fault plan: {e}"))?;
    let timeline = plan.compile(inst.n_aps(), inst.n_users(), horizon_us);

    let mut queue = TimeQueue::new();
    for u in inst.users() {
        queue.push(0, EventKind::UserJoin { user: u });
    }
    for ev in timeline.events() {
        let kind = match ev.kind {
            FaultEventKind::ApUp(ap) => EventKind::ApRecovered { ap },
            FaultEventKind::ApDown(ap) => EventKind::ApDown { ap },
            FaultEventKind::UserDepart(user) => EventKind::UserLeave { user },
            FaultEventKind::UserJump { user, seed } => EventKind::LinkReroll { user, seed },
        };
        queue.push(ev.at_us, kind);
    }
    Ok(queue)
}

fn validate_horizon(cfg: &ControllerConfig) -> Result<u64, String> {
    if cfg.epoch_us == 0 {
        return Err("epoch_us must be positive".to_string());
    }
    if cfg.n_epochs == 0 {
        return Err("n_epochs must be positive".to_string());
    }
    cfg.epoch_us
        .checked_mul(cfg.n_epochs)
        .ok_or_else(|| "epoch_us × n_epochs overflows the clock".to_string())
}

/// The log writer: wraps the publisher with the run's sequence counter
/// so every event gets the next `seq` exactly once. When checkpointing,
/// it also mirrors every published event through the replay fold, so a
/// snapshot is — by construction — exactly what replaying the log up to
/// this byte would rebuild.
struct Stream<'p, 'i> {
    publisher: &'p mut dyn EventPublisher,
    seq: u64,
    inst: &'i Instance,
    mirroring: bool,
    mirror: Option<FoldState>,
}

impl Stream<'_, '_> {
    fn publish(&mut self, at_us: u64, kind: EventKind) -> Result<(), String> {
        let event = Event {
            at_us,
            seq: self.seq,
            kind,
        };
        self.publisher
            .publish(&event)
            .map_err(|e| format!("event stream write failed: {e}"))?;
        if self.mirroring {
            match &mut self.mirror {
                None => self.mirror = Some(FoldState::from_header(self.inst, &event)?),
                Some(m) => m.step(self.inst, &event)?,
            }
        }
        self.seq += 1;
        Ok(())
    }

    fn sync(&mut self) -> Result<(), String> {
        self.publisher
            .sync()
            .map_err(|e| format!("event stream sync failed: {e}"))
    }

    fn checkpoint(&self) -> Result<ServiceCheckpoint, String> {
        let bytes = self.publisher.bytes_logged().ok_or_else(|| {
            "checkpointing requires a byte-logged sink (the publisher reports no byte position)"
                .to_string()
        })?;
        self.mirror
            .as_ref()
            .expect("mirroring is on when checkpointing")
            .checkpoint(bytes, self.seq)
    }
}

/// Runs the event-driven controller service: drains `queue` epoch by
/// epoch, batches each epoch's events through the degradation ladder,
/// and publishes the full event stream through `publisher`.
///
/// `keep` is the per-link survival probability for
/// [`EventKind::LinkReroll`] re-rolls (a plan-level parameter the events
/// themselves do not carry — pass
/// [`link_keep_prob`](FaultPlan::link_keep_prob) of the plan the events
/// were lowered from, or any value if the queue has no re-rolls).
///
/// The outcome is a pure function of `(inst, queue, cfg, keep)`;
/// [`ServiceStats`] carries the wall-clock side separately. Events due
/// after the configured horizon stay in the queue, exactly as the
/// lock-step runtime leaves its timeline tail unconsumed.
///
/// # Errors
///
/// An invalid config, an event referencing an unknown user or AP, a
/// non-input event in the queue, or a publisher failure (the stream
/// must not have holes, so publish errors are fatal).
pub fn serve(
    inst: &Instance,
    queue: &mut TimeQueue<EventKind>,
    cfg: &ControllerConfig,
    keep: f64,
    publisher: &mut dyn EventPublisher,
) -> Result<(ControllerOutcome, ServiceStats), String> {
    serve_checkpointed(inst, queue, cfg, keep, publisher, 0, &mut |_| Ok(()))
}

/// [`serve`] with periodic service checkpoints: after every
/// `checkpoint_every`-th epoch's durability sync, the committed fold
/// state is snapshotted into a [`ServiceCheckpoint`] and handed to
/// `sink`. Recovery is then [`replay_stream_from`](crate::replay_stream_from)
/// — snapshot + event-log-suffix replay — instead of full-log replay.
/// `checkpoint_every = 0` disables checkpointing (and the mirroring that
/// feeds it); the outcome is identical either way.
///
/// # Errors
///
/// Everything [`serve`] can report, plus a checkpoint request against a
/// publisher that does not track its byte position, and `sink` failures
/// (a checkpoint written with holes is worse than none).
pub fn serve_checkpointed(
    inst: &Instance,
    queue: &mut TimeQueue<EventKind>,
    cfg: &ControllerConfig,
    keep: f64,
    publisher: &mut dyn EventPublisher,
    checkpoint_every: u64,
    sink: &mut dyn FnMut(&ServiceCheckpoint) -> Result<(), String>,
) -> Result<(ControllerOutcome, ServiceStats), String> {
    let horizon_us = validate_horizon(cfg)?;
    let mut stream = Stream {
        publisher,
        seq: 0,
        inst,
        mirroring: checkpoint_every > 0,
        mirror: None,
    };
    stream.publish(
        0,
        EventKind::ServiceStarted {
            schema: STREAM_SCHEMA.to_string(),
            objective: cfg.objective.to_string(),
            policy: cfg.policy.name().to_string(),
            epoch_us: cfg.epoch_us,
            n_epochs: cfg.n_epochs,
            n_aps: inst.n_aps() as u64,
            n_users: inst.n_users() as u64,
            work_budget: cfg.work_budget,
        },
    )?;

    let mut engine = EpochEngine::new(
        inst,
        cfg,
        keep,
        NetworkState::absent(inst.n_aps(), inst.n_users()),
    );
    let mut latencies: Vec<f64> = Vec::new();
    let mut admission_wall_s = 0.0f64;
    let (mut joins_total, mut faults_total) = (0u64, 0u64);
    let mut backpressure_sheds = 0u64;

    for epoch in 0..cfg.n_epochs {
        let window_end = (epoch + 1) * cfg.epoch_us - 1;
        engine.begin_epoch();

        // ---- ingest the batch: everything due in this window --------
        // Under sink backpressure the batch is capped: a degraded sink
        // must not be handed an unbounded admission storm, so the epoch
        // sheds the overflow back into the queue (it pops first next
        // epoch — the queue order is stable, so nothing is reordered
        // and nothing is lost).
        let degraded = stream.publisher.pressure() == SinkPressure::Degraded;
        let (mut events, mut joins) = (0u64, 0u64);
        loop {
            if degraded && events + joins >= SHED_BATCH_CAP {
                if queue.peek_at_us().is_some_and(|t| t <= window_end) {
                    backpressure_sheds += 1;
                }
                break;
            }
            let Some(timed) = queue.pop_due(window_end) else {
                break;
            };
            check_ids(inst, &timed.item)?;
            stream.publish(timed.at_us, timed.item.clone())?;
            match timed.item {
                EventKind::UserJoin { user } => {
                    engine.user_join(user);
                    joins += 1;
                }
                EventKind::UserLeave { user } => {
                    engine.user_leave(user);
                    events += 1;
                }
                EventKind::ApDown { ap } => {
                    engine.ap_down(ap);
                    events += 1;
                }
                EventKind::ApRecovered { ap } => {
                    engine.ap_up(ap);
                    events += 1;
                }
                EventKind::LinkReroll { user, seed } => {
                    engine.link_reroll(user, seed);
                    events += 1;
                }
                other => {
                    return Err(format!("non-input event in the service queue: {other:?}"));
                }
            }
        }
        joins_total += joins;
        faults_total += events;

        // ---- one ladder pass answers the whole batch ----------------
        let admission_started = Instant::now();
        let outcome = engine.run_epoch(epoch, events, joins, Some(&mut latencies));
        if joins > 0 {
            admission_wall_s += admission_started.elapsed().as_secs_f64();
        }

        // ---- publish the epoch's decisions --------------------------
        if outcome.path != SolvePath::Idle {
            let r = engine.last_record().expect("run_epoch pushed a record");
            stream.publish(
                window_end,
                EventKind::SolveCompleted {
                    path: r.path.name().to_string(),
                    degraded: r.degraded,
                    rule: r.rule.clone(),
                    work: r.work,
                    rehomed: r.rehomed,
                    shed: r.shed,
                    readmitted: r.readmitted,
                    deferred: r.deferred,
                },
            )?;
        }
        for &(user, ap) in &outcome.changes {
            stream.publish(window_end, EventKind::Assoc { user, ap })?;
        }
        for message in &outcome.violations {
            stream.publish(
                window_end,
                EventKind::Violation {
                    epoch,
                    message: message.clone(),
                },
            )?;
        }
        stream.publish(
            window_end,
            EventKind::EpochClosed {
                epoch,
                events,
                joins,
                violations: outcome.violations.len() as u64,
            },
        )?;
        // The durability boundary: a crash from here on loses at most
        // the next (uncommitted) epoch.
        stream.sync()?;
        if checkpoint_every > 0 && (epoch + 1) % checkpoint_every == 0 {
            let cp = stream.checkpoint()?;
            sink(&cp).map_err(|e| format!("service checkpoint write failed: {e}"))?;
        }
    }

    let published = stream.seq;
    stream.publish(
        horizon_us - 1,
        EventKind::StreamClosed { events: published },
    )?;
    stream
        .publisher
        .close()
        .map_err(|e| format!("event stream close failed: {e}"))?;
    let events_published = stream.seq;

    let stats = ServiceStats {
        joins: joins_total,
        fault_events: faults_total,
        events_published,
        decision_latency_us: RecoverySummary::of(&latencies, 0),
        admission_wall_s,
        joins_per_sec: if admission_wall_s > 0.0 {
            joins_total as f64 / admission_wall_s
        } else {
            0.0
        },
        backpressure_sheds,
    };
    Ok((engine.finalize(), stats))
}

fn check_ids(inst: &Instance, kind: &EventKind) -> Result<(), String> {
    let (user_ok, ap_ok) = (inst.n_users(), inst.n_aps());
    match *kind {
        EventKind::UserJoin { user }
        | EventKind::UserLeave { user }
        | EventKind::LinkReroll { user, .. }
            if user.index() >= user_ok =>
        {
            Err(format!("event references unknown user {user}"))
        }
        EventKind::ApDown { ap } | EventKind::ApRecovered { ap } if ap.index() >= ap_ok => {
            Err(format!("event references unknown AP {ap}"))
        }
        _ => Ok(()),
    }
}
