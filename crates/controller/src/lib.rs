//! # mcast-controller
//!
//! An epoch-driven **online control runtime** wrapping the centralized
//! association algorithms of `mcast-core`.
//!
//! The paper's MNU/BLA/MLA solvers are one-shot: they assume a static
//! snapshot of the WLAN and rebuild the whole association from scratch.
//! Real deployments move underneath the solver — APs crash and recover,
//! users leave or jump out of range (`mcast-faults` models exactly these
//! dynamics). This crate closes the loop: a [`Controller`] run maintains
//! live association state in an incremental
//! [`LoadLedger`](mcast_core::LoadLedger), ingests a compiled
//! [`FaultTimeline`](mcast_faults::FaultTimeline) epoch by epoch, and at
//! each epoch chooses a response on a **graceful-degradation ladder**:
//!
//! 1. **Full re-solve** — run the configured solver over the *effective*
//!    instance (up APs, present users, surviving links).
//! 2. **Incremental repair** — re-home only orphaned/arrived users
//!    greedily against the ledger ([`mcast_core::repair`]), leaving
//!    unaffected associations untouched.
//! 3. **SSA fallback** — point still-uncovered users at their strongest
//!    in-range AP, load-oblivious.
//! 4. **Admission control** — under MNU, a user no allowed AP can admit
//!    within budget is *shed* and queued; shed users are retried at the
//!    next state-changing epoch (recoveries and departures free budget).
//!
//! Which rung runs is governed by a deterministic per-epoch **work
//! budget** ([`WorkMeter`]): an epoch that cannot afford a full re-solve
//! degrades to repair, a repair sweep that exhausts its budget finishes
//! on the SSA rung, and in the extreme the remaining users are deferred
//! to the next epoch. Work is counted in *model units* (candidate-link
//! evaluations), not wall-clock time, so runs are bit-reproducible.
//!
//! After every epoch an **invariant auditor** ([`audit_epoch`]) checks
//! that no user is associated to a down AP or over a dead link, that no
//! budget is violated (MNU), that no user the active rung could have
//! served was left unserved, and (in debug builds, or always with
//! [`ControllerConfig::audit_oracle`]) that the incremental ledger
//! matches a from-scratch recomputation. The run produces a
//! [`ControllerReport`] of per-epoch solve paths and disruption metrics
//! (handoffs, coverage-loss user·epochs, shed/readmitted counts, and
//! reconvergence-epoch percentiles via the shared
//! [`RecoverySummary`](mcast_faults::RecoverySummary)).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
mod engine;
mod ladder;
mod replay;
mod report;
mod runtime;
mod service;
mod state;

pub use audit::{audit_epoch, CoverageRule};
pub use ladder::{LadderPolicy, SolvePath, WorkMeter};
pub use replay::{
    fold_events, replay_stream, replay_stream_from, ReplayOutcome, ServiceCheckpoint,
    SERVICE_CKPT_SCHEMA,
};
pub use report::{ControllerReport, EpochRecord};
pub use runtime::{run, ControllerConfig, ControllerOutcome};
pub use service::{lower_plan, serve, serve_checkpointed, ServiceStats, SHED_BATCH_CAP};
pub use state::NetworkState;
