//! Disruption-metrics reporting for controller runs.

use serde::{Deserialize, Serialize};

use mcast_faults::RecoverySummary;

use crate::ladder::SolvePath;

/// What one epoch did, and what it cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Epoch index.
    pub epoch: u64,
    /// Fault events ingested at the start of this epoch.
    pub events: u64,
    /// Join events admitted at the start of this epoch (always 0 in the
    /// lock-step runtime, where every user is present from the start).
    #[serde(default)]
    pub joins: u64,
    /// The rung that ran.
    pub path: SolvePath,
    /// True if the work budget (or a solver failure) forced this epoch
    /// below its policy's preferred rung — including a repair sweep that
    /// finished on the SSA rung.
    pub degraded: bool,
    /// The coverage promise the auditor held this epoch against
    /// ([`crate::CoverageRule::name`]).
    pub rule: String,
    /// Work units spent ([`crate::WorkMeter`]).
    pub work: u64,
    /// Users whose AP at epoch end differs from their AP at epoch start
    /// (both being served — joins and losses are not handoffs).
    pub handoffs: u64,
    /// Users placed by the repair or SSA rung this epoch.
    pub rehomed: u64,
    /// Users newly shed this epoch (no allowed AP could admit them).
    pub shed: u64,
    /// Previously shed users admitted this epoch.
    pub readmitted: u64,
    /// Unserved users the work budget did not even let the controller
    /// examine (retried next epoch).
    pub deferred: u64,
    /// Users served at epoch end.
    pub satisfied: usize,
    /// True if any user's association changed during this epoch.
    pub changed: bool,
    /// Invariant violations the auditor found after this epoch.
    pub violations: u64,
}

/// The disruption-metrics report of one controller run.
///
/// Serialized (via the PR-3 atomic-write/journal machinery) as the
/// per-trial payload of `repro controller`, so runs replay byte-
/// identically from the journal on `--resume`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerReport {
    /// Objective name (`MNU`/`BLA`/`MLA`).
    pub objective: String,
    /// Ladder policy name ([`crate::LadderPolicy::name`]).
    pub policy: String,
    /// Epoch length in microseconds (the fault-timeline clock).
    pub epoch_us: u64,
    /// Epochs executed.
    pub n_epochs: u64,
    /// Per-epoch records, in order.
    pub epochs: Vec<EpochRecord>,
    /// Reconvergence times across disruption windows, **in epochs** —
    /// the same summary type the simulator reports in microseconds
    /// (`SimReport::reconvergence_summary` in the sim crate), so the
    /// two runtimes are directly comparable.
    pub reconvergence_epochs: RecoverySummary,
    /// Total handoffs across the run.
    pub handoffs: u64,
    /// Σ over disruption windows and epochs of how far coverage stayed
    /// below its pre-disruption baseline (user·epochs).
    pub coverage_loss_user_epochs: u64,
    /// The headline disruption score: handoffs + coverage-loss
    /// user·epochs. Lower is better at equal final coverage.
    pub disruption: u64,
    /// Total join events admitted across the run.
    #[serde(default)]
    pub joins: u64,
    /// Total shed events across the run.
    pub shed: u64,
    /// Total readmissions across the run.
    pub readmitted: u64,
    /// Total deferrals across the run.
    pub deferred: u64,
    /// Total invariant violations (must be 0).
    pub invariant_violations: u64,
    /// Up to the first 8 violation messages, for diagnosis.
    pub violations_sample: Vec<String>,
    /// Users served when the run ended.
    pub final_satisfied: usize,
    /// Maximum AP load when the run ended.
    pub final_max_load: f64,
    /// Total load when the run ended.
    pub final_total_load: f64,
    /// Total work units spent across all epochs.
    pub work: u64,
}

/// Everything [`assemble_report`] needs beyond what the epoch records
/// already carry.
#[derive(Debug)]
pub(crate) struct ReportParts {
    /// Objective name.
    pub objective: String,
    /// Ladder policy name.
    pub policy: String,
    /// Epoch length in µs.
    pub epoch_us: u64,
    /// Per-epoch records, in order.
    pub records: Vec<EpochRecord>,
    /// Up to 8 formatted violation messages.
    pub violations_sample: Vec<String>,
    /// Maximum AP load at run end.
    pub final_max_load: f64,
    /// Total load at run end.
    pub final_total_load: f64,
}

/// Derives the full [`ControllerReport`] from per-epoch records: the
/// disruption windows, reconvergence percentiles, coverage loss, and
/// run totals. Shared by the live runtimes and event-stream replay, so
/// a replayed report is byte-identical to the live one by construction
/// — both run this exact fold over the same records.
pub(crate) fn assemble_report(parts: ReportParts) -> ControllerReport {
    let records = parts.records;

    // Disruption windows: every epoch that ingested fault events opens
    // one, running until the next such epoch (or the end of the run).
    let disruptions: Vec<usize> = records
        .iter()
        .enumerate()
        .filter(|(_, r)| r.events > 0)
        .map(|(i, _)| i)
        .collect();
    let mut reconv: Vec<Option<f64>> = Vec::with_capacity(disruptions.len());
    let mut coverage_loss = 0u64;
    for (i, &d) in disruptions.iter().enumerate() {
        let end = disruptions.get(i + 1).copied().unwrap_or(records.len());
        // Reconvergence: the last epoch in the window whose association
        // still changed. A same-epoch repair that stays quiet afterwards
        // reconverges in 0 epochs; a window still churning in the run's
        // final epoch never settled.
        let last_change = (d..end).rfind(|&e| records[e].changed);
        reconv.push(match last_change {
            None => Some(0.0),
            Some(e) if e == records.len() - 1 && end == records.len() && e > d => None,
            Some(e) => Some((e - d) as f64),
        });
        // Coverage loss: user·epochs below the pre-disruption baseline.
        let baseline = if d == 0 { 0 } else { records[d - 1].satisfied } as i64;
        for r in &records[d..end] {
            coverage_loss += (baseline - r.satisfied as i64).max(0) as u64;
        }
    }

    let handoffs: u64 = records.iter().map(|r| r.handoffs).sum();
    ControllerReport {
        objective: parts.objective,
        policy: parts.policy,
        epoch_us: parts.epoch_us,
        n_epochs: records.len() as u64,
        reconvergence_epochs: RecoverySummary::from_options(&reconv),
        handoffs,
        coverage_loss_user_epochs: coverage_loss,
        disruption: handoffs + coverage_loss,
        joins: records.iter().map(|r| r.joins).sum(),
        shed: records.iter().map(|r| r.shed).sum(),
        readmitted: records.iter().map(|r| r.readmitted).sum(),
        deferred: records.iter().map(|r| r.deferred).sum(),
        invariant_violations: records.iter().map(|r| r.violations).sum(),
        violations_sample: parts.violations_sample,
        final_satisfied: records.last().map_or(0, |r| r.satisfied),
        final_max_load: parts.final_max_load,
        final_total_load: parts.final_total_load,
        work: records.iter().map(|r| r.work).sum(),
        epochs: records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serde_round_trip() {
        let report = ControllerReport {
            objective: "MNU".to_string(),
            policy: "repair".to_string(),
            epoch_us: 100_000,
            n_epochs: 2,
            epochs: vec![EpochRecord {
                epoch: 0,
                events: 0,
                joins: 4,
                path: SolvePath::Full,
                degraded: false,
                rule: "exact".to_string(),
                work: 120,
                handoffs: 0,
                rehomed: 3,
                shed: 1,
                readmitted: 0,
                deferred: 0,
                satisfied: 9,
                changed: true,
                violations: 0,
            }],
            reconvergence_epochs: RecoverySummary::of(&[1.0], 0),
            handoffs: 4,
            coverage_loss_user_epochs: 7,
            disruption: 11,
            joins: 4,
            shed: 1,
            readmitted: 1,
            deferred: 0,
            invariant_violations: 0,
            violations_sample: Vec::new(),
            final_satisfied: 9,
            final_max_load: 0.75,
            final_total_load: 2.5,
            work: 240,
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: ControllerReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
