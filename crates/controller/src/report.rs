//! Disruption-metrics reporting for controller runs.

use serde::{Deserialize, Serialize};

use mcast_faults::RecoverySummary;

use crate::ladder::SolvePath;

/// What one epoch did, and what it cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Epoch index.
    pub epoch: u64,
    /// Fault events ingested at the start of this epoch.
    pub events: u64,
    /// The rung that ran.
    pub path: SolvePath,
    /// True if the work budget (or a solver failure) forced this epoch
    /// below its policy's preferred rung — including a repair sweep that
    /// finished on the SSA rung.
    pub degraded: bool,
    /// The coverage promise the auditor held this epoch against
    /// ([`crate::CoverageRule::name`]).
    pub rule: String,
    /// Work units spent ([`crate::WorkMeter`]).
    pub work: u64,
    /// Users whose AP at epoch end differs from their AP at epoch start
    /// (both being served — joins and losses are not handoffs).
    pub handoffs: u64,
    /// Users placed by the repair or SSA rung this epoch.
    pub rehomed: u64,
    /// Users newly shed this epoch (no allowed AP could admit them).
    pub shed: u64,
    /// Previously shed users admitted this epoch.
    pub readmitted: u64,
    /// Unserved users the work budget did not even let the controller
    /// examine (retried next epoch).
    pub deferred: u64,
    /// Users served at epoch end.
    pub satisfied: usize,
    /// True if any user's association changed during this epoch.
    pub changed: bool,
    /// Invariant violations the auditor found after this epoch.
    pub violations: u64,
}

/// The disruption-metrics report of one controller run.
///
/// Serialized (via the PR-3 atomic-write/journal machinery) as the
/// per-trial payload of `repro controller`, so runs replay byte-
/// identically from the journal on `--resume`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerReport {
    /// Objective name (`MNU`/`BLA`/`MLA`).
    pub objective: String,
    /// Ladder policy name ([`crate::LadderPolicy::name`]).
    pub policy: String,
    /// Epoch length in microseconds (the fault-timeline clock).
    pub epoch_us: u64,
    /// Epochs executed.
    pub n_epochs: u64,
    /// Per-epoch records, in order.
    pub epochs: Vec<EpochRecord>,
    /// Reconvergence times across disruption windows, **in epochs** —
    /// the same summary type the simulator reports in microseconds
    /// (`SimReport::reconvergence_summary` in the sim crate), so the
    /// two runtimes are directly comparable.
    pub reconvergence_epochs: RecoverySummary,
    /// Total handoffs across the run.
    pub handoffs: u64,
    /// Σ over disruption windows and epochs of how far coverage stayed
    /// below its pre-disruption baseline (user·epochs).
    pub coverage_loss_user_epochs: u64,
    /// The headline disruption score: handoffs + coverage-loss
    /// user·epochs. Lower is better at equal final coverage.
    pub disruption: u64,
    /// Total shed events across the run.
    pub shed: u64,
    /// Total readmissions across the run.
    pub readmitted: u64,
    /// Total deferrals across the run.
    pub deferred: u64,
    /// Total invariant violations (must be 0).
    pub invariant_violations: u64,
    /// Up to the first 8 violation messages, for diagnosis.
    pub violations_sample: Vec<String>,
    /// Users served when the run ended.
    pub final_satisfied: usize,
    /// Maximum AP load when the run ended.
    pub final_max_load: f64,
    /// Total load when the run ended.
    pub final_total_load: f64,
    /// Total work units spent across all epochs.
    pub work: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serde_round_trip() {
        let report = ControllerReport {
            objective: "MNU".to_string(),
            policy: "repair".to_string(),
            epoch_us: 100_000,
            n_epochs: 2,
            epochs: vec![EpochRecord {
                epoch: 0,
                events: 0,
                path: SolvePath::Full,
                degraded: false,
                rule: "exact".to_string(),
                work: 120,
                handoffs: 0,
                rehomed: 3,
                shed: 1,
                readmitted: 0,
                deferred: 0,
                satisfied: 9,
                changed: true,
                violations: 0,
            }],
            reconvergence_epochs: RecoverySummary::of(&[1.0], 0),
            handoffs: 4,
            coverage_loss_user_epochs: 7,
            disruption: 11,
            shed: 1,
            readmitted: 1,
            deferred: 0,
            invariant_violations: 0,
            violations_sample: Vec::new(),
            final_satisfied: 9,
            final_max_load: 0.75,
            final_total_load: 2.5,
            work: 240,
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: ControllerReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
