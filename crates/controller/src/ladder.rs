//! The degradation ladder: policies, solve paths, and the work meter.

use serde::{Deserialize, Serialize};

/// Which rungs of the degradation ladder a controller run may use.
///
/// Policies are the sweep arms of the `repro controller` experiment:
/// they bound the *most expensive* response the controller will attempt
/// at a dirty epoch. The work budget can still push an epoch below its
/// policy's preferred rung.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LadderPolicy {
    /// Re-solve from scratch at every state-changing epoch.
    Full,
    /// Solve once at epoch 0, then incrementally repair: re-home only
    /// orphaned/arrived users, leaving everyone else untouched.
    Repair,
    /// Never optimize: strongest-signal placement only (the online
    /// analogue of the paper's SSA baseline).
    SsaOnly,
}

impl LadderPolicy {
    /// All policies, in sweep order.
    pub const ALL: [LadderPolicy; 3] = [
        LadderPolicy::Full,
        LadderPolicy::Repair,
        LadderPolicy::SsaOnly,
    ];

    /// Stable lowercase name (JSON/report key and CLI value).
    pub fn name(self) -> &'static str {
        match self {
            LadderPolicy::Full => "full",
            LadderPolicy::Repair => "repair",
            LadderPolicy::SsaOnly => "ssa-only",
        }
    }

    /// Parses a [`LadderPolicy::name`].
    pub fn from_name(name: &str) -> Option<LadderPolicy> {
        LadderPolicy::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// The response a single epoch actually executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolvePath {
    /// Nothing changed and nothing was pending: no compute at all.
    Idle,
    /// Full re-solve over the effective instance.
    Full,
    /// Incremental repair sweep over unserved users.
    Repair,
    /// Strongest-signal placement sweep.
    Ssa,
}

impl SolvePath {
    /// Every path, in ladder order.
    pub const ALL: [SolvePath; 4] = [
        SolvePath::Idle,
        SolvePath::Full,
        SolvePath::Repair,
        SolvePath::Ssa,
    ];

    /// Stable lowercase name (report key).
    pub fn name(self) -> &'static str {
        match self {
            SolvePath::Idle => "idle",
            SolvePath::Full => "full",
            SolvePath::Repair => "repair",
            SolvePath::Ssa => "ssa",
        }
    }

    /// Parses a [`SolvePath::name`] (event-stream replay decodes paths
    /// from their logged names).
    pub fn from_name(name: &str) -> Option<SolvePath> {
        SolvePath::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// A deterministic per-epoch work budget.
///
/// The controller must degrade under time pressure *reproducibly*: the
/// same seed and plan must take the same ladder decisions on any
/// machine. Wall-clock deadlines cannot do that, so the budget is
/// counted in **work units** — one unit per candidate-link evaluation
/// (the common currency of every rung: a repair scan of user `u` costs
/// `|candidates(u)|`, a full re-solve `Σᵤ |candidates(u)| · |rates|`,
/// an SSA placement 1). The cooperative watchdog is
/// [`WorkMeter::try_charge`]: rungs ask before they spend, and a refusal
/// drops the controller to the next cheaper rung mid-sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkMeter {
    budget: u64,
    spent: u64,
}

impl WorkMeter {
    /// A meter with `budget` work units per epoch; `0` means unlimited.
    pub fn new(budget: u64) -> WorkMeter {
        WorkMeter { budget, spent: 0 }
    }

    /// A meter that never refuses.
    pub fn unlimited() -> WorkMeter {
        WorkMeter::new(0)
    }

    /// Work units spent so far.
    pub fn spent(&self) -> u64 {
        self.spent
    }

    /// Charges `cost` units if they fit in the remaining budget.
    /// Returns `false` — and charges nothing — if they do not.
    pub fn try_charge(&mut self, cost: u64) -> bool {
        if self.budget != 0 && self.spent.saturating_add(cost) > self.budget {
            return false;
        }
        self.spent = self.spent.saturating_add(cost);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_names_round_trip() {
        for p in LadderPolicy::ALL {
            assert_eq!(LadderPolicy::from_name(p.name()), Some(p));
        }
        assert_eq!(LadderPolicy::from_name("nope"), None);
    }

    #[test]
    fn unlimited_meter_never_refuses() {
        let mut m = WorkMeter::unlimited();
        assert!(m.try_charge(u64::MAX));
        assert!(m.try_charge(u64::MAX));
        assert_eq!(m.spent(), u64::MAX);
    }

    #[test]
    fn meter_refuses_over_budget_and_charges_nothing() {
        let mut m = WorkMeter::new(10);
        assert!(m.try_charge(7));
        assert!(!m.try_charge(4), "7 + 4 > 10 must refuse");
        assert_eq!(m.spent(), 7, "a refused charge spends nothing");
        assert!(m.try_charge(3));
        assert!(!m.try_charge(1));
    }
}
